/// Calibrated 16 nm area model.
///
/// The paper reports AP deployment areas of 0.64 / 0.81 / 1.28 mm² for
/// Llama2-7b / 13b / 70b — exactly proportional to head count
/// (32 / 40 / 64), i.e. one AP tile of ≈0.02 mm² per attention head.
/// With the mapping's measured column budget (213 columns for the best
/// M = 6 configuration, two packed half-vectors plus shared operand and
/// divisor fields) and 2048 rows (sequence length 4096 at two words per
/// row), a per-cell area of 0.040 µm² (a 16 nm high-density SRAM-class
/// bitcell) plus 18% peripheral overhead reproduces that tile area.
///
/// # Examples
///
/// ```
/// use softmap_ap::AreaModel;
///
/// let a = AreaModel::nm16();
/// let tile = a.tile_area_mm2(2048, 213);
/// assert!(tile > 0.015 && tile < 0.025, "tile = {tile} mm^2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// CAM cell area, µm².
    pub cell_area_um2: f64,
    /// Fractional overhead for key/mask/tag registers, sense amps, and
    /// the controller.
    pub periphery_overhead: f64,
}

impl AreaModel {
    /// The calibrated 16 nm model.
    #[must_use]
    pub fn nm16() -> Self {
        Self {
            cell_area_um2: 0.040,
            periphery_overhead: 0.18,
        }
    }

    /// Area of one AP tile of `rows × cols` cells, in mm².
    #[must_use]
    pub fn tile_area_mm2(&self, rows: usize, cols: usize) -> f64 {
        (rows * cols) as f64 * self.cell_area_um2 * (1.0 + self.periphery_overhead) * 1e-6
    }

    /// Area of a deployment of `tiles` identical tiles, in mm².
    #[must_use]
    pub fn deployment_area_mm2(&self, tiles: usize, rows: usize, cols: usize) -> f64 {
        tiles as f64 * self.tile_area_mm2(rows, cols)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::nm16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_scales_with_tiles() {
        let a = AreaModel::nm16();
        let one = a.tile_area_mm2(2048, 213);
        assert!((a.deployment_area_mm2(32, 2048, 213) - 32.0 * one).abs() < 1e-12);
    }

    #[test]
    fn paper_area_shape_head_proportional() {
        // 32 / 40 / 64 heads must produce areas in ratio 32 : 40 : 64.
        let a = AreaModel::nm16();
        let a7 = a.deployment_area_mm2(32, 2048, 213);
        let a13 = a.deployment_area_mm2(40, 2048, 213);
        let a70 = a.deployment_area_mm2(64, 2048, 213);
        assert!((a13 / a7 - 40.0 / 32.0).abs() < 1e-9);
        assert!((a70 / a7 - 2.0).abs() < 1e-9);
        // and land near the paper's magnitudes (0.64 / 0.81 / 1.28 mm²)
        assert!((a7 - 0.64).abs() < 0.15, "a7 = {a7}");
        assert!((a70 - 1.28).abs() < 0.30, "a70 = {a70}");
    }

    #[test]
    fn zero_geometry_zero_area() {
        let a = AreaModel::nm16();
        assert_eq!(a.tile_area_mm2(0, 100), 0.0);
        assert_eq!(a.deployment_area_mm2(0, 2048, 100), 0.0);
    }
}
