//! Dual execution backends for the AP controller.
//!
//! Every [`ApCore`] word-level operation can execute two ways:
//!
//! * [`ExecBackend::Microcode`] — the ground-truth bit-serial engine:
//!   LUT compare/write passes over the CAM bit-planes, exactly as the
//!   hardware sequencer would issue them. Costs are charged inline, one
//!   [`crate::CycleStats::charge_compare`] /
//!   [`crate::CycleStats::charge_write`] per cycle.
//! * [`ExecBackend::FastWord`] — the production fast path: a *fused*
//!   word-parallel engine over the same column bit-planes. Instead of
//!   interpreting LUT passes (four compare/write pairs per bit for an
//!   add), it computes each operation's result and its exact cost in a
//!   single sweep — carry/borrow chains as word-parallel recurrences
//!   over 64-row blocks, and the data-dependent write-tag populations
//!   as closed-form popcounts (see [`fused_ripple`]). Costs are
//!   charged through the same cost model in bulk
//!   ([`crate::CycleStats::charge_compares_bulk`] /
//!   [`crate::CycleStats::charge_writes_bulk`]).
//!
//! # The cost-model contract
//!
//! For any sequence of operations on identical inputs the two backends
//! leave **bit-identical CAM state** (including the reserved
//! carry/flag columns) and **identical [`crate::CycleStats`]** — total
//! cycles, compare/write split, and per-cell event counts. The
//! differential proptests in `crates/ap/tests/backend_diff.rs` enforce
//! the contract op by op; `crates/bench/benches/backend_compare.rs`
//! measures the speedup it buys.
//!
//! Because plane state is maintained exactly, controller-driven
//! microprograms (the reciprocal divider, max/min search, the Fig. 5
//! mapping) are written once and run on either backend.

use crate::program::{ApOp, BlockRegion, Operand};
use crate::{ApCore, ApError, Field};

/// Which engine executes [`ApCore`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Bit-serial LUT microcode over CAM planes (ground truth).
    #[default]
    Microcode,
    /// Fused word-parallel execution with analytic cost charging
    /// (bit- and cycle-exact vs. `Microcode`, roughly an order of
    /// magnitude faster on wide operations).
    FastWord,
}

/// One bit-position step of the fused ripple engine, over one 64-row
/// block.
///
/// The in-place add/sub LUTs write, per bit, exactly the rows whose
/// `(carry, a, b)` state changes. With the carry-in chain `c`, the
/// written-cell count per bit collapses to two popcounts:
///
/// * every changing row satisfies `a ^ c = 1` (one cell written),
/// * rows that also write the carry column (`(0,1,1)` and `(1,0,0)`
///   for add; `(0,1,0)` and `(1,0,1)` for sub) are `a ^ c = 1` with
///   `a == b` (add) / `a != b` (sub) — one extra cell.
///
/// The same formula covers the carry/borrow-ripple LUTs above the
/// source width (where `a = 0`). Row predication is a plain AND mask
/// on `a`: ungated rows see `a = 0` with carry-in 0 and are provably
/// untouched, matching the gated microcode.
macro_rules! fused_step {
    ($SUB:ident, $av:expr, $bref:expr, $cref:expr, $ev:ident) => {{
        let av = $av;
        let bv = *$bref;
        let cv = *$cref;
        let t = av ^ bv;
        let t1 = av ^ cv;
        let extra = if $SUB { t1 & t } else { t1 & !t };
        $ev += u64::from(t1.count_ones()) + u64::from(extra.count_ones());
        *$bref = t ^ cv;
        *$cref = if $SUB {
            (av & !bv) | (cv & !t)
        } else {
            (av & bv) | (cv & t)
        };
    }};
}

/// Fused in-place ripple add (`SUB = false`) or subtract
/// (`SUB = true`) of a `sw`-bit source into an `aw`-bit accumulator,
/// word-parallel over `bl` 64-row blocks of column words laid out
/// bit-major (`buf[bit * bl + block]`).
///
/// `carry` must be zeroed by the caller (this models the microcode's
/// `clear_carry`); on return it holds the final carry/borrow column
/// state. Returns the write-cell events of the equivalent LUT pass
/// sequence.
fn fused_ripple<const SUB: bool>(
    a: &[u64],
    sw: usize,
    b: &mut [u64],
    aw: usize,
    bl: usize,
    gate: Option<&[u64]>,
    carry: &mut [u64],
) -> u64 {
    debug_assert!(a.len() >= sw * bl);
    debug_assert!(b.len() >= aw * bl);
    debug_assert_eq!(carry.len(), bl);
    let mut ev = 0u64;
    for i in 0..sw {
        let ar = &a[i * bl..(i + 1) * bl];
        let br = &mut b[i * bl..(i + 1) * bl];
        match gate {
            Some(g) => {
                for ((bref, cref), (&av, &gv)) in br
                    .iter_mut()
                    .zip(carry.iter_mut())
                    .zip(ar.iter().zip(g.iter()))
                {
                    fused_step!(SUB, av & gv, bref, cref, ev);
                }
            }
            None => {
                for ((bref, cref), &av) in br.iter_mut().zip(carry.iter_mut()).zip(ar.iter()) {
                    fused_step!(SUB, av, bref, cref, ev);
                }
            }
        }
    }
    // Carry/borrow ripple into accumulator bits above the source width.
    for i in sw..aw {
        let br = &mut b[i * bl..(i + 1) * bl];
        for (bref, cref) in br.iter_mut().zip(carry.iter_mut()) {
            fused_step!(SUB, 0u64, bref, cref, ev);
        }
    }
    ev
}

/// Out-of-place counterpart of [`fused_ripple`]`::<true>` for the
/// strip divider's trial subtraction: reads the pre-subtract remainder
/// from `pre`, writes the difference into `post` (every one of the
/// `aw` planes is overwritten), and leaves the final borrow column in
/// `carry`. Identical event count and bit algebra to the in-place
/// kernel — but the caller keeps the pre-image for the restore blend
/// without a separate save copy per iteration.
fn fused_sub_into(
    a: &[u64],
    sw: usize,
    pre: &[u64],
    post: &mut [u64],
    aw: usize,
    bl: usize,
    carry: &mut [u64],
) -> u64 {
    debug_assert!(a.len() >= sw * bl);
    debug_assert!(pre.len() >= aw * bl);
    debug_assert!(post.len() >= aw * bl);
    debug_assert_eq!(carry.len(), bl);
    let mut ev = 0u64;
    for i in 0..sw {
        let ar = &a[i * bl..(i + 1) * bl];
        let pr = &pre[i * bl..(i + 1) * bl];
        let po = &mut post[i * bl..(i + 1) * bl];
        for (((&pv, dst), cref), &av) in pr
            .iter()
            .zip(po.iter_mut())
            .zip(carry.iter_mut())
            .zip(ar.iter())
        {
            let cv = *cref;
            let t = av ^ pv;
            let t1 = av ^ cv;
            ev += u64::from(t1.count_ones()) + u64::from((t1 & t).count_ones());
            *dst = t ^ cv;
            *cref = (av & !pv) | (cv & !t);
        }
    }
    // Borrow ripple into the remainder bit above the divisor width
    // (the `a = 0` tail of the in-place kernel).
    for i in sw..aw {
        let pr = &pre[i * bl..(i + 1) * bl];
        let po = &mut post[i * bl..(i + 1) * bl];
        for ((&pv, dst), cref) in pr.iter().zip(po.iter_mut()).zip(carry.iter_mut()) {
            let cv = *cref;
            ev += u64::from(cv.count_ones()) + u64::from((cv & pv).count_ones());
            *dst = pv ^ cv;
            *cref = cv & !pv;
        }
    }
    ev
}

/// The valid-rows mask for one 64-row block: all ones except the tail
/// bits beyond `rows` in the final block (the arena-wide invariant).
fn tail_mask(rows: usize, blk: usize, blocks: usize) -> u64 {
    if blk + 1 == blocks && !rows.is_multiple_of(64) {
        (1u64 << (rows % 64)) - 1
    } else {
        u64::MAX
    }
}

impl ApCore {
    /// 64-row block count.
    fn fw_blocks(&self) -> usize {
        self.rows().div_ceil(64)
    }

    /// Copies a field's bit-planes into a bit-major block buffer
    /// (`buf[bit * blocks + block]`). Because the CAM arena is flat and
    /// column-major with the same stride, this is a single memcpy of
    /// one contiguous arena range.
    fn fw_gather(&self, field: Field, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend_from_slice(self.cam().field_words(field));
    }

    /// Writes a bit-major block buffer back into a field's bit-planes
    /// (the inverse memcpy of [`ApCore::fw_gather`]).
    fn fw_scatter(&mut self, field: Field, buf: &[u64]) {
        self.cam_mut().field_words_mut(field).copy_from_slice(buf);
    }

    /// Fills `buf` with the gate column's block words at the requested
    /// polarity; returns whether the op is gated. (Tail bits beyond the
    /// row count may be set after complementing; they are harmless
    /// because every operand plane keeps its tail zero.)
    fn fw_gate_into(&self, gate: Option<(usize, bool)>, buf: &mut Vec<u64>) -> bool {
        match gate {
            Some((col, polarity)) => {
                buf.clear();
                buf.extend_from_slice(self.cam().plane_words(col));
                if !polarity {
                    for w in buf.iter_mut() {
                        *w = !*w;
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Charges the cost-model totals of one gated/ungated in-place
    /// ripple op (`clear_carry` + 4 passes per source bit + 2 ripple
    /// passes per extra accumulator bit), with `wr_events` the write
    /// cells from [`fused_ripple`]. Also the charge primitive behind
    /// the blocked executor's region charge walk (`program` module).
    pub(crate) fn fw_charge_ripple(&mut self, sw: usize, aw: usize, gated: bool, wr_events: u64) {
        let rows = self.rows() as u64;
        let g = u64::from(gated);
        let low = 4 * sw as u64;
        let ripple = 2 * (aw - sw) as u64;
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(low + ripple, rows * ((3 + g) * low + (2 + g) * ripple));
        st.charge_writes_bulk(1 + low + ripple, rows + wr_events);
    }

    pub(crate) fn fw_add_into_gated(
        &mut self,
        acc: Field,
        src: Field,
        gate: Option<(usize, bool)>,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let (sw, aw) = (src.width(), acc.width());
        let cc = self.carry_col();
        let mut gbuf = std::mem::take(&mut self.gate_buf);
        let gated = self.fw_gate_into(gate, &mut gbuf);
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vb = std::mem::take(&mut self.vals_b);
        let mut carry = std::mem::take(&mut self.vals_c);
        self.fw_gather(src, &mut va);
        self.fw_gather(acc, &mut vb);
        carry.clear();
        carry.resize(bl, 0);
        let gw = if gated { Some(&gbuf[..]) } else { None };
        let ev = fused_ripple::<false>(&va, sw, &mut vb, aw, bl, gw, &mut carry);
        self.fw_scatter(acc, &vb);
        self.cam_mut().plane_words_mut(cc).copy_from_slice(&carry);
        self.fw_charge_ripple(sw, aw, gated, ev);
        self.vals_a = va;
        self.vals_b = vb;
        self.vals_c = carry;
        self.gate_buf = gbuf;
        Ok(())
    }

    /// Fused in-place subtraction; leaves the borrow set in
    /// `self.borrow_scratch` (the shared convention of
    /// `ApCore::sub_into_scratch`).
    pub(crate) fn fw_sub_into_gated(
        &mut self,
        acc: Field,
        src: Field,
        gate: Option<(usize, bool)>,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows();
        let (sw, aw) = (src.width(), acc.width());
        let cc = self.carry_col();
        let mut gbuf = std::mem::take(&mut self.gate_buf);
        let gated = self.fw_gate_into(gate, &mut gbuf);
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vb = std::mem::take(&mut self.vals_b);
        let mut borrow = std::mem::take(&mut self.vals_c);
        self.fw_gather(src, &mut va);
        self.fw_gather(acc, &mut vb);
        borrow.clear();
        borrow.resize(bl, 0);
        let gw = if gated { Some(&gbuf[..]) } else { None };
        let ev = fused_ripple::<true>(&va, sw, &mut vb, aw, bl, gw, &mut borrow);
        self.fw_scatter(acc, &vb);
        self.cam_mut().plane_words_mut(cc).copy_from_slice(&borrow);
        self.fw_charge_ripple(sw, aw, gated, ev);
        // Reading the borrow column back costs one compare cycle.
        self.cam_mut()
            .stats_mut()
            .charge_compares_bulk(1, rows as u64);
        self.set_borrow_scratch(&borrow);
        self.vals_a = va;
        self.vals_b = vb;
        self.vals_c = borrow;
        self.gate_buf = gbuf;
        Ok(())
    }

    pub(crate) fn fw_copy(&mut self, src: Field, dst: Field) -> Result<(), ApError> {
        let rows = self.rows() as u64;
        let sw = src.width();
        let mut va = std::mem::take(&mut self.vals_a);
        self.fw_gather(src, &mut va);
        self.fw_scatter(dst.sub(0, sw), &va);
        self.vals_a = va;
        // Two single-column compare passes per bit; together their
        // writes touch every row once.
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(2 * sw as u64, 2 * sw as u64 * rows);
        st.charge_writes_bulk(2 * sw as u64, sw as u64 * rows);
        if dst.width() > sw {
            let hi = dst.sub(sw, dst.width() - sw);
            self.broadcast_all(hi, 0)?;
        }
        Ok(())
    }

    /// Shared fast engine for XOR/AND/OR: `r` is pre-cleared, common
    /// bits run `passes` two-column compare passes each (their writes
    /// touch `events_mask` cells: each set result bit is written by
    /// exactly one pass), and single-operand upper bits run the copy
    /// LUT when the operation is identity-on-zero (`ext_copies`).
    fn fw_bitwise2(
        &mut self,
        a: Field,
        b: Field,
        r: Field,
        f: fn(u64, u64) -> u64,
        passes: u64,
        ext_copies: bool,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows() as u64;
        let (awd, bw) = (a.width(), b.width());
        let w = awd.max(bw);
        let cm = awd.min(bw);
        self.broadcast_all(r, 0)?;
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vb = std::mem::take(&mut self.vals_b);
        let mut vr = std::mem::take(&mut self.vals_r);
        self.fw_gather(a, &mut va);
        self.fw_gather(b, &mut vb);
        vr.clear();
        vr.resize(w * bl, 0);
        let mut ev = 0u64;
        for i in 0..cm {
            for blk in 0..bl {
                let x = f(va[i * bl + blk], vb[i * bl + blk]);
                ev += u64::from(x.count_ones());
                vr[i * bl + blk] = x;
            }
        }
        if ext_copies {
            let longer = if awd > bw { &va } else { &vb };
            vr[cm * bl..w * bl].copy_from_slice(&longer[cm * bl..w * bl]);
        }
        self.fw_scatter(r.sub(0, w), &vr);
        let ub = if ext_copies { (w - cm) as u64 } else { 0 };
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(
            passes * cm as u64 + 2 * ub,
            (2 * passes * cm as u64 + 2 * ub) * rows,
        );
        st.charge_writes_bulk(passes * cm as u64 + 2 * ub, ev + ub * rows);
        self.vals_a = va;
        self.vals_b = vb;
        self.vals_r = vr;
        Ok(())
    }

    pub(crate) fn fw_xor(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        self.fw_bitwise2(a, b, r, |x, y| x ^ y, 2, true)
    }

    pub(crate) fn fw_and(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        self.fw_bitwise2(a, b, r, |x, y| x & y, 1, false)
    }

    pub(crate) fn fw_or(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        self.fw_bitwise2(a, b, r, |x, y| x | y, 3, true)
    }

    pub(crate) fn fw_not(&mut self, a: Field, r: Field) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows();
        let aw = a.width();
        let mut va = std::mem::take(&mut self.vals_a);
        self.fw_gather(a, &mut va);
        for i in 0..aw {
            for blk in 0..bl {
                va[i * bl + blk] = !va[i * bl + blk] & tail_mask(rows, blk, bl);
            }
        }
        self.fw_scatter(r.sub(0, aw), &va);
        self.vals_a = va;
        // Two single-column compare passes per bit; every row written
        // once per bit (R=0 for ones, R=1 for zeros).
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(2 * aw as u64, 2 * (aw * rows) as u64);
        st.charge_writes_bulk(2 * aw as u64, (aw * rows) as u64);
        Ok(())
    }

    pub(crate) fn fw_mul(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let (awd, bw, rw) = (a.width(), b.width(), r.width());
        let cc = self.carry_col();
        self.broadcast_all(r, 0)?;
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vg = std::mem::take(&mut self.vals_b);
        let mut vr = std::mem::take(&mut self.vals_r);
        let mut carry = std::mem::take(&mut self.vals_c);
        let mut events = std::mem::take(&mut self.events_buf);
        self.fw_gather(a, &mut va);
        self.fw_gather(b, &mut vg);
        vr.clear();
        vr.resize(rw * bl, 0);
        carry.clear();
        carry.resize(bl, 0);
        events.clear();
        for j in 0..bw {
            // Partial sums never carry past a.width() + 1 bits, and the
            // result field guarantees rw - j >= awd + 1 for every j.
            let acc_w = (awd + 1).min(rw - j);
            debug_assert_eq!(acc_w, awd + 1);
            carry.fill(0);
            let gate = &vg[j * bl..(j + 1) * bl];
            // A multiplier bit set in no row (common for broadcast
            // constants) matches no LUT pass: the cycles are still
            // issued but nothing is written, so the sweep is skipped.
            let ev = if gate.iter().all(|&g| g == 0) {
                0
            } else {
                fused_ripple::<false>(
                    &va,
                    awd,
                    &mut vr[j * bl..(j + acc_w) * bl],
                    acc_w,
                    bl,
                    Some(gate),
                    &mut carry,
                )
            };
            events.push((acc_w, ev));
        }
        self.fw_scatter(r, &vr);
        // The carry column holds the final gated add's carry state.
        self.cam_mut().plane_words_mut(cc).copy_from_slice(&carry);
        for &(acc_w, ev) in &events {
            self.fw_charge_ripple(awd, acc_w, true, ev);
        }
        self.vals_a = va;
        self.vals_b = vg;
        self.vals_r = vr;
        self.vals_c = carry;
        self.events_buf = events;
        Ok(())
    }

    /// Fused-schedule constant multiplier behind `ApOp::MulConst`.
    /// Plane-exact — the final carry column included — versus
    /// broadcasting `bits` and running [`ApCore::mul`], on both
    /// backends: this word-parallel engine is the single
    /// implementation, charged as the schedule the optimizing
    /// controller actually issues. Set multiplier bits run one ungated
    /// ripple each (the controller needs no gate column for a bit it
    /// knows is one); zero bits issue nothing at all — the elision the
    /// gated multiply cannot perform, because it must still spend the
    /// compare cycles to discover an empty gate.
    pub(crate) fn fw_mul_const(
        &mut self,
        a: Field,
        r: Field,
        bits: u64,
        width: usize,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let (awd, rw) = (a.width(), r.width());
        let cc = self.carry_col();
        self.broadcast_all(r, 0)?;
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vr = std::mem::take(&mut self.vals_r);
        let mut carry = std::mem::take(&mut self.vals_c);
        let mut events = std::mem::take(&mut self.events_buf);
        self.fw_gather(a, &mut va);
        vr.clear();
        vr.resize(rw * bl, 0);
        carry.clear();
        carry.resize(bl, 0);
        events.clear();
        for j in 0..width {
            let acc_w = (awd + 1).min(rw - j);
            debug_assert_eq!(acc_w, awd + 1);
            // A cleared carry matches the gated multiply for unset bits
            // too: its per-bit clear_carry runs before the (skipped)
            // sweep, so after an unset top bit the carry column is zero
            // in both schedules.
            carry.fill(0);
            if bits >> j & 1 == 1 {
                // Ungated is plane-exact vs. the all-rows gate: operand
                // planes keep their tail bits zero, so padding rows add
                // 0 + 0 and stay untouched.
                let ev = fused_ripple::<false>(
                    &va,
                    awd,
                    &mut vr[j * bl..(j + acc_w) * bl],
                    acc_w,
                    bl,
                    None,
                    &mut carry,
                );
                events.push((acc_w, ev));
            }
        }
        self.fw_scatter(r, &vr);
        self.cam_mut().plane_words_mut(cc).copy_from_slice(&carry);
        for &(acc_w, ev) in &events {
            self.fw_charge_ripple(awd, acc_w, false, ev);
        }
        self.vals_a = va;
        self.vals_r = vr;
        self.vals_c = carry;
        self.events_buf = events;
        Ok(())
    }

    pub(crate) fn fw_shr_const(&mut self, field: Field, k: usize) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows() as u64;
        let w = field.width();
        debug_assert!(k > 0 && k < w);
        let mut va = std::mem::take(&mut self.vals_a);
        self.fw_gather(field, &mut va);
        va.copy_within(k * bl..w * bl, 0);
        va[(w - k) * bl..w * bl].fill(0);
        self.fw_scatter(field, &va);
        self.vals_a = va;
        let moved = (w - k) as u64;
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(2 * moved, 2 * moved * rows);
        st.charge_writes_bulk(2 * moved, moved * rows);
        // The vacated high bits are cleared by an ungated broadcast.
        let hi = field.sub(w - k, k);
        self.broadcast_all(hi, 0)
    }

    pub(crate) fn fw_shr_variable(&mut self, field: Field, amount: Field) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows() as u64;
        let w = field.width();
        let mut va = std::mem::take(&mut self.vals_a);
        let mut vamt = std::mem::take(&mut self.vals_b);
        self.fw_gather(field, &mut va);
        self.fw_gather(amount, &mut vamt);

        let mut cmp_cycles = 0u64;
        let mut cmp_events = 0u64;
        let mut wr_cycles = 0u64;
        let mut wr_events = 0u64;
        for j in 0..amount.width() {
            let s = 1usize << j;
            let g = &vamt[j * bl..(j + 1) * bl];
            let n_j: u64 = g.iter().map(|w| u64::from(w.count_ones())).sum();
            if s >= w {
                // One tag compare, then the whole field clears for the
                // gated rows — free when no row is gated (the
                // controller branches on the tag it just read).
                cmp_cycles += 1;
                cmp_events += rows;
                if n_j > 0 {
                    wr_cycles += w as u64;
                    wr_events += w as u64 * n_j;
                    for i in 0..w {
                        for blk in 0..bl {
                            va[i * bl + blk] &= !g[blk];
                        }
                    }
                }
                continue;
            }
            // Gated copy of each surviving bit (match = source bit +
            // gate), then one tag compare and a gated clear of the
            // vacated high bits (free when the tag is empty).
            let moved = (w - s) as u64;
            cmp_cycles += 2 * moved + 1;
            cmp_events += (4 * moved + 1) * rows;
            wr_cycles += 2 * moved;
            wr_events += moved * n_j;
            if n_j > 0 {
                wr_cycles += s as u64;
                wr_events += s as u64 * n_j;
            }
            for i in 0..w - s {
                for blk in 0..bl {
                    let idx = i * bl + blk;
                    va[idx] = (va[(i + s) * bl + blk] & g[blk]) | (va[idx] & !g[blk]);
                }
            }
            for i in w - s..w {
                for blk in 0..bl {
                    va[i * bl + blk] &= !g[blk];
                }
            }
        }
        self.fw_scatter(field, &va);
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(cmp_cycles, cmp_events);
        st.charge_writes_bulk(wr_cycles, wr_events);
        self.vals_a = va;
        self.vals_b = vamt;
        Ok(())
    }

    /// Splits the strip image into a disjoint (source, accumulator)
    /// pair of plane ranges — the in-place analogue of the op-by-op
    /// engine's gather-into-`vals` staging copies, which the blocked
    /// path exists to eliminate. Ranges are word offsets into the
    /// image; region validation guarantees the fields never overlap.
    fn strip_split(
        sbuf: &mut [u64],
        src: std::ops::Range<usize>,
        acc: std::ops::Range<usize>,
    ) -> (&[u64], &mut [u64]) {
        if src.end <= acc.start {
            let (lo, hi) = sbuf.split_at_mut(acc.start);
            (&lo[src], &mut hi[..acc.end - acc.start])
        } else {
            debug_assert!(acc.end <= src.start);
            let (lo, hi) = sbuf.split_at_mut(src.start);
            (&hi[..src.end - src.start], &mut lo[acc])
        }
    }

    /// Word-parallel check that every live row of `field` holds a
    /// non-zero value — the blocked-region preflight's stand-in for the
    /// op-by-op zero-divisor scan (both are free observer accesses;
    /// neither charges the cost model).
    pub(crate) fn fw_field_all_nonzero(&self, field: Field) -> bool {
        let bl = self.fw_blocks();
        let rows = self.rows();
        (0..bl).all(|blk| {
            let mut acc = 0u64;
            for col in field.start()..field.end() {
                acc |= self.cam().plane_words(col)[blk];
            }
            let live = tail_mask(rows, blk, bl);
            acc & live == live
        })
    }

    /// Region-blocked strip-mined executor: runs one row-parallel
    /// region of a compiled program over the arena in strips of
    /// `region.strip_blocks` 64-row blocks. Per strip, the region's
    /// first-read planes are gathered into the pooled strip image
    /// **once**, every op of the region runs on the cache-resident
    /// strip (plane-exact kernels mirroring the op-by-op `fw_*`
    /// engines, the carry column included), and the written planes
    /// scatter back **once** — eliminating the per-op arena re-sweeps.
    ///
    /// When the planner picks a single full-width strip (the whole
    /// tile fits the strip budget), even those two copies are skipped:
    /// the arena is detached and the region's kernels run on it in
    /// place, since the strip image at `sb == bl` would be a
    /// column-for-column copy of the arena anyway.
    ///
    /// Charges **nothing**: data-dependent tallies (ripple write
    /// events, borrow populations, shift-gate populations) accumulate
    /// in `self.tally_buf` across strips, and the caller's charge walk
    /// (`program::charge_region`) replays the op-by-op cost schedule
    /// from them, keeping `CycleStats` bit-identical to the unblocked
    /// path.
    ///
    /// Within a strip, planes are packed at stride `sb` (the strip's
    /// block count): column `c` lives at `strip_buf[c * sb..(c+1) * sb]`.
    /// Every plane the ops touch is either gathered or written before
    /// it is read (guaranteed by the region's footprint analysis), so
    /// stale strip-buffer contents are never observed.
    pub(crate) fn fw_run_region_strips(
        &mut self,
        ops: &[ApOp],
        region: &BlockRegion,
        regs: &[u64],
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let sblocks = region.strip_blocks.clamp(1, bl);
        let mut tally = std::mem::take(&mut self.tally_buf);
        let mut vb = std::mem::take(&mut self.vals_b);
        let mut vc = std::mem::take(&mut self.vals_c);
        let mut vq = std::mem::take(&mut self.vals_r);
        let mut vp = std::mem::take(&mut self.vals_p);
        tally.clear();
        tally.resize(region.tally_len, 0);
        let result = if sblocks == bl {
            // Single full-width strip: the strip image would be a
            // column-for-column copy of the arena (same stride, same
            // plane layout), so skip the image entirely — detach the
            // arena and run the region's kernels on it in place.
            // Gather and scatter vanish, and an in-region division's
            // remainder scratch writes straight into the detached
            // planes (`rem_direct`).
            let mut arena = self.cam_mut().take_arena();
            let r = self.fw_region_ops(
                ops, region, regs, &mut arena, bl, 0, &mut tally, &mut vb, &mut vc, &mut vq,
                &mut vp, true,
            );
            self.cam_mut().restore_arena(arena);
            r
        } else {
            let cols = self.cols();
            let mut sbuf = std::mem::take(&mut self.strip_buf);
            if sbuf.len() < cols * sblocks {
                sbuf.resize(cols * sblocks, 0);
            }
            let mut r = Ok(());
            let mut s0 = 0usize;
            while s0 < bl {
                let sb = sblocks.min(bl - s0);
                for iv in &region.gather {
                    for col in iv.start()..iv.end() {
                        let src = &self.cam().plane_words(col)[s0..s0 + sb];
                        sbuf[col * sb..(col + 1) * sb].copy_from_slice(src);
                    }
                }
                if let Err(e) = self.fw_region_ops(
                    ops, region, regs, &mut sbuf, sb, s0, &mut tally, &mut vb, &mut vc, &mut vq,
                    &mut vp, false,
                ) {
                    r = Err(e);
                    break;
                }
                for iv in &region.scatter {
                    for col in iv.start()..iv.end() {
                        let src = &sbuf[col * sb..(col + 1) * sb];
                        self.cam_mut().plane_words_mut(col)[s0..s0 + sb].copy_from_slice(src);
                    }
                }
                s0 += sb;
            }
            self.strip_buf = sbuf;
            r
        };
        self.tally_buf = tally;
        self.vals_b = vb;
        self.vals_c = vc;
        self.vals_r = vq;
        self.vals_p = vp;
        result
    }

    /// Runs every op of one region over a single strip of the tile
    /// (`sbuf` planes at stride `sb`, covering arena blocks
    /// `s0..s0 + sb`), accumulating the region's data-dependent
    /// tallies. `rem_direct` marks the arena-direct mode, where `sbuf`
    /// *is* the detached full-width arena: a division's remainder
    /// scratch is then written into `sbuf` itself rather than through
    /// the (temporarily empty) CAM.
    #[allow(clippy::too_many_arguments)]
    fn fw_region_ops(
        &mut self,
        ops: &[ApOp],
        region: &BlockRegion,
        regs: &[u64],
        sbuf: &mut [u64],
        sb: usize,
        s0: usize,
        tally: &mut [u64],
        vb: &mut Vec<u64>,
        vc: &mut Vec<u64>,
        vq: &mut Vec<u64>,
        vp: &mut Vec<u64>,
        rem_direct: bool,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows();
        let cc = self.carry_col();
        vc.clear();
        vc.resize(sb, 0);
        let mut cursor = 0usize;
        for op in ops {
            match *op {
                ApOp::Broadcast { field, value } => {
                    let v = match value {
                        Operand::Const(c) => c,
                        Operand::Reg(r) => regs[r.index()],
                    };
                    for i in 0..field.width() {
                        let col = field.col(i);
                        let plane = &mut sbuf[col * sb..(col + 1) * sb];
                        if v >> i & 1 == 1 {
                            for (blk, w) in plane.iter_mut().enumerate() {
                                *w = tail_mask(rows, s0 + blk, bl);
                            }
                        } else {
                            plane.fill(0);
                        }
                    }
                }
                ApOp::Copy { src, dst } => {
                    let sw = src.width();
                    sbuf.copy_within(src.start() * sb..src.end() * sb, dst.start() * sb);
                    sbuf[(dst.start() + sw) * sb..dst.end() * sb].fill(0);
                }
                ApOp::Mul { a, b, r } => {
                    let (awd, bw) = (a.width(), b.width());
                    sbuf[r.start() * sb..r.end() * sb].fill(0);
                    for j in 0..bw {
                        vc.fill(0);
                        // Stage only the gate plane (one strip word
                        // run); operands stay in the image.
                        let gc = b.col(j);
                        vb.clear();
                        vb.extend_from_slice(&sbuf[gc * sb..(gc + 1) * sb]);
                        if vb.iter().all(|&g| g == 0) {
                            continue;
                        }
                        let (vsrc, vacc) = Self::strip_split(
                            sbuf,
                            a.start() * sb..a.end() * sb,
                            (r.start() + j) * sb..(r.start() + j + awd + 1) * sb,
                        );
                        let ev = fused_ripple::<false>(
                            vsrc,
                            awd,
                            vacc,
                            awd + 1,
                            sb,
                            Some(vb.as_slice()),
                            vc.as_mut_slice(),
                        );
                        tally[cursor + j] += ev;
                    }
                    cursor += bw;
                    sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(vc.as_slice());
                }
                ApOp::MulConst { a, r, bits, width } => {
                    let awd = a.width();
                    sbuf[r.start() * sb..r.end() * sb].fill(0);
                    let mut set = 0usize;
                    for j in 0..width {
                        vc.fill(0);
                        if bits >> j & 1 == 1 {
                            let (vsrc, vacc) = Self::strip_split(
                                sbuf,
                                a.start() * sb..a.end() * sb,
                                (r.start() + j) * sb..(r.start() + j + awd + 1) * sb,
                            );
                            let ev = fused_ripple::<false>(
                                vsrc,
                                awd,
                                vacc,
                                awd + 1,
                                sb,
                                None,
                                vc.as_mut_slice(),
                            );
                            tally[cursor + set] += ev;
                            set += 1;
                        }
                    }
                    cursor += set;
                    sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(vc.as_slice());
                }
                ApOp::AddInto { acc, src } => {
                    let (sw, aw) = (src.width(), acc.width());
                    vc.fill(0);
                    let (vsrc, vacc) = Self::strip_split(
                        sbuf,
                        src.start() * sb..src.end() * sb,
                        acc.start() * sb..acc.end() * sb,
                    );
                    let ev = fused_ripple::<false>(vsrc, sw, vacc, aw, sb, None, vc.as_mut_slice());
                    tally[cursor] += ev;
                    cursor += 1;
                    sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(vc.as_slice());
                }
                ApOp::SubAssertClean { acc, src } => {
                    let (sw, aw) = (src.width(), acc.width());
                    vc.fill(0);
                    let (vsrc, vacc) = Self::strip_split(
                        sbuf,
                        src.start() * sb..src.end() * sb,
                        acc.start() * sb..acc.end() * sb,
                    );
                    let ev = fused_ripple::<true>(vsrc, sw, vacc, aw, sb, None, vc.as_mut_slice());
                    debug_assert!(
                        vc.iter().all(|&w| w == 0),
                        "recorded subtraction must not underflow"
                    );
                    tally[cursor] += ev;
                    cursor += 1;
                    sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(vc.as_slice());
                }
                ApOp::SaturatingSubInto { acc, src } => {
                    let (sw, aw) = (src.width(), acc.width());
                    vc.fill(0);
                    let (vsrc, vacc) = Self::strip_split(
                        sbuf,
                        src.start() * sb..src.end() * sb,
                        acc.start() * sb..acc.end() * sb,
                    );
                    let ev = fused_ripple::<true>(vsrc, sw, vacc, aw, sb, None, vc.as_mut_slice());
                    let n_borrow: u64 = vc.iter().map(|w| u64::from(w.count_ones())).sum();
                    tally[cursor] += ev;
                    tally[cursor + 1] += n_borrow;
                    cursor += 2;
                    // Clamp the underflowed rows back to zero (the
                    // gated clear broadcast of the op-by-op path).
                    for i in 0..aw {
                        let col = acc.col(i);
                        for (blk, w) in sbuf[col * sb..(col + 1) * sb].iter_mut().enumerate() {
                            *w &= !vc[blk];
                        }
                    }
                    sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(vc.as_slice());
                }
                ApOp::ShrConst { field, k } => {
                    let w = field.width();
                    if k == 0 {
                        // Free no-op, as on the direct path.
                    } else if k >= w {
                        sbuf[field.start() * sb..field.end() * sb].fill(0);
                    } else {
                        sbuf.copy_within(
                            (field.start() + k) * sb..field.end() * sb,
                            field.start() * sb,
                        );
                        sbuf[(field.start() + w - k) * sb..field.end() * sb].fill(0);
                    }
                }
                ApOp::ShrVariable { field, amount } => {
                    let w = field.width();
                    let fs = field.start();
                    for j in 0..amount.width() {
                        let s = 1usize << j;
                        let gc = amount.col(j);
                        vb.clear();
                        vb.extend_from_slice(&sbuf[gc * sb..(gc + 1) * sb]);
                        let n_j: u64 = vb.iter().map(|w| u64::from(w.count_ones())).sum();
                        tally[cursor + j] += n_j;
                        if s >= w {
                            if n_j > 0 {
                                for i in 0..w {
                                    for blk in 0..sb {
                                        sbuf[(fs + i) * sb + blk] &= !vb[blk];
                                    }
                                }
                            }
                            continue;
                        }
                        for i in 0..w - s {
                            for blk in 0..sb {
                                let hi = sbuf[(fs + i + s) * sb + blk] & vb[blk];
                                let idx = (fs + i) * sb + blk;
                                sbuf[idx] = hi | (sbuf[idx] & !vb[blk]);
                            }
                        }
                        for i in w - s..w {
                            for blk in 0..sb {
                                sbuf[(fs + i) * sb + blk] &= !vb[blk];
                            }
                        }
                    }
                    cursor += amount.width();
                }
                ApOp::Divide {
                    num,
                    den,
                    quot,
                    frac_bits,
                    ..
                } => {
                    // Region admission guarantees Restoring style,
                    // a non-zero divisor in every row, and scratch
                    // capacity — the alloc cannot fail here, but an
                    // error still unwinds through the pooled-buffer
                    // restore below.
                    let rem = match self.alloc_scratch(den.width() + 1) {
                        Ok(rem) => rem,
                        Err(e) => {
                            return Err(e);
                        }
                    };
                    let slots = 3 * (num.width() + frac_bits);
                    self.fw_strip_divide_channel(
                        sbuf,
                        &mut tally[cursor..cursor + slots],
                        sb,
                        s0,
                        rem,
                        num,
                        den,
                        quot,
                        frac_bits,
                        vb,
                        vq,
                        vp,
                        vc,
                        rem_direct,
                    );
                    self.release_scratch(rem);
                    cursor += slots;
                }
                ApOp::FusedDivide {
                    den,
                    frac_bits,
                    channels,
                    n_channels,
                } => {
                    let rem = match self.alloc_scratch(den.width() + 1) {
                        Ok(rem) => rem,
                        Err(e) => {
                            return Err(e);
                        }
                    };
                    for &(num, quot) in &channels[..n_channels as usize] {
                        let slots = 3 * (num.width() + frac_bits);
                        self.fw_strip_divide_channel(
                            sbuf,
                            &mut tally[cursor..cursor + slots],
                            sb,
                            s0,
                            rem,
                            num,
                            den,
                            quot,
                            frac_bits,
                            vb,
                            vq,
                            vp,
                            vc,
                            rem_direct,
                        );
                        cursor += slots;
                    }
                    self.release_scratch(rem);
                }
                ApOp::Step { .. } => {}
                _ => unreachable!("non-blockable op inside a region"),
            }
        }
        debug_assert_eq!(
            cursor, region.tally_len,
            "strip executor and tally layout out of sync"
        );
        Ok(())
    }

    /// One restoring-division channel of the strip executor: the
    /// strip-local counterpart of [`ApCore::fw_divide_restoring`]'s
    /// plane math, reading the numerator and divisor planes from the
    /// strip image and charging nothing (the per-iteration `ev_sub` /
    /// `n_borrow` / `ev_add` tallies land in `tally[3*it..]` for the
    /// charge walk). Per-block carry independence of [`fused_ripple`]
    /// makes the strip-partitioned tallies sum to exactly the
    /// full-width values; the restore blend and quotient writes are
    /// identities on blocks without a borrow, so strip-local gating is
    /// plane-exact too.
    ///
    /// The quotient and the carry/flag latches land in the strip image
    /// (they are in the region's compile-time scatter list); the
    /// remainder scratch columns are runtime-allocated, so they write
    /// through to the arena directly — or, in the arena-direct mode
    /// (`rem_direct`, where `sbuf` *is* the detached arena), into the
    /// strip image itself. Either way the released scratch state left
    /// behind is identical to the op-by-op divider's.
    #[allow(clippy::too_many_arguments)]
    fn fw_strip_divide_channel(
        &mut self,
        sbuf: &mut [u64],
        tally: &mut [u64],
        sb: usize,
        s0: usize,
        rem: Field,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
        vrem: &mut Vec<u64>,
        vq: &mut Vec<u64>,
        vpre: &mut Vec<u64>,
        borrowed: &mut Vec<u64>,
        rem_direct: bool,
    ) {
        let bl = self.fw_blocks();
        let rows = self.rows();
        let (nw, dw, qw) = (num.width(), den.width(), quot.width());
        let rem_w = dw + 1;
        let (cc, fc) = (self.carry_col(), self.flag_col());
        vrem.clear();
        vrem.resize(rem_w * sb, 0);
        vq.clear();
        vq.resize(qw * sb, 0);
        vpre.clear();
        vpre.resize(rem_w * sb, 0);
        borrowed.clear();
        borrowed.resize(sb, 0);
        // Exact-length slice views: keeps the hot loops free of
        // `Vec` indirection and lets the quotient/blend passes
        // vectorize.
        let vrem = &mut vrem[..rem_w * sb];
        let vq = &mut vq[..qw * sb];
        let vpre = &mut vpre[..rem_w * sb];
        let borrowed = &mut borrowed[..sb];
        // Only the strip covering the arena's final block can carry a
        // partial-row tail; every quotient pass masks its last word
        // with this (a no-op for interior strips).
        let last_tail = tail_mask(rows, s0 + sb - 1, bl);

        for (it, k) in (0..nw + frac_bits).rev().enumerate() {
            // rem <<= 1, then the dividend bit (or a clear below the
            // binary point) — the bit comes from the strip image, which
            // holds any in-region updates to the numerator. The shifted
            // value is built directly into the pre-image buffer: one
            // copy does both the shift and the pre-subtract save the
            // restore blend needs.
            vpre[sb..rem_w * sb].copy_from_slice(&vrem[..(rem_w - 1) * sb]);
            if k >= frac_bits {
                let nc = num.col(k - frac_bits);
                vpre[..sb].copy_from_slice(&sbuf[nc * sb..(nc + 1) * sb]);
            } else {
                vpre[..sb].fill(0);
            }

            // try rem -= den, out of place: the difference lands in
            // `vrem` (every plane overwritten), the pre-image stays put.
            borrowed.fill(0);
            let vd = &sbuf[den.start() * sb..den.end() * sb];
            let ev_sub = fused_sub_into(vd, dw, vpre, vrem, rem_w, sb, borrowed);
            let n_borrow: u64 = borrowed.iter().map(|w| u64::from(w.count_ones())).sum();
            tally[3 * it] += ev_sub;
            tally[3 * it + 1] += n_borrow;

            // Gated restore blend (see `fw_divide_restoring` for the
            // carry-chain argument behind the change-mask event count).
            if n_borrow > 0 {
                let mut ev_add = 0u64;
                for i in 0..rem_w {
                    let rr = &mut vrem[i * sb..(i + 1) * sb];
                    let pp = &vpre[i * sb..(i + 1) * sb];
                    if i < dw {
                        let aa = &sbuf[(den.start() + i) * sb..(den.start() + i + 1) * sb];
                        for (((rref, &pv), &av), &bor) in
                            rr.iter_mut().zip(pp).zip(aa).zip(borrowed.iter())
                        {
                            let post = *rref;
                            let ch = (pv ^ post) & bor;
                            ev_add += u64::from(ch.count_ones())
                                + u64::from((ch & !(av ^ post)).count_ones());
                            *rref = (pv & bor) | (post & !bor);
                        }
                    } else {
                        for ((rref, &pv), &bor) in rr.iter_mut().zip(pp).zip(borrowed.iter()) {
                            let post = *rref;
                            let ch = (pv ^ post) & bor;
                            ev_add +=
                                u64::from(ch.count_ones()) + u64::from((ch & !post).count_ones());
                            *rref = (pv & bor) | (post & !bor);
                        }
                    }
                }
                tally[3 * it + 2] += ev_add;
            }

            // Quotient bit (saturating to all-ones above the field) for
            // the strip's no-borrow rows.
            if k < qw {
                for (q, &bor) in vq[k * sb..(k + 1) * sb].iter_mut().zip(borrowed.iter()) {
                    *q |= !bor;
                }
                vq[(k + 1) * sb - 1] &= last_tail;
            } else {
                for i in 0..qw {
                    for (q, &bor) in vq[i * sb..(i + 1) * sb].iter_mut().zip(borrowed.iter()) {
                        *q |= !bor;
                    }
                    vq[(i + 1) * sb - 1] &= last_tail;
                }
            }
        }

        for i in 0..qw {
            let qc = quot.col(i);
            sbuf[qc * sb..(qc + 1) * sb].copy_from_slice(&vq[i * sb..(i + 1) * sb]);
        }
        if rem_direct {
            let rs = rem.start();
            sbuf[rs * sb..(rs + rem_w) * sb].copy_from_slice(&vrem[..rem_w * sb]);
        } else {
            for i in 0..rem_w {
                self.cam_mut().plane_words_mut(rem.col(i))[s0..s0 + sb]
                    .copy_from_slice(&vrem[i * sb..(i + 1) * sb]);
            }
        }
        sbuf[cc * sb..(cc + 1) * sb].copy_from_slice(borrowed);
        sbuf[fc * sb..(fc + 1) * sb].copy_from_slice(borrowed);
    }

    pub(crate) fn fw_divide_restoring(
        &mut self,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows() as u64;
        let (nw, dw, qw) = (num.width(), den.width(), quot.width());
        let rem_w = dw + 1;
        let (cc, fc) = (self.carry_col(), self.flag_col());
        let rem = self.alloc_scratch(rem_w)?;
        self.broadcast_all(rem, 0)?;
        self.broadcast_all(quot, 0)?;

        let mut vd = std::mem::take(&mut self.vals_a);
        let mut vrem = std::mem::take(&mut self.vals_b);
        let mut vq = std::mem::take(&mut self.vals_r);
        let mut borrowed = std::mem::take(&mut self.vals_c);
        let mut vpre = std::mem::take(&mut self.vals_p);
        self.fw_gather(den, &mut vd);
        vrem.clear();
        vrem.resize(rem_w * bl, 0);
        vq.clear();
        vq.resize(qw * bl, 0);
        vpre.clear();
        vpre.resize(rem_w * bl, 0);
        borrowed.clear();
        borrowed.resize(bl, 0);

        let total_bits = nw + frac_bits;
        let mut cmp_cycles = 0u64;
        let mut cmp_events = 0u64;
        let mut wr_cycles = 0u64;
        let mut wr_events = 0u64;
        // Structural cycle shape of the in-place sub/add over
        // (den -> rem): 4 passes per divisor bit + 2 ripple passes for
        // the extra remainder bit.
        let low = 4 * dw as u64;
        let ripple = 2 * (rem_w - dw) as u64;

        for k in (0..total_bits).rev() {
            // rem <<= 1 (MSB-first bit copies), then the dividend bit —
            // or an ungated clear of rem[0] below the binary point.
            let moved = (rem_w - 1) as u64;
            cmp_cycles += 2 * moved;
            cmp_events += 2 * moved * rows;
            wr_cycles += 2 * moved;
            wr_events += moved * rows;
            vrem.copy_within(0..(rem_w - 1) * bl, bl);
            if k >= frac_bits {
                cmp_cycles += 2;
                cmp_events += 2 * rows;
                wr_cycles += 2;
                wr_events += rows;
                let (head, _) = vrem.split_at_mut(bl);
                head.copy_from_slice(self.cam().plane_words(num.col(k - frac_bits)));
            } else {
                wr_cycles += 1;
                wr_events += rows;
                vrem[..bl].fill(0);
            }

            // try rem -= den (clear_carry + passes + borrow readback)
            borrowed.fill(0);
            vpre.copy_from_slice(&vrem);
            let ev_sub = fused_ripple::<true>(&vd, dw, &mut vrem, rem_w, bl, None, &mut borrowed);
            cmp_cycles += low + ripple + 1;
            cmp_events += rows * (3 * low + 2 * ripple) + rows;
            wr_cycles += 1 + low + ripple;
            wr_events += rows + ev_sub;
            let n_borrow: u64 = borrowed.iter().map(|w| u64::from(w.count_ones())).sum();

            // Latch the borrow into the flag column (ungated clear +
            // tagged set), restore gated on the flag if any row
            // borrowed, then read the no-borrow set back.
            //
            // The restore needs no second carry ripple: for a restored
            // row the add returns the remainder to its pre-subtraction
            // value, so the add's carry-in chain is `den ^ post ^ pre`
            // and its written cells collapse to the change mask
            // `ch = pre ^ post` (accumulator writes) plus
            // `ch & !(den ^ post)` (carry-column writes) — a blend and
            // two popcounts per bit instead of a ripple sweep.
            wr_cycles += 2;
            wr_events += rows + n_borrow;
            if n_borrow > 0 {
                let mut ev_add = 0u64;
                for i in 0..rem_w {
                    let a_bits = if i < dw {
                        &vd[i * bl..(i + 1) * bl]
                    } else {
                        &[][..]
                    };
                    let rr = &mut vrem[i * bl..(i + 1) * bl];
                    for (blk, (rref, (&pv, &bor))) in rr
                        .iter_mut()
                        .zip(vpre[i * bl..(i + 1) * bl].iter().zip(borrowed.iter()))
                        .enumerate()
                    {
                        let post = *rref;
                        let av = a_bits.get(blk).copied().unwrap_or(0);
                        let ch = (pv ^ post) & bor;
                        ev_add += u64::from(ch.count_ones())
                            + u64::from((ch & !(av ^ post)).count_ones());
                        *rref = (pv & bor) | (post & !bor);
                    }
                }
                cmp_cycles += low + ripple;
                cmp_events += rows * (4 * low + 3 * ripple);
                wr_cycles += 1 + low + ripple;
                wr_events += rows + ev_add;
            }
            cmp_cycles += 1;
            cmp_events += rows;

            // Quotient bit for rows that did not borrow; above the
            // quotient field the affected rows saturate instead.
            let n_nob = rows - n_borrow;
            if k < qw {
                wr_cycles += 1;
                wr_events += n_nob;
                for blk in 0..bl {
                    vq[k * bl + blk] |= !borrowed[blk] & tail_mask(rows as usize, blk, bl);
                }
            } else if n_nob > 0 {
                // The quotient saturates to all-ones, so the broadcast
                // sets every quotient bit of the no-borrow rows.
                wr_cycles += qw as u64;
                wr_events += qw as u64 * n_nob;
                for i in 0..qw {
                    for blk in 0..bl {
                        vq[i * bl + blk] |= !borrowed[blk] & tail_mask(rows as usize, blk, bl);
                    }
                }
            }
        }

        self.fw_scatter(rem, &vrem);
        self.fw_scatter(quot, &vq);
        // After the final iteration both the borrow latch and the carry
        // column hold that iteration's borrow (the restoring add's
        // carry-out is 1 for every restored row).
        self.cam_mut()
            .plane_words_mut(fc)
            .copy_from_slice(&borrowed);
        self.cam_mut()
            .plane_words_mut(cc)
            .copy_from_slice(&borrowed);
        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(cmp_cycles, cmp_events);
        st.charge_writes_bulk(wr_cycles, wr_events);
        self.vals_a = vd;
        self.vals_b = vrem;
        self.vals_r = vq;
        self.vals_c = borrowed;
        self.vals_p = vpre;
        self.release_scratch(rem);
        Ok(())
    }

    /// Fused-schedule restoring divider behind `ApOp::FusedDivide`.
    ///
    /// Plane-exact versus running [`ApCore::fw_divide_restoring`] once
    /// per channel back to back (remainder scratch, quotients, and the
    /// final carry/flag columns included), but charged as the schedule
    /// the optimizing controller issues: the per-iteration `rem <<= 1`
    /// bit copies become a *window rename* — the controller re-labels
    /// which columns form the remainder window instead of moving bits —
    /// with one physical canonicalization sweep per channel at the end
    /// to put the remainder back in its home columns. Batched channels
    /// additionally share the single divisor gather and scratch
    /// allocation.
    pub(crate) fn fw_fused_divide(
        &mut self,
        channels: &[(Field, Field)],
        den: Field,
        frac_bits: usize,
    ) -> Result<(), ApError> {
        let bl = self.fw_blocks();
        let rows = self.rows() as u64;
        let dw = den.width();
        let rem_w = dw + 1;
        let (cc, fc) = (self.carry_col(), self.flag_col());
        let rem = self.alloc_scratch(rem_w)?;

        let mut vd = std::mem::take(&mut self.vals_a);
        let mut vrem = std::mem::take(&mut self.vals_b);
        let mut vq = std::mem::take(&mut self.vals_r);
        let mut borrowed = std::mem::take(&mut self.vals_c);
        let mut vpre = std::mem::take(&mut self.vals_p);
        self.fw_gather(den, &mut vd);
        vpre.clear();
        vpre.resize(rem_w * bl, 0);

        let mut cmp_cycles = 0u64;
        let mut cmp_events = 0u64;
        let mut wr_cycles = 0u64;
        let mut wr_events = 0u64;
        let low = 4 * dw as u64;
        let ripple = 2 * (rem_w - dw) as u64;

        let mut result = Ok(());
        'channels: for &(num, quot) in channels {
            let (nw, qw) = (num.width(), quot.width());
            if let Err(e) = self
                .broadcast_all(rem, 0)
                .and_then(|()| self.broadcast_all(quot, 0))
            {
                result = Err(e);
                break 'channels;
            }
            vrem.clear();
            vrem.resize(rem_w * bl, 0);
            vq.clear();
            vq.resize(qw * bl, 0);
            borrowed.clear();
            borrowed.resize(bl, 0);

            for k in (0..(nw + frac_bits)).rev() {
                // rem <<= 1 by window rename: the plane math still
                // moves the bits (column identity is canonicalized once
                // per channel), but the rename itself is free.
                vrem.copy_within(0..(rem_w - 1) * bl, bl);
                if k >= frac_bits {
                    cmp_cycles += 2;
                    cmp_events += 2 * rows;
                    wr_cycles += 2;
                    wr_events += rows;
                    let (head, _) = vrem.split_at_mut(bl);
                    head.copy_from_slice(self.cam().plane_words(num.col(k - frac_bits)));
                } else {
                    wr_cycles += 1;
                    wr_events += rows;
                    vrem[..bl].fill(0);
                }

                // try rem -= den (clear_carry + passes + borrow
                // readback) — identical charge shape to the standalone
                // divider.
                borrowed.fill(0);
                vpre.copy_from_slice(&vrem);
                let ev_sub =
                    fused_ripple::<true>(&vd, dw, &mut vrem, rem_w, bl, None, &mut borrowed);
                cmp_cycles += low + ripple + 1;
                cmp_events += rows * (3 * low + 2 * ripple) + rows;
                wr_cycles += 1 + low + ripple;
                wr_events += rows + ev_sub;
                let n_borrow: u64 = borrowed.iter().map(|w| u64::from(w.count_ones())).sum();

                // Borrow latch + gated restore-blend (see
                // `fw_divide_restoring` for the carry-chain argument).
                wr_cycles += 2;
                wr_events += rows + n_borrow;
                if n_borrow > 0 {
                    let mut ev_add = 0u64;
                    for i in 0..rem_w {
                        let a_bits = if i < dw {
                            &vd[i * bl..(i + 1) * bl]
                        } else {
                            &[][..]
                        };
                        let rr = &mut vrem[i * bl..(i + 1) * bl];
                        for (blk, (rref, (&pv, &bor))) in rr
                            .iter_mut()
                            .zip(vpre[i * bl..(i + 1) * bl].iter().zip(borrowed.iter()))
                            .enumerate()
                        {
                            let post = *rref;
                            let av = a_bits.get(blk).copied().unwrap_or(0);
                            let ch = (pv ^ post) & bor;
                            ev_add += u64::from(ch.count_ones())
                                + u64::from((ch & !(av ^ post)).count_ones());
                            *rref = (pv & bor) | (post & !bor);
                        }
                    }
                    cmp_cycles += low + ripple;
                    cmp_events += rows * (4 * low + 3 * ripple);
                    wr_cycles += 1 + low + ripple;
                    wr_events += rows + ev_add;
                }
                cmp_cycles += 1;
                cmp_events += rows;

                let n_nob = rows - n_borrow;
                if k < qw {
                    wr_cycles += 1;
                    wr_events += n_nob;
                    for blk in 0..bl {
                        vq[k * bl + blk] |= !borrowed[blk] & tail_mask(rows as usize, blk, bl);
                    }
                } else if n_nob > 0 {
                    wr_cycles += qw as u64;
                    wr_events += qw as u64 * n_nob;
                    for i in 0..qw {
                        for blk in 0..bl {
                            vq[i * bl + blk] |= !borrowed[blk] & tail_mask(rows as usize, blk, bl);
                        }
                    }
                }
            }

            // Canonicalize the renamed remainder window back into its
            // home columns: one gated copy pass per remainder bit.
            cmp_cycles += 2 * rem_w as u64;
            cmp_events += 2 * rem_w as u64 * rows;
            wr_cycles += 2 * rem_w as u64;
            wr_events += rem_w as u64 * rows;

            self.fw_scatter(rem, &vrem);
            self.fw_scatter(quot, &vq);
            // The final channel leaves its last iteration's borrow in
            // both the flag latch and the carry column — exactly the
            // state back-to-back standalone divides leave behind.
            self.cam_mut()
                .plane_words_mut(fc)
                .copy_from_slice(&borrowed);
            self.cam_mut()
                .plane_words_mut(cc)
                .copy_from_slice(&borrowed);
        }

        let st = self.cam_mut().stats_mut();
        st.charge_compares_bulk(cmp_cycles, cmp_events);
        st.charge_writes_bulk(wr_cycles, wr_events);
        self.vals_a = vd;
        self.vals_b = vrem;
        self.vals_r = vq;
        self.vals_c = borrowed;
        self.vals_p = vpre;
        self.release_scratch(rem);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs 64 row values into bit-major plane words (one block).
    fn pack(values: &[u64; 64], width: usize) -> Vec<u64> {
        let mut out = vec![0u64; width];
        for (r, &v) in values.iter().enumerate() {
            for (i, w) in out.iter_mut().enumerate() {
                *w |= (v >> i & 1) << r;
            }
        }
        out
    }

    fn unpack(planes: &[u64], width: usize) -> [u64; 64] {
        let mut out = [0u64; 64];
        for (r, v) in out.iter_mut().enumerate() {
            for (i, &p) in planes.iter().enumerate().take(width) {
                *v |= (p >> r & 1) << i;
            }
        }
        out
    }

    /// Bit-serial reference of the in-place add/sub LUT pass sequence
    /// for one row, counting written cells.
    fn reference(sub: bool, a: u64, b: u64, sw: usize, aw: usize) -> (u64, u64, bool) {
        let mut b = b;
        let mut c = false;
        let mut ev = 0u64;
        for i in 0..aw {
            let ab = i < sw && a >> i & 1 == 1;
            let bb = b >> i & 1 == 1;
            let (diff, c2) = if sub {
                let d = i8::from(bb) - i8::from(ab) - i8::from(c);
                (d.rem_euclid(2) == 1, d < 0)
            } else {
                let s = u8::from(bb) + u8::from(ab) + u8::from(c);
                (s & 1 == 1, s >= 2)
            };
            if diff != bb {
                ev += 1;
            }
            if c2 != c {
                ev += 1;
            }
            if diff != bb || c2 != c {
                // exactly the changing rows are written by some pass
            }
            if diff {
                b |= 1 << i;
            } else {
                b &= !(1 << i);
            }
            c = c2;
        }
        (b & ((1u64 << aw) - 1), ev, c)
    }

    #[test]
    fn fused_matches_lut_reference_exhaustively() {
        // All (a, b) pairs over 5-bit source / 6-bit accumulator, in
        // batches of 64 rows per block.
        for sub in [false, true] {
            let mut cases = Vec::new();
            for a in 0..32u64 {
                for b in 0..64u64 {
                    cases.push((a, b));
                }
            }
            for chunk in cases.chunks(64) {
                let mut av = [0u64; 64];
                let mut bv = [0u64; 64];
                for (r, &(a, b)) in chunk.iter().enumerate() {
                    av[r] = a;
                    bv[r] = b;
                }
                let pa = pack(&av, 5);
                let mut pb = pack(&bv, 6);
                let mut carry = vec![0u64; 1];
                let ev = if sub {
                    fused_ripple::<true>(&pa, 5, &mut pb, 6, 1, None, &mut carry)
                } else {
                    fused_ripple::<false>(&pa, 5, &mut pb, 6, 1, None, &mut carry)
                };
                let got = unpack(&pb, 6);
                let mut want_ev = 0u64;
                for (r, &(a, b)) in chunk.iter().enumerate() {
                    let (want_b, e, want_c) = reference(sub, a, b, 5, 6);
                    assert_eq!(got[r], want_b, "sub={sub} a={a} b={b}");
                    assert_eq!(carry[0] >> r & 1 == 1, want_c, "sub={sub} a={a} b={b}");
                    want_ev += e;
                }
                assert_eq!(ev, want_ev, "sub={sub} events");
            }
        }
    }

    #[test]
    fn fused_gate_masks_rows_exactly() {
        let mut av = [0u64; 64];
        let mut bv = [0u64; 64];
        for r in 0..64 {
            av[r] = (r as u64 * 7) % 32;
            bv[r] = (r as u64 * 13 + 3) % 64;
        }
        let gate = 0xAAAA_5555_F0F0_0F0Fu64;
        let pa = pack(&av, 5);
        let mut pb = pack(&bv, 6);
        let mut carry = vec![0u64; 1];
        let ev = fused_ripple::<false>(&pa, 5, &mut pb, 6, 1, Some(&[gate]), &mut carry);
        let got = unpack(&pb, 6);
        let mut want_ev = 0;
        for r in 0..64 {
            if gate >> r & 1 == 1 {
                let (want_b, e, want_c) = reference(false, av[r], bv[r], 5, 6);
                assert_eq!(got[r], want_b, "gated row {r}");
                assert_eq!(carry[0] >> r & 1 == 1, want_c);
                want_ev += e;
            } else {
                assert_eq!(got[r], bv[r], "ungated row {r} must not change");
                assert_eq!(carry[0] >> r & 1, 0);
            }
        }
        assert_eq!(ev, want_ev);
    }
}
