//! Multi-tile batch execution.
//!
//! A deployed SoftmAP accelerator runs many independent AP tiles — one
//! softmax vector (or segment) per tile — in parallel. This module is
//! the host-side analogue: it fans a batch of independent jobs out
//! across OS threads, one simulated tile per job, and aggregates the
//! per-tile statistics into a [`BatchStats`] view (total work for
//! energy, slowest tile for the concurrent-hardware makespan).
//!
//! The thread fan-out itself is the dependency-free
//! [`softmap_par`] scheduler, re-exported here so tile-level callers
//! have one import.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::batch;
//!
//! let squares = batch::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub use softmap_par::{
    parallel_map, parallel_map_with, tile_parallelism, try_parallel_map, try_parallel_map_with,
};

use crate::CycleStats;

/// Aggregate view of a batch of per-tile statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tiles in the batch.
    pub tiles: u64,
    /// Sum of all tiles' counters (total work / energy proxy).
    pub total: CycleStats,
    /// The slowest tile's cycle count — the batch's wall-clock makespan
    /// when tiles run concurrently in hardware.
    pub makespan_cycles: u64,
}

impl BatchStats {
    /// Aggregates per-tile statistics.
    #[must_use]
    pub fn aggregate(per_tile: &[CycleStats]) -> Self {
        let mut total = CycleStats::default();
        let mut makespan = 0;
        for s in per_tile {
            total.accumulate(s);
            makespan = makespan.max(s.cycles());
        }
        Self {
            tiles: per_tile.len() as u64,
            total,
            makespan_cycles: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_aggregate() {
        let mut a = CycleStats::default();
        a.charge_compare(10, 2);
        let mut b = CycleStats::default();
        b.charge_compare(10, 2);
        b.charge_write(5, 1);
        let agg = BatchStats::aggregate(&[a, b]);
        assert_eq!(agg.tiles, 2);
        assert_eq!(agg.total.cycles(), 3);
        assert_eq!(agg.makespan_cycles, 2);
    }

    #[test]
    fn reexported_parallel_map_runs_tiles() {
        let out = parallel_map(&[1u64, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert!(tile_parallelism(3) >= 1);
    }
}
