//! Multi-tile batch execution.
//!
//! A deployed SoftmAP accelerator runs many independent AP tiles — one
//! softmax vector (or segment) per tile — in parallel. This module is
//! the host-side analogue: it fans a batch of independent jobs out
//! across OS threads, one simulated tile per job, and aggregates the
//! per-tile statistics into a [`BatchStats`] view (total work for
//! energy, slowest tile for the concurrent-hardware makespan).
//!
//! The thread fan-out itself is the dependency-free
//! [`softmap_par`] scheduler, re-exported here so tile-level callers
//! have one import.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::batch;
//!
//! let squares = batch::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub use softmap_par::{
    fan_out_with, parallel_map, parallel_map_with, tile_parallelism, try_parallel_map,
    try_parallel_map_with,
};

use crate::device;
use crate::CycleStats;

/// Aggregate view of a batch of per-tile statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Tiles in the batch.
    pub tiles: u64,
    /// Sum of all tiles' counters (total work / energy proxy).
    pub total: CycleStats,
    /// The batch's wall-clock makespan: the slowest tile under
    /// [`BatchStats::aggregate`]'s unbounded grid, or the wave-scheduled
    /// critical path under [`BatchStats::aggregate_on`]'s finite grid.
    pub makespan_cycles: u64,
    /// Sequential waves the batch needs on the grid (1 when every job
    /// had its own tile).
    pub waves: u64,
}

impl BatchStats {
    /// Aggregates per-tile statistics assuming one concurrent hardware
    /// tile per job (the unbounded-grid view).
    #[must_use]
    pub fn aggregate(per_tile: &[CycleStats]) -> Self {
        let mut total = CycleStats::default();
        let mut makespan = 0;
        for s in per_tile {
            total.accumulate(s);
            makespan = makespan.max(s.cycles());
        }
        Self {
            tiles: per_tile.len() as u64,
            total,
            makespan_cycles: makespan,
            waves: u64::from(!per_tile.is_empty()),
        }
    }

    /// Aggregates per-tile statistics on a **finite** grid of
    /// `grid_tiles` concurrent tiles: jobs beyond the grid execute in
    /// waves, and the makespan is the greedy list-scheduling critical
    /// path ([`device::wave_makespan`]).
    #[must_use]
    pub fn aggregate_on(per_tile: &[CycleStats], grid_tiles: usize) -> Self {
        let mut agg = Self::aggregate(per_tile);
        let cycles: Vec<u64> = per_tile.iter().map(CycleStats::cycles).collect();
        let mut loads = Vec::new();
        agg.makespan_cycles = device::wave_makespan(&cycles, grid_tiles, &mut loads);
        agg.waves = per_tile.len().div_ceil(grid_tiles.max(1)) as u64;
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_aggregate() {
        let mut a = CycleStats::default();
        a.charge_compare(10, 2);
        let mut b = CycleStats::default();
        b.charge_compare(10, 2);
        b.charge_write(5, 1);
        let agg = BatchStats::aggregate(&[a, b]);
        assert_eq!(agg.tiles, 2);
        assert_eq!(agg.total.cycles(), 3);
        assert_eq!(agg.makespan_cycles, 2);
        assert_eq!(agg.waves, 1);
    }

    #[test]
    fn finite_grid_schedules_waves() {
        let mut s = CycleStats::default();
        s.charge_compare(8, 1);
        let jobs = [s; 5];
        // Unbounded grid: all five run at once.
        assert_eq!(BatchStats::aggregate(&jobs).makespan_cycles, 1);
        // Two tiles: ceil(5/2) = 3 waves, greedy makespan 3 cycles.
        let g = BatchStats::aggregate_on(&jobs, 2);
        assert_eq!(g.waves, 3);
        assert_eq!(g.makespan_cycles, 3);
        assert_eq!(g.total.cycles(), 5);
        // A grid at least as large as the batch matches the unbounded view.
        assert_eq!(
            BatchStats::aggregate_on(&jobs, 8).makespan_cycles,
            BatchStats::aggregate(&jobs).makespan_cycles
        );
    }

    #[test]
    fn reexported_parallel_map_runs_tiles() {
        let out = parallel_map(&[1u64, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert!(tile_parallelism(3) >= 1);
    }
}
