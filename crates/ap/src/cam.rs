use crate::{ApError, CycleStats, Field, RowSet};

/// The content-addressable memory at the heart of the AP.
///
/// Data is stored column-major: one [`RowSet`] bit-plane per column.
/// The two primitive cycles of the machine are:
///
/// * [`CamArray::compare`] — present a key on a set of masked columns;
///   every row matching on *all* masked columns is tagged (this is the
///   key/mask/tag search of Fig. 3),
/// * [`CamArray::write`] — drive key bits into the masked columns of the
///   tagged rows.
///
/// Every cycle is charged to an internal [`CycleStats`]. Host-side bulk
/// I/O ([`CamArray::load_field`] / [`CamArray::read_field`]) models the
/// paper's "Write x" dataflow steps: one write cycle per bit column.
///
/// # Examples
///
/// ```
/// use softmap_ap::{CamArray, Field};
///
/// let mut cam = CamArray::new(8, 4).unwrap();
/// let f = Field::new(0, 4);
/// cam.load_field(f, &[3, 7, 3, 0]).unwrap();
/// // search for the value 3 on all four columns
/// let tag = cam.compare(&[(0, true), (1, true), (2, false), (3, false)]);
/// assert_eq!(tag.iter_set().collect::<Vec<_>>(), vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct CamArray {
    rows: usize,
    cols: usize,
    planes: Vec<RowSet>,
    stats: CycleStats,
}

impl CamArray {
    /// Creates a zeroed CAM of `rows × cols` cells.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, ApError> {
        if rows == 0 || cols == 0 {
            return Err(ApError::BadConfig("CAM dimensions must be non-zero"));
        }
        Ok(Self {
            rows,
            cols,
            planes: vec![RowSet::new(rows); cols],
            stats: CycleStats::default(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Accumulated cycle statistics.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Resets the cycle statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = CycleStats::default();
    }

    fn check_col(&self, col: usize) -> usize {
        assert!(col < self.cols, "column {col} out of range {}", self.cols);
        col
    }

    /// One compare cycle: tags every row whose cells equal the key bit on
    /// each masked `(column, key)` pair.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    #[must_use]
    pub fn compare(&mut self, masked: &[(usize, bool)]) -> RowSet {
        let mut tag = RowSet::all(self.rows);
        for &(col, key) in masked {
            self.check_col(col);
            tag.and_with_polarity(&self.planes[col], key);
        }
        self.stats.charge_compare(self.rows as u64, masked.len() as u64);
        tag
    }

    /// One write cycle: drives each `(column, key)` bit into all rows of
    /// `tag`.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn write(&mut self, tag: &RowSet, masked: &[(usize, bool)]) {
        let tagged = tag.count() as u64;
        for &(col, key) in masked {
            self.check_col(col);
            let plane = &mut self.planes[col];
            for (p, t) in plane.words_mut().iter_mut().zip(tag.words()) {
                if key {
                    *p |= t;
                } else {
                    *p &= !t;
                }
            }
        }
        self.stats.charge_write(tagged, masked.len() as u64);
    }

    /// Reads one column plane without charging cycles (observer access
    /// for the simulator itself).
    #[must_use]
    pub fn plane(&self, col: usize) -> &RowSet {
        self.check_col(col);
        &self.planes[col]
    }

    /// Host-side bulk load of one word per row into `field`: charged as
    /// one write cycle per bit column (the paper's "Write x" steps cost
    /// `width` cycles).
    ///
    /// # Errors
    ///
    /// * [`ApError::RowCapacity`] if more words than rows are supplied.
    /// * [`ApError::ColumnCapacity`] if the field exceeds the array.
    /// * [`ApError::WidthOverflow`] if a word does not fit the field.
    pub fn load_field(&mut self, field: Field, words: &[u64]) -> Result<(), ApError> {
        if field.end() > self.cols {
            return Err(ApError::ColumnCapacity {
                needed: field.end(),
                available: self.cols,
            });
        }
        if words.len() > self.rows {
            return Err(ApError::RowCapacity {
                needed: words.len(),
                available: self.rows,
            });
        }
        for &w in words {
            if w > field.max_value() {
                return Err(ApError::WidthOverflow {
                    value: w,
                    width: field.width(),
                });
            }
        }
        for bit in 0..field.width() {
            let plane = &mut self.planes[field.col(bit)];
            for (row, &w) in words.iter().enumerate() {
                plane.set(row, w >> bit & 1 == 1);
            }
            // Rows beyond the supplied words keep their contents; the
            // write drives exactly `words.len()` rows.
            self.stats.charge_write(words.len() as u64, 1);
        }
        Ok(())
    }

    /// Host-side broadcast of one constant into `field` for the rows of
    /// `tag`: one write cycle per bit column.
    ///
    /// # Errors
    ///
    /// * [`ApError::ColumnCapacity`] if the field exceeds the array.
    /// * [`ApError::WidthOverflow`] if the value does not fit the field.
    pub fn broadcast_field(
        &mut self,
        field: Field,
        value: u64,
        tag: &RowSet,
    ) -> Result<(), ApError> {
        if field.end() > self.cols {
            return Err(ApError::ColumnCapacity {
                needed: field.end(),
                available: self.cols,
            });
        }
        if value > field.max_value() {
            return Err(ApError::WidthOverflow {
                value,
                width: field.width(),
            });
        }
        for bit in 0..field.width() {
            self.write(tag, &[(field.col(bit), value >> bit & 1 == 1)]);
        }
        Ok(())
    }

    /// Reads back one word per row from `field` (free: models the host
    /// observing the array after execution; result read-out costs are
    /// accounted by the deployment model, not per cell).
    #[must_use]
    pub fn read_field(&self, field: Field) -> Vec<u64> {
        assert!(
            field.end() <= self.cols,
            "field {field} exceeds {} columns",
            self.cols
        );
        let mut out = vec![0u64; self.rows];
        for bit in 0..field.width() {
            let plane = &self.planes[field.col(bit)];
            for (row, w) in out.iter_mut().enumerate() {
                if plane.get(row) {
                    *w |= 1 << bit;
                }
            }
        }
        out
    }

    /// Reads one word from one row (free observer access).
    #[must_use]
    pub fn read_word(&self, row: usize, field: Field) -> u64 {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let mut w = 0;
        for bit in 0..field.width() {
            if self.planes[field.col(bit)].get(row) {
                w |= 1 << bit;
            }
        }
        w
    }

    /// Charges 2D (row-parallel) cycles; see [`CycleStats::charge_2d`].
    pub fn charge_2d(&mut self, cycles: u64, cell_events: u64) {
        self.stats.charge_2d(cycles, cell_events);
    }

    /// Directly sets one word in one row without charging cycles.
    ///
    /// This is the simulator's back-door for modelling 2D row-parallel
    /// arithmetic whose cost is charged analytically via
    /// [`CamArray::charge_2d`]; it is not part of the machine's ISA.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range or the value does not fit.
    pub fn poke_word(&mut self, row: usize, field: Field, value: u64) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert!(
            value <= field.max_value(),
            "value {value} does not fit {field}"
        );
        for bit in 0..field.width() {
            self.planes[field.col(bit)].set(row, value >> bit & 1 == 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_read_roundtrip() {
        let mut cam = CamArray::new(5, 10).unwrap();
        let f = Field::new(2, 6);
        let data = [0u64, 63, 21, 42, 7];
        cam.load_field(f, &data).unwrap();
        assert_eq!(cam.read_field(f), data);
        assert_eq!(cam.read_word(3, f), 42);
        // width cycles charged
        assert_eq!(cam.stats().write_cycles(), 6);
    }

    #[test]
    fn compare_matches_on_all_masked_columns() {
        let mut cam = CamArray::new(4, 4).unwrap();
        let f = Field::new(0, 4);
        cam.load_field(f, &[0b1010, 0b1000, 0b0010, 0b1010]).unwrap();
        let tag = cam.compare(&[(1, true), (3, true)]);
        assert_eq!(tag.iter_set().collect::<Vec<_>>(), vec![0, 3]);
        let tag = cam.compare(&[(0, false)]);
        assert_eq!(tag.count(), 4);
    }

    #[test]
    fn write_only_touches_tagged_rows() {
        let mut cam = CamArray::new(4, 2).unwrap();
        let mut tag = RowSet::new(4);
        tag.set(1, true);
        tag.set(2, true);
        cam.write(&tag, &[(0, true), (1, false)]);
        let f = Field::new(0, 2);
        assert_eq!(cam.read_field(f), vec![0, 1, 1, 0]);
    }

    #[test]
    fn broadcast_constant() {
        let mut cam = CamArray::new(3, 8).unwrap();
        let f = Field::new(0, 8);
        cam.broadcast_field(f, 0xA5, &RowSet::all(3)).unwrap();
        assert_eq!(cam.read_field(f), vec![0xA5; 3]);
    }

    #[test]
    fn capacity_errors() {
        let mut cam = CamArray::new(2, 4).unwrap();
        let wide = Field::new(0, 5);
        assert!(matches!(
            cam.load_field(wide, &[0, 0]),
            Err(ApError::ColumnCapacity { .. })
        ));
        let f = Field::new(0, 4);
        assert!(matches!(
            cam.load_field(f, &[0, 0, 0]),
            Err(ApError::RowCapacity { .. })
        ));
        assert!(matches!(
            cam.load_field(f, &[16, 0]),
            Err(ApError::WidthOverflow { .. })
        ));
        assert!(matches!(
            cam.broadcast_field(f, 16, &RowSet::all(2)),
            Err(ApError::WidthOverflow { .. })
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CamArray::new(0, 4).is_err());
        assert!(CamArray::new(4, 0).is_err());
    }

    #[test]
    fn stats_track_cell_events() {
        let mut cam = CamArray::new(100, 8).unwrap();
        let _ = cam.compare(&[(0, true), (1, false)]);
        assert_eq!(cam.stats().compare_cell_events(), 200);
        let mut tag = RowSet::new(100);
        for i in 0..10 {
            tag.set(i, true);
        }
        cam.write(&tag, &[(2, true)]);
        assert_eq!(cam.stats().write_cell_events(), 10);
        cam.reset_stats();
        assert_eq!(cam.stats().cycles(), 0);
    }
}
