use crate::{ApError, CycleStats, Field, RowSet};

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3, widened):
/// afterwards, bit `j` of `a[i]` is what bit `i` of `a[j]` was.
///
/// This is the bit-plane ↔ row-word converter behind the word-parallel
/// host I/O paths: 64 rows move per inner operation instead of one
/// cell.
pub(crate) fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] >> j ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// The content-addressable memory at the heart of the AP.
///
/// Data is stored column-major in one contiguous `u64` arena: each
/// column's bit-plane occupies `blocks = ceil(rows / 64)` consecutive
/// words at a fixed stride, so column `c`'s plane is
/// `arena[c * blocks .. (c + 1) * blocks]` and a [`Field`]'s planes are
/// one contiguous arena range. Flat allocation keeps column-hopping
/// sweeps (LUT passes, the `FastWord` gather/scatter) in cache and lets
/// a tile be cleared for reuse with a single `fill(0)` instead of a
/// reallocation. Tail bits beyond `rows` in each plane's last word are
/// kept zero arena-wide (the same invariant as [`RowSet`]).
///
/// The two primitive cycles of the machine are:
///
/// * [`CamArray::compare`] — present a key on a set of masked columns;
///   every row matching on *all* masked columns is tagged (this is the
///   key/mask/tag search of Fig. 3),
/// * [`CamArray::write`] — drive key bits into the masked columns of the
///   tagged rows.
///
/// Every cycle is charged to an internal [`CycleStats`]. Host-side bulk
/// I/O ([`CamArray::load_field`] / [`CamArray::read_field`]) models the
/// paper's "Write x" dataflow steps: one write cycle per bit column.
/// Degenerate host I/O that moves no data — an empty load, a broadcast
/// to an empty tag — charges **zero** cycles: the controller never
/// issues cycles for work it can statically see is empty.
///
/// # Examples
///
/// ```
/// use softmap_ap::{CamArray, Field};
///
/// let mut cam = CamArray::new(8, 4).unwrap();
/// let f = Field::new(0, 4);
/// cam.load_field(f, &[3, 7, 3, 0]).unwrap();
/// // search for the value 3 on all four columns
/// let tag = cam.compare(&[(0, true), (1, true), (2, false), (3, false)]);
/// assert_eq!(tag.iter_set().collect::<Vec<_>>(), vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct CamArray {
    rows: usize,
    cols: usize,
    /// Words per column plane (`rows.div_ceil(64)`), the arena stride.
    blocks: usize,
    /// Column-major plane storage: `cols * blocks` words.
    arena: Vec<u64>,
    stats: CycleStats,
}

impl CamArray {
    /// Creates a zeroed CAM of `rows × cols` cells.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, ApError> {
        if rows == 0 || cols == 0 {
            return Err(ApError::BadConfig("CAM dimensions must be non-zero"));
        }
        let blocks = rows.div_ceil(64);
        Ok(Self {
            rows,
            cols,
            blocks,
            arena: vec![0; cols * blocks],
            stats: CycleStats::default(),
        })
    }

    /// Re-shapes this CAM to `rows × cols`, zeroing all cells and the
    /// cycle statistics. The arena buffer's capacity is kept, so
    /// reusing a tile at the same (or any previously seen) geometry
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] if either dimension is zero.
    pub(crate) fn reshape(&mut self, rows: usize, cols: usize) -> Result<(), ApError> {
        if rows == 0 || cols == 0 {
            return Err(ApError::BadConfig("CAM dimensions must be non-zero"));
        }
        self.rows = rows;
        self.cols = cols;
        self.blocks = rows.div_ceil(64);
        self.arena.clear();
        self.arena.resize(cols * self.blocks, 0);
        self.stats = CycleStats::default();
        Ok(())
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Accumulated cycle statistics.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Resets the cycle statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = CycleStats::default();
    }

    fn check_col(&self, col: usize) -> usize {
        assert!(col < self.cols, "column {col} out of range {}", self.cols);
        col
    }

    /// One compare cycle: tags every row whose cells equal the key bit on
    /// each masked `(column, key)` pair.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    #[must_use]
    pub fn compare(&mut self, masked: &[(usize, bool)]) -> RowSet {
        let mut tag = RowSet::new(self.rows);
        self.compare_into(masked, &mut tag);
        tag
    }

    /// Allocation-free [`CamArray::compare`]: writes the tag into `out`
    /// (which must range over this array's rows).
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range or `out` has the wrong
    /// length.
    pub fn compare_into(&mut self, masked: &[(usize, bool)], out: &mut RowSet) {
        assert_eq!(out.len(), self.rows, "tag length mismatch");
        out.fill(true);
        for &(col, key) in masked {
            self.check_col(col);
            out.and_with_plane(&self.arena[col * self.blocks..(col + 1) * self.blocks], key);
        }
        self.stats
            .charge_compare(self.rows as u64, masked.len() as u64);
    }

    /// One write cycle: drives each `(column, key)` bit into all rows of
    /// `tag`.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn write(&mut self, tag: &RowSet, masked: &[(usize, bool)]) {
        let tagged = tag.count() as u64;
        for &(col, key) in masked {
            self.check_col(col);
            let plane = &mut self.arena[col * self.blocks..(col + 1) * self.blocks];
            for (p, t) in plane.iter_mut().zip(tag.words()) {
                if key {
                    *p |= t;
                } else {
                    *p &= !t;
                }
            }
        }
        self.stats.charge_write(tagged, masked.len() as u64);
    }

    /// Reads one column plane's packed row-words (64 rows per word)
    /// without charging cycles (observer access for the simulator
    /// itself and for state-equality assertions in tests).
    #[must_use]
    pub fn plane(&self, col: usize) -> &[u64] {
        self.check_col(col);
        &self.arena[col * self.blocks..(col + 1) * self.blocks]
    }

    /// Host-side bulk load of one word per row into `field`: charged as
    /// one write cycle per bit column (the paper's "Write x" steps cost
    /// `width` cycles). An empty `words` slice moves no data and
    /// charges zero cycles.
    ///
    /// # Errors
    ///
    /// * [`ApError::RowCapacity`] if more words than rows are supplied.
    /// * [`ApError::ColumnCapacity`] if the field exceeds the array.
    /// * [`ApError::WidthOverflow`] if a word does not fit the field.
    pub fn load_field(&mut self, field: Field, words: &[u64]) -> Result<(), ApError> {
        if field.end() > self.cols {
            return Err(ApError::ColumnCapacity {
                needed: field.end(),
                available: self.cols,
            });
        }
        if words.len() > self.rows {
            return Err(ApError::RowCapacity {
                needed: words.len(),
                available: self.rows,
            });
        }
        for &w in words {
            if w > field.max_value() {
                return Err(ApError::WidthOverflow {
                    value: w,
                    width: field.width(),
                });
            }
        }
        if words.is_empty() {
            // Nothing to drive: the controller issues no cycles.
            return Ok(());
        }
        // Word-parallel store: transpose each 64-row block of input
        // words into plane words. Rows beyond the supplied words keep
        // their contents (the valid-mask blend); each bit column is
        // charged as one write cycle driving exactly `words.len()`
        // rows.
        let w = field.width();
        let mut buf = [0u64; 64];
        for blk in 0..words.len().div_ceil(64) {
            let base = blk * 64;
            let in_block = (words.len() - base).min(64);
            buf.fill(0);
            buf[..in_block].copy_from_slice(&words[base..base + in_block]);
            transpose64(&mut buf);
            let valid = if in_block == 64 {
                u64::MAX
            } else {
                (1u64 << in_block) - 1
            };
            for (bit, &bv) in buf.iter().enumerate().take(w) {
                let pw = &mut self.arena[field.col(bit) * self.blocks + blk];
                *pw = (*pw & !valid) | (bv & valid);
            }
        }
        for _ in 0..w {
            self.stats.charge_write(words.len() as u64, 1);
        }
        Ok(())
    }

    /// Host-side broadcast of one constant into `field` for the rows of
    /// `tag`: one write cycle per bit column. An empty tag drives no
    /// rows and charges zero cycles (the controller branches on the
    /// tag's emptiness, exactly as it does after a saturating
    /// subtract).
    ///
    /// # Errors
    ///
    /// * [`ApError::ColumnCapacity`] if the field exceeds the array.
    /// * [`ApError::WidthOverflow`] if the value does not fit the field.
    pub fn broadcast_field(
        &mut self,
        field: Field,
        value: u64,
        tag: &RowSet,
    ) -> Result<(), ApError> {
        if field.end() > self.cols {
            return Err(ApError::ColumnCapacity {
                needed: field.end(),
                available: self.cols,
            });
        }
        if value > field.max_value() {
            return Err(ApError::WidthOverflow {
                value,
                width: field.width(),
            });
        }
        if tag.is_none_set() {
            return Ok(());
        }
        for bit in 0..field.width() {
            self.write(tag, &[(field.col(bit), value >> bit & 1 == 1)]);
        }
        Ok(())
    }

    /// Reads back one word per row from `field` (free: models the host
    /// observing the array after execution; result read-out costs are
    /// accounted by the deployment model, not per cell).
    #[must_use]
    pub fn read_field(&self, field: Field) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.rows);
        self.read_field_append(field, &mut out);
        out
    }

    /// Appends `field`'s words (one per row) to `out` without
    /// allocating beyond `out`'s capacity — the pooled-tile read-out
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the field exceeds the array's columns.
    pub fn read_field_append(&self, field: Field, out: &mut Vec<u64>) {
        assert!(
            field.end() <= self.cols,
            "field {field} exceeds {} columns",
            self.cols
        );
        let base_len = out.len();
        out.resize(base_len + self.rows, 0);
        let dst = &mut out[base_len..];
        let w = field.width();
        let mut buf = [0u64; 64];
        for blk in 0..self.blocks {
            buf.fill(0);
            for (bit, slot) in buf.iter_mut().enumerate().take(w) {
                *slot = self.arena[field.col(bit) * self.blocks + blk];
            }
            transpose64(&mut buf);
            let base = blk * 64;
            let in_block = (self.rows - base).min(64);
            dst[base..base + in_block].copy_from_slice(&buf[..in_block]);
        }
    }

    /// Reads one word from one row (free observer access).
    #[must_use]
    pub fn read_word(&self, row: usize, field: Field) -> u64 {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        let mut w = 0;
        for bit in 0..field.width() {
            if self.arena[field.col(bit) * self.blocks + row / 64] >> (row % 64) & 1 == 1 {
                w |= 1 << bit;
            }
        }
        w
    }

    /// Charges 2D (row-parallel) cycles; see [`CycleStats::charge_2d`].
    pub fn charge_2d(&mut self, cycles: u64, cell_events: u64) {
        self.stats.charge_2d(cycles, cell_events);
    }

    /// Mutable access to the cycle counters for the `FastWord` backend,
    /// which charges analytically instead of per compare/write call.
    pub(crate) fn stats_mut(&mut self) -> &mut CycleStats {
        &mut self.stats
    }

    /// One column's packed row-words (64 rows per word), for the
    /// word-parallel `FastWord` engine.
    pub(crate) fn plane_words(&self, col: usize) -> &[u64] {
        self.check_col(col);
        &self.arena[col * self.blocks..(col + 1) * self.blocks]
    }

    /// Mutable packed row-words of one column. Callers must keep the
    /// tail bits beyond the row count zero (the arena-wide invariant).
    pub(crate) fn plane_words_mut(&mut self, col: usize) -> &mut [u64] {
        self.check_col(col);
        &mut self.arena[col * self.blocks..(col + 1) * self.blocks]
    }

    /// All of a field's planes as one contiguous arena slice, laid out
    /// bit-major (`slice[bit * blocks + block]`) — exactly the
    /// `FastWord` engine's buffer layout, so gather/scatter is a single
    /// memcpy.
    pub(crate) fn field_words(&self, field: Field) -> &[u64] {
        assert!(field.end() <= self.cols, "field {field} out of range");
        &self.arena[field.start() * self.blocks..field.end() * self.blocks]
    }

    /// Mutable contiguous arena slice of a field's planes; see
    /// [`CamArray::field_words`]. Callers must keep tail bits zero.
    pub(crate) fn field_words_mut(&mut self, field: Field) -> &mut [u64] {
        assert!(field.end() <= self.cols, "field {field} out of range");
        &mut self.arena[field.start() * self.blocks..field.end() * self.blocks]
    }

    /// Detaches the whole plane storage (leaving an empty arena behind)
    /// so the blocked executor can run strip kernels directly on it
    /// while the CAM stays borrowable for geometry queries. The caller
    /// must hand the vector back via [`CamArray::restore_arena`] before
    /// any plane accessor runs again.
    pub(crate) fn take_arena(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.arena)
    }

    /// Reattaches plane storage detached by [`CamArray::take_arena`].
    pub(crate) fn restore_arena(&mut self, arena: Vec<u64>) {
        debug_assert_eq!(arena.len(), self.cols * self.blocks);
        self.arena = arena;
    }

    /// Directly sets one word in one row without charging cycles.
    ///
    /// This is the simulator's back-door for modelling 2D row-parallel
    /// arithmetic whose cost is charged analytically via
    /// [`CamArray::charge_2d`]; it is not part of the machine's ISA.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range or the value does not fit.
    pub fn poke_word(&mut self, row: usize, field: Field, value: u64) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        assert!(
            value <= field.max_value(),
            "value {value} does not fit {field}"
        );
        for bit in 0..field.width() {
            let w = &mut self.arena[field.col(bit) * self.blocks + row / 64];
            if value >> bit & 1 == 1 {
                *w |= 1 << (row % 64);
            } else {
                *w &= !(1 << (row % 64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose64_is_a_transpose() {
        // Deterministic pseudo-random matrix.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut a = [0u64; 64];
        for v in &mut a {
            *v = next();
        }
        let orig = a;
        transpose64(&mut a);
        for (i, &row) in a.iter().enumerate() {
            for (j, &col) in orig.iter().enumerate() {
                assert_eq!(row >> j & 1, col >> i & 1, "element ({i},{j}) wrong");
            }
        }
        // Involution: transposing twice restores the matrix.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn load_partial_rows_preserves_rest_and_handles_blocks() {
        // Cross the 64-row block boundary with a partial final block.
        let mut cam = CamArray::new(100, 6).unwrap();
        let f = Field::new(0, 6);
        cam.broadcast_field(f, 0b10_1010, &RowSet::all(100))
            .unwrap();
        let data: Vec<u64> = (0..70).map(|i| i % 64).collect();
        cam.load_field(f, &data).unwrap();
        let out = cam.read_field(f);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(out[i], v, "row {i}");
        }
        for (row, &v) in out.iter().enumerate().skip(70) {
            assert_eq!(v, 0b10_1010, "row {row} must keep contents");
        }
    }

    #[test]
    fn load_read_roundtrip() {
        let mut cam = CamArray::new(5, 10).unwrap();
        let f = Field::new(2, 6);
        let data = [0u64, 63, 21, 42, 7];
        cam.load_field(f, &data).unwrap();
        assert_eq!(cam.read_field(f), data);
        assert_eq!(cam.read_word(3, f), 42);
        // width cycles charged
        assert_eq!(cam.stats().write_cycles(), 6);
    }

    #[test]
    fn empty_load_is_free() {
        let mut cam = CamArray::new(8, 8).unwrap();
        let f = Field::new(0, 8);
        cam.load_field(f, &[]).unwrap();
        assert_eq!(cam.stats().cycles(), 0, "an empty load must charge zero");
        assert_eq!(cam.stats().write_cell_events(), 0);
    }

    #[test]
    fn empty_tag_broadcast_is_free() {
        let mut cam = CamArray::new(8, 8).unwrap();
        let f = Field::new(0, 8);
        cam.broadcast_field(f, 0xFF, &RowSet::new(8)).unwrap();
        assert_eq!(
            cam.stats().cycles(),
            0,
            "a broadcast to no rows must charge zero"
        );
        // Validation still applies before the emptiness check.
        assert!(matches!(
            cam.broadcast_field(Field::new(0, 4), 16, &RowSet::new(8)),
            Err(ApError::WidthOverflow { .. })
        ));
    }

    #[test]
    fn compare_matches_on_all_masked_columns() {
        let mut cam = CamArray::new(4, 4).unwrap();
        let f = Field::new(0, 4);
        cam.load_field(f, &[0b1010, 0b1000, 0b0010, 0b1010])
            .unwrap();
        let tag = cam.compare(&[(1, true), (3, true)]);
        assert_eq!(tag.iter_set().collect::<Vec<_>>(), vec![0, 3]);
        let tag = cam.compare(&[(0, false)]);
        assert_eq!(tag.count(), 4);
    }

    #[test]
    fn write_only_touches_tagged_rows() {
        let mut cam = CamArray::new(4, 2).unwrap();
        let mut tag = RowSet::new(4);
        tag.set(1, true);
        tag.set(2, true);
        cam.write(&tag, &[(0, true), (1, false)]);
        let f = Field::new(0, 2);
        assert_eq!(cam.read_field(f), vec![0, 1, 1, 0]);
    }

    #[test]
    fn broadcast_constant() {
        let mut cam = CamArray::new(3, 8).unwrap();
        let f = Field::new(0, 8);
        cam.broadcast_field(f, 0xA5, &RowSet::all(3)).unwrap();
        assert_eq!(cam.read_field(f), vec![0xA5; 3]);
    }

    #[test]
    fn capacity_errors() {
        let mut cam = CamArray::new(2, 4).unwrap();
        let wide = Field::new(0, 5);
        assert!(matches!(
            cam.load_field(wide, &[0, 0]),
            Err(ApError::ColumnCapacity { .. })
        ));
        let f = Field::new(0, 4);
        assert!(matches!(
            cam.load_field(f, &[0, 0, 0]),
            Err(ApError::RowCapacity { .. })
        ));
        assert!(matches!(
            cam.load_field(f, &[16, 0]),
            Err(ApError::WidthOverflow { .. })
        ));
        assert!(matches!(
            cam.broadcast_field(f, 16, &RowSet::all(2)),
            Err(ApError::WidthOverflow { .. })
        ));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CamArray::new(0, 4).is_err());
        assert!(CamArray::new(4, 0).is_err());
    }

    #[test]
    fn reshape_reuses_the_arena_and_clears_state() {
        let mut cam = CamArray::new(100, 8).unwrap();
        let f = Field::new(0, 8);
        cam.broadcast_field(f, 0xFF, &RowSet::all(100)).unwrap();
        assert!(cam.stats().cycles() > 0);
        cam.reshape(70, 6).unwrap();
        assert_eq!((cam.rows(), cam.cols()), (70, 6));
        assert_eq!(cam.stats().cycles(), 0);
        let g = Field::new(0, 6);
        assert_eq!(cam.read_field(g), vec![0; 70], "reshape must zero cells");
        // Same geometry round again: contents cleared, invariant holds.
        cam.load_field(g, &(0..70).map(|i| i % 64).collect::<Vec<_>>())
            .unwrap();
        cam.reshape(70, 6).unwrap();
        assert_eq!(cam.read_field(g), vec![0; 70]);
        assert!(cam.reshape(0, 4).is_err());
    }

    #[test]
    fn planes_are_contiguous_arena_ranges() {
        let mut cam = CamArray::new(65, 4).unwrap();
        let f = Field::new(1, 2);
        cam.load_field(f, &(0..65).map(|i| i % 4).collect::<Vec<_>>())
            .unwrap();
        // field_words is bit-major with the plane stride: plane 0 of
        // the field == plane_words(1), plane 1 == plane_words(2).
        let blocks = 2; // ceil(65 / 64)
        let fw = cam.field_words(f).to_vec();
        assert_eq!(&fw[..blocks], cam.plane_words(1));
        assert_eq!(&fw[blocks..], cam.plane_words(2));
        // Tail bits beyond row 65 stay zero arena-wide.
        for col in 0..4 {
            assert_eq!(cam.plane(col)[1] >> 1, 0, "tail bits of col {col}");
        }
    }

    #[test]
    fn stats_track_cell_events() {
        let mut cam = CamArray::new(100, 8).unwrap();
        let _ = cam.compare(&[(0, true), (1, false)]);
        assert_eq!(cam.stats().compare_cell_events(), 200);
        let mut tag = RowSet::new(100);
        for i in 0..10 {
            tag.set(i, true);
        }
        cam.write(&tag, &[(2, true)]);
        assert_eq!(cam.stats().write_cell_events(), 10);
        cam.reset_stats();
        assert_eq!(cam.stats().cycles(), 0);
    }
}
