use crate::lut::{Lut, LutSet, Slot};
use crate::{ApError, CamArray, CycleStats, ExecBackend, Field, RowSet};

/// Geometry of one AP tile.
///
/// # Examples
///
/// ```
/// use softmap_ap::ApConfig;
/// let cfg = ApConfig::new(2048, 96);
/// assert_eq!(cfg.rows, 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApConfig {
    /// CAM rows (words processed in parallel).
    pub rows: usize,
    /// CAM columns (bits per row across all fields).
    pub cols: usize,
}

impl ApConfig {
    /// Creates a configuration.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }
}

/// How word-parallel division is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DivStyle {
    /// Restoring long division entirely in AP microcode (the paper's
    /// step 16 "Divide").
    #[default]
    Restoring,
    /// The controller computes the scalar reciprocal of the (per-segment)
    /// divisor and the AP multiplies by it — a cheaper co-designed
    /// alternative exercised as an ablation.
    ControllerReciprocal,
}

/// Behaviour of the 2D reduction when a segment sum exceeds the sum
/// field — the paper's `N`-truncation (Table I) decides how many extra
/// bits the sum register has; overflow behaviour is the co-design knob
/// probed by Tables III/IV at small `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Overflow {
    /// Report an error ([`ApError::WidthOverflow`]).
    #[default]
    Error,
    /// Clamp to the largest representable value (the hardware default
    /// assumed by the reproduction; see the README substitution notes).
    Saturate,
    /// Keep only the low bits (failure-injection mode).
    Wrap,
}

/// Runs one LUT over one bit position against destructured core state.
/// `bind` maps slots to concrete columns; `gate` adds an extra match
/// condition (row predication).
///
/// Allocation-free: the bound-column buffers and the tag register are
/// reused across every cycle, and the LUT itself comes from the core's
/// cached [`LutSet`].
fn run_lut_bit(
    cam: &mut CamArray,
    tag: &mut RowSet,
    match_buf: &mut Vec<(usize, bool)>,
    write_buf: &mut Vec<(usize, bool)>,
    lut: &Lut,
    bind: impl Fn(Slot) -> usize,
    gate: Option<(usize, bool)>,
) {
    for pass in &lut.passes {
        match_buf.clear();
        for &(s, v) in &pass.match_bits {
            match_buf.push((bind(s), v));
        }
        if let Some(g) = gate {
            match_buf.push(g);
        }
        write_buf.clear();
        for &(s, v) in &pass.write_bits {
            write_buf.push((bind(s), v));
        }
        cam.compare_into(match_buf, tag);
        cam.write(tag, write_buf);
    }
}

/// The AP controller: word-level operations over [`Field`]s, composed
/// from LUT compare/write passes on a [`CamArray`].
///
/// All arithmetic is unsigned; subtraction exposes its borrow so callers
/// can implement saturation (the convention used by the SoftmAP mapping,
/// which keeps every intermediate as a magnitude).
///
/// A core owns all the scratch state its two backends need — the tag
/// register, borrow/flag/search row-sets, LUT tables, and the fused
/// engine's gather buffers — so steady-state execution (and especially
/// reuse through [`crate::ApTile`]) performs no heap allocation.
///
/// # Examples
///
/// ```
/// use softmap_ap::{ApCore, ApConfig};
///
/// let mut ap = ApCore::new(ApConfig::new(4, 24)).unwrap();
/// let a = ap.alloc_field(6).unwrap();
/// let acc = ap.alloc_field(8).unwrap();
/// ap.load(a, &[3, 7, 0, 63]).unwrap();
/// ap.load(acc, &[10, 20, 30, 40]).unwrap();
/// ap.add_into(acc, a).unwrap();
/// assert_eq!(ap.read(acc), vec![13, 27, 30, 103]);
/// ```
#[derive(Debug, Clone)]
pub struct ApCore {
    cam: CamArray,
    backend: ExecBackend,
    carry_col: usize,
    flag_col: usize,
    next_col: usize,
    /// Cached all-rows set (the microcode engine's ungated tag).
    all_rows: RowSet,
    /// Reusable tag scratch: one compare target reused across every
    /// cycle instead of a fresh allocation per compare.
    tag_scratch: RowSet,
    /// Borrow set of the most recent subtraction (also the divider's
    /// restore tag); see [`ApCore::sub_into_ref`].
    borrow_scratch: RowSet,
    /// Flag-column tag scratch (divider quotient set, shift gates).
    flag_scratch: RowSet,
    /// Candidate sets for the bit-serial max/min search.
    search_a: RowSet,
    search_b: RowSet,
    /// The LUT tables, built once and reused for every operation.
    luts: LutSet,
    /// Reusable bound-column buffers for the LUT pass engine.
    match_buf: Vec<(usize, bool)>,
    write_buf: Vec<(usize, bool)>,
    /// Reusable word gather buffers for the `FastWord` backend.
    pub(crate) vals_a: Vec<u64>,
    pub(crate) vals_b: Vec<u64>,
    pub(crate) vals_r: Vec<u64>,
    /// Carry/borrow block scratch for the fused ripple engines.
    pub(crate) vals_c: Vec<u64>,
    /// Pre-subtraction remainder scratch for the fused divider.
    pub(crate) vals_p: Vec<u64>,
    /// Gate plane scratch for gated fused operations.
    pub(crate) gate_buf: Vec<u64>,
    /// Per-multiplier-bit `(acc_width, write_events)` scratch for the
    /// fused multiplier.
    pub(crate) events_buf: Vec<(usize, u64)>,
    /// Pooled strip scratch for the region-blocked executor: one
    /// bit-major plane image of the active strip (`cols * strip_blocks`
    /// words).
    pub(crate) strip_buf: Vec<u64>,
    /// Data-dependent tallies (write events, borrow populations)
    /// accumulated across strips by the blocked executor and consumed
    /// by the region charge pass.
    pub(crate) tally_buf: Vec<u64>,
}

impl ApCore {
    /// Builds an AP tile; two columns are reserved internally for the
    /// carry/borrow bit and a predication flag.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] for degenerate geometries.
    pub fn new(config: ApConfig) -> Result<Self, ApError> {
        Self::with_backend(config, ExecBackend::default())
    }

    /// Builds an AP tile executing on the given backend.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] for degenerate geometries.
    pub fn with_backend(config: ApConfig, backend: ExecBackend) -> Result<Self, ApError> {
        if config.cols < 3 {
            return Err(ApError::BadConfig("need at least 3 columns"));
        }
        let cam = CamArray::new(config.rows, config.cols)?;
        Ok(Self {
            cam,
            backend,
            carry_col: 0,
            flag_col: 1,
            next_col: 2,
            all_rows: RowSet::all(config.rows),
            tag_scratch: RowSet::new(config.rows),
            borrow_scratch: RowSet::new(config.rows),
            flag_scratch: RowSet::new(config.rows),
            search_a: RowSet::new(config.rows),
            search_b: RowSet::new(config.rows),
            luts: LutSet::new(),
            match_buf: Vec::with_capacity(8),
            write_buf: Vec::with_capacity(8),
            vals_a: Vec::new(),
            vals_b: Vec::new(),
            vals_r: Vec::new(),
            vals_c: Vec::new(),
            vals_p: Vec::new(),
            gate_buf: Vec::new(),
            events_buf: Vec::new(),
            strip_buf: Vec::new(),
            tally_buf: Vec::new(),
        })
    }

    /// Re-shapes this core for a fresh program: zeroes all CAM cells
    /// and statistics, releases every allocated field, and switches to
    /// `backend` — while keeping every internal buffer's capacity, so
    /// reuse at a previously seen geometry performs **zero** heap
    /// allocations. This is the engine beneath [`crate::ApTile`].
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] for degenerate geometries.
    pub fn reshape(&mut self, config: ApConfig, backend: ExecBackend) -> Result<(), ApError> {
        if config.cols < 3 {
            return Err(ApError::BadConfig("need at least 3 columns"));
        }
        self.cam.reshape(config.rows, config.cols)?;
        self.backend = backend;
        self.next_col = 2;
        self.all_rows.reset(config.rows);
        self.all_rows.fill(true);
        self.tag_scratch.reset(config.rows);
        self.borrow_scratch.reset(config.rows);
        self.flag_scratch.reset(config.rows);
        self.search_a.reset(config.rows);
        self.search_b.reset(config.rows);
        Ok(())
    }

    /// Clears all CAM cells, statistics, and field allocations at the
    /// current geometry and backend (a same-shape [`ApCore::reshape`]).
    pub fn clear(&mut self) {
        let config = ApConfig::new(self.rows(), self.cols());
        let backend = self.backend;
        self.reshape(config, backend)
            .expect("current geometry is valid");
    }

    /// The execution backend in use.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Switches the execution backend. Field contents and accumulated
    /// statistics are carried over unchanged (both backends maintain
    /// identical CAM state).
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.cam.rows()
    }

    /// Total columns (including the reserved carry column).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cam.cols()
    }

    /// Columns still available for allocation.
    #[must_use]
    pub fn free_cols(&self) -> usize {
        self.cam.cols() - self.next_col
    }

    /// Allocates a fresh field of `width` columns.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::ColumnCapacity`] when the array is full.
    pub fn alloc_field(&mut self, width: usize) -> Result<Field, ApError> {
        let f = Field::new(self.next_col, width);
        if f.end() > self.cam.cols() {
            return Err(ApError::ColumnCapacity {
                needed: f.end(),
                available: self.cam.cols(),
            });
        }
        self.next_col = f.end();
        Ok(f)
    }

    /// Accumulated cycle statistics.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        self.cam.stats()
    }

    /// Resets the cycle statistics.
    pub fn reset_stats(&mut self) {
        self.cam.reset_stats();
    }

    /// Re-arms the core for the next resident phase: statistics reset
    /// to zero and the field-allocation cursor rewound to the first
    /// data column, while **keeping every CAM cell** — the residency
    /// contract's "the next phase's input planes are this phase's
    /// output planes, still in the arena". Geometry and backend stay
    /// as they are; callers validate them (see
    /// [`crate::ApTile::rearm_resident`]).
    pub fn rearm(&mut self) {
        self.cam.reset_stats();
        self.next_col = 2;
    }

    /// Direct access to the underlying CAM (observer use).
    #[must_use]
    pub fn cam(&self) -> &CamArray {
        &self.cam
    }

    /// Mutable CAM access for the `FastWord` engine.
    pub(crate) fn cam_mut(&mut self) -> &mut CamArray {
        &mut self.cam
    }

    /// The reserved carry/borrow column.
    pub(crate) fn carry_col(&self) -> usize {
        self.carry_col
    }

    /// The reserved predication-flag column.
    pub(crate) fn flag_col(&self) -> usize {
        self.flag_col
    }

    // ---- host I/O -------------------------------------------------------

    /// Loads one word per row into `field` (bit-serial: `width` cycles;
    /// an empty slice is free).
    ///
    /// # Errors
    ///
    /// See [`CamArray::load_field`].
    pub fn load(&mut self, field: Field, words: &[u64]) -> Result<(), ApError> {
        self.cam.load_field(field, words)
    }

    /// Broadcasts a constant into `field` on all rows.
    ///
    /// # Errors
    ///
    /// See [`CamArray::broadcast_field`].
    pub fn broadcast(&mut self, field: Field, value: u64) -> Result<(), ApError> {
        self.broadcast_all(field, value)
    }

    /// Allocation-free ungated broadcast (the cached all-rows tag).
    pub(crate) fn broadcast_all(&mut self, field: Field, value: u64) -> Result<(), ApError> {
        let Self { cam, all_rows, .. } = self;
        cam.broadcast_field(field, value, all_rows)
    }

    /// Broadcasts a constant into `field` on the rows of `tag`.
    ///
    /// # Errors
    ///
    /// See [`CamArray::broadcast_field`].
    pub fn broadcast_tagged(
        &mut self,
        field: Field,
        value: u64,
        tag: &RowSet,
    ) -> Result<(), ApError> {
        self.cam.broadcast_field(field, value, tag)
    }

    /// Reads back all words of `field`.
    #[must_use]
    pub fn read(&self, field: Field) -> Vec<u64> {
        self.cam.read_field(field)
    }

    /// Appends all words of `field` to `out` — the allocation-free
    /// read-out used by the pooled execution path.
    pub fn read_append(&self, field: Field, out: &mut Vec<u64>) {
        self.cam.read_field_append(field, out);
    }

    /// Reads one word.
    #[must_use]
    pub fn read_row(&self, row: usize, field: Field) -> u64 {
        self.cam.read_word(row, field)
    }

    /// Directly sets one row's word without charging cycles; see
    /// [`CamArray::poke_word`] (the 2D-arithmetic back-door, not part
    /// of the machine's ISA).
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range or the value does not fit.
    pub fn poke_row(&mut self, row: usize, field: Field, value: u64) {
        self.cam.poke_word(row, field, value);
    }

    /// Clears the carry column (one write cycle).
    fn clear_carry(&mut self) {
        let cc = self.carry_col;
        let Self { cam, all_rows, .. } = self;
        cam.write(all_rows, &[(cc, false)]);
    }

    // ---- logic ----------------------------------------------------------

    /// `r = a ^ b`, out of place. `r` is cleared first (`width` cycles),
    /// then the two XOR passes of the paper's Fig. 3 run per bit.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::FieldOverlap`] if `r` overlaps an operand, or a
    /// width error if `r` is narrower than the operands.
    pub fn xor(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        let w = a.width().max(b.width());
        if r.width() < w {
            return Err(ApError::WidthOverflow {
                value: w as u64,
                width: r.width(),
            });
        }
        if r.overlaps(&a) || r.overlaps(&b) {
            return Err(ApError::FieldOverlap);
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_xor(a, b, r);
        }
        self.broadcast_all(r, 0)?;
        let cc = self.carry_col;
        let Self {
            cam,
            tag_scratch,
            match_buf,
            write_buf,
            luts,
            ..
        } = self;
        for i in 0..w {
            // Missing operand bits beyond a narrower field read as 0.
            if i < a.width() && i < b.width() {
                let bind = move |s: Slot| match s {
                    Slot::A => a.col(i),
                    Slot::B => b.col(i),
                    Slot::R => r.col(i),
                    Slot::C => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.xor,
                    bind,
                    None,
                );
            } else {
                let src = if i < a.width() { a } else { b };
                // XOR with implicit 0: copy the remaining operand bit.
                let bind = move |s: Slot| match s {
                    Slot::A => src.col(i),
                    Slot::R => r.col(i),
                    _ => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.copy,
                    bind,
                    None,
                );
            }
        }
        Ok(())
    }

    /// `dst = src`, out of place (two passes per bit).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::FieldOverlap`] on overlap or a width error if
    /// `dst` is narrower than `src`. Destination bits above `src.width()`
    /// are cleared.
    pub fn copy(&mut self, src: Field, dst: Field) -> Result<(), ApError> {
        if dst.overlaps(&src) {
            return Err(ApError::FieldOverlap);
        }
        if dst.width() < src.width() {
            return Err(ApError::WidthOverflow {
                value: src.width() as u64,
                width: dst.width(),
            });
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_copy(src, dst);
        }
        let cc = self.carry_col;
        {
            let Self {
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                luts,
                ..
            } = self;
            for i in 0..src.width() {
                let bind = move |s: Slot| match s {
                    Slot::A => src.col(i),
                    Slot::R => dst.col(i),
                    _ => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.copy,
                    bind,
                    None,
                );
            }
        }
        if dst.width() > src.width() {
            let hi = dst.sub(src.width(), dst.width() - src.width());
            self.broadcast_all(hi, 0)?;
        }
        Ok(())
    }

    // ---- arithmetic -----------------------------------------------------

    /// In-place addition `acc += src` (gated variant of the paper's
    /// addition LUT when `gate` is provided: only rows whose gate column
    /// matches participate).
    ///
    /// The carry ripples through the full accumulator width; overflow
    /// past `acc.width()` is dropped (callers size accumulators per
    /// Table I so this never fires in the mapped dataflow).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::FieldOverlap`] if the fields overlap or a
    /// width error if `acc` is narrower than `src`.
    pub fn add_into(&mut self, acc: Field, src: Field) -> Result<(), ApError> {
        self.add_into_gated(acc, src, None)
    }

    /// Gated in-place addition; see [`ApCore::add_into`].
    ///
    /// # Errors
    ///
    /// Same as [`ApCore::add_into`].
    pub fn add_into_gated(
        &mut self,
        acc: Field,
        src: Field,
        gate: Option<(usize, bool)>,
    ) -> Result<(), ApError> {
        if acc.overlaps(&src) {
            return Err(ApError::FieldOverlap);
        }
        if acc.width() < src.width() {
            return Err(ApError::WidthOverflow {
                value: src.width() as u64,
                width: acc.width(),
            });
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_add_into_gated(acc, src, gate);
        }
        self.clear_carry();
        let cc = self.carry_col;
        let Self {
            cam,
            tag_scratch,
            match_buf,
            write_buf,
            luts,
            ..
        } = self;
        for i in 0..src.width() {
            let bind = move |s: Slot| match s {
                Slot::A => src.col(i),
                Slot::B => acc.col(i),
                Slot::R => acc.col(i),
                Slot::C => cc,
            };
            run_lut_bit(
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                &luts.add,
                bind,
                gate,
            );
        }
        for i in src.width()..acc.width() {
            let bind = move |s: Slot| match s {
                Slot::B => acc.col(i),
                _ => cc,
            };
            run_lut_bit(
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                &luts.carry_ripple,
                bind,
                gate,
            );
        }
        Ok(())
    }

    /// In-place subtraction `acc -= src` with two's-complement wrap on
    /// underflow. Returns the set of rows that underflowed (borrow-out),
    /// read from the borrow column.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApCore::add_into`].
    pub fn sub_into(&mut self, acc: Field, src: Field) -> Result<RowSet, ApError> {
        self.sub_into_gated(acc, src, None)
    }

    /// Allocation-free [`ApCore::sub_into`]: the borrow set is returned
    /// as a reference to an internal scratch register (valid until the
    /// next subtraction) instead of a fresh allocation — the pooled
    /// execution path's variant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApCore::add_into`].
    pub fn sub_into_ref(&mut self, acc: Field, src: Field) -> Result<&RowSet, ApError> {
        self.sub_into_scratch(acc, src, None)?;
        Ok(&self.borrow_scratch)
    }

    /// Gated in-place subtraction; see [`ApCore::sub_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApCore::add_into`].
    pub fn sub_into_gated(
        &mut self,
        acc: Field,
        src: Field,
        gate: Option<(usize, bool)>,
    ) -> Result<RowSet, ApError> {
        self.sub_into_scratch(acc, src, gate)?;
        Ok(self.borrow_scratch.clone())
    }

    /// The shared subtraction engine: leaves the borrow set in
    /// `self.borrow_scratch`.
    fn sub_into_scratch(
        &mut self,
        acc: Field,
        src: Field,
        gate: Option<(usize, bool)>,
    ) -> Result<(), ApError> {
        if acc.overlaps(&src) {
            return Err(ApError::FieldOverlap);
        }
        if acc.width() < src.width() {
            return Err(ApError::WidthOverflow {
                value: src.width() as u64,
                width: acc.width(),
            });
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_sub_into_gated(acc, src, gate);
        }
        self.clear_carry();
        let cc = self.carry_col;
        {
            let Self {
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                luts,
                ..
            } = self;
            for i in 0..src.width() {
                let bind = move |s: Slot| match s {
                    Slot::A => src.col(i),
                    Slot::B => acc.col(i),
                    Slot::R => acc.col(i),
                    Slot::C => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.sub,
                    bind,
                    gate,
                );
            }
            for i in src.width()..acc.width() {
                let bind = move |s: Slot| match s {
                    Slot::B => acc.col(i),
                    _ => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.borrow_ripple,
                    bind,
                    gate,
                );
            }
        }
        // Reading the borrow column costs one compare cycle.
        let Self {
            cam,
            borrow_scratch,
            ..
        } = self;
        cam.compare_into(&[(self.carry_col, true)], borrow_scratch);
        Ok(())
    }

    /// Saturating in-place subtraction: `acc = max(acc - src, 0)`.
    /// Underflowed rows are zeroed (this is how the mapped dataflow keeps
    /// every intermediate a magnitude; cf. the `v_corr` width discussion
    /// in the paper).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApCore::add_into`].
    pub fn saturating_sub_into(&mut self, acc: Field, src: Field) -> Result<(), ApError> {
        self.sub_into_scratch(acc, src, None)?;
        // The controller branches on the borrow tag it already holds,
        // so a broadcast to an empty set spends no cycles (the cost
        // model charges empty bulk I/O as free).
        let Self {
            cam,
            borrow_scratch,
            ..
        } = self;
        cam.broadcast_field(acc, 0, borrow_scratch)
    }

    /// Out-of-place multiplication `r = a * b` by gated shift-add
    /// (`8·wa·wb`-cycle class, the `8M²` term of Table II).
    ///
    /// # Errors
    ///
    /// Overlap/width errors as for the other arithmetic; `r` must be at
    /// least `a.width() + b.width()` wide. `a` and `b` may be the same
    /// field (squaring).
    pub fn mul(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        if r.overlaps(&a) || r.overlaps(&b) {
            return Err(ApError::FieldOverlap);
        }
        if r.width() < a.width() + b.width() {
            return Err(ApError::WidthOverflow {
                value: (a.width() + b.width()) as u64,
                width: r.width(),
            });
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_mul(a, b, r);
        }
        self.broadcast_all(r, 0)?;
        for j in 0..b.width() {
            // Partial sums below offset j never carry past bit
            // j + a.width(), so one ripple bit suffices.
            let acc_width = (a.width() + 1).min(r.width() - j);
            let acc = r.sub(j, acc_width);
            self.add_into_gated(acc, a, Some((b.col(j), true)))?;
        }
        Ok(())
    }

    /// Squares `a` into `r` (`r = a²`); alias of [`ApCore::mul`] with
    /// both operands bound to the same field.
    ///
    /// # Errors
    ///
    /// Same as [`ApCore::mul`].
    pub fn square(&mut self, a: Field, r: Field) -> Result<(), ApError> {
        self.mul(a, a, r)
    }

    /// Optimizer entry (`ApOp::MulConst`): fused constant multiply
    /// `r = a * bits` over `width` multiplier bits. Plane-exact — the
    /// carry column included — versus broadcasting `bits` into a field
    /// and running [`ApCore::mul`], on either backend; zero multiplier
    /// bits issue no sweep and charge nothing.
    pub(crate) fn mul_const(
        &mut self,
        a: Field,
        r: Field,
        bits: u64,
        width: usize,
    ) -> Result<(), ApError> {
        if r.overlaps(&a) {
            return Err(ApError::FieldOverlap);
        }
        if width == 0 || width > 64 {
            return Err(ApError::BadConfig("fused multiplier width out of range"));
        }
        if width < 64 && bits >> width != 0 {
            return Err(ApError::WidthOverflow { value: bits, width });
        }
        if r.width() < a.width() + width {
            return Err(ApError::WidthOverflow {
                value: (a.width() + width) as u64,
                width: r.width(),
            });
        }
        self.fw_mul_const(a, r, bits, width)
    }

    // ---- shifts ---------------------------------------------------------

    /// In-place logical right shift by a constant, over all rows.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for interface uniformity.
    pub fn shr_const(&mut self, field: Field, k: usize) -> Result<(), ApError> {
        if k == 0 {
            return Ok(());
        }
        if k >= field.width() {
            return self.broadcast_all(field, 0);
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_shr_const(field, k);
        }
        let cc = self.carry_col;
        {
            let Self {
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                luts,
                ..
            } = self;
            for i in 0..field.width() - k {
                let bind = move |s: Slot| match s {
                    Slot::A => field.col(i + k),
                    Slot::R => field.col(i),
                    _ => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.copy,
                    bind,
                    None,
                );
            }
        }
        let hi = field.sub(field.width() - k, k);
        self.broadcast_all(hi, 0)
    }

    /// In-place per-row variable right shift: `field >>= amount`, where
    /// `amount` is read per row from its own field (bit-serial over the
    /// amount bits; rows with amount bit `j` set shift by `2^j`).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::FieldOverlap`] if the fields overlap.
    pub fn shr_variable(&mut self, field: Field, amount: Field) -> Result<(), ApError> {
        if field.overlaps(&amount) {
            return Err(ApError::FieldOverlap);
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_shr_variable(field, amount);
        }
        let cc = self.carry_col;
        for j in 0..amount.width() {
            let s = 1usize << j;
            let gate = Some((amount.col(j), true));
            if s >= field.width() {
                // Entire field shifts out for gated rows.
                let Self {
                    cam, flag_scratch, ..
                } = self;
                cam.compare_into(&[(amount.col(j), true)], flag_scratch);
                cam.broadcast_field(field, 0, flag_scratch)?;
                continue;
            }
            {
                let Self {
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    luts,
                    ..
                } = self;
                for i in 0..field.width() - s {
                    let bind = move |slot: Slot| match slot {
                        Slot::A => field.col(i + s),
                        Slot::R => field.col(i),
                        _ => cc,
                    };
                    run_lut_bit(
                        cam,
                        tag_scratch,
                        match_buf,
                        write_buf,
                        &luts.copy,
                        bind,
                        gate,
                    );
                }
            }
            let Self {
                cam, flag_scratch, ..
            } = self;
            cam.compare_into(&[(amount.col(j), true)], flag_scratch);
            let hi = field.sub(field.width() - s, s);
            cam.broadcast_field(hi, 0, flag_scratch)?;
        }
        Ok(())
    }

    /// `r = a & b`, out of place (one pass per bit after clearing `r`).
    ///
    /// # Errors
    ///
    /// Overlap/width errors as for [`ApCore::xor`].
    pub fn and(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        if self.backend == ExecBackend::FastWord {
            self.bitwise_check(a, b, r)?;
            return self.fw_and(a, b, r);
        }
        self.bitwise(|l| &l.and, a, b, r)
    }

    /// `r = a | b`, out of place (three passes per bit).
    ///
    /// # Errors
    ///
    /// Overlap/width errors as for [`ApCore::xor`].
    pub fn or(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        if self.backend == ExecBackend::FastWord {
            self.bitwise_check(a, b, r)?;
            return self.fw_or(a, b, r);
        }
        self.bitwise(|l| &l.or, a, b, r)
    }

    /// `r = !a` over `a.width()` bits, out of place (two passes per bit,
    /// no pre-clear needed).
    ///
    /// # Errors
    ///
    /// Overlap/width errors as for [`ApCore::copy`].
    pub fn not(&mut self, a: Field, r: Field) -> Result<(), ApError> {
        if r.overlaps(&a) {
            return Err(ApError::FieldOverlap);
        }
        if r.width() < a.width() {
            return Err(ApError::WidthOverflow {
                value: a.width() as u64,
                width: r.width(),
            });
        }
        if self.backend == ExecBackend::FastWord {
            return self.fw_not(a, r);
        }
        let cc = self.carry_col;
        let Self {
            cam,
            tag_scratch,
            match_buf,
            write_buf,
            luts,
            ..
        } = self;
        for i in 0..a.width() {
            let bind = move |s: Slot| match s {
                Slot::A => a.col(i),
                Slot::R => r.col(i),
                _ => cc,
            };
            run_lut_bit(
                cam,
                tag_scratch,
                match_buf,
                write_buf,
                &luts.not,
                bind,
                None,
            );
        }
        Ok(())
    }

    /// Validation shared by both backends of the bitwise engine.
    fn bitwise_check(&self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        let w = a.width().max(b.width());
        if r.width() < w {
            return Err(ApError::WidthOverflow {
                value: w as u64,
                width: r.width(),
            });
        }
        if r.overlaps(&a) || r.overlaps(&b) {
            return Err(ApError::FieldOverlap);
        }
        Ok(())
    }

    /// Shared engine for the two-operand bitwise LUTs (result
    /// pre-cleared; operands zero-extended to the wider width). The LUT
    /// is picked from the cached set by `pick`.
    fn bitwise(
        &mut self,
        pick: fn(&LutSet) -> &Lut,
        a: Field,
        b: Field,
        r: Field,
    ) -> Result<(), ApError> {
        let w = a.width().max(b.width());
        self.bitwise_check(a, b, r)?;
        self.broadcast_all(r, 0)?;
        let cc = self.carry_col;
        let Self {
            cam,
            tag_scratch,
            match_buf,
            write_buf,
            luts,
            ..
        } = self;
        let lut = pick(luts);
        for i in 0..a.width().min(b.width()) {
            let bind = move |s: Slot| match s {
                Slot::A => a.col(i),
                Slot::B => b.col(i),
                Slot::R => r.col(i),
                Slot::C => cc,
            };
            run_lut_bit(cam, tag_scratch, match_buf, write_buf, lut, bind, None);
        }
        // Bits where only one operand exists: AND with 0 stays 0 (done);
        // OR/XOR-style LUTs that set R on a single operand bit are
        // handled by matching that operand against the implicit zero.
        // Does this LUT set R when the other operand is 0?
        let sets_on_single = lut.passes.iter().any(|p| {
            p.match_bits.contains(&(Slot::A, true)) && !p.match_bits.contains(&(Slot::B, true))
                || p.match_bits.contains(&(Slot::B, true))
                    && !p.match_bits.contains(&(Slot::A, true))
        });
        for i in a.width().min(b.width())..w {
            let src = if i < a.width() { a } else { b };
            if sets_on_single {
                let bind = move |s: Slot| match s {
                    Slot::A => src.col(i),
                    Slot::R => r.col(i),
                    _ => cc,
                };
                run_lut_bit(
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    &luts.copy,
                    bind,
                    None,
                );
            }
        }
        Ok(())
    }

    /// Word-parallel dot product: `r_prod = a * b` per row, then a 2D
    /// tree reduction over all rows — the per-output-element wavefront
    /// of the paper's Table II matrix-matrix multiplication row
    /// (`2M + 8M² + 8·log2(j) + 2M + log2(j)` with `j` = rows).
    ///
    /// Returns the dot-product value.
    ///
    /// # Errors
    ///
    /// As [`ApCore::mul`] and [`ApCore::reduce_sum_2d`]; `sum` must be
    /// wide enough for the full dot product.
    pub fn dot(&mut self, a: Field, b: Field, prod: Field, sum: Field) -> Result<u64, ApError> {
        self.mul(a, b, prod)?;
        let sums = self.reduce_sum_2d(prod, sum, self.rows())?;
        Ok(sums[0])
    }

    // ---- search ---------------------------------------------------------

    /// The shared bit-serial extreme search (MSB to LSB). Leaves the
    /// attaining row set in `self.search_a` and returns the extreme
    /// value. One compare cycle per bit. Allocation-free.
    fn extreme_search(&mut self, field: Field, maximize: bool) -> u64 {
        let Self {
            cam,
            search_a,
            search_b,
            ..
        } = self;
        search_a.fill(true);
        let mut value = 0u64;
        for i in (0..field.width()).rev() {
            // Tag rows whose bit matches the preferred polarity, then
            // intersect with the surviving candidates.
            cam.compare_into(&[(field.col(i), maximize)], search_b);
            search_b.and_with(search_a);
            if search_b.is_none_set() {
                if !maximize {
                    // Every remaining candidate has a 1 here.
                    value |= 1 << i;
                }
            } else {
                if maximize {
                    value |= 1 << i;
                }
                core::mem::swap(search_a, search_b);
            }
        }
        value
    }

    /// Bit-serial maximum search (MSB to LSB): returns the maximum value
    /// in `field` over all rows and the set of rows attaining it.
    /// One compare cycle per bit.
    #[must_use]
    pub fn max_search(&mut self, field: Field) -> (u64, RowSet) {
        let max = self.extreme_search(field, true);
        (max, self.search_a.clone())
    }

    /// Allocation-free [`ApCore::max_search`] when only the value is
    /// needed (the attaining rows stay in an internal register).
    #[must_use]
    pub fn max_search_value(&mut self, field: Field) -> u64 {
        self.extreme_search(field, true)
    }

    /// Bit-serial minimum search (MSB to LSB, preferring zero bits):
    /// returns the minimum value in `field` over all rows and the rows
    /// attaining it. One compare cycle per bit.
    #[must_use]
    pub fn min_search(&mut self, field: Field) -> (u64, RowSet) {
        let min = self.extreme_search(field, false);
        (min, self.search_a.clone())
    }

    /// Allocation-free [`ApCore::min_search`] when only the value is
    /// needed.
    #[must_use]
    pub fn min_search_value(&mut self, field: Field) -> u64 {
        self.extreme_search(field, false)
    }

    // ---- 2D reduction ---------------------------------------------------

    /// 2D (row-parallel) tree reduction: sums `field` over each segment
    /// of `segment_rows` consecutive rows, returning one sum per segment.
    ///
    /// The 2D AP adds row pairs bit-parallel without data movement; per
    /// the paper's Table II this costs `8·log2(n) + 1` cycles per
    /// reduction (plus the word-width add the caller performs to combine
    /// its two packed words per row). Cell events are charged as
    /// `(n-1) · width · 3` per segment (each pairwise add touches the two
    /// operand rows and the result row across the field).
    ///
    /// Values are computed exactly; the per-segment sum is also poked
    /// into the segment's first row at `sum_field` so subsequent steps
    /// (broadcast, division) can consume it in place.
    ///
    /// # Errors
    ///
    /// Returns a width error if a segment's sum exceeds `sum_field`,
    /// and [`ApError::BadConfig`] if `segment_rows` is zero or does not
    /// divide the row count.
    pub fn reduce_sum_2d(
        &mut self,
        field: Field,
        sum_field: Field,
        segment_rows: usize,
    ) -> Result<Vec<u64>, ApError> {
        self.reduce_sum_2d_mode(field, sum_field, segment_rows, Overflow::Error)
    }

    /// 2D reduction with explicit overflow behaviour; see
    /// [`ApCore::reduce_sum_2d`] and [`Overflow`].
    ///
    /// # Errors
    ///
    /// As [`ApCore::reduce_sum_2d`]; width overflow is only an error in
    /// [`Overflow::Error`] mode.
    pub fn reduce_sum_2d_mode(
        &mut self,
        field: Field,
        sum_field: Field,
        segment_rows: usize,
        mode: Overflow,
    ) -> Result<Vec<u64>, ApError> {
        let mut sums = Vec::new();
        self.reduce_sum_2d_mode_into(field, sum_field, segment_rows, mode, &mut sums)?;
        Ok(sums)
    }

    /// Allocation-free [`ApCore::reduce_sum_2d_mode`]: per-segment sums
    /// are written into `sums` (cleared first), and the row read-out
    /// reuses an internal buffer.
    ///
    /// # Errors
    ///
    /// As [`ApCore::reduce_sum_2d_mode`].
    pub fn reduce_sum_2d_mode_into(
        &mut self,
        field: Field,
        sum_field: Field,
        segment_rows: usize,
        mode: Overflow,
        sums: &mut Vec<u64>,
    ) -> Result<(), ApError> {
        sums.clear();
        if segment_rows == 0 || !self.rows().is_multiple_of(segment_rows) {
            return Err(ApError::BadConfig("segment_rows must divide the row count"));
        }
        let mut words = std::mem::take(&mut self.vals_a);
        words.clear();
        self.cam.read_field_append(field, &mut words);
        let mut failed = None;
        for seg in 0..self.rows() / segment_rows {
            let base = seg * segment_rows;
            let exact: u64 = words[base..base + segment_rows].iter().sum();
            let sum = if exact > sum_field.max_value() {
                match mode {
                    Overflow::Error => {
                        failed = Some(ApError::WidthOverflow {
                            value: exact,
                            width: sum_field.width(),
                        });
                        break;
                    }
                    Overflow::Saturate => sum_field.max_value(),
                    Overflow::Wrap => exact & sum_field.max_value(),
                }
            } else {
                exact
            };
            self.cam.poke_word(base, sum_field, sum);
            sums.push(sum);
        }
        self.vals_a = words;
        if let Some(e) = failed {
            return Err(e);
        }
        let stages = segment_rows.next_power_of_two().trailing_zeros() as u64;
        let cycles = 8 * stages + 1;
        let events = (segment_rows as u64 - 1)
            * field.width() as u64
            * 3
            * (self.rows() / segment_rows) as u64;
        self.cam.charge_2d(cycles, events);
        Ok(())
    }

    // ---- division -------------------------------------------------------

    /// Word-parallel fixed-point division:
    /// `quot = (num << frac_bits) / den`, per row, where `den` is a
    /// per-row field. Rows in which `den == 0` are an error.
    ///
    /// With [`DivStyle::Restoring`] the quotient is developed bit by bit
    /// with a shift/subtract/restore microprogram — the paper's step 16.
    /// With [`DivStyle::ControllerReciprocal`] the controller computes a
    /// scalar reciprocal per distinct divisor value (intended for the
    /// post-reduction case where the divisor is a per-segment constant)
    /// and the AP multiplies by it; the result may differ from the
    /// restoring quotient by at most one ULP and is exercised as an
    /// ablation.
    ///
    /// Saturates to `quot.max_value()` if the true quotient overflows the
    /// quotient field.
    ///
    /// # Errors
    ///
    /// * [`ApError::DivisionByZero`] if any row's divisor is zero.
    /// * Overlap errors if fields alias.
    /// * Column-capacity errors if scratch space cannot be allocated.
    pub fn divide(
        &mut self,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
        style: DivStyle,
    ) -> Result<(), ApError> {
        if num.overlaps(&quot) || den.overlaps(&quot) || num.overlaps(&den) {
            return Err(ApError::FieldOverlap);
        }
        // Zero-divisor scan through a reused buffer (free observer
        // access, no allocation in steady state).
        let mut dens = std::mem::take(&mut self.vals_p);
        dens.clear();
        self.cam.read_field_append(den, &mut dens);
        let any_zero = dens.contains(&0);
        self.vals_p = dens;
        if any_zero {
            return Err(ApError::DivisionByZero);
        }
        match style {
            DivStyle::Restoring if self.backend == ExecBackend::FastWord => {
                self.fw_divide_restoring(num, den, quot, frac_bits)
            }
            DivStyle::Restoring => self.divide_restoring(num, den, quot, frac_bits),
            // The reciprocal microprogram is controller-driven: its
            // constituent ops (mul, shifts, copies, compares) dispatch
            // per backend themselves, so the body is shared. It
            // consumes the divisor words already staged above instead
            // of re-reading the field.
            DivStyle::ControllerReciprocal => {
                let mut dens = std::mem::take(&mut self.vals_p);
                let result = self.divide_reciprocal(num, den, quot, frac_bits, &mut dens);
                self.vals_p = dens;
                result
            }
        }
    }

    /// Optimizer entry (`ApOp::FusedDivide`): batched fused restoring
    /// division of up to two `(num, quot)` channels by the shared
    /// divisor `den`, with the same overlap and zero-divisor checks as
    /// [`ApCore::divide`]. Plane-exact versus issuing the restoring
    /// divisions back to back, on either backend.
    pub(crate) fn fused_divide(
        &mut self,
        channels: &[(Field, Field)],
        den: Field,
        frac_bits: usize,
    ) -> Result<(), ApError> {
        for &(num, quot) in channels {
            if num.overlaps(&quot) || den.overlaps(&quot) || num.overlaps(&den) {
                return Err(ApError::FieldOverlap);
            }
        }
        let mut dens = std::mem::take(&mut self.vals_p);
        dens.clear();
        self.cam.read_field_append(den, &mut dens);
        let any_zero = dens.contains(&0);
        self.vals_p = dens;
        if any_zero {
            return Err(ApError::DivisionByZero);
        }
        self.fw_fused_divide(channels, den, frac_bits)
    }

    fn divide_restoring(
        &mut self,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
    ) -> Result<(), ApError> {
        // Remainder scratch: one bit wider than the divisor.
        let rem_width = den.width() + 1;
        let rem = self.alloc_scratch(rem_width)?;
        self.broadcast_all(rem, 0)?;
        self.broadcast_all(quot, 0)?;

        let total_bits = num.width() + frac_bits;
        let cc = self.carry_col;
        let fc = self.flag_col;
        for k in (0..total_bits).rev() {
            {
                let Self {
                    cam,
                    tag_scratch,
                    match_buf,
                    write_buf,
                    luts,
                    all_rows,
                    ..
                } = self;
                // rem = (rem << 1) | dividend_bit(k); shift MSB-first so
                // no bit is clobbered before it is read.
                for i in (0..rem.width() - 1).rev() {
                    let bind = move |s: Slot| match s {
                        Slot::A => rem.col(i),
                        Slot::R => rem.col(i + 1),
                        _ => cc,
                    };
                    run_lut_bit(
                        cam,
                        tag_scratch,
                        match_buf,
                        write_buf,
                        &luts.copy,
                        bind,
                        None,
                    );
                }
                if k >= frac_bits {
                    let bind = move |s: Slot| match s {
                        Slot::A => num.col(k - frac_bits),
                        Slot::R => rem.col(0),
                        _ => cc,
                    };
                    run_lut_bit(
                        cam,
                        tag_scratch,
                        match_buf,
                        write_buf,
                        &luts.copy,
                        bind,
                        None,
                    );
                } else {
                    cam.write(all_rows, &[(rem.col(0), false)]);
                }
            }
            // Try rem -= den; latch the borrow into the flag column (the
            // carry column is recycled by the restoring add), then rows
            // that underflowed restore by adding den back, gated on the
            // flag.
            self.sub_into_scratch(rem, den, None)?;
            let any_borrow = {
                let Self {
                    cam,
                    all_rows,
                    borrow_scratch,
                    ..
                } = self;
                cam.write(all_rows, &[(fc, false)]);
                cam.write(borrow_scratch, &[(fc, true)]);
                !borrow_scratch.is_none_set()
            };
            if any_borrow {
                self.add_into_gated(rem, den, Some((fc, true)))?;
            }
            // Quotient bit = 1 for rows that did not borrow (empty-set
            // broadcasts above the field are free, mirroring the
            // controller's branch on the tag).
            let Self {
                cam, flag_scratch, ..
            } = self;
            cam.compare_into(&[(fc, false)], flag_scratch);
            if k < quot.width() {
                cam.write(flag_scratch, &[(quot.col(k), true)]);
            } else {
                // Quotient bit above the field: saturate affected rows.
                cam.broadcast_field(quot, quot.max_value(), flag_scratch)?;
            }
        }
        self.release_scratch(rem);
        Ok(())
    }

    /// `dens` holds the divisor words read by [`ApCore::divide`]'s
    /// zero scan; it is sorted and deduplicated in place (it is
    /// scratch, so no allocation happens in steady state).
    fn divide_reciprocal(
        &mut self,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
        dens: &mut Vec<u64>,
    ) -> Result<(), ApError> {
        // The controller computes floor(2^G / den) once per distinct
        // divisor (cheap scalar work) and broadcasts it; the AP then
        // multiplies and shifts: quot = (num * recip) >> (G - F). Guard
        // bits G = F + num.width() keep the result within one ULP of the
        // restoring quotient.
        let guard_bits = frac_bits + num.width();
        let recip_width = guard_bits + 1;
        let recip = self.alloc_scratch(recip_width)?;
        let prod_width = num.width() + recip_width;
        let prod = self.alloc_scratch(prod_width)?;

        dens.sort_unstable();
        dens.dedup();
        for &d in dens.iter() {
            let r = ((1u128 << guard_bits) / u128::from(d)) as u64;
            // Tag rows holding divisor d: one compare per divisor bit.
            let Self {
                cam,
                search_a,
                search_b,
                ..
            } = self;
            search_a.fill(true);
            for i in 0..den.width() {
                cam.compare_into(&[(den.col(i), d >> i & 1 == 1)], search_b);
                search_a.and_with(search_b);
            }
            cam.broadcast_field(recip, r, search_a)?;
        }
        self.mul(num, recip, prod)?;
        self.shr_const(prod, guard_bits - frac_bits)?;
        // Copy the low quot.width() bits of the shifted product out,
        // saturating rows whose quotient overflows the field.
        let low = prod.sub(0, quot.width().min(prod.width()));
        self.copy(low, quot)?;
        if prod.width() > quot.width() {
            let hi = prod.sub(quot.width(), prod.width() - quot.width());
            let Self {
                cam,
                search_a,
                search_b,
                ..
            } = self;
            search_a.fill(false);
            for i in 0..hi.width() {
                cam.compare_into(&[(hi.col(i), true)], search_b);
                search_a.or_with(search_b);
            }
            if !search_a.is_none_set() {
                cam.broadcast_field(quot, quot.max_value(), search_a)?;
            }
        }
        self.release_scratch(prod);
        self.release_scratch(recip);
        Ok(())
    }

    /// Copies packed borrow words into the borrow scratch register —
    /// the fused subtract engine's hand-off to `sub_into_scratch`.
    pub(crate) fn set_borrow_scratch(&mut self, words: &[u64]) {
        self.borrow_scratch.copy_from_words(words);
    }

    // ---- scratch management ----------------------------------------------

    /// Moves the column-allocation cursor to `next_col` — the program
    /// replay engine's way of reserving a compiled layout's columns so
    /// internal scratch allocations (division) land exactly where they
    /// did while recording.
    /// Restores a statistics snapshot — the cost-model rollback behind
    /// resident (hoisted-broadcast) replay. Plane state is untouched.
    pub(crate) fn restore_stats(&mut self, snapshot: CycleStats) {
        *self.cam.stats_mut() = snapshot;
    }

    pub(crate) fn set_next_col(&mut self, next_col: usize) {
        debug_assert!(
            (2..=self.cam.cols()).contains(&next_col),
            "reserved cursor {next_col} outside 2..={}",
            self.cam.cols()
        );
        self.next_col = next_col;
    }

    pub(crate) fn alloc_scratch(&mut self, width: usize) -> Result<Field, ApError> {
        self.alloc_field(width)
    }

    /// Whether a scratch allocation of `width` columns would succeed at
    /// the current cursor — the blocked-region preflight's guarantee
    /// that an in-region division cannot fail on column capacity.
    pub(crate) fn scratch_fits(&self, width: usize) -> bool {
        width <= self.cam.cols() - self.next_col
    }

    pub(crate) fn release_scratch(&mut self, field: Field) {
        // Scratch fields are stack-allocated at the end of the column
        // space; release only when the field is the most recent
        // allocation (LIFO), which all internal callers respect.
        if field.end() == self.next_col {
            self.next_col = field.start();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(rows: usize, cols: usize) -> ApCore {
        ApCore::new(ApConfig::new(rows, cols)).unwrap()
    }

    #[test]
    fn xor_matches_paper_example() {
        let mut ap = core(4, 8);
        let a = ap.alloc_field(2).unwrap();
        let b = ap.alloc_field(2).unwrap();
        let r = ap.alloc_field(2).unwrap();
        ap.load(a, &[0b11, 0b00, 0b10, 0b11]).unwrap();
        ap.load(b, &[0b01, 0b01, 0b10, 0b10]).unwrap();
        ap.xor(a, b, r).unwrap();
        assert_eq!(ap.read(r), vec![0b10, 0b01, 0b00, 0b01]);
        // operands untouched
        assert_eq!(ap.read(a), vec![0b11, 0b00, 0b10, 0b11]);
        assert_eq!(ap.read(b), vec![0b01, 0b01, 0b10, 0b10]);
    }

    #[test]
    fn add_exhaustive_small() {
        let mut ap = core(256, 20);
        let a = ap.alloc_field(4).unwrap();
        let acc = ap.alloc_field(5).unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                xs.push(x);
                ys.push(y);
            }
        }
        ap.load(a, &xs).unwrap();
        ap.load(acc, &ys).unwrap();
        ap.add_into(acc, a).unwrap();
        let out = ap.read(acc);
        for i in 0..256 {
            assert_eq!(out[i], xs[i] + ys[i], "{} + {}", xs[i], ys[i]);
        }
    }

    #[test]
    fn sub_reports_borrow_and_wraps() {
        let mut ap = core(4, 16);
        let a = ap.alloc_field(4).unwrap();
        let acc = ap.alloc_field(4).unwrap();
        ap.load(a, &[3, 10, 0, 15]).unwrap();
        ap.load(acc, &[10, 3, 0, 15]).unwrap();
        let borrow = ap.sub_into(acc, a).unwrap();
        assert_eq!(ap.read(acc), vec![7, (16 + 3 - 10), 0, 0]);
        assert_eq!(borrow.iter_set().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn sub_into_ref_matches_owned_borrow_set() {
        let mut ap = core(4, 16);
        let a = ap.alloc_field(4).unwrap();
        let acc = ap.alloc_field(4).unwrap();
        ap.load(a, &[3, 10, 0, 15]).unwrap();
        ap.load(acc, &[10, 3, 0, 15]).unwrap();
        let borrow = ap.sub_into_ref(acc, a).unwrap();
        assert_eq!(borrow.iter_set().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn saturating_sub_zeroes_underflow() {
        let mut ap = core(3, 16);
        let a = ap.alloc_field(4).unwrap();
        let acc = ap.alloc_field(4).unwrap();
        ap.load(a, &[5, 9, 2]).unwrap();
        ap.load(acc, &[7, 4, 2]).unwrap();
        ap.saturating_sub_into(acc, a).unwrap();
        assert_eq!(ap.read(acc), vec![2, 0, 0]);
    }

    #[test]
    fn mul_exhaustive_small() {
        let mut ap = core(256, 24);
        let a = ap.alloc_field(4).unwrap();
        let b = ap.alloc_field(4).unwrap();
        let r = ap.alloc_field(8).unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                xs.push(x);
                ys.push(y);
            }
        }
        ap.load(a, &xs).unwrap();
        ap.load(b, &ys).unwrap();
        ap.mul(a, b, r).unwrap();
        let out = ap.read(r);
        for i in 0..256 {
            assert_eq!(out[i], xs[i] * ys[i], "{} * {}", xs[i], ys[i]);
        }
    }

    #[test]
    fn square_uses_same_field_for_both_operands() {
        let mut ap = core(16, 24);
        let a = ap.alloc_field(5).unwrap();
        let r = ap.alloc_field(10).unwrap();
        let xs: Vec<u64> = (0..16).map(|i| i * 2 % 32).collect();
        ap.load(a, &xs).unwrap();
        ap.square(a, r).unwrap();
        let out = ap.read(r);
        for i in 0..16 {
            assert_eq!(out[i], xs[i] * xs[i]);
        }
        assert_eq!(ap.read(a), xs, "squaring must not clobber its operand");
    }

    #[test]
    fn shr_const_shifts_all_rows() {
        let mut ap = core(4, 12);
        let f = ap.alloc_field(8).unwrap();
        ap.load(f, &[0b1011_0110, 0xFF, 1, 0]).unwrap();
        ap.shr_const(f, 3).unwrap();
        assert_eq!(ap.read(f), vec![0b0001_0110, 0x1F, 0, 0]);
        ap.shr_const(f, 8).unwrap();
        assert_eq!(ap.read(f), vec![0, 0, 0, 0]);
    }

    #[test]
    fn shr_variable_per_row_amounts() {
        let mut ap = core(5, 20);
        let f = ap.alloc_field(8).unwrap();
        let amt = ap.alloc_field(3).unwrap();
        let values = [0xF0u64, 0xF0, 0xF0, 0xF0, 0xFF];
        let amounts = [0u64, 1, 4, 7, 5];
        ap.load(f, &values).unwrap();
        ap.load(amt, &amounts).unwrap();
        ap.shr_variable(f, amt).unwrap();
        let out = ap.read(f);
        for i in 0..5 {
            assert_eq!(out[i], values[i] >> amounts[i], "row {i}");
        }
    }

    #[test]
    fn max_search_finds_value_and_rows() {
        let mut ap = core(6, 10);
        let f = ap.alloc_field(6).unwrap();
        ap.load(f, &[13, 42, 7, 42, 0, 41]).unwrap();
        let (max, rows) = ap.max_search(f);
        assert_eq!(max, 42);
        assert_eq!(rows.iter_set().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(ap.max_search_value(f), 42);
    }

    #[test]
    fn max_search_all_zero() {
        let mut ap = core(3, 8);
        let f = ap.alloc_field(4).unwrap();
        ap.load(f, &[0, 0, 0]).unwrap();
        let (max, rows) = ap.max_search(f);
        assert_eq!(max, 0);
        assert_eq!(rows.count(), 3);
    }

    #[test]
    fn min_search_value_matches_min_search() {
        let mut ap = core(6, 10);
        let f = ap.alloc_field(6).unwrap();
        ap.load(f, &[13, 42, 7, 42, 9, 41]).unwrap();
        let (min, rows) = ap.min_search(f);
        assert_eq!(min, 7);
        assert_eq!(rows.iter_set().collect::<Vec<_>>(), vec![2]);
        assert_eq!(ap.min_search_value(f), 7);
    }

    #[test]
    fn reduce_sum_segments() {
        let mut ap = core(8, 24);
        let f = ap.alloc_field(6).unwrap();
        let sum = ap.alloc_field(10).unwrap();
        ap.load(f, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let sums = ap.reduce_sum_2d(f, sum, 4).unwrap();
        assert_eq!(sums, vec![10, 26]);
        assert_eq!(ap.read_row(0, sum), 10);
        assert_eq!(ap.read_row(4, sum), 26);
    }

    #[test]
    fn reduce_sum_rejects_bad_segments() {
        let mut ap = core(8, 24);
        let f = ap.alloc_field(6).unwrap();
        let sum = ap.alloc_field(10).unwrap();
        assert!(ap.reduce_sum_2d(f, sum, 3).is_err());
        assert!(ap.reduce_sum_2d(f, sum, 0).is_err());
    }

    #[test]
    fn reduce_sum_detects_overflow() {
        let mut ap = core(4, 16);
        let f = ap.alloc_field(6).unwrap();
        let sum = ap.alloc_field(6).unwrap();
        ap.load(f, &[63, 63, 63, 63]).unwrap();
        assert!(matches!(
            ap.reduce_sum_2d(f, sum, 4),
            Err(ApError::WidthOverflow { .. })
        ));
    }

    #[test]
    fn divide_restoring_matches_integer_division() {
        let mut ap = core(6, 64);
        let num = ap.alloc_field(8).unwrap();
        let den = ap.alloc_field(8).unwrap();
        let quot = ap.alloc_field(12).unwrap();
        let ns = [100u64, 255, 1, 0, 200, 17];
        let ds = [3u64, 255, 2, 7, 199, 17];
        ap.load(num, &ns).unwrap();
        ap.load(den, &ds).unwrap();
        ap.divide(num, den, quot, 4, DivStyle::Restoring).unwrap();
        let out = ap.read(quot);
        for i in 0..6 {
            assert_eq!(out[i], (ns[i] << 4) / ds[i], "{}/{}", ns[i], ds[i]);
        }
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let mut ap = core(2, 64);
        let num = ap.alloc_field(4).unwrap();
        let den = ap.alloc_field(4).unwrap();
        let quot = ap.alloc_field(8).unwrap();
        ap.load(num, &[1, 1]).unwrap();
        ap.load(den, &[1, 0]).unwrap();
        assert_eq!(
            ap.divide(num, den, quot, 0, DivStyle::Restoring),
            Err(ApError::DivisionByZero)
        );
    }

    #[test]
    fn divide_saturates_on_quotient_overflow() {
        let mut ap = core(2, 64);
        let num = ap.alloc_field(8).unwrap();
        let den = ap.alloc_field(4).unwrap();
        let quot = ap.alloc_field(4).unwrap();
        ap.load(num, &[200, 3]).unwrap();
        ap.load(den, &[2, 3]).unwrap();
        ap.divide(num, den, quot, 0, DivStyle::Restoring).unwrap();
        assert_eq!(ap.read(quot), vec![15, 1]);
    }

    #[test]
    fn divide_reciprocal_close_to_restoring() {
        let mut ap = core(4, 80);
        let num = ap.alloc_field(8).unwrap();
        let den = ap.alloc_field(8).unwrap();
        let quot = ap.alloc_field(13).unwrap();
        let ns = [100u64, 255, 17, 80];
        let ds = [200u64, 200, 200, 200];
        ap.load(num, &ns).unwrap();
        ap.load(den, &ds).unwrap();
        ap.divide(num, den, quot, 8, DivStyle::ControllerReciprocal)
            .unwrap();
        let out = ap.read(quot);
        for i in 0..4 {
            let exact = (ns[i] << 8) / ds[i];
            let got = out[i];
            assert!(
                got <= exact && exact - got <= 1,
                "row {i}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn copy_clears_high_destination_bits() {
        let mut ap = core(2, 20);
        let src = ap.alloc_field(4).unwrap();
        let dst = ap.alloc_field(8).unwrap();
        ap.load(src, &[0b1010, 0b0101]).unwrap();
        ap.broadcast(dst, 0xFF).unwrap();
        ap.copy(src, dst).unwrap();
        assert_eq!(ap.read(dst), vec![0b1010, 0b0101]);
    }

    #[test]
    fn field_allocation_respects_capacity() {
        let mut ap = core(2, 8);
        assert!(ap.alloc_field(6).is_ok()); // 2 cols reserved internally
        assert!(matches!(
            ap.alloc_field(1),
            Err(ApError::ColumnCapacity { .. })
        ));
    }

    #[test]
    fn overlap_rejected() {
        let mut ap = core(2, 20);
        let a = ap.alloc_field(4).unwrap();
        let r = ap.alloc_field(8).unwrap();
        assert_eq!(ap.mul(a, a, a.sub(0, 4)), Err(ApError::FieldOverlap));
        assert_eq!(ap.xor(a, a, a), Err(ApError::FieldOverlap));
        assert_eq!(ap.copy(a, a), Err(ApError::FieldOverlap));
        assert!(ap.mul(a, a, r).is_ok());
    }

    #[test]
    fn bitwise_ops_match_integer_semantics() {
        let mut ap = core(16, 40);
        let a = ap.alloc_field(6).unwrap();
        let b = ap.alloc_field(6).unwrap();
        let r = ap.alloc_field(6).unwrap();
        let xs: Vec<u64> = (0..16).map(|i| (i * 7) % 64).collect();
        let ys: Vec<u64> = (0..16).map(|i| (i * 13 + 5) % 64).collect();
        ap.load(a, &xs).unwrap();
        ap.load(b, &ys).unwrap();
        ap.and(a, b, r).unwrap();
        assert_eq!(
            ap.read(r),
            xs.iter().zip(&ys).map(|(x, y)| x & y).collect::<Vec<_>>()
        );
        ap.or(a, b, r).unwrap();
        assert_eq!(
            ap.read(r),
            xs.iter().zip(&ys).map(|(x, y)| x | y).collect::<Vec<_>>()
        );
        ap.not(a, r).unwrap();
        assert_eq!(ap.read(r), xs.iter().map(|x| !x & 63).collect::<Vec<_>>());
    }

    #[test]
    fn dot_product_matches_integer_dot() {
        let mut ap = core(64, 64);
        let a = ap.alloc_field(6).unwrap();
        let b = ap.alloc_field(6).unwrap();
        let prod = ap.alloc_field(12).unwrap();
        let sum = ap.alloc_field(20).unwrap();
        let xs: Vec<u64> = (0..64).map(|i| i % 64).collect();
        let ys: Vec<u64> = (0..64).map(|i| (i * 3) % 64).collect();
        ap.load(a, &xs).unwrap();
        ap.load(b, &ys).unwrap();
        let d = ap.dot(a, b, prod, sum).unwrap();
        let expect: u64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        assert_eq!(d, expect);
    }

    #[test]
    fn add_cycles_scale_with_width() {
        let mut ap = core(8, 40);
        let a = ap.alloc_field(8).unwrap();
        let acc = ap.alloc_field(9).unwrap();
        ap.load(a, &[1; 8]).unwrap();
        ap.load(acc, &[1; 8]).unwrap();
        ap.reset_stats();
        ap.add_into(acc, a).unwrap();
        let s = ap.stats();
        // 1 carry clear + 8 bits * 4 passes * 2 cycles + 1 ripple bit * 2
        // passes * 2 cycles = 1 + 64 + 4 = 69.
        assert_eq!(s.cycles(), 69);
    }

    #[test]
    fn reshape_resets_fields_stats_and_cells() {
        let mut ap = core(8, 24);
        let f = ap.alloc_field(6).unwrap();
        ap.load(f, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert!(ap.stats().cycles() > 0);
        assert!(ap.free_cols() < 22);
        ap.reshape(ApConfig::new(6, 20), ExecBackend::FastWord)
            .unwrap();
        assert_eq!((ap.rows(), ap.cols()), (6, 20));
        assert_eq!(ap.stats().cycles(), 0);
        assert_eq!(ap.free_cols(), 18);
        let g = ap.alloc_field(6).unwrap();
        assert_eq!(ap.read(g), vec![0; 6], "reshape must zero all cells");
        assert!(ap
            .reshape(ApConfig::new(4, 2), ExecBackend::Microcode)
            .is_err());
        // clear() is a same-shape reshape.
        ap.load(g, &[1, 2, 3, 4, 5, 6]).unwrap();
        ap.clear();
        let g2 = ap.alloc_field(6).unwrap();
        assert_eq!(g2, g, "clear releases field allocations");
        assert_eq!(ap.read(g2), vec![0; 6]);
    }
}
