//! Analytic AP runtime formulas — Table II of the paper.
//!
//! The paper models 2D-AP runtimes (in cycles) for elementary functions
//! of `M`-bit words over `L` rows:
//!
//! | Function | 2D AP runtime |
//! |---|---|
//! | Addition | `2M + 8M + M + 1` |
//! | Multiplication | `2M + 8M² + 2M` |
//! | Reduction | `2M + 8M + 8·log2(L/2) + 1` |
//! | Matrix-matrix multiplication | `2M + 8M² + 8·log2(j) + 2M + log2(j)` |
//!
//! The `2M` terms are operand loads (bit-serial writes), `8M`/`8M²` the
//! compare/write LUT passes, and the trailing terms carry/result
//! handling. The microcoded simulator's measured counts are compared
//! against these formulas by the Table II experiment; division (used by
//! the softmax dataflow's final step but absent from Table II) is our
//! documented extension.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::cost;
//!
//! assert_eq!(cost::addition(8), 2 * 8 + 8 * 8 + 8 + 1);
//! assert_eq!(cost::reduction(6, 4096), 2 * 6 + 8 * 6 + 8 * 11 + 1);
//! ```

/// Integer `ceil(log2(x))` (0 for `x <= 1`).
///
/// # Examples
///
/// ```
/// use softmap_ap::cost::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(2048), 11);
/// assert_eq!(ceil_log2(2049), 12);
/// ```
#[must_use]
pub fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        u64::from(64 - (x - 1).leading_zeros())
    }
}

/// Addition of two `m`-bit words: `2M + 8M + M + 1` cycles
/// (loads + LUT passes + result handling).
#[must_use]
pub fn addition(m: u64) -> u64 {
    2 * m + 8 * m + m + 1
}

/// Multiplication of two `m`-bit words: `2M + 8M² + 2M` cycles.
#[must_use]
pub fn multiplication(m: u64) -> u64 {
    2 * m + 8 * m * m + 2 * m
}

/// Mixed-width multiplication (`wa × wb` bits): straightforward
/// generalization `2(wa+wb)/2·… → wa + wb + 8·wa·wb` load/pass cycles,
/// reducing to the paper's `2M + 8M² + 2M` when `wa == wb == M`.
#[must_use]
pub fn multiplication_mixed(wa: u64, wb: u64) -> u64 {
    (wa + wb) + 8 * wa * wb + (wa + wb)
}

/// Reduction (sum of `l/2` packed word pairs in the 2D AP):
/// `2M + 8M + 8·log2(L/2) + 1` cycles.
#[must_use]
pub fn reduction(m: u64, l: u64) -> u64 {
    2 * m + 8 * m + 8 * ceil_log2(l / 2) + 1
}

/// 1D-AP reduction of `l/2` packed word pairs: unlike the 2D AP, each
/// tree stage must physically move one operand next to the other
/// (a copy) before the bit-serial add, costing
/// `2M + 8M + log2(L/2)·(4M + 8M + M + 1)` cycles — the ablation the
/// paper cites when motivating the 2D AP ("reduction ... can be
/// performed without any data movements").
#[must_use]
pub fn reduction_1d(m: u64, l: u64) -> u64 {
    2 * m + 8 * m + ceil_log2(l / 2) * (4 * m + 8 * m + m + 1)
}

/// Matrix-matrix multiplication of `i×j` by `j×u` matrices of `m`-bit
/// words: `2M + 8M² + 8·log2(j) + 2M + log2(j)` cycles (Table II,
/// reported per output-element wavefront).
#[must_use]
pub fn matmul(m: u64, j: u64) -> u64 {
    2 * m + 8 * m * m + 8 * ceil_log2(j) + 2 * m + ceil_log2(j)
}

/// Restoring division developing `q` quotient bits against a `w`-bit
/// divisor — our documented extension for the dataflow's step 16:
/// roughly `q · (2w + 8w + 8w + 5) + w` cycles (per-bit remainder shift,
/// subtract, gated restore, and quotient write, plus scratch clearing).
#[must_use]
pub fn division(w: u64, q: u64) -> u64 {
    q * (2 * w + 8 * w + 8 * w + 5) + w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values_at_paper_precisions() {
        // M = 8 (the paper's running example precision)
        assert_eq!(addition(8), 89);
        assert_eq!(multiplication(8), 544);
        // L = 4096 rows -> log2(2048) = 11
        assert_eq!(reduction(8, 4096), 169);
        // j = 4096 -> log2 = 12: 16 + 512 + 96 + 16 + 12
        assert_eq!(matmul(8, 4096), 652);
    }

    #[test]
    fn mixed_multiplication_reduces_to_square_case() {
        for m in [4u64, 6, 8] {
            assert_eq!(multiplication_mixed(m, m), multiplication(m));
        }
    }

    #[test]
    fn ceil_log2_boundaries() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
    }

    #[test]
    fn costs_monotone_in_precision() {
        for m in 2u64..16 {
            assert!(addition(m + 1) > addition(m));
            assert!(multiplication(m + 1) > multiplication(m));
            assert!(reduction(m + 1, 1024) > reduction(m, 1024));
            assert!(division(m + 1, 8) > division(m, 8));
        }
    }

    #[test]
    fn twod_reduction_beats_oned() {
        // the 2D AP's advantage grows with row count
        for l in [256u64, 1024, 4096] {
            assert!(reduction(6, l) < reduction_1d(6, l), "l = {l}");
        }
        let gain_small = reduction_1d(6, 256) as f64 / reduction(6, 256) as f64;
        let gain_large = reduction_1d(6, 4096) as f64 / reduction(6, 4096) as f64;
        assert!(gain_large > gain_small);
    }

    #[test]
    fn reduction_grows_logarithmically_with_rows() {
        let base = reduction(6, 256);
        assert_eq!(reduction(6, 512), base + 8);
        assert_eq!(reduction(6, 1024), base + 16);
        assert_eq!(reduction(6, 4096), base + 32);
    }
}
