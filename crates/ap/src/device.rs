//! The capacity-bounded device model: a finite tile grid, shard
//! partitioning, wave scheduling, and the cross-tile reduction network.
//!
//! Real SoftmAP hardware is sized, not elastic: the paper deploys
//! fixed 2048-row tiles per attention head (Fig. 4, Section V-B). A
//! softmax vector longer than one tile's capacity must be **sharded**
//! across tiles, and when a vector needs more shards than the grid has
//! free tiles, the shards execute in **waves**. This module is that
//! sizing made explicit:
//!
//! * [`DeviceConfig`] — the grid: `tiles × rows_per_tile`,
//! * [`DeviceConfig::partition_into`] — how a vector of `len` elements
//!   splits into per-tile shards (contiguous, capacity-bounded, with
//!   an even/odd tail rule so packed layouts always fit),
//! * [`wave_makespan`] — the latency of running independent shard jobs
//!   on `tiles` concurrent slots (greedy list scheduling),
//! * [`TileClocks`] — the same greedy policy extended to an open
//!   arrival stream of multi-shard lockstep requests (the serving
//!   layer's continuous-batching admission clock),
//! * [`DeviceConfig::reduction_network`] — the documented cost contract
//!   for combining per-tile scalars (shard minima, partial sums)
//!   across tiles and broadcasting the result back.
//!
//! # The cross-tile reduction cost contract
//!
//! Within a tile, the 2D AP reduces `n` rows in `8·log2(n) + 1` cycles
//! (Table II). The cross-tile reduction network is modeled the same
//! way: combining one `bits`-bit scalar per shard over `s` shards costs
//! `8·ceil(log2(s))` cycles for the combine tree plus `1` cycle to
//! broadcast the result back to all tiles, charged as 2D (network)
//! cycles with `s · bits` cell events (each tile's port drives its
//! word once). The contract is deliberately simple and *deterministic*:
//! the same formula is charged by sharded execution and by the static
//! cost path, so `static == simulated` extends to sharded shapes.
//!
//! # The residency plan
//!
//! When a vector's shards fit the tile grid in a single wave
//! (`shards <= tiles`), the wave schedule pins each shard to one tile
//! for the vector's whole lifetime: the tile is *not* cleared between
//! the min-search, exp, and divide phases, so the phase-boundary
//! `Load`/`Read` staging ops are elided — the exp phase's input planes
//! are the min phase's output planes, still in the arena (the field
//! layout that makes this sound is documented in
//! `softmap_ap::program`'s residency contract). On top of staging
//! elision, same-length resident shards execute the identical phase
//! program in SIMD lockstep across their tiles, so each phase charges
//! the program's full cost once per distinct shard length per wave
//! (the "leader"); the remaining shards ride the shared drivers and
//! pay only their per-tile-distinct input staging
//! (`ApProgram::replay_lockstep`). The cross-tile reductions are
//! unchanged — minima and partial sums still traverse the reduction
//! network above. When the vector needs more than one wave, a tile
//! cannot stay pinned (the next wave's shard evicts it), so execution
//! falls back to the re-staged path automatically, per vector; the
//! `SOFTMAP_RESIDENT=0` knob (or `ApSoftmax::with_resident(false)`)
//! forces that path for differential testing.

use crate::stats::CycleStats;
use crate::ApError;

/// The fixed tile grid one softmax vector may be sharded across.
///
/// # Examples
///
/// ```
/// use softmap_ap::device::DeviceConfig;
///
/// let dev = DeviceConfig::default();
/// assert_eq!((dev.tiles, dev.rows_per_tile), (48, 2048));
/// // 16384 elements at two words per row: four 2048-row shards.
/// let mut shards = Vec::new();
/// dev.partition_into(16384, 2, &mut shards).unwrap();
/// assert_eq!(shards.len(), 4);
/// assert_eq!(shards[0], (0, 4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Concurrent tiles available to one vector (the paper's
    /// tiles-per-head knob).
    pub tiles: usize,
    /// Rows per tile (2048 in the paper's area tables; sequence length
    /// 4096 at two words per row).
    pub rows_per_tile: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            tiles: 48,
            rows_per_tile: 2048,
        }
    }
}

impl DeviceConfig {
    /// A grid of `tiles` tiles with `rows_per_tile` rows each.
    #[must_use]
    pub fn new(tiles: usize, rows_per_tile: usize) -> Self {
        Self {
            tiles,
            rows_per_tile,
        }
    }

    /// Elements one tile holds at `words_per_row` packing.
    #[must_use]
    pub fn shard_capacity(&self, words_per_row: usize) -> usize {
        self.rows_per_tile * words_per_row
    }

    /// Splits a vector of `len` elements into contiguous per-tile
    /// shards, written into `out` (cleared first; reusable so the
    /// steady-state path performs no allocation) as `(start, end)`
    /// element ranges.
    ///
    /// Every shard but the last holds exactly
    /// [`DeviceConfig::shard_capacity`] elements. If the remainder is
    /// odd, longer than `rows_per_tile`, and the layout packs two words
    /// per row (which needs an even length), the tail is split into one
    /// even packed shard and one single-element shard so every shard
    /// fits its tile.
    ///
    /// # Errors
    ///
    /// [`ApError::BadConfig`] for a zero-row grid, zero `words_per_row`
    /// or an empty vector.
    pub fn partition_into(
        &self,
        len: usize,
        words_per_row: usize,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), ApError> {
        out.clear();
        if self.rows_per_tile == 0 {
            return Err(ApError::BadConfig("device has zero rows per tile"));
        }
        if !(1..=2).contains(&words_per_row) {
            return Err(ApError::BadConfig("words_per_row must be 1 or 2"));
        }
        if len == 0 {
            return Err(ApError::BadConfig("cannot partition an empty vector"));
        }
        let cap = self.shard_capacity(words_per_row);
        let mut pos = 0;
        while len - pos > cap {
            out.push((pos, pos + cap));
            pos += cap;
        }
        let rem = len - pos;
        if words_per_row == 2 && rem % 2 == 1 && rem > self.rows_per_tile {
            // An odd tail longer than the row count cannot run unpacked;
            // peel one element into a final single-row shard.
            out.push((pos, len - 1));
            out.push((len - 1, len));
        } else {
            out.push((pos, len));
        }
        Ok(())
    }

    /// Splits a vector of `len` elements into exactly `shards`
    /// contiguous, **near-equal** shards, written into `out` (cleared
    /// first) as `(start, end)` element ranges.
    ///
    /// [`DeviceConfig::partition_into`] greedily fills tiles to
    /// capacity, which can leave one short tail shard; this variant
    /// balances the lengths instead (every shard within one element —
    /// or one packing pair — of the others), which maximizes SIMD
    /// lockstep sharing on the resident plan: equal-length shards
    /// replay one leader program. For `words_per_row == 2` every shard
    /// but the last is rounded up to an even length so it runs packed.
    ///
    /// # Errors
    ///
    /// [`ApError::BadConfig`] for the degenerate inputs
    /// [`DeviceConfig::partition_into`] rejects, for `shards == 0` or
    /// `shards > len`, and when any resulting shard exceeds the tile's
    /// row capacity (too few shards requested).
    pub fn balanced_partition_into(
        &self,
        len: usize,
        words_per_row: usize,
        shards: usize,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), ApError> {
        out.clear();
        if self.rows_per_tile == 0 {
            return Err(ApError::BadConfig("device has zero rows per tile"));
        }
        if !(1..=2).contains(&words_per_row) {
            return Err(ApError::BadConfig("words_per_row must be 1 or 2"));
        }
        if len == 0 {
            return Err(ApError::BadConfig("cannot partition an empty vector"));
        }
        if shards == 0 || shards > len {
            return Err(ApError::BadConfig(
                "balanced partition needs 1..=len shards",
            ));
        }
        let mut pos = 0;
        for i in 0..shards {
            let remaining = len - pos;
            let slots = shards - i;
            let mut take = remaining.div_ceil(slots);
            // Non-final shards of a packed layout must be even so they
            // pack two words per row.
            if words_per_row == 2 && slots > 1 && take % 2 == 1 {
                take += 1;
            }
            // Leave at least one element for every remaining shard.
            take = take.min(remaining - (slots - 1));
            let rows = if words_per_row == 2 && take.is_multiple_of(2) {
                take / 2
            } else {
                take
            };
            if rows > self.rows_per_tile {
                return Err(ApError::BadConfig(
                    "balanced shard exceeds tile rows (too few shards)",
                ));
            }
            out.push((pos, pos + take));
            pos += take;
        }
        debug_assert_eq!(pos, len);
        Ok(())
    }

    /// Number of sequential waves `shards` shard jobs need on this
    /// grid (at least 1).
    #[must_use]
    pub fn waves(&self, shards: usize) -> u64 {
        let tiles = self.tiles.max(1);
        (shards.max(1)).div_ceil(tiles) as u64
    }

    /// Cost of the cross-tile reduction network combining one
    /// `bits`-bit scalar per shard and broadcasting the result back;
    /// see the module-level contract.
    #[must_use]
    pub fn reduction_network(&self, shards: usize, bits: u32) -> CycleStats {
        let mut s = CycleStats::default();
        let levels = crate::cost::ceil_log2(shards as u64);
        s.charge_2d(8 * levels + 1, shards as u64 * u64::from(bits));
        s
    }
}

/// Makespan of `jobs` independent per-shard cycle counts on `tiles`
/// concurrent slots: greedy list scheduling in arrival order (each job
/// goes to the least-loaded tile), the natural policy for a stream of
/// near-identical shards. `loads` is reusable scratch (cleared first).
///
/// With fewer jobs than tiles this degenerates to `max(jobs)`; the
/// unbounded-grid makespan of `BatchStats::aggregate`.
///
/// # Examples
///
/// ```
/// use softmap_ap::device::wave_makespan;
///
/// let mut loads = Vec::new();
/// // 4 equal shards on 2 tiles: two waves.
/// assert_eq!(wave_makespan(&[10, 10, 10, 10], 2, &mut loads), 20);
/// // 3 shards on 4 tiles: one wave.
/// assert_eq!(wave_makespan(&[10, 7, 9], 4, &mut loads), 10);
/// ```
#[must_use]
pub fn wave_makespan(jobs: &[u64], tiles: usize, loads: &mut Vec<u64>) -> u64 {
    let tiles = tiles.max(1).min(jobs.len().max(1));
    loads.clear();
    loads.resize(tiles, 0);
    for &c in jobs {
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .expect("at least one tile");
        loads[slot] += c;
    }
    loads.iter().copied().max().unwrap_or(0)
}

/// Per-tile virtual clocks for continuous wave scheduling: the
/// stream-of-requests generalization of [`wave_makespan`].
///
/// Where [`wave_makespan`] schedules one fixed batch of independent
/// shard jobs, `TileClocks` accounts an *open-ended arrival stream* in
/// which each request occupies several tiles **in lockstep** (its
/// shards synchronize twice at the cross-tile min and sum reductions,
/// so they must start together). The scheduling rule is the same
/// greedy least-loaded policy: [`TileClocks::assign`] picks the
/// `shards` tiles with the earliest clocks, starts the request at the
/// latest of them (the lockstep constraint), and advances each chosen
/// clock to `start + cycles`.
///
/// The struct also tracks total busy cycles charged, so a scheduler
/// can report the tile-occupancy ratio
/// `busy / (makespan × tiles)` — the host-invariant saturation metric
/// the serving gate checks.
///
/// # Examples
///
/// ```
/// use softmap_ap::device::TileClocks;
///
/// let mut clocks = TileClocks::new(2);
/// // Two single-shard requests land on distinct tiles: they overlap.
/// assert_eq!(clocks.assign(1, 10), 10);
/// assert_eq!(clocks.assign(1, 4), 4);
/// // A two-shard request needs both tiles; lockstep start at the
/// // later clock (10), finishing at 15.
/// assert_eq!(clocks.assign(2, 5), 15);
/// assert_eq!(clocks.makespan(), 15);
/// assert_eq!(clocks.busy(), 10 + 4 + 2 * 5);
/// ```
#[derive(Debug, Clone)]
pub struct TileClocks {
    clocks: Vec<u64>,
    picked: Vec<usize>,
    busy: u64,
}

impl TileClocks {
    /// A grid of `tiles` idle tiles (clamped to at least one).
    #[must_use]
    pub fn new(tiles: usize) -> Self {
        let tiles = tiles.max(1);
        Self {
            clocks: vec![0; tiles],
            picked: Vec::with_capacity(tiles),
            busy: 0,
        }
    }

    /// Number of tiles in the grid.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.clocks.len()
    }

    /// Schedules one request occupying `shards` tiles in lockstep for
    /// `cycles` device cycles and returns its completion time.
    ///
    /// Greedy least-loaded: the `shards` earliest clocks are chosen
    /// (clamped to the grid size — a request already folds its own
    /// internal waves into `cycles` via its latency model), the start
    /// is the latest chosen clock, and every chosen clock advances to
    /// `start + cycles`. Performs no allocation in steady state.
    pub fn assign(&mut self, shards: usize, cycles: u64) -> u64 {
        let take = shards.clamp(1, self.clocks.len());
        self.picked.clear();
        let mut start = 0u64;
        for _ in 0..take {
            let (slot, clock) = self
                .clocks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(i, &t)| (i, t))
                .expect("at least one tile");
            start = start.max(clock);
            self.picked.push(slot);
            self.clocks[slot] = u64::MAX; // exclude from this pick round
        }
        let done = start.saturating_add(cycles);
        for &i in &self.picked {
            self.clocks[i] = done;
        }
        self.busy += cycles * take as u64;
        done
    }

    /// Latest clock over all tiles: the schedule's makespan so far.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Total busy cycles charged across all tiles.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_full_shards_then_tail() {
        let dev = DeviceConfig::new(8, 4);
        let mut out = Vec::new();
        dev.partition_into(20, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8), (8, 16), (16, 20)]);
        dev.partition_into(8, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8)]);
        dev.partition_into(3, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 3)]); // odd but <= rows: unpacked fits
    }

    #[test]
    fn partition_peels_odd_oversized_tail() {
        let dev = DeviceConfig::new(8, 4);
        let mut out = Vec::new();
        // tail of 7 elements: odd and > 4 rows, so it cannot run
        // unpacked; peel the last element off.
        dev.partition_into(15, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8), (8, 14), (14, 15)]);
        // every shard fits: even shards packed, the singleton unpacked
        for &(s, e) in &out {
            let n = e - s;
            let rows = if n % 2 == 0 { n / 2 } else { n };
            assert!(rows <= 4, "shard {s}..{e} needs {rows} rows");
        }
    }

    #[test]
    fn partition_one_word_per_row() {
        let dev = DeviceConfig::new(2, 4);
        let mut out = Vec::new();
        dev.partition_into(9, 1, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 8), (8, 9)]);
    }

    #[test]
    fn partition_rejects_degenerate_inputs() {
        let mut out = Vec::new();
        assert!(DeviceConfig::new(1, 0)
            .partition_into(4, 2, &mut out)
            .is_err());
        assert!(DeviceConfig::new(1, 4)
            .partition_into(0, 2, &mut out)
            .is_err());
        assert!(DeviceConfig::new(1, 4)
            .partition_into(4, 3, &mut out)
            .is_err());
    }

    #[test]
    fn balanced_partition_equalizes_shard_lengths() {
        let dev = DeviceConfig::default();
        let mut out = Vec::new();
        // The greedy default for 6000 @ 2 words/row is (4096, 1904);
        // balanced over the same two tiles it is (3000, 3000).
        dev.balanced_partition_into(6000, 2, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 3000), (3000, 6000)]);
        // Odd interior shards round up to even so they still pack.
        dev.balanced_partition_into(9, 2, 3, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 8), (8, 9)]);
        // One word per row has no parity constraint.
        dev.balanced_partition_into(10, 1, 3, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 7), (7, 10)]);
        for &(s, e) in &out {
            assert!(e > s);
        }
    }

    #[test]
    fn balanced_partition_rejects_bad_requests() {
        let dev = DeviceConfig::new(2, 4);
        let mut out = Vec::new();
        assert!(dev.balanced_partition_into(9, 2, 0, &mut out).is_err());
        assert!(dev.balanced_partition_into(9, 2, 10, &mut out).is_err());
        // One shard of 9 elements cannot fit a 4-row tile even packed.
        assert!(dev.balanced_partition_into(9, 2, 1, &mut out).is_err());
        assert!(dev.balanced_partition_into(0, 2, 1, &mut out).is_err());
        assert!(DeviceConfig::new(1, 0)
            .balanced_partition_into(4, 2, 1, &mut out)
            .is_err());
        assert!(dev.balanced_partition_into(4, 3, 1, &mut out).is_err());
    }

    #[test]
    fn waves_count_grid_rounds() {
        let dev = DeviceConfig::new(4, 2048);
        assert_eq!(dev.waves(1), 1);
        assert_eq!(dev.waves(4), 1);
        assert_eq!(dev.waves(5), 2);
        assert_eq!(dev.waves(9), 3);
        assert_eq!(DeviceConfig::new(0, 2048).waves(3), 3);
    }

    #[test]
    fn reduction_network_grows_logarithmically() {
        let dev = DeviceConfig::default();
        let r2 = dev.reduction_network(2, 16);
        let r4 = dev.reduction_network(4, 16);
        let r8 = dev.reduction_network(8, 16);
        assert_eq!(r2.cycles(), 9);
        assert_eq!(r4.cycles(), 17);
        assert_eq!(r8.cycles(), 25);
        assert_eq!(r8.cell_events(), 8 * 16);
    }

    #[test]
    fn wave_makespan_schedules_greedily() {
        let mut loads = Vec::new();
        assert_eq!(wave_makespan(&[], 4, &mut loads), 0);
        assert_eq!(wave_makespan(&[5], 4, &mut loads), 5);
        assert_eq!(wave_makespan(&[5, 5, 5], 1, &mut loads), 15);
        // uneven jobs: greedy balances them
        assert_eq!(wave_makespan(&[9, 1, 1, 1], 2, &mut loads), 9);
    }

    /// Greedy list scheduling is bounded below by the critical path
    /// (no schedule beats `max(longest job, ceil(total / tiles))`) and
    /// above by naive sequential execution (`total`).
    fn assert_makespan_bounds(jobs: &[u64], tiles: usize) {
        let mut loads = Vec::new();
        let got = wave_makespan(jobs, tiles, &mut loads);
        let total: u64 = jobs.iter().sum();
        let longest = jobs.iter().copied().max().unwrap_or(0);
        let slots = tiles.max(1).min(jobs.len().max(1)) as u64;
        let critical = longest.max(total.div_ceil(slots.max(1)));
        assert!(
            got >= critical,
            "makespan {got} beats critical path {critical} for {jobs:?} on {tiles} tiles"
        );
        assert!(
            got <= total,
            "makespan {got} worse than sequential {total} for {jobs:?} on {tiles} tiles"
        );
    }

    #[test]
    fn wave_makespan_empty_batch_is_free() {
        let mut loads = Vec::new();
        assert_eq!(wave_makespan(&[], 48, &mut loads), 0);
        assert_eq!(wave_makespan(&[], 0, &mut loads), 0);
        assert_makespan_bounds(&[], 48);
    }

    #[test]
    fn wave_makespan_single_oversized_job_is_its_own_makespan() {
        // One request longer than everything else the grid could do:
        // no amount of tiles shortens a single sequential job.
        let mut loads = Vec::new();
        let huge = 1 << 40;
        assert_eq!(wave_makespan(&[huge], 48, &mut loads), huge);
        assert_eq!(wave_makespan(&[huge, 1, 1, 1], 48, &mut loads), huge);
        assert_makespan_bounds(&[huge, 1, 1, 1], 48);
    }

    #[test]
    fn wave_makespan_identical_lengths_fill_whole_waves() {
        let mut loads = Vec::new();
        // 96 identical jobs on 48 tiles: exactly two full waves.
        let jobs = vec![7u64; 96];
        assert_eq!(wave_makespan(&jobs, 48, &mut loads), 14);
        // 49 jobs: one straggler forces a second wave.
        let jobs = vec![7u64; 49];
        assert_eq!(wave_makespan(&jobs, 48, &mut loads), 14);
        assert_makespan_bounds(&jobs, 48);
    }

    #[test]
    fn wave_makespan_adversarial_mixes_stay_bounded() {
        // Mixes chosen to trip greedy schedulers: descending giants,
        // one giant amid dust, alternating magnitudes, primes.
        let cases: &[(&[u64], usize)] = &[
            (&[100, 90, 80, 70, 60, 50, 40, 30, 20, 10], 3),
            (&[1000, 1, 1, 1, 1, 1, 1, 1], 4),
            (&[1, 64, 2, 32, 4, 16, 8, 8, 16, 4, 32, 2, 64, 1], 5),
            (&[13, 7, 29, 3, 31, 2, 23, 5, 19, 11, 17], 2),
            (&[5, 5, 5, 5], 1000), // more tiles than jobs
        ];
        for &(jobs, tiles) in cases {
            assert_makespan_bounds(jobs, tiles);
        }
        // Spot-check the degenerate grid: zero tiles clamps to one.
        let mut loads = Vec::new();
        assert_eq!(wave_makespan(&[3, 4], 0, &mut loads), 7);
    }

    #[test]
    fn tile_clocks_overlap_independent_requests() {
        let mut clocks = TileClocks::new(4);
        assert_eq!(clocks.tiles(), 4);
        // Four single-shard requests run concurrently.
        for _ in 0..4 {
            assert_eq!(clocks.assign(1, 10), 10);
        }
        assert_eq!(clocks.makespan(), 10);
        // The fifth queues behind the earliest tile.
        assert_eq!(clocks.assign(1, 10), 20);
        assert_eq!(clocks.busy(), 50);
    }

    #[test]
    fn tile_clocks_lockstep_requests_start_at_latest_tile() {
        let mut clocks = TileClocks::new(3);
        clocks.assign(1, 30); // tile busy until 30
        clocks.assign(1, 5); // tile busy until 5
                             // A 3-shard request needs all tiles; lockstep start at 30.
        assert_eq!(clocks.assign(3, 10), 40);
        assert_eq!(clocks.makespan(), 40);
        assert_eq!(clocks.busy(), 30 + 5 + 3 * 10);
    }

    #[test]
    fn tile_clocks_match_wave_makespan_on_single_shard_streams() {
        // On single-shard jobs TileClocks *is* wave_makespan: same
        // greedy least-loaded rule, one tile per job.
        let jobs = [13u64, 7, 29, 3, 31, 2, 23, 5, 19, 11, 17];
        let mut loads = Vec::new();
        let batch = wave_makespan(&jobs, 4, &mut loads);
        let mut clocks = TileClocks::new(4);
        for &j in &jobs {
            clocks.assign(1, j);
        }
        assert_eq!(clocks.makespan(), batch);
        assert_eq!(clocks.busy(), jobs.iter().sum::<u64>());
    }

    #[test]
    fn tile_clocks_clamp_oversized_and_zero_requests() {
        let mut clocks = TileClocks::new(2);
        // More shards than tiles: the request's own latency already
        // folds internal waves in, so it just occupies the whole grid.
        assert_eq!(clocks.assign(5, 8), 8);
        assert_eq!(clocks.makespan(), 8);
        assert_eq!(clocks.busy(), 16);
        // Zero shards clamps to one tile.
        assert_eq!(clocks.assign(0, 4), 12);
        let zero_grid = TileClocks::new(0);
        assert_eq!(zero_grid.tiles(), 1);
    }
}
