//! The capacity-bounded device model: a finite tile grid, shard
//! partitioning, wave scheduling, and the cross-tile reduction network.
//!
//! Real SoftmAP hardware is sized, not elastic: the paper deploys
//! fixed 2048-row tiles per attention head (Fig. 4, Section V-B). A
//! softmax vector longer than one tile's capacity must be **sharded**
//! across tiles, and when a vector needs more shards than the grid has
//! free tiles, the shards execute in **waves**. This module is that
//! sizing made explicit:
//!
//! * [`DeviceConfig`] — the grid: `tiles × rows_per_tile`,
//! * [`DeviceConfig::partition_into`] — how a vector of `len` elements
//!   splits into per-tile shards (contiguous, capacity-bounded, with
//!   an even/odd tail rule so packed layouts always fit),
//! * [`wave_makespan`] — the latency of running independent shard jobs
//!   on `tiles` concurrent slots (greedy list scheduling),
//! * [`DeviceConfig::reduction_network`] — the documented cost contract
//!   for combining per-tile scalars (shard minima, partial sums)
//!   across tiles and broadcasting the result back.
//!
//! # The cross-tile reduction cost contract
//!
//! Within a tile, the 2D AP reduces `n` rows in `8·log2(n) + 1` cycles
//! (Table II). The cross-tile reduction network is modeled the same
//! way: combining one `bits`-bit scalar per shard over `s` shards costs
//! `8·ceil(log2(s))` cycles for the combine tree plus `1` cycle to
//! broadcast the result back to all tiles, charged as 2D (network)
//! cycles with `s · bits` cell events (each tile's port drives its
//! word once). The contract is deliberately simple and *deterministic*:
//! the same formula is charged by sharded execution and by the static
//! cost path, so `static == simulated` extends to sharded shapes.
//!
//! # The residency plan
//!
//! When a vector's shards fit the tile grid in a single wave
//! (`shards <= tiles`), the wave schedule pins each shard to one tile
//! for the vector's whole lifetime: the tile is *not* cleared between
//! the min-search, exp, and divide phases, so the phase-boundary
//! `Load`/`Read` staging ops are elided — the exp phase's input planes
//! are the min phase's output planes, still in the arena (the field
//! layout that makes this sound is documented in
//! `softmap_ap::program`'s residency contract). On top of staging
//! elision, same-length resident shards execute the identical phase
//! program in SIMD lockstep across their tiles, so each phase charges
//! the program's full cost once per distinct shard length per wave
//! (the "leader"); the remaining shards ride the shared drivers and
//! pay only their per-tile-distinct input staging
//! (`ApProgram::replay_lockstep`). The cross-tile reductions are
//! unchanged — minima and partial sums still traverse the reduction
//! network above. When the vector needs more than one wave, a tile
//! cannot stay pinned (the next wave's shard evicts it), so execution
//! falls back to the re-staged path automatically, per vector; the
//! `SOFTMAP_RESIDENT=0` knob (or `ApSoftmax::with_resident(false)`)
//! forces that path for differential testing.

use crate::stats::CycleStats;
use crate::ApError;

/// The fixed tile grid one softmax vector may be sharded across.
///
/// # Examples
///
/// ```
/// use softmap_ap::device::DeviceConfig;
///
/// let dev = DeviceConfig::default();
/// assert_eq!((dev.tiles, dev.rows_per_tile), (48, 2048));
/// // 16384 elements at two words per row: four 2048-row shards.
/// let mut shards = Vec::new();
/// dev.partition_into(16384, 2, &mut shards).unwrap();
/// assert_eq!(shards.len(), 4);
/// assert_eq!(shards[0], (0, 4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Concurrent tiles available to one vector (the paper's
    /// tiles-per-head knob).
    pub tiles: usize,
    /// Rows per tile (2048 in the paper's area tables; sequence length
    /// 4096 at two words per row).
    pub rows_per_tile: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            tiles: 48,
            rows_per_tile: 2048,
        }
    }
}

impl DeviceConfig {
    /// A grid of `tiles` tiles with `rows_per_tile` rows each.
    #[must_use]
    pub fn new(tiles: usize, rows_per_tile: usize) -> Self {
        Self {
            tiles,
            rows_per_tile,
        }
    }

    /// Elements one tile holds at `words_per_row` packing.
    #[must_use]
    pub fn shard_capacity(&self, words_per_row: usize) -> usize {
        self.rows_per_tile * words_per_row
    }

    /// Splits a vector of `len` elements into contiguous per-tile
    /// shards, written into `out` (cleared first; reusable so the
    /// steady-state path performs no allocation) as `(start, end)`
    /// element ranges.
    ///
    /// Every shard but the last holds exactly
    /// [`DeviceConfig::shard_capacity`] elements. If the remainder is
    /// odd, longer than `rows_per_tile`, and the layout packs two words
    /// per row (which needs an even length), the tail is split into one
    /// even packed shard and one single-element shard so every shard
    /// fits its tile.
    ///
    /// # Errors
    ///
    /// [`ApError::BadConfig`] for a zero-row grid, zero `words_per_row`
    /// or an empty vector.
    pub fn partition_into(
        &self,
        len: usize,
        words_per_row: usize,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), ApError> {
        out.clear();
        if self.rows_per_tile == 0 {
            return Err(ApError::BadConfig("device has zero rows per tile"));
        }
        if !(1..=2).contains(&words_per_row) {
            return Err(ApError::BadConfig("words_per_row must be 1 or 2"));
        }
        if len == 0 {
            return Err(ApError::BadConfig("cannot partition an empty vector"));
        }
        let cap = self.shard_capacity(words_per_row);
        let mut pos = 0;
        while len - pos > cap {
            out.push((pos, pos + cap));
            pos += cap;
        }
        let rem = len - pos;
        if words_per_row == 2 && rem % 2 == 1 && rem > self.rows_per_tile {
            // An odd tail longer than the row count cannot run unpacked;
            // peel one element into a final single-row shard.
            out.push((pos, len - 1));
            out.push((len - 1, len));
        } else {
            out.push((pos, len));
        }
        Ok(())
    }

    /// Splits a vector of `len` elements into exactly `shards`
    /// contiguous, **near-equal** shards, written into `out` (cleared
    /// first) as `(start, end)` element ranges.
    ///
    /// [`DeviceConfig::partition_into`] greedily fills tiles to
    /// capacity, which can leave one short tail shard; this variant
    /// balances the lengths instead (every shard within one element —
    /// or one packing pair — of the others), which maximizes SIMD
    /// lockstep sharing on the resident plan: equal-length shards
    /// replay one leader program. For `words_per_row == 2` every shard
    /// but the last is rounded up to an even length so it runs packed.
    ///
    /// # Errors
    ///
    /// [`ApError::BadConfig`] for the degenerate inputs
    /// [`DeviceConfig::partition_into`] rejects, for `shards == 0` or
    /// `shards > len`, and when any resulting shard exceeds the tile's
    /// row capacity (too few shards requested).
    pub fn balanced_partition_into(
        &self,
        len: usize,
        words_per_row: usize,
        shards: usize,
        out: &mut Vec<(usize, usize)>,
    ) -> Result<(), ApError> {
        out.clear();
        if self.rows_per_tile == 0 {
            return Err(ApError::BadConfig("device has zero rows per tile"));
        }
        if !(1..=2).contains(&words_per_row) {
            return Err(ApError::BadConfig("words_per_row must be 1 or 2"));
        }
        if len == 0 {
            return Err(ApError::BadConfig("cannot partition an empty vector"));
        }
        if shards == 0 || shards > len {
            return Err(ApError::BadConfig(
                "balanced partition needs 1..=len shards",
            ));
        }
        let mut pos = 0;
        for i in 0..shards {
            let remaining = len - pos;
            let slots = shards - i;
            let mut take = remaining.div_ceil(slots);
            // Non-final shards of a packed layout must be even so they
            // pack two words per row.
            if words_per_row == 2 && slots > 1 && take % 2 == 1 {
                take += 1;
            }
            // Leave at least one element for every remaining shard.
            take = take.min(remaining - (slots - 1));
            let rows = if words_per_row == 2 && take.is_multiple_of(2) {
                take / 2
            } else {
                take
            };
            if rows > self.rows_per_tile {
                return Err(ApError::BadConfig(
                    "balanced shard exceeds tile rows (too few shards)",
                ));
            }
            out.push((pos, pos + take));
            pos += take;
        }
        debug_assert_eq!(pos, len);
        Ok(())
    }

    /// Number of sequential waves `shards` shard jobs need on this
    /// grid (at least 1).
    #[must_use]
    pub fn waves(&self, shards: usize) -> u64 {
        let tiles = self.tiles.max(1);
        (shards.max(1)).div_ceil(tiles) as u64
    }

    /// Cost of the cross-tile reduction network combining one
    /// `bits`-bit scalar per shard and broadcasting the result back;
    /// see the module-level contract.
    #[must_use]
    pub fn reduction_network(&self, shards: usize, bits: u32) -> CycleStats {
        let mut s = CycleStats::default();
        let levels = crate::cost::ceil_log2(shards as u64);
        s.charge_2d(8 * levels + 1, shards as u64 * u64::from(bits));
        s
    }
}

/// Makespan of `jobs` independent per-shard cycle counts on `tiles`
/// concurrent slots: greedy list scheduling in arrival order (each job
/// goes to the least-loaded tile), the natural policy for a stream of
/// near-identical shards. `loads` is reusable scratch (cleared first).
///
/// With fewer jobs than tiles this degenerates to `max(jobs)`; the
/// unbounded-grid makespan of `BatchStats::aggregate`.
///
/// # Examples
///
/// ```
/// use softmap_ap::device::wave_makespan;
///
/// let mut loads = Vec::new();
/// // 4 equal shards on 2 tiles: two waves.
/// assert_eq!(wave_makespan(&[10, 10, 10, 10], 2, &mut loads), 20);
/// // 3 shards on 4 tiles: one wave.
/// assert_eq!(wave_makespan(&[10, 7, 9], 4, &mut loads), 10);
/// ```
#[must_use]
pub fn wave_makespan(jobs: &[u64], tiles: usize, loads: &mut Vec<u64>) -> u64 {
    let tiles = tiles.max(1).min(jobs.len().max(1));
    loads.clear();
    loads.resize(tiles, 0);
    for &c in jobs {
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .expect("at least one tile");
        loads[slot] += c;
    }
    loads.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_full_shards_then_tail() {
        let dev = DeviceConfig::new(8, 4);
        let mut out = Vec::new();
        dev.partition_into(20, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8), (8, 16), (16, 20)]);
        dev.partition_into(8, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8)]);
        dev.partition_into(3, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 3)]); // odd but <= rows: unpacked fits
    }

    #[test]
    fn partition_peels_odd_oversized_tail() {
        let dev = DeviceConfig::new(8, 4);
        let mut out = Vec::new();
        // tail of 7 elements: odd and > 4 rows, so it cannot run
        // unpacked; peel the last element off.
        dev.partition_into(15, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 8), (8, 14), (14, 15)]);
        // every shard fits: even shards packed, the singleton unpacked
        for &(s, e) in &out {
            let n = e - s;
            let rows = if n % 2 == 0 { n / 2 } else { n };
            assert!(rows <= 4, "shard {s}..{e} needs {rows} rows");
        }
    }

    #[test]
    fn partition_one_word_per_row() {
        let dev = DeviceConfig::new(2, 4);
        let mut out = Vec::new();
        dev.partition_into(9, 1, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 8), (8, 9)]);
    }

    #[test]
    fn partition_rejects_degenerate_inputs() {
        let mut out = Vec::new();
        assert!(DeviceConfig::new(1, 0)
            .partition_into(4, 2, &mut out)
            .is_err());
        assert!(DeviceConfig::new(1, 4)
            .partition_into(0, 2, &mut out)
            .is_err());
        assert!(DeviceConfig::new(1, 4)
            .partition_into(4, 3, &mut out)
            .is_err());
    }

    #[test]
    fn balanced_partition_equalizes_shard_lengths() {
        let dev = DeviceConfig::default();
        let mut out = Vec::new();
        // The greedy default for 6000 @ 2 words/row is (4096, 1904);
        // balanced over the same two tiles it is (3000, 3000).
        dev.balanced_partition_into(6000, 2, 2, &mut out).unwrap();
        assert_eq!(out, vec![(0, 3000), (3000, 6000)]);
        // Odd interior shards round up to even so they still pack.
        dev.balanced_partition_into(9, 2, 3, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 8), (8, 9)]);
        // One word per row has no parity constraint.
        dev.balanced_partition_into(10, 1, 3, &mut out).unwrap();
        assert_eq!(out, vec![(0, 4), (4, 7), (7, 10)]);
        for &(s, e) in &out {
            assert!(e > s);
        }
    }

    #[test]
    fn balanced_partition_rejects_bad_requests() {
        let dev = DeviceConfig::new(2, 4);
        let mut out = Vec::new();
        assert!(dev.balanced_partition_into(9, 2, 0, &mut out).is_err());
        assert!(dev.balanced_partition_into(9, 2, 10, &mut out).is_err());
        // One shard of 9 elements cannot fit a 4-row tile even packed.
        assert!(dev.balanced_partition_into(9, 2, 1, &mut out).is_err());
        assert!(dev.balanced_partition_into(0, 2, 1, &mut out).is_err());
        assert!(DeviceConfig::new(1, 0)
            .balanced_partition_into(4, 2, 1, &mut out)
            .is_err());
        assert!(dev.balanced_partition_into(4, 3, 1, &mut out).is_err());
    }

    #[test]
    fn waves_count_grid_rounds() {
        let dev = DeviceConfig::new(4, 2048);
        assert_eq!(dev.waves(1), 1);
        assert_eq!(dev.waves(4), 1);
        assert_eq!(dev.waves(5), 2);
        assert_eq!(dev.waves(9), 3);
        assert_eq!(DeviceConfig::new(0, 2048).waves(3), 3);
    }

    #[test]
    fn reduction_network_grows_logarithmically() {
        let dev = DeviceConfig::default();
        let r2 = dev.reduction_network(2, 16);
        let r4 = dev.reduction_network(4, 16);
        let r8 = dev.reduction_network(8, 16);
        assert_eq!(r2.cycles(), 9);
        assert_eq!(r4.cycles(), 17);
        assert_eq!(r8.cycles(), 25);
        assert_eq!(r8.cell_events(), 8 * 16);
    }

    #[test]
    fn wave_makespan_schedules_greedily() {
        let mut loads = Vec::new();
        assert_eq!(wave_makespan(&[], 4, &mut loads), 0);
        assert_eq!(wave_makespan(&[5], 4, &mut loads), 5);
        assert_eq!(wave_makespan(&[5, 5, 5], 1, &mut loads), 15);
        // uneven jobs: greedy balances them
        assert_eq!(wave_makespan(&[9, 1, 1, 1], 2, &mut loads), 9);
    }
}
