use crate::CycleStats;

/// Calibrated 16 nm per-cell energy model.
///
/// Every compare cycle touches `rows × masked-columns` cells (key
/// broadcast + match evaluation) and every write cycle
/// `tagged-rows × masked-columns` cells; [`CycleStats`] counts both.
/// Energy is simply `events × per-cell energy`, plus a per-cycle
/// controller/peripheral overhead.
///
/// Calibration: two anchors constrain the cell energies. The paper's
/// Table VI reports an optimum energy per operation of `5.88e-3 pJ` at
/// 16 nm / 1 GHz, and its Fig. 6 energy ratios (about 300x vs. A100 on
/// average) pin the per-word energy near 30-90 pJ given the mapped
/// dataflow's measured ~29k cell events per word. Per-cell energies of
/// 2.6 fJ per compare and 4.0 fJ per write satisfy both to within the
/// reproduction's shape tolerance and are physically plausible for a
/// 16 nm SRAM-based CAM bitcell (the blended per-event energy lands at
/// ~3e-3 pJ, the same order as Table VI's figure).
///
/// # Examples
///
/// ```
/// use softmap_ap::{CycleStats, EnergyModel};
///
/// let mut stats = CycleStats::default();
/// stats.charge_compare(1000, 4);
/// let e = EnergyModel::nm16().energy(&stats);
/// assert!(e.total_j > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per cell per compare, femtojoules.
    pub compare_fj_per_cell: f64,
    /// Energy per cell per write, femtojoules.
    pub write_fj_per_cell: f64,
    /// Controller + peripheral energy per cycle, femtojoules.
    pub controller_fj_per_cycle: f64,
}

impl EnergyModel {
    /// The calibrated 16 nm model used throughout the reproduction.
    #[must_use]
    pub fn nm16() -> Self {
        Self {
            compare_fj_per_cell: 2.6,
            write_fj_per_cell: 4.0,
            controller_fj_per_cycle: 60.0,
        }
    }

    /// Computes the energy of an execution described by `stats`.
    #[must_use]
    pub fn energy(&self, stats: &CycleStats) -> EnergyBreakdown {
        let compare_j = stats.compare_cell_events() as f64 * self.compare_fj_per_cell * 1e-15;
        let write_j = stats.write_cell_events() as f64 * self.write_fj_per_cell * 1e-15;
        let controller_j = stats.cycles() as f64 * self.controller_fj_per_cycle * 1e-15;
        EnergyBreakdown {
            compare_j,
            write_j,
            controller_j,
            total_j: compare_j + write_j + controller_j,
        }
    }

    /// Blended energy per cell event ("op") in picojoules — the metric
    /// of the paper's Table VI.
    ///
    /// Returns `None` when no cell events were recorded.
    #[must_use]
    pub fn energy_per_op_pj(&self, stats: &CycleStats) -> Option<f64> {
        let events = stats.cell_events();
        if events == 0 {
            return None;
        }
        Some(self.energy(stats).total_j / events as f64 * 1e12)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nm16()
    }
}

/// Energy of one execution, by component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Compare (search) energy, joules.
    pub compare_j: f64,
    /// Write energy, joules.
    pub write_j: f64,
    /// Controller/peripheral energy, joules.
    pub controller_j: f64,
    /// Total energy, joules.
    pub total_j: f64,
}

impl core::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.3e} J (cmp {:.3e}, wr {:.3e}, ctrl {:.3e})",
            self.total_j, self.compare_j, self.write_j, self.controller_j
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_events() {
        let m = EnergyModel::nm16();
        let mut one = CycleStats::default();
        one.charge_compare(100, 2);
        one.charge_write(10, 2);
        let mut two = CycleStats::default();
        two.charge_compare(100, 2);
        two.charge_write(10, 2);
        two.charge_compare(100, 2);
        two.charge_write(10, 2);
        let e1 = m.energy(&one);
        let e2 = m.energy(&two);
        assert!((e2.total_j - 2.0 * e1.total_j).abs() < 1e-18);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::nm16();
        let mut s = CycleStats::default();
        s.charge_compare(1000, 3);
        s.charge_write(100, 3);
        let e = m.energy(&s);
        assert!((e.total_j - (e.compare_j + e.write_j + e.controller_j)).abs() < 1e-20);
    }

    #[test]
    fn energy_per_op_in_expected_band() {
        // With a compare-heavy mix the blended per-event energy must sit
        // between the compare and write cell energies (plus a small
        // controller contribution).
        let m = EnergyModel::nm16();
        let mut s = CycleStats::default();
        s.charge_compare(2048, 3);
        s.charge_compare(2048, 3);
        s.charge_compare(2048, 3);
        s.charge_write(512, 2);
        let pj = m.energy_per_op_pj(&s).unwrap();
        assert!(pj > 2.0e-3 && pj < 9.0e-3, "got {pj}");
    }

    #[test]
    fn no_events_no_energy_per_op() {
        let m = EnergyModel::nm16();
        assert_eq!(m.energy_per_op_pj(&CycleStats::default()), None);
    }
}
