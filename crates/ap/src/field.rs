/// A contiguous range of CAM columns holding one word per row.
///
/// Bit `i` of the word lives in column `start + i` (LSB first), matching
/// the bit-serial LSB-to-MSB processing order of the paper's LUT passes.
///
/// # Examples
///
/// ```
/// use softmap_ap::Field;
///
/// let f = Field::new(4, 8);
/// assert_eq!(f.col(0), 4);   // LSB
/// assert_eq!(f.col(7), 11);  // MSB
/// assert_eq!(f.width(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Field {
    start: usize,
    width: usize,
}

impl Field {
    /// Creates a field at column `start` spanning `width` columns.
    #[must_use]
    pub fn new(start: usize, width: usize) -> Self {
        Self { start, width }
    }

    /// First (LSB) column.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Width in bits/columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// One-past-the-last column.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.width
    }

    /// Column index of bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn col(&self, i: usize) -> usize {
        assert!(i < self.width, "bit {i} out of field width {}", self.width);
        self.start + i
    }

    /// Sub-field of `width` bits starting at bit `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the sub-field does not fit.
    #[must_use]
    pub fn sub(&self, offset: usize, width: usize) -> Self {
        assert!(
            offset + width <= self.width,
            "sub-field {offset}+{width} exceeds width {}",
            self.width
        );
        Self::new(self.start + offset, width)
    }

    /// Whether two fields share any column.
    #[must_use]
    pub fn overlaps(&self, other: &Field) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Largest value storable in the field.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

impl core::fmt::Display for Field {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cols[{}..{})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let f = Field::new(10, 6);
        assert_eq!(f.end(), 16);
        assert_eq!(f.col(0), 10);
        assert_eq!(f.col(5), 15);
        assert_eq!(f.max_value(), 63);
        assert_eq!(f.to_string(), "cols[10..16)");
    }

    #[test]
    fn overlap_detection() {
        let a = Field::new(0, 4);
        let b = Field::new(4, 4);
        let c = Field::new(3, 2);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn sub_fields() {
        let f = Field::new(8, 8);
        let low = f.sub(0, 4);
        let high = f.sub(4, 4);
        assert_eq!(low.start(), 8);
        assert_eq!(high.start(), 12);
        assert!(!low.overlaps(&high));
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn sub_out_of_range_panics() {
        let _ = Field::new(0, 4).sub(2, 3);
    }

    #[test]
    fn wide_field_max() {
        assert_eq!(Field::new(0, 64).max_value(), u64::MAX);
    }
}
