//! Bit-level Associative Processor (AP) simulator.
//!
//! SoftmAP (DATE 2025) maps its integer-only softmax onto a
//! two-dimensional SRAM-based Associative Processor: a content
//! addressable memory (CAM) whose controller performs arithmetic as
//! sequences of *compare* / *write* cycles driven by per-operation
//! look-up tables (LUTs), bit-serially across word bits and in parallel
//! across all rows (Fig. 3 of the paper).
//!
//! This crate is that machine, built from the cells up:
//!
//! * [`RowSet`] — row bit-vectors backing the tag register and column planes,
//! * [`CamArray`] — the CAM: column bit-planes + key/mask/tag semantics,
//!   with exact cycle and per-cell event accounting,
//! * [`lut`] — LUT pass tables (XOR, addition, subtraction, copy, …)
//!   exactly in the compare/write formulation of the paper,
//! * [`ApCore`] — the controller: word-level operations (add, subtract,
//!   multiply, square, shifts, copy, broadcast, max-search, 2D reduction,
//!   division) composed from LUT passes over [`Field`]s,
//! * [`ExecBackend`] — the dual execution engine: every `ApCore` op runs
//!   either as interpreted bit-serial microcode (ground truth) or on a
//!   fused word-parallel fast path that is bit- and cycle-identical by
//!   contract (see the `backend` module docs for the cost model),
//! * [`ApTile`] — reusable tile state: one flat-arena core handed out
//!   freshly cleared per program, zero allocations in steady state,
//! * [`program`] — the compiled-program IR: a [`Recorder`] captures an
//!   op trace from the `ApCore` API into an [`ApProgram`] that replays
//!   bit- and cycle-exactly on either backend and answers cost queries
//!   ([`ApProgram::static_cost`]) without touching a CAM,
//! * [`device`] — the capacity-bounded device model: the finite tile
//!   grid, shard partitioning for long vectors, wave scheduling, and
//!   the cross-tile reduction-network cost contract,
//! * [`batch`] — the multi-tile batch driver: independent jobs fanned
//!   across host threads, one persistent simulated tile per worker,
//! * [`cost`] — the paper's Table II analytic runtime formulas,
//! * [`EnergyModel`] / [`AreaModel`] — calibrated 16 nm energy and area
//!   models driven by the counted cell events.
//!
//! # Examples
//!
//! The paper's Fig. 3 walk-through — XOR of A = \[3, 0, 2, 3\] and
//! B = \[1, 1, 2, 2\] on 2-bit words:
//!
//! ```
//! use softmap_ap::{ApCore, ApConfig};
//!
//! let mut ap = ApCore::new(ApConfig::new(4, 8)).unwrap();
//! let a = ap.alloc_field(2).unwrap();
//! let b = ap.alloc_field(2).unwrap();
//! let r = ap.alloc_field(2).unwrap();
//! ap.load(a, &[0b11, 0b00, 0b10, 0b11]).unwrap();
//! ap.load(b, &[0b01, 0b01, 0b10, 0b10]).unwrap();
//! ap.xor(a, b, r).unwrap();
//! assert_eq!(ap.read(r), vec![0b10, 0b01, 0b00, 0b01]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod device;
pub mod lut;
pub mod program;

mod area;
mod backend;
mod cam;
mod core_ops;
mod energy;
mod field;
mod rowset;
mod stats;
mod tile;

pub use area::AreaModel;
pub use backend::ExecBackend;
pub use cam::CamArray;
pub use core_ops::{ApConfig, ApCore, DivStyle, Overflow};
pub use device::DeviceConfig;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use field::Field;
pub use program::optimizer::{OptLevel, PassReport};
pub use program::{
    ApOp, ApProgram, BlockStats, ExecIo, Operand, ProgramScratch, Recorder, RegId, STRIP_ENV,
};
pub use rowset::RowSet;
pub use stats::CycleStats;
pub use tile::ApTile;

/// Errors reported by the AP simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApError {
    /// A field allocation or access exceeded the CAM's column count.
    ColumnCapacity {
        /// Columns requested (end of range).
        needed: usize,
        /// Columns available in the array.
        available: usize,
    },
    /// More words were supplied than the CAM has rows.
    RowCapacity {
        /// Rows needed to store the data.
        needed: usize,
        /// Rows available in the array.
        available: usize,
    },
    /// A value does not fit in the destination field width.
    WidthOverflow {
        /// The value that did not fit.
        value: u64,
        /// Field width in bits.
        width: usize,
    },
    /// Fields overlap where an operation requires disjoint fields.
    FieldOverlap,
    /// Division by zero was attempted on at least one active row.
    DivisionByZero,
    /// Configuration values are out of range (zero rows/cols, etc.).
    BadConfig(&'static str),
}

impl core::fmt::Display for ApError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ColumnCapacity { needed, available } => {
                write!(
                    f,
                    "column capacity exceeded: need {needed}, have {available}"
                )
            }
            Self::RowCapacity { needed, available } => {
                write!(f, "row capacity exceeded: need {needed}, have {available}")
            }
            Self::WidthOverflow { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            Self::FieldOverlap => write!(f, "operation requires disjoint fields"),
            Self::DivisionByZero => write!(f, "division by zero on an active row"),
            Self::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for ApError {}
