//! Look-up tables (LUTs) driving the AP's compare/write passes.
//!
//! Every AP operation is a short sequence of passes applied bit-serially
//! (LSB to MSB). Each pass is one *compare* cycle — search a pattern of
//! operand bits across all rows — followed by one *write* cycle that
//! drives result bits into the matching rows (Fig. 3 of the paper).
//!
//! Pass order matters: a row rewritten by an earlier pass must never
//! match the search pattern of a later pass of the same bit position.
//! The tables below encode the published conflict-free orderings.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::lut::{self, Slot};
//!
//! let xor = lut::xor();
//! assert_eq!(xor.passes.len(), 2); // the two passes of the paper's Fig. 3
//! assert_eq!(xor.passes[0].match_bits, vec![(Slot::A, true), (Slot::B, false)]);
//! ```

/// Logical operand slot of a LUT bit: the engine binds each slot to a
/// concrete CAM column per bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// First operand bit.
    A,
    /// Second operand / in-place result bit.
    B,
    /// Out-of-place result bit.
    R,
    /// Carry / borrow bit.
    C,
}

/// One compare/write pass of a LUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutPass {
    /// Pattern searched in the compare cycle.
    pub match_bits: Vec<(Slot, bool)>,
    /// Bits driven in the write cycle into matching rows.
    pub write_bits: Vec<(Slot, bool)>,
}

/// A named sequence of passes implementing one bit of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    /// Operation name (for traces and error messages).
    pub name: &'static str,
    /// Ordered passes; earlier passes must not produce rows matching
    /// later patterns.
    pub passes: Vec<LutPass>,
}

fn pass(match_bits: &[(Slot, bool)], write_bits: &[(Slot, bool)]) -> LutPass {
    LutPass {
        match_bits: match_bits.to_vec(),
        write_bits: write_bits.to_vec(),
    }
}

/// Out-of-place XOR (`R = A ^ B`, `R` pre-cleared): the exact two-pass
/// LUT of the paper's Fig. 3.
#[must_use]
pub fn xor() -> Lut {
    use Slot::{A, B, R};
    Lut {
        name: "xor",
        passes: vec![
            pass(&[(A, true), (B, false)], &[(R, true)]),
            pass(&[(A, false), (B, true)], &[(R, true)]),
        ],
    }
}

/// In-place addition (`B = A + B` with carry column `C`): four passes per
/// bit, i.e. 8 compare/write cycles per bit — the `8M` term of Table II.
///
/// Truth table per bit, `(C, A, B) -> (C', sum)`; only the four changing
/// rows need passes, ordered so rewrites never alias later patterns.
#[must_use]
pub fn add_in_place() -> Lut {
    use Slot::{A, B, C};
    Lut {
        name: "add",
        passes: vec![
            // (0,1,1) -> carry 1, sum 0
            pass(
                &[(C, false), (A, true), (B, true)],
                &[(C, true), (B, false)],
            ),
            // (0,1,0) -> sum 1
            pass(&[(C, false), (A, true), (B, false)], &[(B, true)]),
            // (1,0,0) -> carry 0, sum 1
            pass(
                &[(C, true), (A, false), (B, false)],
                &[(C, false), (B, true)],
            ),
            // (1,0,1) -> sum 0 (carry stays 1)
            pass(&[(C, true), (A, false), (B, true)], &[(B, false)]),
        ],
    }
}

/// In-place subtraction (`B = B - A` with borrow column `C`): four passes
/// per bit.
#[must_use]
pub fn sub_in_place() -> Lut {
    use Slot::{A, B, C};
    Lut {
        name: "sub",
        passes: vec![
            // (0,1,0): 0-1 -> diff 1, borrow 1
            pass(
                &[(C, false), (A, true), (B, false)],
                &[(C, true), (B, true)],
            ),
            // (0,1,1): 1-1 -> diff 0
            pass(&[(C, false), (A, true), (B, true)], &[(B, false)]),
            // (1,0,1): 1-0-1 -> diff 0, borrow 0
            pass(
                &[(C, true), (A, false), (B, true)],
                &[(C, false), (B, false)],
            ),
            // (1,0,0): 0-0-1 -> diff 1 (borrow stays 1)
            pass(&[(C, true), (A, false), (B, false)], &[(B, true)]),
        ],
    }
}

/// Carry ripple into accumulator bits above the addend width
/// (`B = B + C`): two passes per bit.
#[must_use]
pub fn carry_ripple() -> Lut {
    use Slot::{B, C};
    Lut {
        name: "carry-ripple",
        passes: vec![
            // (C=1, B=0) -> B=1, carry consumed
            pass(&[(C, true), (B, false)], &[(C, false), (B, true)]),
            // (C=1, B=1) -> B=0, carry propagates
            pass(&[(C, true), (B, true)], &[(B, false)]),
        ],
    }
}

/// Borrow ripple for subtraction above the subtrahend width
/// (`B = B - C`): two passes per bit.
#[must_use]
pub fn borrow_ripple() -> Lut {
    use Slot::{B, C};
    Lut {
        name: "borrow-ripple",
        passes: vec![
            // (C=1, B=1) -> B=0, borrow consumed
            pass(&[(C, true), (B, true)], &[(C, false), (B, false)]),
            // (C=1, B=0) -> B=1, borrow propagates
            pass(&[(C, true), (B, false)], &[(B, true)]),
        ],
    }
}

/// Out-of-place AND (`R = A & B`, `R` pre-cleared): one pass per bit.
#[must_use]
pub fn and() -> Lut {
    use Slot::{A, B, R};
    Lut {
        name: "and",
        passes: vec![pass(&[(A, true), (B, true)], &[(R, true)])],
    }
}

/// Out-of-place OR (`R = A | B`, `R` pre-cleared): three passes per bit
/// (one per minterm with a set output; the AP searches each pattern).
#[must_use]
pub fn or() -> Lut {
    use Slot::{A, B, R};
    Lut {
        name: "or",
        passes: vec![
            pass(&[(A, true), (B, true)], &[(R, true)]),
            pass(&[(A, true), (B, false)], &[(R, true)]),
            pass(&[(A, false), (B, true)], &[(R, true)]),
        ],
    }
}

/// Out-of-place NOT (`R = !A`): two passes per bit.
#[must_use]
pub fn not() -> Lut {
    use Slot::{A, R};
    Lut {
        name: "not",
        passes: vec![
            pass(&[(A, true)], &[(R, false)]),
            pass(&[(A, false)], &[(R, true)]),
        ],
    }
}

/// Out-of-place copy (`R = A`): two passes per bit, no pre-clear needed.
#[must_use]
pub fn copy() -> Lut {
    use Slot::{A, R};
    Lut {
        name: "copy",
        passes: vec![
            pass(&[(A, true)], &[(R, true)]),
            pass(&[(A, false)], &[(R, false)]),
        ],
    }
}

/// One instance of every LUT, built once per [`crate::ApCore`] and
/// reused across all operations and all vectors a tile executes.
///
/// The constructors above allocate their pass vectors; before this
/// cache, every `add_into`/`mul`/`copy` call rebuilt its tables,
/// costing a handful of heap allocations per word-level op. A reusable
/// tile holds one `LutSet` for its whole lifetime, which is part of
/// the zero-allocation steady state of the pooled execution path.
#[derive(Debug, Clone)]
pub(crate) struct LutSet {
    pub(crate) xor: Lut,
    pub(crate) and: Lut,
    pub(crate) or: Lut,
    pub(crate) not: Lut,
    pub(crate) add: Lut,
    pub(crate) sub: Lut,
    pub(crate) carry_ripple: Lut,
    pub(crate) borrow_ripple: Lut,
    pub(crate) copy: Lut,
}

impl LutSet {
    pub(crate) fn new() -> Self {
        Self {
            xor: xor(),
            and: and(),
            or: or(),
            not: not(),
            add: add_in_place(),
            sub: sub_in_place(),
            carry_ripple: carry_ripple(),
            borrow_ripple: borrow_ripple(),
            copy: copy(),
        }
    }
}

/// All LUTs, for enumeration in tests and documentation.
#[must_use]
pub fn all() -> Vec<Lut> {
    vec![
        xor(),
        and(),
        or(),
        not(),
        add_in_place(),
        sub_in_place(),
        carry_ripple(),
        borrow_ripple(),
        copy(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Software model of one bit position: apply the LUT's passes to a
    /// state map Slot -> bool and return the final state.
    fn apply(lut: &Lut, mut state: BTreeMap<&'static str, bool>) -> BTreeMap<&'static str, bool> {
        let key = |s: Slot| match s {
            Slot::A => "a",
            Slot::B => "b",
            Slot::R => "r",
            Slot::C => "c",
        };
        for p in &lut.passes {
            let matches = p
                .match_bits
                .iter()
                .all(|&(s, v)| state.get(key(s)).copied().unwrap_or(false) == v);
            if matches {
                for &(s, v) in &p.write_bits {
                    state.insert(key(s), v);
                }
            }
        }
        state
    }

    fn state(a: bool, b: bool, c: bool, r: bool) -> BTreeMap<&'static str, bool> {
        BTreeMap::from([("a", a), ("b", b), ("c", c), ("r", r)])
    }

    #[test]
    fn xor_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let out = apply(&xor(), state(a, b, false, false));
                assert_eq!(out["r"], a ^ b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_truth_table_including_pass_order() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = apply(&add_in_place(), state(a, b, c, false));
                    let total = u8::from(a) + u8::from(b) + u8::from(c);
                    assert_eq!(out["b"], total & 1 == 1, "a={a} b={b} c={c}");
                    assert_eq!(out["c"], total >= 2, "a={a} b={b} c={c}");
                    assert_eq!(out["a"], a, "operand A must never change");
                }
            }
        }
    }

    #[test]
    fn sub_truth_table_including_pass_order() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let out = apply(&sub_in_place(), state(a, b, c, false));
                    let diff = i8::from(b) - i8::from(a) - i8::from(c);
                    assert_eq!(out["b"], diff.rem_euclid(2) == 1, "a={a} b={b} c={c}");
                    assert_eq!(out["c"], diff < 0, "a={a} b={b} c={c}");
                    assert_eq!(out["a"], a);
                }
            }
        }
    }

    #[test]
    fn carry_ripple_truth_table() {
        for b in [false, true] {
            for c in [false, true] {
                let out = apply(&carry_ripple(), state(false, b, c, false));
                let total = u8::from(b) + u8::from(c);
                assert_eq!(out["b"], total & 1 == 1, "b={b} c={c}");
                assert_eq!(out["c"], total >= 2, "b={b} c={c}");
            }
        }
    }

    #[test]
    fn borrow_ripple_truth_table() {
        for b in [false, true] {
            for c in [false, true] {
                let out = apply(&borrow_ripple(), state(false, b, c, false));
                let diff = i8::from(b) - i8::from(c);
                assert_eq!(out["b"], diff.rem_euclid(2) == 1, "b={b} c={c}");
                assert_eq!(out["c"], diff < 0, "b={b} c={c}");
            }
        }
    }

    #[test]
    fn and_or_not_truth_tables() {
        for a in [false, true] {
            for b_ in [false, true] {
                let out = apply(&and(), state(a, b_, false, false));
                assert_eq!(out["r"], a && b_);
                let out = apply(&or(), state(a, b_, false, false));
                assert_eq!(out["r"], a || b_);
            }
            let out = apply(&not(), state(a, false, false, true));
            assert_eq!(out["r"], !a);
        }
    }

    #[test]
    fn copy_truth_table() {
        for a in [false, true] {
            for r0 in [false, true] {
                let out = apply(&copy(), state(a, false, false, r0));
                assert_eq!(out["r"], a);
            }
        }
    }

    #[test]
    fn add_has_four_passes_matching_table_ii() {
        // 4 passes * (1 compare + 1 write) = 8 cycles per bit -> 8M.
        assert_eq!(add_in_place().passes.len(), 4);
        assert_eq!(sub_in_place().passes.len(), 4);
    }

    #[test]
    fn all_luts_have_unique_names() {
        let luts = all();
        let mut names: Vec<_> = luts.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), luts.len());
    }
}
