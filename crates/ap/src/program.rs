//! Compiled AP programs: record an op trace once, replay it many times.
//!
//! The SoftmAP dataflow is *static*: for a fixed (layout, rows,
//! precision, division style) the controller issues the same sixteen-step
//! microcode sequence for every vector — only the data changes. SOLE and
//! VEXP exploit exactly this to precompute their schedules; this module
//! is the equivalent layer for the simulated AP.
//!
//! Three pieces:
//!
//! * [`ApOp`] — one controller-level operation with **pre-resolved**
//!   field column ranges, input/output slots, and scalar registers.
//!   Host-side values that the controller derives at run time (the
//!   min-search result, the reduction sum) flow through *registers*
//!   ([`RegId`]) instead of being burned into the trace, so a recorded
//!   program is valid for any input of the same shape.
//! * [`Recorder`] — wraps an [`ApCore`] with the same op vocabulary the
//!   mapping layer uses, executing each op as it is issued and
//!   (optionally) appending it to a trace together with the exact
//!   [`CycleStats`] delta it charged. `Recorder::finish` turns the
//!   trace into an [`ApProgram`].
//! * [`ApProgram::replay`] — runs a program on any core of the same
//!   geometry, on either [`crate::ExecBackend`], with **bit- and
//!   cycle-exact** results versus issuing the same ops directly
//!   (enforced by the differential proptests in
//!   `crates/ap/tests/program_replay.rs`).
//!
//! [`ApProgram::static_cost`] returns the cycle/cell-event totals
//! recorded at compile time — a cost query that touches no CAM. Cycle
//! counts of the mapped dataflow are shape-determined except for
//! data-dependent microcode inside a few ops (the restoring divider's
//! restore adds, saturating subtractions that underflow nowhere,
//! variable shifts, the reciprocal divider's distinct-divisor count) and
//! write-tag populations, so the static cost is exact for the input the
//! program was compiled from and for any input following the same
//! microcode path; `softmap`'s cost tables compile from a deterministic
//! representative input for exactly this reason.
//!
//! # The residency contract
//!
//! Sharded phase programs can execute **resident**: the shard's tile is
//! not cleared between the min-search, exp, and divide phases, so each
//! phase's input planes are the previous phase's output planes, still
//! in the arena. For this to be sound the three phase programs of one
//! shard length must compile against a *shared field layout* — the same
//! allocation order at the same union geometry in every phase — so
//! column ranges line up across phase boundaries. The persistent fields
//! are the per-half score planes `x` (written once by the min phase,
//! stabilized in place and consumed by the exp phase) and the per-half
//! `v_approx` planes (written by the exp phase, consumed by the divide
//! phase); every other field is written before it is read within its
//! own phase, so junk left by a previous phase is harmless — both
//! backends' dividers zero their remainder/quotient scratch before use.
//! Cost-wise, residency elides the phase-boundary `Load`/`Read` staging
//! ops entirely (they are simply not recorded in the resident phase
//! programs), and same-length resident shards execute the identical
//! program in SIMD lockstep across tiles: the wave's first shard of a
//! length replays at full price, the rest through
//! [`ApProgram::replay_lockstep`], which charges only per-tile-distinct
//! input staging. Both discounts charge identical [`CycleStats`] on
//! both backends. The re-staged path (and the automatic fallback when a
//! vector's shards exceed the tile grid) is unchanged from before
//! residency existed.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::{ApConfig, ApCore, CycleStats};
//! use softmap_ap::program::{ExecIo, ProgramScratch, Recorder};
//!
//! // Record: x += 1 over every row, then read x back.
//! let mut core = ApCore::new(ApConfig::new(4, 20)).unwrap();
//! let x = core.alloc_field(6).unwrap();
//! let one = core.alloc_field(6).unwrap();
//! let data: Vec<u64> = vec![1, 2, 3, 4];
//! let inputs: [&[u64]; 1] = [&data];
//! let mut out = Vec::new();
//! {
//!     let mut outs: [&mut Vec<u64>; 1] = [&mut out];
//!     let mut scratch = ProgramScratch::default();
//!     let mut on_step = |_: &'static str, _: CycleStats| {};
//!     let mut rec = Recorder::new(
//!         &mut core,
//!         ExecIo::new(&inputs, &mut outs),
//!         &mut scratch,
//!         &mut on_step,
//!         true,
//!     );
//!     rec.load(x, 0).unwrap();
//!     rec.broadcast(one, 1).unwrap();
//!     rec.add_into(x, one).unwrap();
//!     rec.read(x, 0).unwrap();
//!     let program = rec.finish().unwrap();
//!     assert_eq!(out, vec![2, 3, 4, 5]);
//!     // The recorded cost is the recording execution's cost, exactly.
//!     assert_eq!(program.static_cost(), core.stats());
//!
//!     // Replay on a fresh core with new data: no re-deciding, no field
//!     // allocation — the ops carry resolved column ranges.
//!     let mut core2 = ApCore::new(ApConfig::new(4, 20)).unwrap();
//!     let data2: Vec<u64> = vec![10, 20, 30, 40];
//!     let inputs2: [&[u64]; 1] = [&data2];
//!     let mut out2 = Vec::new();
//!     let mut outs2: [&mut Vec<u64>; 1] = [&mut out2];
//!     program
//!         .replay(
//!             &mut core2,
//!             ExecIo::new(&inputs2, &mut outs2),
//!             &mut scratch,
//!             |_, _| {},
//!         )
//!         .unwrap();
//!     assert_eq!(out2, vec![11, 21, 31, 41]);
//! }
//! ```

pub mod optimizer;

use crate::{ApConfig, ApCore, ApError, CycleStats, DivStyle, ExecBackend, Field, Overflow};

/// Index of a scalar register: a host-side value a program derives at
/// run time (a min-search result, a reduction sum) and feeds back into
/// later ops. Register contents live in [`ProgramScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegId(u32);

impl RegId {
    /// The register's index into [`ProgramScratch`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A broadcast value: a compile-time constant or a register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A constant resolved at compile time (the dataflow's µ, v_ln2,
    /// v_b, v_c writes).
    Const(u64),
    /// The current value of a scalar register.
    Reg(RegId),
}

/// One operation of a compiled AP program. Field operands are
/// pre-resolved column ranges; host I/O references input/output *slots*
/// bound at replay time; scalar values flow through registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApOp {
    /// Bulk-load input slot `input` into `field` (the dataflow's
    /// "Write v" steps).
    Load {
        /// Destination field.
        field: Field,
        /// Input slot index.
        input: u32,
    },
    /// Broadcast a constant or register value into `field` on all rows.
    Broadcast {
        /// Destination field.
        field: Field,
        /// The value to drive.
        value: Operand,
    },
    /// Out-of-place copy `dst = src`.
    Copy {
        /// Source field.
        src: Field,
        /// Destination field.
        dst: Field,
    },
    /// Out-of-place multiply `r = a * b` (gated shift-add LUT sweep).
    Mul {
        /// Left operand.
        a: Field,
        /// Right operand.
        b: Field,
        /// Result field (`a.width() + b.width()` bits or wider).
        r: Field,
    },
    /// In-place addition `acc += src`.
    AddInto {
        /// Accumulator.
        acc: Field,
        /// Addend.
        src: Field,
    },
    /// In-place subtraction `acc -= src` whose borrow set must be empty
    /// by construction (checked with a debug assertion at replay, as on
    /// the direct-issue path).
    SubAssertClean {
        /// Accumulator.
        acc: Field,
        /// Subtrahend.
        src: Field,
    },
    /// Saturating in-place subtraction `acc = max(acc - src, 0)`.
    SaturatingSubInto {
        /// Accumulator.
        acc: Field,
        /// Subtrahend.
        src: Field,
    },
    /// In-place logical right shift by a constant.
    ShrConst {
        /// The shifted field.
        field: Field,
        /// Shift amount in bits.
        k: usize,
    },
    /// In-place per-row variable right shift (`field >>= amount`).
    ShrVariable {
        /// The shifted field.
        field: Field,
        /// Per-row shift amounts.
        amount: Field,
    },
    /// Bit-serial minimum search over `field`; the minimum value lands
    /// in register `dst` (one compare cycle per bit).
    MinSearch {
        /// Searched field.
        field: Field,
        /// Destination register.
        dst: RegId,
    },
    /// Scalar register minimum `dst = min(a, b)` (controller-side,
    /// free).
    RegMin {
        /// Destination register.
        dst: RegId,
        /// First operand register.
        a: RegId,
        /// Second operand register.
        b: RegId,
    },
    /// Scalar clamp `dst = max(src, 1)` — the divisor clamp after a
    /// wrapped reduction (controller-side, free).
    RegMax1 {
        /// Destination register.
        dst: RegId,
        /// Source register.
        src: RegId,
    },
    /// Load scalar input slot `slot` into register `dst` — how values
    /// computed outside this program (a cross-tile reduction result
    /// arriving over the reduction network) enter a shard's replay.
    /// Controller-side and free here; the network transfer itself is
    /// charged by the device model's reduction-cost contract.
    RegLoad {
        /// Destination register.
        dst: RegId,
        /// Scalar input slot index.
        slot: u32,
    },
    /// 2D row-parallel tree reduction of `field` over segments of
    /// `segment_rows` rows; the first segment's sum lands in `dst`.
    ReduceSum {
        /// Summed field.
        field: Field,
        /// Per-segment sum landing field.
        sum_field: Field,
        /// Rows per segment.
        segment_rows: usize,
        /// Overflow behaviour.
        mode: Overflow,
        /// Destination register (first segment's sum).
        dst: RegId,
    },
    /// Word-parallel fixed-point division
    /// `quot = (num << frac_bits) / den`.
    Divide {
        /// Numerator field.
        num: Field,
        /// Divisor field.
        den: Field,
        /// Quotient field.
        quot: Field,
        /// Fixed-point fraction bits.
        frac_bits: usize,
        /// Division microcode style.
        style: DivStyle,
    },
    /// Optimizer-generated fused constant multiply `r = a * bits`
    /// (folded from a `Broadcast(Const)` + [`ApOp::Mul`] pair): the
    /// controller knows every multiplier bit at compile time, so zero
    /// bits issue no LUT sweep at all and set bits run ungated. The
    /// result planes — the carry column included — are identical to
    /// the broadcast-then-multiply pair on both backends.
    MulConst {
        /// Multiplicand field.
        a: Field,
        /// Result field (`a.width() + width` bits or wider).
        r: Field,
        /// The constant multiplier, resolved at compile time.
        bits: u64,
        /// Multiplier width in bits (the folded `b` operand's width).
        width: usize,
    },
    /// Optimizer-generated fused restoring division: the same plane
    /// math as [`ApOp::Divide`] with [`DivStyle::Restoring`], but the
    /// controller renames the remainder window each iteration instead
    /// of physically shifting it (one canonicalization copy per
    /// channel replaces the per-iteration shift sweeps), and up to two
    /// divisions sharing one divisor run as a single batched arena
    /// pass.
    FusedDivide {
        /// Shared divisor field.
        den: Field,
        /// Fixed-point fraction bits.
        frac_bits: usize,
        /// `(numerator, quotient)` channel pairs; only the first
        /// `n_channels` entries are live.
        channels: [(Field, Field); 2],
        /// Number of live channels (1 or 2).
        n_channels: u8,
    },
    /// Append `field`'s words to output slot `output` (free read-out).
    Read {
        /// Source field.
        field: Field,
        /// Output slot index.
        output: u32,
    },
    /// A named step boundary: replay reports the [`CycleStats`] charged
    /// since the previous boundary to the step callback.
    Step {
        /// Step name (the mapping uses Fig. 5 step labels).
        name: &'static str,
    },
}

/// Reusable run-time state for recording and replay: scalar registers
/// plus the reduction-sums staging buffer. Keep one per worker (the
/// mapping's `TileState` does) so steady-state replay allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct ProgramScratch {
    regs: Vec<u64>,
    sums: Vec<u64>,
}

impl ProgramScratch {
    /// The current value of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register was never written in the last
    /// record/replay.
    #[must_use]
    pub fn reg(&self, id: RegId) -> u64 {
        self.regs[id.index()]
    }

    fn set_reg(&mut self, id: RegId, value: u64) -> Result<(), ApError> {
        let i = id.index();
        match i.cmp(&self.regs.len()) {
            core::cmp::Ordering::Less => self.regs[i] = value,
            core::cmp::Ordering::Equal => self.regs.push(value),
            core::cmp::Ordering::Greater => {
                return Err(ApError::BadConfig("program register out of range"))
            }
        }
        Ok(())
    }

    fn get_reg(&self, id: RegId) -> Result<u64, ApError> {
        self.regs
            .get(id.index())
            .copied()
            .ok_or(ApError::BadConfig("program register read before write"))
    }
}

/// Borrowed input/output bindings for one program execution: `inputs`
/// are the bulk-load word slices ([`ApOp::Load`] slots), `outputs` the
/// read-out buffers ([`ApOp::Read`] slots, appended to), and `scalars`
/// the externally computed register values ([`ApOp::RegLoad`] slots —
/// cross-tile reduction results fed back into a shard).
pub struct ExecIo<'s, 'd> {
    inputs: &'s [&'d [u64]],
    outputs: &'s mut [&'d mut Vec<u64>],
    scalars: &'s [u64],
}

impl<'s, 'd> ExecIo<'s, 'd> {
    /// Binds input and output slots (no scalar inputs).
    pub fn new(inputs: &'s [&'d [u64]], outputs: &'s mut [&'d mut Vec<u64>]) -> Self {
        Self {
            inputs,
            outputs,
            scalars: &[],
        }
    }

    /// Binds scalar input slots on top of the word I/O.
    #[must_use]
    pub fn with_scalars(mut self, scalars: &'s [u64]) -> Self {
        self.scalars = scalars;
        self
    }

    fn input(&self, slot: u32) -> Result<&'d [u64], ApError> {
        self.inputs
            .get(slot as usize)
            .copied()
            .ok_or(ApError::BadConfig("program input slot out of range"))
    }

    fn output(&mut self, slot: u32) -> Result<&mut Vec<u64>, ApError> {
        self.outputs
            .get_mut(slot as usize)
            .map(|v| &mut **v)
            .ok_or(ApError::BadConfig("program output slot out of range"))
    }

    fn scalar(&self, slot: u32) -> Result<u64, ApError> {
        self.scalars
            .get(slot as usize)
            .copied()
            .ok_or(ApError::BadConfig("program scalar slot out of range"))
    }
}

/// Executes one op against destructured run-time state. This is the
/// single execution engine behind both the recording path and replay,
/// so the two cannot diverge.
fn apply_op(
    core: &mut ApCore,
    op: &ApOp,
    io: &mut ExecIo<'_, '_>,
    scratch: &mut ProgramScratch,
    mark: &mut CycleStats,
    on_step: &mut dyn FnMut(&'static str, CycleStats),
) -> Result<(), ApError> {
    match *op {
        ApOp::Load { field, input } => core.load(field, io.input(input)?),
        ApOp::Broadcast { field, value } => {
            let v = match value {
                Operand::Const(c) => c,
                Operand::Reg(r) => scratch.get_reg(r)?,
            };
            core.broadcast(field, v)
        }
        ApOp::Copy { src, dst } => core.copy(src, dst),
        ApOp::Mul { a, b, r } => core.mul(a, b, r),
        ApOp::AddInto { acc, src } => core.add_into(acc, src),
        ApOp::SubAssertClean { acc, src } => {
            let clean = core.sub_into_ref(acc, src)?.is_none_set();
            debug_assert!(clean, "recorded subtraction must not underflow");
            let _ = clean;
            Ok(())
        }
        ApOp::SaturatingSubInto { acc, src } => core.saturating_sub_into(acc, src),
        ApOp::ShrConst { field, k } => core.shr_const(field, k),
        ApOp::ShrVariable { field, amount } => core.shr_variable(field, amount),
        ApOp::MinSearch { field, dst } => {
            let v = core.min_search_value(field);
            scratch.set_reg(dst, v)
        }
        ApOp::RegMin { dst, a, b } => {
            let v = scratch.get_reg(a)?.min(scratch.get_reg(b)?);
            scratch.set_reg(dst, v)
        }
        ApOp::RegMax1 { dst, src } => {
            let v = scratch.get_reg(src)?.max(1);
            scratch.set_reg(dst, v)
        }
        ApOp::RegLoad { dst, slot } => {
            let v = io.scalar(slot)?;
            scratch.set_reg(dst, v)
        }
        ApOp::ReduceSum {
            field,
            sum_field,
            segment_rows,
            mode,
            dst,
        } => {
            let ProgramScratch { sums, .. } = scratch;
            core.reduce_sum_2d_mode_into(field, sum_field, segment_rows, mode, sums)?;
            let first = scratch.sums[0];
            scratch.set_reg(dst, first)
        }
        ApOp::Divide {
            num,
            den,
            quot,
            frac_bits,
            style,
        } => core.divide(num, den, quot, frac_bits, style),
        ApOp::MulConst { a, r, bits, width } => core.mul_const(a, r, bits, width),
        ApOp::FusedDivide {
            den,
            frac_bits,
            ref channels,
            n_channels,
        } => core.fused_divide(&channels[..n_channels as usize], den, frac_bits),
        ApOp::Read { field, output } => {
            core.read_append(field, io.output(output)?);
            Ok(())
        }
        ApOp::Step { name } => {
            let now = core.stats();
            on_step(name, now.since(mark));
            *mark = now;
            Ok(())
        }
    }
}

/// Trace under construction: the ops issued so far and the exact cost
/// each charged during the recording execution.
#[derive(Debug, Default)]
struct Trace {
    ops: Vec<ApOp>,
    costs: Vec<CycleStats>,
    last: CycleStats,
}

/// Issues controller ops against an [`ApCore`], optionally recording
/// them into an [`ApProgram`]. In pass-through mode (`record = false`)
/// the recorder is a zero-overhead adapter: ops execute directly and
/// nothing is retained — the mapping layer's *direct-issue* path.
///
/// The recorder captures the core's current column-allocation cursor at
/// construction; replay restores it so ops that allocate scratch
/// internally (division) land on the same columns they did while
/// recording.
pub struct Recorder<'s, 'd> {
    core: &'s mut ApCore,
    io: ExecIo<'s, 'd>,
    scratch: &'s mut ProgramScratch,
    on_step: &'s mut dyn FnMut(&'static str, CycleStats),
    mark: CycleStats,
    reserved_cols: usize,
    num_regs: u32,
    trace: Option<Trace>,
}

impl<'s, 'd> Recorder<'s, 'd> {
    /// Starts issuing (and, when `record` is set, recording) on `core`.
    /// All fields the program touches must already be allocated; the
    /// step callback receives the per-step cost deltas exactly as
    /// replay will report them.
    pub fn new(
        core: &'s mut ApCore,
        io: ExecIo<'s, 'd>,
        scratch: &'s mut ProgramScratch,
        on_step: &'s mut dyn FnMut(&'static str, CycleStats),
        record: bool,
    ) -> Self {
        scratch.regs.clear();
        scratch.sums.clear();
        let mark = core.stats();
        let reserved_cols = core.cols() - core.free_cols();
        Self {
            core,
            io,
            scratch,
            on_step,
            mark,
            reserved_cols,
            num_regs: 0,
            trace: record.then(|| Trace {
                last: mark,
                ..Trace::default()
            }),
        }
    }

    /// Executes `op` and appends it (with its cost) to the trace.
    fn issue(&mut self, op: ApOp) -> Result<(), ApError> {
        apply_op(
            self.core,
            &op,
            &mut self.io,
            self.scratch,
            &mut self.mark,
            self.on_step,
        )?;
        if let Some(t) = &mut self.trace {
            let now = self.core.stats();
            t.costs.push(now.since(&t.last));
            t.last = now;
            t.ops.push(op);
        }
        Ok(())
    }

    fn alloc_reg(&mut self) -> RegId {
        let id = RegId(self.num_regs);
        self.num_regs += 1;
        id
    }

    /// Rows of the underlying core (for shape-derived op parameters
    /// like the reduction segment size).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.core.rows()
    }

    /// Marks a named step boundary.
    pub fn step(&mut self, name: &'static str) {
        self.issue(ApOp::Step { name })
            .expect("step marks cannot fail");
    }

    /// Bulk-loads input slot `input` into `field`.
    ///
    /// # Errors
    ///
    /// See [`ApCore::load`]; also errors on an unbound input slot.
    pub fn load(&mut self, field: Field, input: usize) -> Result<(), ApError> {
        self.issue(ApOp::Load {
            field,
            input: u32::try_from(input).map_err(|_| ApError::BadConfig("input slot too large"))?,
        })
    }

    /// Broadcasts a constant into `field` on all rows.
    ///
    /// # Errors
    ///
    /// See [`ApCore::broadcast`].
    pub fn broadcast(&mut self, field: Field, value: u64) -> Result<(), ApError> {
        self.issue(ApOp::Broadcast {
            field,
            value: Operand::Const(value),
        })
    }

    /// Broadcasts a register's value into `field` on all rows.
    ///
    /// # Errors
    ///
    /// See [`ApCore::broadcast`].
    pub fn broadcast_reg(&mut self, field: Field, reg: RegId) -> Result<(), ApError> {
        self.issue(ApOp::Broadcast {
            field,
            value: Operand::Reg(reg),
        })
    }

    /// Out-of-place copy; see [`ApCore::copy`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::copy`].
    pub fn copy(&mut self, src: Field, dst: Field) -> Result<(), ApError> {
        self.issue(ApOp::Copy { src, dst })
    }

    /// Out-of-place multiply; see [`ApCore::mul`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::mul`].
    pub fn mul(&mut self, a: Field, b: Field, r: Field) -> Result<(), ApError> {
        self.issue(ApOp::Mul { a, b, r })
    }

    /// In-place addition; see [`ApCore::add_into`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::add_into`].
    pub fn add_into(&mut self, acc: Field, src: Field) -> Result<(), ApError> {
        self.issue(ApOp::AddInto { acc, src })
    }

    /// In-place subtraction that must not underflow by construction
    /// (debug-asserted); see [`ApCore::sub_into_ref`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::sub_into`].
    pub fn sub_assert_clean(&mut self, acc: Field, src: Field) -> Result<(), ApError> {
        self.issue(ApOp::SubAssertClean { acc, src })
    }

    /// Saturating in-place subtraction; see
    /// [`ApCore::saturating_sub_into`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::saturating_sub_into`].
    pub fn saturating_sub_into(&mut self, acc: Field, src: Field) -> Result<(), ApError> {
        self.issue(ApOp::SaturatingSubInto { acc, src })
    }

    /// Constant right shift; see [`ApCore::shr_const`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::shr_const`].
    pub fn shr_const(&mut self, field: Field, k: usize) -> Result<(), ApError> {
        self.issue(ApOp::ShrConst { field, k })
    }

    /// Per-row variable right shift; see [`ApCore::shr_variable`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::shr_variable`].
    pub fn shr_variable(&mut self, field: Field, amount: Field) -> Result<(), ApError> {
        self.issue(ApOp::ShrVariable { field, amount })
    }

    /// Bit-serial minimum search into a fresh register; see
    /// [`ApCore::min_search_value`].
    pub fn min_search(&mut self, field: Field) -> RegId {
        let dst = self.alloc_reg();
        self.issue(ApOp::MinSearch { field, dst })
            .expect("min search cannot fail");
        dst
    }

    /// Scalar register minimum into a fresh register (controller-side,
    /// free).
    pub fn reg_min(&mut self, a: RegId, b: RegId) -> RegId {
        let dst = self.alloc_reg();
        self.issue(ApOp::RegMin { dst, a, b })
            .expect("register ops on recorded registers cannot fail");
        dst
    }

    /// Scalar clamp `max(src, 1)` into a fresh register
    /// (controller-side, free).
    pub fn reg_max1(&mut self, src: RegId) -> RegId {
        let dst = self.alloc_reg();
        self.issue(ApOp::RegMax1 { dst, src })
            .expect("register ops on recorded registers cannot fail");
        dst
    }

    /// Loads scalar input slot `slot` into a fresh register — how a
    /// cross-tile value (global minimum, combined sum) enters a shard's
    /// program.
    ///
    /// # Errors
    ///
    /// Errors on an unbound scalar slot.
    pub fn reg_input(&mut self, slot: usize) -> Result<RegId, ApError> {
        let dst = self.alloc_reg();
        self.issue(ApOp::RegLoad {
            dst,
            slot: u32::try_from(slot).map_err(|_| ApError::BadConfig("scalar slot too large"))?,
        })?;
        Ok(dst)
    }

    /// 2D tree reduction; the first segment's sum lands in the returned
    /// register. See [`ApCore::reduce_sum_2d_mode_into`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::reduce_sum_2d_mode_into`].
    pub fn reduce_sum(
        &mut self,
        field: Field,
        sum_field: Field,
        segment_rows: usize,
        mode: Overflow,
    ) -> Result<RegId, ApError> {
        let dst = self.alloc_reg();
        self.issue(ApOp::ReduceSum {
            field,
            sum_field,
            segment_rows,
            mode,
            dst,
        })?;
        Ok(dst)
    }

    /// Word-parallel division; see [`ApCore::divide`].
    ///
    /// # Errors
    ///
    /// See [`ApCore::divide`].
    pub fn divide(
        &mut self,
        num: Field,
        den: Field,
        quot: Field,
        frac_bits: usize,
        style: DivStyle,
    ) -> Result<(), ApError> {
        self.issue(ApOp::Divide {
            num,
            den,
            quot,
            frac_bits,
            style,
        })
    }

    /// Appends `field`'s words to output slot `output`.
    ///
    /// # Errors
    ///
    /// Errors on an unbound output slot.
    pub fn read(&mut self, field: Field, output: usize) -> Result<(), ApError> {
        self.issue(ApOp::Read {
            field,
            output: u32::try_from(output)
                .map_err(|_| ApError::BadConfig("output slot too large"))?,
        })
    }

    /// Ends the recording. Returns the compiled program, or `None` in
    /// pass-through mode.
    #[must_use]
    pub fn finish(self) -> Option<ApProgram> {
        let trace = self.trace?;
        let summary = summarize(&trace.ops, &trace.costs);
        Some(ApProgram {
            config: ApConfig::new(self.core.rows(), self.core.cols()),
            reserved_cols: self.reserved_cols,
            num_regs: self.num_regs as usize,
            num_inputs: summary.num_inputs as usize,
            num_outputs: summary.num_outputs as usize,
            num_scalars: summary.num_scalars as usize,
            ops: trace.ops,
            costs: trace.costs,
            static_total: summary.static_total,
            static_steps: summary.static_steps,
            hoisted: Vec::new(),
            blocking: None,
        })
    }
}

/// Static summary of a trace: totals, per-step segments, and slot
/// counts — shared by [`Recorder::finish`] and [`ApProgram::recost`].
struct TraceSummary {
    static_total: CycleStats,
    static_steps: Vec<(&'static str, CycleStats)>,
    num_inputs: u32,
    num_outputs: u32,
    num_scalars: u32,
}

fn summarize(ops: &[ApOp], costs: &[CycleStats]) -> TraceSummary {
    let mut static_total = CycleStats::default();
    for c in costs {
        static_total.accumulate(c);
    }
    let mut static_steps = Vec::new();
    let mut seg = CycleStats::default();
    let mut num_inputs = 0u32;
    let mut num_outputs = 0u32;
    let mut num_scalars = 0u32;
    for (op, cost) in ops.iter().zip(costs) {
        match *op {
            ApOp::Step { name } => {
                static_steps.push((name, seg));
                seg = CycleStats::default();
            }
            ApOp::Load { input, .. } => {
                num_inputs = num_inputs.max(input + 1);
                seg.accumulate(cost);
            }
            ApOp::Read { output, .. } => {
                num_outputs = num_outputs.max(output + 1);
                seg.accumulate(cost);
            }
            ApOp::RegLoad { slot, .. } => {
                num_scalars = num_scalars.max(slot + 1);
                seg.accumulate(cost);
            }
            _ => seg.accumulate(cost),
        }
    }
    if seg != CycleStats::default() {
        // Ops after the last step mark that charged cycles: keep
        // them in the per-step accounting so the segments always
        // sum to the static total.
        static_steps.push(("(after last step)", seg));
    }
    TraceSummary {
        static_total,
        static_steps,
        num_inputs,
        num_outputs,
        num_scalars,
    }
}

// ---------------------------------------------------------------------------
// Region-blocked execution planning
// ---------------------------------------------------------------------------

/// Environment variable overriding the blocked executor's strip width,
/// in 64-row blocks (`auto` or a positive integer). See
/// [`strip_from_env`].
pub const STRIP_ENV: &str = "SOFTMAP_STRIP";

/// Strip-image byte budget for automatic strip sizing: the blocked
/// executor picks the widest strip whose footprint-plane image stays
/// within this (comfortably L2-resident), so a whole region's ops run
/// out of cache-resident planes. Mid-size tiles (≤ 4096 rows) usually
/// fit a region's whole image and run a single full-width strip —
/// there the win is the per-op arena re-sweep elision — while
/// large-row tiles strip-mine to stay under the budget.
const STRIP_TARGET_BYTES: usize = 48 * 1024;

/// Auto-sizing floor, in 64-row blocks: below this width the ripple
/// kernels' per-plane loop overhead stops amortizing and strip-mining
/// loses more than cache residency gains (an explicit
/// [`STRIP_ENV`]/`strip_override` width is taken as given instead).
const MIN_STRIP_BLOCKS: usize = 16;

/// Smallest tile (in 64-row blocks) the auto planner will engage at
/// all: under ~512 rows a region's whole image already sits in L1/L2
/// during op-by-op replay, so strip-mining only adds per-region setup
/// (gather/scatter lists, preflight, tally replay) with nothing to
/// win back — measured ~5% *slower* at 256 rows. The plan is still
/// recorded for such tiles (observability), but replay stays op-by-op
/// (`BlockStats::engaged` is `false`) unless an explicit strip
/// override asks for blocking anyway.
const MIN_TILE_BLOCKS: usize = 8;

/// The reserved carry/borrow column (see `ApCore`: column 0 is always
/// the carry column, column 1 the predication flag).
const CARRY_COL: usize = 0;

/// The reserved predication-flag column (the restoring divider latches
/// its final borrow set there).
const FLAG_COL: usize = 1;

/// Parses a [`STRIP_ENV`] value: `auto` (automatic sizing, the
/// default) or a positive strip width in 64-row blocks. Returns
/// `None` for anything else.
#[must_use]
pub fn parse_strip(raw: &str) -> Option<Option<usize>> {
    let t = raw.trim().to_ascii_lowercase();
    if t == "auto" {
        return Some(None);
    }
    match t.parse::<usize>() {
        Ok(n) if n > 0 => Some(Some(n)),
        _ => None,
    }
}

/// Reads the strip-width override from [`STRIP_ENV`]. Unset or `auto`
/// means automatic sizing; an invalid value warns once on stderr
/// (naming the variable and the accepted values) and keeps the
/// default.
#[must_use]
pub fn strip_from_env() -> Option<usize> {
    let Ok(raw) = std::env::var(STRIP_ENV) else {
        return None;
    };
    parse_strip(&raw).unwrap_or_else(|| {
        static WARN: std::sync::Once = std::sync::Once::new();
        WARN.call_once(|| {
            eprintln!(
                "softmap: invalid {STRIP_ENV}={raw:?}; accepted values are auto or a \
                 positive strip width in 64-row blocks (e.g. 8) — keeping the default (auto)"
            );
        });
        None
    })
}

/// Aggregate statistics of a program's region-blocking plan (see
/// [`ApProgram::plan_blocking`]). All counts are per full replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Row-parallel regions formed.
    pub regions: usize,
    /// Non-`Step` ops covered by regions (executed strip-mined).
    pub blocked_ops: usize,
    /// Largest region, in non-`Step` ops.
    pub max_ops_per_region: usize,
    /// Largest per-strip plane image, in bytes.
    pub footprint_bytes_max: usize,
    /// Narrowest strip chosen across regions, in 64-row blocks.
    pub strip_blocks_min: usize,
    /// Widest strip chosen across regions, in 64-row blocks.
    pub strip_blocks_max: usize,
    /// Column-plane arena gathers elided versus op-by-op execution
    /// (each op's operand planes re-read from the arena).
    pub gathers_elided: usize,
    /// Column-plane arena scatters elided versus op-by-op execution
    /// (each op's result planes re-written to the arena).
    pub scatters_elided: usize,
    /// Whether replay will actually run the regions strip-mined.
    /// `false` when the tile is under the small-tile admission floor
    /// (see [`ApProgram::plan_blocking`]) — the plan is still recorded
    /// for observability, but replay stays op-by-op.
    pub engaged: bool,
}

impl std::fmt::Display for BlockStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} regions ({} ops, max {}/region), footprint ≤ {} B, \
             strips {}–{} blocks, {} gathers + {} scatters elided{}",
            self.regions,
            self.blocked_ops,
            self.max_ops_per_region,
            self.footprint_bytes_max,
            self.strip_blocks_min,
            self.strip_blocks_max,
            self.gathers_elided,
            self.scatters_elided,
            if self.engaged {
                ""
            } else {
                " (declined: tile under the admission floor)"
            }
        )
    }
}

/// One row-parallel region: a maximal run of ops that act on every
/// 64-row block independently, plus its compile-time field footprint.
#[derive(Debug, Clone)]
pub(crate) struct BlockRegion {
    /// First op index (inclusive).
    pub(crate) start: u32,
    /// One past the last op index.
    pub(crate) end: u32,
    /// Merged column intervals read before they are written inside the
    /// region — gathered from the arena once per strip.
    pub(crate) gather: Vec<Field>,
    /// Merged column intervals written inside the region — scattered
    /// back to the arena once per strip (the carry column included
    /// when any op writes it).
    pub(crate) scatter: Vec<Field>,
    /// Strip width in 64-row blocks.
    pub(crate) strip_blocks: usize,
    /// Data-dependent tally slots the region's ops produce (write
    /// events, borrow populations) — consumed by the charge walk.
    pub(crate) tally_len: usize,
}

/// A program's region-blocking plan: the regions plus summary stats.
#[derive(Debug, Clone)]
pub(crate) struct BlockPlan {
    pub(crate) regions: Vec<BlockRegion>,
    pub(crate) stats: BlockStats,
}

/// Whether an op is row-parallel *and* statically valid, i.e. safe to
/// execute inside a blocked region. Ops that fail their op-by-op
/// validation (overlap/width errors) are left as boundaries so the
/// op-by-op engine raises the identical error.
fn blockable(op: &ApOp, cols: usize) -> bool {
    let ok = |f: Field| f.start() >= 2 && f.end() <= cols;
    match *op {
        ApOp::Step { .. } => true,
        ApOp::Broadcast { field, value } => {
            ok(field)
                && field.width() <= 64
                && match value {
                    Operand::Const(c) => c <= field.max_value(),
                    Operand::Reg(_) => true,
                }
        }
        ApOp::Copy { src, dst } => {
            ok(src) && ok(dst) && !src.overlaps(&dst) && dst.width() >= src.width()
        }
        ApOp::Mul { a, b, r } => {
            ok(a)
                && ok(b)
                && ok(r)
                && !r.overlaps(&a)
                && !r.overlaps(&b)
                && r.width() >= a.width() + b.width()
        }
        ApOp::MulConst { a, r, bits, width } => {
            ok(a)
                && ok(r)
                && !r.overlaps(&a)
                && (1..=64).contains(&width)
                && (width == 64 || bits >> width == 0)
                && r.width() >= a.width() + width
        }
        ApOp::AddInto { acc, src }
        | ApOp::SubAssertClean { acc, src }
        | ApOp::SaturatingSubInto { acc, src } => {
            ok(acc) && ok(src) && !acc.overlaps(&src) && acc.width() >= src.width()
        }
        ApOp::ShrConst { field, .. } => ok(field),
        ApOp::ShrVariable { field, amount } => ok(field) && ok(amount) && !field.overlaps(&amount),
        // Restoring division is row-parallel (the LUT sub/restore
        // sweeps act on each 64-row block independently); the
        // controller-reciprocal style stays a boundary — it branches on
        // cross-row divisor values. Zero-divisor admission is dynamic
        // and handled by the region preflight.
        ApOp::Divide {
            num,
            den,
            quot,
            style,
            ..
        } => {
            style == DivStyle::Restoring
                && ok(num)
                && ok(den)
                && ok(quot)
                && !num.overlaps(&quot)
                && !den.overlaps(&quot)
                && !num.overlaps(&den)
        }
        ApOp::FusedDivide {
            den,
            ref channels,
            n_channels,
            ..
        } => {
            ok(den)
                && channels[..n_channels as usize].iter().all(|&(num, quot)| {
                    ok(num)
                        && ok(quot)
                        && !num.overlaps(&quot)
                        && !den.overlaps(&quot)
                        && !num.overlaps(&den)
                })
        }
        _ => false,
    }
}

/// Data-dependent tally slots one op contributes (the strip executor
/// accumulates them across strips; the charge walk consumes them in
/// the same deterministic order).
pub(crate) fn tally_slots(op: &ApOp) -> usize {
    match *op {
        ApOp::AddInto { .. } | ApOp::SubAssertClean { .. } => 1,
        ApOp::SaturatingSubInto { .. } => 2,
        ApOp::Mul { b, .. } => b.width(),
        ApOp::MulConst { bits, .. } => bits.count_ones() as usize,
        ApOp::ShrVariable { amount, .. } => amount.width(),
        // Three tallies per restoring iteration: subtract ripple
        // events, borrow population, restore-blend events.
        ApOp::Divide { num, frac_bits, .. } => 3 * (num.width() + frac_bits),
        ApOp::FusedDivide {
            frac_bits,
            ref channels,
            n_channels,
            ..
        } => channels[..n_channels as usize]
            .iter()
            .map(|&(num, _)| 3 * (num.width() + frac_bits))
            .sum(),
        _ => 0,
    }
}

/// Run-time admission check for a region: register-valued broadcasts
/// must fit their field, and every in-region division must be
/// guaranteed to succeed (non-zero divisor in every row, remainder
/// scratch capacity). On `false` the caller falls back to the op-by-op
/// engine, which raises the identical error at the identical op — with
/// the identical partially-executed arena state, since nothing has run
/// yet when the preflight rejects.
fn region_preflight(core: &ApCore, ops: &[ApOp], regs: &[u64]) -> bool {
    ops.iter().enumerate().all(|(i, op)| match *op {
        ApOp::Broadcast {
            field,
            value: Operand::Reg(r),
        } => regs.get(r.index()).is_some_and(|&v| v <= field.max_value()),
        ApOp::Divide { den, .. } | ApOp::FusedDivide { den, .. } => {
            divide_admissible(core, &ops[..i], regs, den)
        }
        _ => true,
    })
}

/// Whether an op writes columns overlapping `f` (the carry/flag
/// latches excluded — reserved columns 0/1 never overlap an allocated
/// field).
fn op_writes_overlap(op: &ApOp, f: Field) -> bool {
    match *op {
        ApOp::Broadcast { field, .. } => field.overlaps(&f),
        ApOp::Copy { dst, .. } => dst.overlaps(&f),
        ApOp::Mul { r, .. } | ApOp::MulConst { r, .. } => r.overlaps(&f),
        ApOp::AddInto { acc, .. }
        | ApOp::SubAssertClean { acc, .. }
        | ApOp::SaturatingSubInto { acc, .. } => acc.overlaps(&f),
        ApOp::ShrConst { field, k } => k > 0 && field.overlaps(&f),
        ApOp::ShrVariable { field, .. } => field.overlaps(&f),
        ApOp::Divide { quot, .. } => quot.overlaps(&f),
        ApOp::FusedDivide {
            ref channels,
            n_channels,
            ..
        } => channels[..n_channels as usize]
            .iter()
            .any(|&(_, quot)| quot.overlaps(&f)),
        _ => false,
    }
}

/// Whether a region-resident division is guaranteed to succeed: its
/// remainder scratch must fit the array, and every row's divisor must
/// be non-zero *at the point the division runs*. When an earlier
/// region op broadcast the divisor, the value resolves statically;
/// when the divisor columns are untouched inside the region, a free
/// word-parallel arena scan decides (subsuming the op-by-op engine's
/// per-row zero scan); anything the preflight cannot resolve rejects
/// the region, and the op-by-op fallback raises the identical
/// [`ApError::DivisionByZero`] at the identical op if it comes to
/// that.
fn divide_admissible(core: &ApCore, prior: &[ApOp], regs: &[u64], den: Field) -> bool {
    if !core.scratch_fits(den.width() + 1) {
        return false;
    }
    for op in prior.iter().rev() {
        if let ApOp::Broadcast { field, value } = *op {
            if field == den {
                let v = match value {
                    Operand::Const(c) => c,
                    Operand::Reg(r) => regs.get(r.index()).copied().unwrap_or(0),
                };
                return v != 0;
            }
        }
        if op_writes_overlap(op, den) {
            return false;
        }
    }
    core.fw_field_all_nonzero(den)
}

/// Marks a field's columns as read (arena-gathered unless already
/// written inside the region).
fn mark_read(f: Field, first_read: &mut [bool], written: &[bool], reads: &mut usize) {
    for c in f.start()..f.end() {
        *reads += 1;
        if !written[c] {
            first_read[c] = true;
        }
    }
}

/// Marks a field's columns as written inside the region.
fn mark_write(f: Field, written: &mut [bool], writes: &mut usize) {
    *writes += f.width();
    written[f.start()..f.end()].fill(true);
}

/// Merges a column mask into maximal `[start, end)` intervals
/// (re-using [`Field`] as the interval type).
fn intervals(mask: &[bool]) -> Vec<Field> {
    let mut out = Vec::new();
    let mut c = 0;
    while c < mask.len() {
        if !mask[c] {
            c += 1;
            continue;
        }
        let start = c;
        while c < mask.len() && mask[c] {
            c += 1;
        }
        out.push(Field::new(start, c - start));
    }
    out
}

/// Charges one restoring-division channel exactly as the op-by-op
/// FastWord dividers do, from the structural schedule plus the
/// strip-accumulated `[ev_sub, n_borrow, ev_add]` tally triples (one
/// per iteration, MSB-first). `physical_shift` selects the standalone
/// divider's schedule (per-iteration remainder shift sweeps) versus
/// the fused window rename (shift-free, one canonicalization sweep per
/// channel at the end). Includes the upfront zero broadcasts of the
/// remainder scratch and the quotient.
fn charge_divide_channel(
    core: &mut ApCore,
    nw: usize,
    dw: usize,
    qw: usize,
    frac_bits: usize,
    tally: &[u64],
    physical_shift: bool,
) {
    let rows = core.rows() as u64;
    let rem_w = dw + 1;
    let low = 4 * dw as u64;
    let ripple = 2 * (rem_w - dw) as u64;
    let mut cmp_cycles = 0u64;
    let mut cmp_events = 0u64;
    let mut wr_cycles = (rem_w + qw) as u64;
    let mut wr_events = (rem_w + qw) as u64 * rows;
    for (it, k) in (0..nw + frac_bits).rev().enumerate() {
        if physical_shift {
            let moved = (rem_w - 1) as u64;
            cmp_cycles += 2 * moved;
            cmp_events += 2 * moved * rows;
            wr_cycles += 2 * moved;
            wr_events += moved * rows;
        }
        if k >= frac_bits {
            cmp_cycles += 2;
            cmp_events += 2 * rows;
            wr_cycles += 2;
            wr_events += rows;
        } else {
            wr_cycles += 1;
            wr_events += rows;
        }
        let (ev_sub, n_borrow, ev_add) = (tally[3 * it], tally[3 * it + 1], tally[3 * it + 2]);
        cmp_cycles += low + ripple + 1;
        cmp_events += rows * (3 * low + 2 * ripple) + rows;
        wr_cycles += 1 + low + ripple;
        wr_events += rows + ev_sub;
        wr_cycles += 2;
        wr_events += rows + n_borrow;
        if n_borrow > 0 {
            cmp_cycles += low + ripple;
            cmp_events += rows * (4 * low + 3 * ripple);
            wr_cycles += 1 + low + ripple;
            wr_events += rows + ev_add;
        }
        cmp_cycles += 1;
        cmp_events += rows;
        let n_nob = rows - n_borrow;
        if k < qw {
            wr_cycles += 1;
            wr_events += n_nob;
        } else if n_nob > 0 {
            wr_cycles += qw as u64;
            wr_events += qw as u64 * n_nob;
        }
    }
    if !physical_shift {
        cmp_cycles += 2 * rem_w as u64;
        cmp_events += 2 * rem_w as u64 * rows;
        wr_cycles += 2 * rem_w as u64;
        wr_events += rem_w as u64 * rows;
    }
    let st = core.cam_mut().stats_mut();
    st.charge_compares_bulk(cmp_cycles, cmp_events);
    st.charge_writes_bulk(wr_cycles, wr_events);
}

/// Charges the cost model for one blocked region exactly as the
/// op-by-op FastWord engine would have — per op, in op order, from the
/// structural cycle shapes plus the data-dependent tallies the strip
/// executor accumulated in `core`'s tally buffer. `hoisted` holds the
/// region's slice of the program's hoisted indices (absolute), `base`
/// the absolute index of `ops[0]`.
fn charge_region(
    core: &mut ApCore,
    ops: &[ApOp],
    hoisted: &[u32],
    base: usize,
    charge: ReplayCharge,
    mark: &mut CycleStats,
    on_step: &mut dyn FnMut(&'static str, CycleStats),
) {
    let rows = core.rows() as u64;
    let tally = std::mem::take(&mut core.tally_buf);
    let mut cursor = 0usize;
    let mut h = 0usize;
    for (k, op) in ops.iter().enumerate() {
        let hoist = hoisted.get(h) == Some(&((base + k) as u32));
        if hoist {
            h += 1;
        }
        let discount = match charge {
            ReplayCharge::Full => false,
            ReplayCharge::Hoisted => hoist,
            // Regions contain no `Load` ops, so lockstep discounts all.
            ReplayCharge::Lockstep => true,
        };
        match *op {
            ApOp::Broadcast { field, .. } => {
                if !discount {
                    let w = field.width() as u64;
                    core.cam_mut().stats_mut().charge_writes_bulk(w, w * rows);
                }
            }
            ApOp::Copy { src, dst } => {
                if !discount {
                    let sw = src.width() as u64;
                    let hi = (dst.width() - src.width()) as u64;
                    let st = core.cam_mut().stats_mut();
                    st.charge_compares_bulk(2 * sw, 2 * sw * rows);
                    st.charge_writes_bulk(2 * sw, sw * rows);
                    if hi > 0 {
                        st.charge_writes_bulk(hi, hi * rows);
                    }
                }
            }
            ApOp::Mul { a, b, r } => {
                let bw = b.width();
                if !discount {
                    let rw = r.width() as u64;
                    core.cam_mut().stats_mut().charge_writes_bulk(rw, rw * rows);
                    for j in 0..bw {
                        core.fw_charge_ripple(a.width(), a.width() + 1, true, tally[cursor + j]);
                    }
                }
                cursor += bw;
            }
            ApOp::MulConst { a, r, bits, .. } => {
                let set = bits.count_ones() as usize;
                if !discount {
                    let rw = r.width() as u64;
                    core.cam_mut().stats_mut().charge_writes_bulk(rw, rw * rows);
                    for s in 0..set {
                        core.fw_charge_ripple(a.width(), a.width() + 1, false, tally[cursor + s]);
                    }
                }
                cursor += set;
            }
            ApOp::AddInto { acc, src } => {
                if !discount {
                    core.fw_charge_ripple(src.width(), acc.width(), false, tally[cursor]);
                }
                cursor += 1;
            }
            ApOp::SubAssertClean { acc, src } => {
                if !discount {
                    core.fw_charge_ripple(src.width(), acc.width(), false, tally[cursor]);
                    // Borrow-column readback.
                    core.cam_mut().stats_mut().charge_compares_bulk(1, rows);
                }
                cursor += 1;
            }
            ApOp::SaturatingSubInto { acc, src } => {
                if !discount {
                    core.fw_charge_ripple(src.width(), acc.width(), false, tally[cursor]);
                    core.cam_mut().stats_mut().charge_compares_bulk(1, rows);
                    let n_borrow = tally[cursor + 1];
                    if n_borrow > 0 {
                        // Gated clamp broadcast of the underflowed rows.
                        let aw = acc.width() as u64;
                        core.cam_mut()
                            .stats_mut()
                            .charge_writes_bulk(aw, aw * n_borrow);
                    }
                }
                cursor += 2;
            }
            ApOp::ShrConst { field, k } => {
                if !discount && k > 0 {
                    let w = field.width();
                    let st = core.cam_mut().stats_mut();
                    if k >= w {
                        st.charge_writes_bulk(w as u64, w as u64 * rows);
                    } else {
                        let moved = (w - k) as u64;
                        st.charge_compares_bulk(2 * moved, 2 * moved * rows);
                        st.charge_writes_bulk(2 * moved, moved * rows);
                        st.charge_writes_bulk(k as u64, k as u64 * rows);
                    }
                }
            }
            ApOp::ShrVariable { field, amount } => {
                let aw = amount.width();
                if !discount {
                    let w = field.width();
                    let mut cmp_cycles = 0u64;
                    let mut cmp_events = 0u64;
                    let mut wr_cycles = 0u64;
                    let mut wr_events = 0u64;
                    for j in 0..aw {
                        let s = 1usize << j;
                        let n_j = tally[cursor + j];
                        if s >= w {
                            cmp_cycles += 1;
                            cmp_events += rows;
                            if n_j > 0 {
                                wr_cycles += w as u64;
                                wr_events += w as u64 * n_j;
                            }
                        } else {
                            let moved = (w - s) as u64;
                            cmp_cycles += 2 * moved + 1;
                            cmp_events += (4 * moved + 1) * rows;
                            wr_cycles += 2 * moved;
                            wr_events += moved * n_j;
                            if n_j > 0 {
                                wr_cycles += s as u64;
                                wr_events += s as u64 * n_j;
                            }
                        }
                    }
                    let st = core.cam_mut().stats_mut();
                    st.charge_compares_bulk(cmp_cycles, cmp_events);
                    st.charge_writes_bulk(wr_cycles, wr_events);
                }
                cursor += aw;
            }
            ApOp::Divide {
                num,
                den,
                quot,
                frac_bits,
                ..
            } => {
                let slots = 3 * (num.width() + frac_bits);
                if !discount {
                    charge_divide_channel(
                        core,
                        num.width(),
                        den.width(),
                        quot.width(),
                        frac_bits,
                        &tally[cursor..cursor + slots],
                        true,
                    );
                }
                cursor += slots;
            }
            ApOp::FusedDivide {
                den,
                frac_bits,
                ref channels,
                n_channels,
            } => {
                for &(num, quot) in &channels[..n_channels as usize] {
                    let slots = 3 * (num.width() + frac_bits);
                    if !discount {
                        charge_divide_channel(
                            core,
                            num.width(),
                            den.width(),
                            quot.width(),
                            frac_bits,
                            &tally[cursor..cursor + slots],
                            false,
                        );
                    }
                    cursor += slots;
                }
            }
            ApOp::Step { name } => {
                let now = core.stats();
                on_step(name, now.since(mark));
                *mark = now;
            }
            _ => unreachable!("non-blockable op inside a region"),
        }
    }
    debug_assert_eq!(cursor, tally.len());
    core.tally_buf = tally;
}

/// How a replay charges the cost model: full price, the hoisted-op
/// discount of [`ApProgram::replay_resident`], or the wave-lockstep
/// discount of [`ApProgram::replay_lockstep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplayCharge {
    Full,
    Hoisted,
    Lockstep,
}

/// A compiled AP program: a flat op trace with pre-resolved fields plus
/// the per-op costs recorded at compile time. See the module docs for
/// the replay and static-cost contracts.
#[derive(Debug, Clone)]
pub struct ApProgram {
    config: ApConfig,
    reserved_cols: usize,
    num_regs: usize,
    num_inputs: usize,
    num_outputs: usize,
    num_scalars: usize,
    ops: Vec<ApOp>,
    costs: Vec<CycleStats>,
    static_total: CycleStats,
    static_steps: Vec<(&'static str, CycleStats)>,
    /// Op indices the optimizer marked as hoistable out of per-shard
    /// phase bodies (sorted); see [`ApProgram::replay_resident`].
    hoisted: Vec<u32>,
    /// Region-blocked execution plan computed by
    /// [`ApProgram::plan_blocking`] (`None` until planned; cleared by
    /// the optimizer whenever it rewrites the trace).
    pub(crate) blocking: Option<BlockPlan>,
}

impl ApProgram {
    /// The tile geometry the program was compiled at (and must replay
    /// at).
    #[must_use]
    pub fn config(&self) -> ApConfig {
        self.config
    }

    /// Columns reserved by the program's field layout; internal scratch
    /// (division) allocates above this cursor, exactly as it did while
    /// recording.
    #[must_use]
    pub fn reserved_cols(&self) -> usize {
        self.reserved_cols
    }

    /// Number of input slots the program loads from.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output slots the program reads into.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of scalar input slots the program loads registers from.
    #[must_use]
    pub fn num_scalars(&self) -> usize {
        self.num_scalars
    }

    /// The op trace.
    #[must_use]
    pub fn ops(&self) -> &[ApOp] {
        &self.ops
    }

    /// Per-op cost deltas recorded at compile time (parallel to
    /// [`ApProgram::ops`]).
    #[must_use]
    pub fn op_costs(&self) -> &[CycleStats] {
        &self.costs
    }

    /// Number of ops (including step marks).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total cycle/cell-event cost recorded at compile time — the
    /// execution-free cost query. Exact for the compile input and for
    /// any input following the same microcode path (see module docs).
    #[must_use]
    pub fn static_cost(&self) -> CycleStats {
        self.static_total
    }

    /// Per-step compile-time costs, in step-mark order (the static
    /// counterpart of the mapping's per-step breakdown). Cycle-charging
    /// ops recorded after the last step mark are kept in a final
    /// `"(after last step)"` segment, so the segments always sum to
    /// [`ApProgram::static_cost`].
    #[must_use]
    pub fn static_steps(&self) -> &[(&'static str, CycleStats)] {
        &self.static_steps
    }

    /// Replays the program on `core`, which must be freshly acquired at
    /// [`ApProgram::config`]'s geometry (any backend). `on_step`
    /// receives the per-step cost deltas of *this* execution.
    ///
    /// Replay is bit- and cycle-exact versus issuing the same ops
    /// directly, for any input of the program's shape.
    ///
    /// # Errors
    ///
    /// * [`ApError::BadConfig`] on geometry or slot-count mismatch.
    /// * Any error the underlying ops report (e.g. a width overflow in
    ///   [`Overflow::Error`] reductions, division by zero).
    pub fn replay(
        &self,
        core: &mut ApCore,
        io: ExecIo<'_, '_>,
        scratch: &mut ProgramScratch,
        mut on_step: impl FnMut(&'static str, CycleStats),
    ) -> Result<(), ApError> {
        self.replay_inner(core, io, scratch, &mut on_step, ReplayCharge::Full)
    }

    /// [`ApProgram::replay`] with the resident-operand discount: ops
    /// the optimizer marked as hoistable (broadcasts of shard-invariant
    /// values — see `optimizer`) execute their plane writes but charge
    /// no cycles. The mapping layer replays every shard after a wave's
    /// first with this variant: an identical-value broadcast drives all
    /// tiles' write drivers in parallel, so only the first shard pays.
    ///
    /// # Errors
    ///
    /// Same as [`ApProgram::replay`].
    pub fn replay_resident(
        &self,
        core: &mut ApCore,
        io: ExecIo<'_, '_>,
        scratch: &mut ProgramScratch,
        mut on_step: impl FnMut(&'static str, CycleStats),
    ) -> Result<(), ApError> {
        self.replay_inner(core, io, scratch, &mut on_step, ReplayCharge::Hoisted)
    }

    /// [`ApProgram::replay`] with the wave-lockstep discount: every op
    /// except input staging ([`ApOp::Load`]) executes its plane writes
    /// but charges no cycles and no cell events. Under the residency
    /// contract (see the `softmap_ap::device` module docs), all
    /// resident shards of one length execute the *same* phase program
    /// in SIMD lockstep across tiles — the compare, write, and 2D
    /// drivers are shared — so only the wave's first shard of each
    /// length (the "leader") pays the program's cost; followers replay
    /// through this variant and are charged only for streaming their
    /// per-tile-distinct input planes.
    ///
    /// # Errors
    ///
    /// Same as [`ApProgram::replay`].
    pub fn replay_lockstep(
        &self,
        core: &mut ApCore,
        io: ExecIo<'_, '_>,
        scratch: &mut ProgramScratch,
        mut on_step: impl FnMut(&'static str, CycleStats),
    ) -> Result<(), ApError> {
        self.replay_inner(core, io, scratch, &mut on_step, ReplayCharge::Lockstep)
    }

    fn replay_inner(
        &self,
        core: &mut ApCore,
        mut io: ExecIo<'_, '_>,
        scratch: &mut ProgramScratch,
        on_step: &mut dyn FnMut(&'static str, CycleStats),
        charge: ReplayCharge,
    ) -> Result<(), ApError> {
        if core.rows() != self.config.rows || core.cols() != self.config.cols {
            return Err(ApError::BadConfig("replay geometry mismatch"));
        }
        if io.inputs.len() < self.num_inputs
            || io.outputs.len() < self.num_outputs
            || io.scalars.len() < self.num_scalars
        {
            return Err(ApError::BadConfig("replay is missing io slots"));
        }
        core.set_next_col(self.reserved_cols);
        scratch.regs.clear();
        scratch.regs.resize(self.num_regs, 0);
        let mut mark = core.stats();
        let blocked = match &self.blocking {
            Some(plan) if plan.stats.engaged && core.backend() == ExecBackend::FastWord => {
                Some(plan)
            }
            _ => None,
        };
        let mut h = 0usize;
        let mut next_region = 0usize;
        let mut i = 0usize;
        while i < self.ops.len() {
            if let Some(plan) = blocked {
                if let Some(region) = plan.regions.get(next_region) {
                    if region.start as usize == i {
                        next_region += 1;
                        let end = region.end as usize;
                        if region_preflight(core, &self.ops[i..end], &scratch.regs) {
                            core.fw_run_region_strips(&self.ops[i..end], region, &scratch.regs)?;
                            let h0 = h;
                            while h < self.hoisted.len() && (self.hoisted[h] as usize) < end {
                                h += 1;
                            }
                            charge_region(
                                core,
                                &self.ops[i..end],
                                &self.hoisted[h0..h],
                                i,
                                charge,
                                &mut mark,
                                on_step,
                            );
                            i = end;
                            continue;
                        }
                        // Preflight failed: fall through to the op-by-op
                        // engine, which raises the identical error at
                        // the identical op.
                    }
                }
            }
            let op = &self.ops[i];
            let hoist = self.hoisted.get(h) == Some(&(i as u32));
            if hoist {
                h += 1;
            }
            let discount = match charge {
                ReplayCharge::Full => false,
                ReplayCharge::Hoisted => hoist,
                ReplayCharge::Lockstep => !matches!(op, ApOp::Load { .. }),
            };
            if discount {
                // Plane writes happen; the charge is rolled back (the
                // cost-model statement "this shard rides the shared
                // device-wide drivers for free").
                let snapshot = core.stats();
                apply_op(core, op, &mut io, scratch, &mut mark, on_step)?;
                core.restore_stats(snapshot);
            } else {
                apply_op(core, op, &mut io, scratch, &mut mark, on_step)?;
            }
            i += 1;
        }
        Ok(())
    }

    /// Re-derives the per-op costs, static total, and step segments by
    /// replaying the (optimized) trace once on `core` — how the static
    /// cost contract survives optimization: after the pass pipeline
    /// rewrites `ops`, one recost execution charges the *fused*
    /// schedule and re-anchors [`ApProgram::static_cost`] /
    /// [`ApProgram::static_steps`] to it. Outputs are appended and
    /// registers derived exactly as in a normal replay.
    ///
    /// # Errors
    ///
    /// Same as [`ApProgram::replay`].
    pub fn recost(
        &mut self,
        core: &mut ApCore,
        mut io: ExecIo<'_, '_>,
        scratch: &mut ProgramScratch,
        mut on_step: impl FnMut(&'static str, CycleStats),
    ) -> Result<(), ApError> {
        if core.rows() != self.config.rows || core.cols() != self.config.cols {
            return Err(ApError::BadConfig("replay geometry mismatch"));
        }
        if io.inputs.len() < self.num_inputs
            || io.outputs.len() < self.num_outputs
            || io.scalars.len() < self.num_scalars
        {
            return Err(ApError::BadConfig("replay is missing io slots"));
        }
        core.set_next_col(self.reserved_cols);
        scratch.regs.clear();
        scratch.regs.resize(self.num_regs, 0);
        let mut mark = core.stats();
        let mut last = mark;
        let mut costs = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            apply_op(core, op, &mut io, scratch, &mut mark, &mut on_step)?;
            let now = core.stats();
            costs.push(now.since(&last));
            last = now;
        }
        self.costs = costs;
        let summary = summarize(&self.ops, &self.costs);
        self.static_total = summary.static_total;
        self.static_steps = summary.static_steps;
        Ok(())
    }

    /// Op indices marked as hoistable by the optimizer (discounted
    /// under [`ApProgram::replay_resident`]).
    #[must_use]
    pub fn hoisted(&self) -> &[u32] {
        &self.hoisted
    }

    /// Partitions the trace into **row-parallel regions** — maximal op
    /// runs where every op acts on each 64-row block independently
    /// (broadcasts, copies, multiplies, add/sub, shifts, restoring
    /// division), bounded by cross-row ops (min-search, reductions,
    /// load/read/reg ops) — and records each region's field footprint.
    /// FastWord
    /// replay then executes each region strip-mined: per strip of
    /// 64-row blocks it gathers the region's operand planes once, runs
    /// all of the region's ops on the cache-resident strip, and
    /// scatters the written planes once.
    ///
    /// This is a **host-only** optimization: replayed planes (the
    /// carry/flag columns included) and the charged [`CycleStats`] are
    /// identical to op-by-op execution — the device cost contract is
    /// untouched. Microcode replay ignores the plan entirely.
    ///
    /// `strip_override` pins the strip width in 64-row blocks
    /// (`None` = auto-size each region's strip to fit its footprint in
    /// cache; see [`strip_from_env`] for the `SOFTMAP_STRIP` knob).
    /// Re-running the optimizer clears the plan; call this after the
    /// final pass pipeline.
    pub fn plan_blocking(&mut self, strip_override: Option<usize>) {
        let cols = self.config.cols;
        let bl = self.config.rows.div_ceil(64);
        let mut regions = Vec::new();
        let mut stats = BlockStats {
            // Small-tile admission floor: below it the whole tile is
            // narrower than a healthy strip, so the loop interchange
            // has nothing to amortize its per-region setup against —
            // regions are still recorded (observability), but replay
            // stays op-by-op (ratio 1.0 by construction). An explicit
            // strip override is a request to block regardless (tests,
            // experiments).
            engaged: strip_override.is_some() || bl >= MIN_TILE_BLOCKS,
            ..BlockStats::default()
        };
        let mut i = 0usize;
        while i < self.ops.len() {
            if !blockable(&self.ops[i], cols) {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.ops.len() && blockable(&self.ops[i], cols) {
                i += 1;
            }
            let end = i;
            let real = self.ops[start..end]
                .iter()
                .filter(|op| !matches!(op, ApOp::Step { .. }))
                .count();
            if real < 2 {
                // A single op gains nothing from the loop interchange.
                continue;
            }
            let mut first_read = vec![false; cols];
            let mut written = vec![false; cols];
            let mut reads = 0usize;
            let mut writes = 0usize;
            let mut tally_len = 0usize;
            let carry = Field::new(CARRY_COL, 1);
            let flag = Field::new(FLAG_COL, 1);
            for op in &self.ops[start..end] {
                tally_len += tally_slots(op);
                match *op {
                    ApOp::Broadcast { field, .. } => {
                        mark_write(field, &mut written, &mut writes);
                    }
                    ApOp::Copy { src, dst } => {
                        mark_read(src, &mut first_read, &written, &mut reads);
                        mark_write(dst, &mut written, &mut writes);
                    }
                    ApOp::Mul { a, b, r } => {
                        mark_read(a, &mut first_read, &written, &mut reads);
                        mark_read(b, &mut first_read, &written, &mut reads);
                        mark_write(r, &mut written, &mut writes);
                        mark_write(carry, &mut written, &mut writes);
                    }
                    ApOp::MulConst { a, r, .. } => {
                        mark_read(a, &mut first_read, &written, &mut reads);
                        mark_write(r, &mut written, &mut writes);
                        mark_write(carry, &mut written, &mut writes);
                    }
                    ApOp::AddInto { acc, src }
                    | ApOp::SubAssertClean { acc, src }
                    | ApOp::SaturatingSubInto { acc, src } => {
                        mark_read(src, &mut first_read, &written, &mut reads);
                        mark_read(acc, &mut first_read, &written, &mut reads);
                        mark_write(acc, &mut written, &mut writes);
                        mark_write(carry, &mut written, &mut writes);
                    }
                    ApOp::ShrConst { field, k } => {
                        if k == 0 {
                            // Free no-op on the direct path too.
                        } else if k >= field.width() {
                            mark_write(field, &mut written, &mut writes);
                        } else {
                            mark_read(field, &mut first_read, &written, &mut reads);
                            mark_write(field, &mut written, &mut writes);
                        }
                    }
                    ApOp::ShrVariable { field, amount } => {
                        mark_read(field, &mut first_read, &written, &mut reads);
                        mark_read(amount, &mut first_read, &written, &mut reads);
                        mark_write(field, &mut written, &mut writes);
                    }
                    ApOp::Divide { num, den, quot, .. } => {
                        mark_read(num, &mut first_read, &written, &mut reads);
                        mark_read(den, &mut first_read, &written, &mut reads);
                        mark_write(quot, &mut written, &mut writes);
                        mark_write(carry, &mut written, &mut writes);
                        mark_write(flag, &mut written, &mut writes);
                    }
                    ApOp::FusedDivide {
                        den,
                        ref channels,
                        n_channels,
                        ..
                    } => {
                        mark_read(den, &mut first_read, &written, &mut reads);
                        for &(num, quot) in &channels[..n_channels as usize] {
                            mark_read(num, &mut first_read, &written, &mut reads);
                            mark_write(quot, &mut written, &mut writes);
                        }
                        mark_write(carry, &mut written, &mut writes);
                        mark_write(flag, &mut written, &mut writes);
                    }
                    ApOp::Step { .. } => {}
                    _ => unreachable!("non-blockable op inside a region"),
                }
            }
            let gather = intervals(&first_read);
            let scatter = intervals(&written);
            let p = (0..cols).filter(|&c| first_read[c] || written[c]).count();
            let auto = (STRIP_TARGET_BYTES / (8 * p.max(1))).max(MIN_STRIP_BLOCKS);
            let strip_blocks = strip_override.unwrap_or(auto).clamp(1, bl.max(1));
            let gather_cols: usize = gather.iter().map(|f| f.width()).sum();
            let scatter_cols: usize = scatter.iter().map(|f| f.width()).sum();
            stats.regions += 1;
            stats.blocked_ops += real;
            stats.max_ops_per_region = stats.max_ops_per_region.max(real);
            stats.footprint_bytes_max = stats.footprint_bytes_max.max(p * 8 * strip_blocks);
            stats.strip_blocks_min = if stats.regions == 1 {
                strip_blocks
            } else {
                stats.strip_blocks_min.min(strip_blocks)
            };
            stats.strip_blocks_max = stats.strip_blocks_max.max(strip_blocks);
            stats.gathers_elided += reads - gather_cols;
            stats.scatters_elided += writes - scatter_cols;
            regions.push(BlockRegion {
                start: start as u32,
                end: end as u32,
                gather,
                scatter,
                strip_blocks,
                tally_len,
            });
        }
        self.blocking = Some(BlockPlan { regions, stats });
    }

    /// The region-blocking summary, if [`ApProgram::plan_blocking`]
    /// has run on the current trace.
    #[must_use]
    pub fn block_stats(&self) -> Option<BlockStats> {
        self.blocking.as_ref().map(|p| p.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecBackend;

    /// Records a tiny add/shift/read pipeline and returns
    /// (program, outputs, recording stats).
    fn record(data: &[u64]) -> (ApProgram, Vec<u64>, CycleStats) {
        let mut core = ApCore::new(ApConfig::new(data.len(), 24)).unwrap();
        let x = core.alloc_field(8).unwrap();
        let k = core.alloc_field(8).unwrap();
        let inputs: [&[u64]; 1] = [data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        let mut steps = Vec::new();
        let mut on_step = |name: &'static str, s: CycleStats| steps.push((name, s));
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&inputs, &mut outs),
            &mut scratch,
            &mut on_step,
            true,
        );
        rec.load(x, 0).unwrap();
        rec.step("in");
        rec.broadcast(k, 3).unwrap();
        rec.add_into(x, k).unwrap();
        rec.shr_const(x, 1).unwrap();
        rec.step("compute");
        rec.read(x, 0).unwrap();
        let program = rec.finish().unwrap();
        assert_eq!(steps.len(), 2);
        (program, out, core.stats())
    }

    #[test]
    fn static_cost_equals_recording_stats() {
        let (program, out, stats) = record(&[0, 1, 200, 250]);
        assert_eq!(out, vec![1, 2, 101, 126]);
        assert_eq!(program.static_cost(), stats);
        let step_total =
            program
                .static_steps()
                .iter()
                .fold(CycleStats::default(), |mut acc, (_, s)| {
                    acc.accumulate(s);
                    acc
                });
        // The trailing read is free, so the marked steps cover the total.
        assert_eq!(step_total, program.static_cost());
        assert_eq!(program.num_inputs(), 1);
        assert_eq!(program.num_outputs(), 1);
        assert!(!program.is_empty());
        assert_eq!(program.len(), program.op_costs().len());
    }

    #[test]
    fn replay_is_exact_on_both_backends() {
        let (program, _, _) = record(&[0, 1, 200, 250]);
        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let mut core = ApCore::with_backend(program.config(), backend).unwrap();
            let data: Vec<u64> = vec![7, 8, 9, 10];
            let inputs: [&[u64]; 1] = [&data];
            let mut out = Vec::new();
            let mut outs: [&mut Vec<u64>; 1] = [&mut out];
            let mut scratch = ProgramScratch::default();
            program
                .replay(
                    &mut core,
                    ExecIo::new(&inputs, &mut outs),
                    &mut scratch,
                    |_, _| {},
                )
                .unwrap();
            assert_eq!(out, vec![5, 5, 6, 6], "{backend:?}");
        }
    }

    #[test]
    fn replay_rejects_geometry_and_slot_mismatches() {
        let (program, _, _) = record(&[1, 2, 3, 4]);
        let mut wrong = ApCore::new(ApConfig::new(8, 24)).unwrap();
        let data: Vec<u64> = vec![0; 8];
        let inputs: [&[u64]; 1] = [&data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        assert!(matches!(
            program.replay(
                &mut wrong,
                ExecIo::new(&inputs, &mut outs),
                &mut scratch,
                |_, _| {}
            ),
            Err(ApError::BadConfig(_))
        ));

        let mut right = ApCore::new(program.config()).unwrap();
        let mut scratch = ProgramScratch::default();
        let mut outs: [&mut Vec<u64>; 0] = [];
        let data4: Vec<u64> = vec![0; 4];
        let inputs4: [&[u64]; 1] = [&data4];
        assert!(matches!(
            program.replay(
                &mut right,
                ExecIo::new(&inputs4, &mut outs),
                &mut scratch,
                |_, _| {}
            ),
            Err(ApError::BadConfig(_))
        ));
    }

    #[test]
    fn scalar_inputs_feed_registers_at_replay() {
        // Record: x -= scalar_input(0), broadcast through a register.
        let data: Vec<u64> = vec![9, 4, 7, 12];
        let mut core = ApCore::new(ApConfig::new(4, 40)).unwrap();
        let x = core.alloc_field(8).unwrap();
        let m = core.alloc_field(8).unwrap();
        let inputs: [&[u64]; 1] = [&data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&inputs, &mut outs).with_scalars(&[3]),
            &mut scratch,
            &mut on_step,
            true,
        );
        rec.load(x, 0).unwrap();
        let r = rec.reg_input(0).unwrap();
        rec.broadcast_reg(m, r).unwrap();
        rec.sub_assert_clean(x, m).unwrap();
        rec.read(x, 0).unwrap();
        let program = rec.finish().unwrap();
        assert_eq!(out, vec![6, 1, 4, 9]);
        assert_eq!(program.num_scalars(), 1);

        // Replay with another scalar binding: the register re-derives.
        let mut core2 = ApCore::new(program.config()).unwrap();
        let mut out2 = Vec::new();
        let mut outs2: [&mut Vec<u64>; 1] = [&mut out2];
        program
            .replay(
                &mut core2,
                ExecIo::new(&inputs, &mut outs2).with_scalars(&[4]),
                &mut scratch,
                |_, _| {},
            )
            .unwrap();
        assert_eq!(out2, vec![5, 0, 3, 8]);

        // A replay missing the scalar binding is rejected.
        let mut core3 = ApCore::new(program.config()).unwrap();
        let mut out3 = Vec::new();
        let mut outs3: [&mut Vec<u64>; 1] = [&mut out3];
        assert!(matches!(
            program.replay(
                &mut core3,
                ExecIo::new(&inputs, &mut outs3),
                &mut scratch,
                |_, _| {},
            ),
            Err(ApError::BadConfig(_))
        ));
    }

    #[test]
    fn registers_thread_runtime_values() {
        let data: Vec<u64> = vec![9, 4, 7, 12];
        let mut core = ApCore::new(ApConfig::new(4, 40)).unwrap();
        let x = core.alloc_field(8).unwrap();
        let m = core.alloc_field(8).unwrap();
        let inputs: [&[u64]; 1] = [&data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&inputs, &mut outs),
            &mut scratch,
            &mut on_step,
            true,
        );
        rec.load(x, 0).unwrap();
        let r = rec.min_search(x);
        rec.broadcast_reg(m, r).unwrap();
        rec.sub_assert_clean(x, m).unwrap();
        rec.read(x, 0).unwrap();
        let program = rec.finish().unwrap();
        assert_eq!(out, vec![5, 0, 3, 8]);
        assert_eq!(scratch.reg(r), 4);

        // Replay with other data re-derives the min at run time.
        let mut core2 = ApCore::new(program.config()).unwrap();
        let data2: Vec<u64> = vec![30, 11, 20, 11];
        let inputs2: [&[u64]; 1] = [&data2];
        let mut out2 = Vec::new();
        let mut outs2: [&mut Vec<u64>; 1] = [&mut out2];
        program
            .replay(
                &mut core2,
                ExecIo::new(&inputs2, &mut outs2),
                &mut scratch,
                |_, _| {},
            )
            .unwrap();
        assert_eq!(out2, vec![19, 0, 9, 0]);
        assert_eq!(scratch.reg(r), 11);
    }
}
