//! Compiler passes over a recorded [`ApOp`] trace.
//!
//! The mapped dataflow is compiled once and replayed forever (see the
//! parent module), which makes it worth optimizing the way real
//! accelerator stacks do: rewrite the trace, then let the plan cache
//! amortize the rewrite over every subsequent vector. Four passes run,
//! gated by [`OptLevel`]:
//!
//! 1. **Shift/copy fusion** (`Basic`) — a `ShrConst` whose shifted
//!    field is next consumed by a single in-range `Copy` and then fully
//!    overwritten folds into the copy's source window: the controller
//!    reads the pre-shift columns directly instead of physically moving
//!    every plane.
//! 2. **Constant-multiplier folding** (`Full`) — a
//!    `Broadcast(Const)` feeding `Mul` as the multiplier becomes
//!    [`ApOp::MulConst`]: zero bits of the constant issue no LUT sweep
//!    at all and set bits run ungated, while the gated multiply must
//!    spend full compare cycles per multiplier bit to discover its
//!    gates.
//! 3. **Division fusion and batching** (`Full`) — restoring `Divide`
//!    ops become [`ApOp::FusedDivide`] (per-iteration remainder shifts
//!    replaced by window renaming with one canonicalization sweep), and
//!    adjacent fused divisions sharing a divisor batch into a single
//!    arena pass.
//! 4. **Dead-write elimination** (`Basic`) — a backward plane-liveness
//!    scan over field column ranges removes `Broadcast`/`Load`/`Copy`
//!    writes that are fully overwritten before any read. Liveness
//!    starts *full* at the end of the trace, so any plane visible when
//!    the program finishes is preserved bit-for-bit.
//!
//! A final analysis marks **hoistable broadcasts** — broadcasts of
//! compile-time constants or of registers derived only from external
//! scalar inputs ([`ApOp::RegLoad`] chains). These are shard-invariant:
//! in a sharded wave every tile receives the identical broadcast, so
//! the device drives all write drivers in parallel and only the first
//! shard pays the cycles. [`ApProgram::replay_resident`] applies the
//! discount; plane writes always happen.
//!
//! # The two contracts
//!
//! *Bit-exactness*: an optimized replay leaves CAM planes — the
//! reserved carry/flag columns included — identical to the unoptimized
//! replay and to direct issue, on both backends (enforced by
//! `crates/ap/tests/optimizer_diff.rs`).
//!
//! *Static == simulated*: after [`optimize`] rewrites a trace, the
//! recorded per-op costs no longer describe it, so they are cleared;
//! the caller must run [`ApProgram::recost`] once, which charges the
//! *fused* schedule and re-anchors [`ApProgram::static_cost`] /
//! [`ApProgram::static_steps`] to it.

use super::{ApOp, ApProgram, Operand, RegId};
use crate::{CycleStats, DivStyle, Field};

/// How aggressively [`optimize`] rewrites a trace. The default is
/// [`OptLevel::Full`]; [`OptLevel::None`] is the escape hatch that
/// keeps the recorded trace byte-for-byte (used by the differential
/// tests and selectable at runtime via the `SOFTMAP_OPT` environment
/// variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// No rewriting: replay the trace exactly as recorded.
    None,
    /// Structure-preserving passes only: shift/copy fusion, dead-write
    /// elimination, and hoistable-broadcast marking.
    Basic,
    /// Everything: `Basic` plus constant-multiplier folding and fused,
    /// batched division.
    #[default]
    Full,
}

impl OptLevel {
    /// Environment variable selecting the optimization level at
    /// runtime: `none`/`0`, `basic`/`1`, or `full`/`2`. Unset or
    /// unparsable values fall back to [`OptLevel::Full`].
    pub const ENV: &'static str = "SOFTMAP_OPT";

    /// Parses an override string (case-insensitive; numeric aliases
    /// `0`/`1`/`2` accepted). Returns `Option::None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "0" => Some(Self::None),
            "basic" | "1" => Some(Self::Basic),
            "full" | "2" => Some(Self::Full),
            _ => None,
        }
    }

    /// Reads [`OptLevel::ENV`], falling back to the default
    /// ([`OptLevel::Full`]) when unset. An unparsable value also falls
    /// back, but **loudly**: a one-time diagnostic on stderr names the
    /// variable and the accepted values, so a typo like
    /// `SOFTMAP_OPT=ful` cannot silently benchmark the wrong level.
    #[must_use]
    pub fn from_env() -> Self {
        let Ok(raw) = std::env::var(Self::ENV) else {
            return Self::default();
        };
        Self::parse(&raw).unwrap_or_else(|| {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "softmap: invalid {}={raw:?}; accepted values are \
                     none/0, basic/1, full/2 — keeping the default (full)",
                    Self::ENV
                );
            });
            Self::default()
        })
    }

    /// The optimization ladder in ascending aggressiveness. Every
    /// level's passes are a superset of the previous level's and each
    /// pass only removes or fuses work, so the static cost of a shape
    /// is non-increasing along the ladder (asserted by the
    /// `fused_schedule_is_cheaper` gates). Mapping autotuners can
    /// therefore prune the opt axis to the single configured level
    /// instead of compiling a candidate per level.
    #[must_use]
    pub const fn ladder() -> [Self; 3] {
        [Self::None, Self::Basic, Self::Full]
    }
}

/// Per-pass statistics of one [`optimize`] run, attached to compiled
/// plans so optimizer effectiveness is inspectable without re-running
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassReport {
    /// The level the pipeline ran at.
    pub level: OptLevel,
    /// Ops in the trace before any pass (step marks included).
    pub ops_before: usize,
    /// Ops after all passes.
    pub ops_after: usize,
    /// `ShrConst` sweeps folded into their consuming copy's source
    /// window.
    pub shr_fused: usize,
    /// `Broadcast(Const)` + `Mul` pairs folded into [`ApOp::MulConst`].
    pub muls_folded: usize,
    /// Restoring `Divide` ops rewritten to [`ApOp::FusedDivide`].
    pub divides_fused: usize,
    /// Adjacent fused divisions merged into one batched arena pass.
    pub divides_batched: usize,
    /// Dead `Broadcast`/`Load`/`Copy` plane writes removed.
    pub dead_writes: usize,
    /// Broadcasts marked shard-invariant (hoistable under
    /// [`ApProgram::replay_resident`]).
    pub hoisted: usize,
}

impl PassReport {
    /// Whether the pipeline rewrote the trace — if so, the recorded
    /// costs were invalidated and the caller must
    /// [`ApProgram::recost`] before trusting
    /// [`ApProgram::static_cost`].
    #[must_use]
    pub fn changed(&self) -> bool {
        self.ops_before != self.ops_after || self.muls_folded > 0 || self.divides_fused > 0
    }
}

impl core::fmt::Display for PassReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "opt={:?} ops {}→{}: shr_fused={} muls_folded={} divides_fused={} \
             (batched={}) dead_writes={} hoisted={}",
            self.level,
            self.ops_before,
            self.ops_after,
            self.shr_fused,
            self.muls_folded,
            self.divides_fused,
            self.divides_batched,
            self.dead_writes,
            self.hoisted,
        )
    }
}

/// Runs the pass pipeline over `program`'s trace at `level` and returns
/// the per-pass statistics.
///
/// When the report says [`PassReport::changed`], the program's recorded
/// per-op costs, static total, and step segments have been cleared —
/// run [`ApProgram::recost`] once on a fresh core to re-derive them
/// from the fused schedule (the mapping layer's compile path does this
/// immediately).
pub fn optimize(program: &mut ApProgram, level: OptLevel) -> PassReport {
    let mut report = PassReport {
        level,
        ops_before: program.ops.len(),
        ops_after: program.ops.len(),
        ..PassReport::default()
    };
    if level == OptLevel::None {
        return report;
    }
    report.shr_fused = fuse_shr_copy(&mut program.ops);
    if level == OptLevel::Full {
        report.muls_folded = fold_mul_const(&mut program.ops);
        let (fused, batched) = fuse_divides(&mut program.ops);
        report.divides_fused = fused;
        report.divides_batched = batched;
    }
    report.dead_writes = eliminate_dead_writes(&mut program.ops, program.config.cols);
    // Hoist marking runs last so the recorded indices survive every
    // op-removing pass above.
    program.hoisted = mark_hoistable(&program.ops);
    report.hoisted = program.hoisted.len();
    report.ops_after = program.ops.len();
    if report.changed() {
        // The recorded per-op costs describe the pre-rewrite trace;
        // zero them out so a forgotten recost fails loudly instead of
        // reporting stale numbers.
        program.costs.clear();
        program
            .costs
            .resize(program.ops.len(), CycleStats::default());
        program.static_total = CycleStats::default();
        program.static_steps.clear();
        // Any region-blocking plan indexed the pre-rewrite trace;
        // re-plan after the pipeline settles.
        program.blocking = None;
    }
    report
}

// ---- field/op analysis helpers ------------------------------------------

fn contains(outer: Field, inner: Field) -> bool {
    inner.start() >= outer.start() && inner.end() <= outer.end()
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Calls `f` for every field whose planes `op` reads. Read-modify-write
/// accumulators count as reads; register-only ops read no planes.
fn for_each_read(op: &ApOp, f: &mut dyn FnMut(Field)) {
    match *op {
        ApOp::Copy { src, .. } => f(src),
        ApOp::Mul { a, b, .. } => {
            f(a);
            f(b);
        }
        ApOp::MulConst { a, .. } => f(a),
        ApOp::AddInto { acc, src }
        | ApOp::SubAssertClean { acc, src }
        | ApOp::SaturatingSubInto { acc, src } => {
            f(acc);
            f(src);
        }
        ApOp::ShrConst { field, .. } | ApOp::MinSearch { field, .. } | ApOp::Read { field, .. } => {
            f(field);
        }
        ApOp::ShrVariable { field, amount } => {
            f(field);
            f(amount);
        }
        // The 2D reduction is destructive over both fields; treating
        // them as read+write keeps every earlier write to them alive.
        ApOp::ReduceSum {
            field, sum_field, ..
        } => {
            f(field);
            f(sum_field);
        }
        ApOp::Divide { num, den, .. } => {
            f(num);
            f(den);
        }
        ApOp::FusedDivide {
            den,
            ref channels,
            n_channels,
            ..
        } => {
            f(den);
            for &(num, _) in &channels[..n_channels as usize] {
                f(num);
            }
        }
        ApOp::Load { .. }
        | ApOp::Broadcast { .. }
        | ApOp::RegMin { .. }
        | ApOp::RegMax1 { .. }
        | ApOp::RegLoad { .. }
        | ApOp::Step { .. } => {}
    }
}

/// Calls `f` for every field whose planes `op` writes (fully or
/// partially).
fn for_each_write(op: &ApOp, f: &mut dyn FnMut(Field)) {
    match *op {
        ApOp::Load { field, .. }
        | ApOp::Broadcast { field, .. }
        | ApOp::ShrConst { field, .. }
        | ApOp::ShrVariable { field, .. } => f(field),
        ApOp::Copy { dst, .. } => f(dst),
        ApOp::Mul { r, .. } | ApOp::MulConst { r, .. } => f(r),
        ApOp::AddInto { acc, .. }
        | ApOp::SubAssertClean { acc, .. }
        | ApOp::SaturatingSubInto { acc, .. } => f(acc),
        ApOp::ReduceSum {
            field, sum_field, ..
        } => {
            f(field);
            f(sum_field);
        }
        ApOp::Divide { quot, .. } => f(quot),
        ApOp::FusedDivide {
            ref channels,
            n_channels,
            ..
        } => {
            for &(_, quot) in &channels[..n_channels as usize] {
                f(quot);
            }
        }
        ApOp::MinSearch { .. }
        | ApOp::RegMin { .. }
        | ApOp::RegMax1 { .. }
        | ApOp::RegLoad { .. }
        | ApOp::Read { .. }
        | ApOp::Step { .. } => {}
    }
}

/// Whether `op` reads or writes any plane overlapping `f`.
fn touches(op: &ApOp, f: Field) -> bool {
    let mut t = false;
    for_each_read(op, &mut |x| t |= x.overlaps(&f));
    for_each_write(op, &mut |x| t |= x.overlaps(&f));
    t
}

/// Whether `op` writes any plane overlapping `f`.
fn writes_touch(op: &ApOp, f: Field) -> bool {
    let mut t = false;
    for_each_write(op, &mut |x| t |= x.overlaps(&f));
    t
}

/// Whether `op` overwrites every plane of `f` with values independent
/// of `f`'s prior content (a *kill*: all pre-cleared full-field write
/// classes qualify, read-modify-write ops never do).
fn kills_fully(op: &ApOp, f: Field) -> bool {
    match *op {
        ApOp::Broadcast { field, .. } | ApOp::Load { field, .. } => contains(field, f),
        ApOp::Copy { src, dst } => contains(dst, f) && !src.overlaps(&f),
        ApOp::Mul { a, b, r } => contains(r, f) && !a.overlaps(&f) && !b.overlaps(&f),
        ApOp::MulConst { a, r, .. } => contains(r, f) && !a.overlaps(&f),
        _ => false,
    }
}

/// Column-granular liveness set over the whole arena (carry/flag and
/// scratch columns included — they are simply never cleared, which
/// keeps every op that touches them alive).
struct ColSet {
    words: Vec<u64>,
}

impl ColSet {
    fn full(cols: usize) -> Self {
        Self {
            words: vec![u64::MAX; cols.div_ceil(64).max(1)],
        }
    }

    fn set_range(&mut self, f: Field) {
        for c in f.start()..f.end() {
            self.words[c / 64] |= 1 << (c % 64);
        }
    }

    fn clear_range(&mut self, f: Field) {
        for c in f.start()..f.end() {
            self.words[c / 64] &= !(1 << (c % 64));
        }
    }

    fn intersects(&self, f: Field) -> bool {
        (f.start()..f.end()).any(|c| self.words[c / 64] >> (c % 64) & 1 == 1)
    }
}

// ---- passes -------------------------------------------------------------

/// Pass 1: fold `ShrConst` into the `Copy` that consumes the shifted
/// field, when the field is fully overwritten before any other read.
/// The copy's source window moves up by the shift amount; the physical
/// plane sweep disappears.
fn fuse_shr_copy(ops: &mut Vec<ApOp>) -> usize {
    let mut fused = 0;
    let mut i = 0;
    while i < ops.len() {
        if let ApOp::ShrConst { field, k } = ops[i] {
            if k > 0 && k < field.width() && try_fuse_shr_at(ops, i, field, k) {
                fused += 1;
                // Re-examine index i: the shift was removed.
                continue;
            }
        }
        i += 1;
    }
    fused
}

fn try_fuse_shr_at(ops: &mut Vec<ApOp>, i: usize, field: Field, k: usize) -> bool {
    // The first op touching the shifted field must be a copy out of it
    // whose source window (shifted up by k) stays inside the field —
    // i.e. it never reads the shift's zero-fill.
    let Some(j) = (i + 1..ops.len()).find(|&j| touches(&ops[j], field)) else {
        return false;
    };
    let ApOp::Copy { src, dst } = ops[j] else {
        return false;
    };
    if !contains(field, src) || dst.overlaps(&field) {
        return false;
    }
    let s = src.start() - field.start();
    if s + src.width() + k > field.width() {
        return false;
    }
    // After the copy, the field's planes differ from the shifted ones,
    // so the next op touching it must overwrite it completely.
    let killed = match (j + 1..ops.len()).find(|&l| touches(&ops[l], field)) {
        Some(l) => kills_fully(&ops[l], field),
        None => false,
    };
    if !killed {
        return false;
    }
    ops[j] = ApOp::Copy {
        src: field.sub(s + k, src.width()),
        dst,
    };
    ops.remove(i);
    true
}

/// Pass 2: fold `Broadcast(Const)` + `Mul` pairs into
/// [`ApOp::MulConst`]. The broadcast itself stays (dead-write
/// elimination removes it if nothing else needs the planes).
fn fold_mul_const(ops: &mut [ApOp]) -> usize {
    let mut folded = 0;
    for i in 0..ops.len() {
        let ApOp::Broadcast {
            field,
            value: Operand::Const(c),
        } = ops[i]
        else {
            continue;
        };
        for op in ops.iter_mut().skip(i + 1) {
            if let ApOp::Mul { a, b, r } = *op {
                if contains(field, b) && !r.overlaps(&field) {
                    let bits = (c >> (b.start() - field.start())) & mask(b.width());
                    *op = ApOp::MulConst {
                        a,
                        r,
                        bits,
                        width: b.width(),
                    };
                    folded += 1;
                    continue;
                }
            }
            // Any write into the broadcast planes invalidates the
            // constant from here on.
            if writes_touch(op, field) {
                break;
            }
        }
    }
    folded
}

/// Pass 3: rewrite restoring `Divide` ops to [`ApOp::FusedDivide`]
/// (window-renamed remainder shifts), then batch adjacent fused
/// divisions sharing a divisor and fraction width into one arena pass.
fn fuse_divides(ops: &mut Vec<ApOp>) -> (usize, usize) {
    let mut fused = 0;
    for op in ops.iter_mut() {
        if let ApOp::Divide {
            num,
            den,
            quot,
            frac_bits,
            style: DivStyle::Restoring,
        } = *op
        {
            *op = ApOp::FusedDivide {
                den,
                frac_bits,
                channels: [(num, quot); 2],
                n_channels: 1,
            };
            fused += 1;
        }
    }
    let mut batched = 0;
    let mut i = 0;
    while i + 1 < ops.len() {
        if let (
            ApOp::FusedDivide {
                den,
                frac_bits,
                channels,
                n_channels: 1,
            },
            ApOp::FusedDivide {
                den: den2,
                frac_bits: frac2,
                channels: channels2,
                n_channels: 1,
            },
        ) = (ops[i], ops[i + 1])
        {
            if den == den2 && frac_bits == frac2 {
                ops[i] = ApOp::FusedDivide {
                    den,
                    frac_bits,
                    channels: [channels[0], channels2[0]],
                    n_channels: 2,
                };
                ops.remove(i + 1);
                batched += 1;
                continue;
            }
        }
        i += 1;
    }
    (fused, batched)
}

/// Pass 4: backward plane-liveness scan. Liveness starts full at the
/// end of the trace (every plane a finished program leaves behind is
/// observable, so final state is preserved bit-for-bit); only the
/// register- and carry-free full-write classes (`Broadcast`, `Load`,
/// `Copy`) are removal candidates, and every other op conservatively
/// only *adds* liveness for its reads.
fn eliminate_dead_writes(ops: &mut Vec<ApOp>, cols: usize) -> usize {
    let mut live = ColSet::full(cols);
    let mut keep = vec![true; ops.len()];
    let mut removed = 0;
    for i in (0..ops.len()).rev() {
        let (dst, src) = match ops[i] {
            ApOp::Broadcast { field, .. } | ApOp::Load { field, .. } => (Some(field), None),
            ApOp::Copy { src, dst } => (Some(dst), Some(src)),
            _ => (None, None),
        };
        if let Some(dst) = dst {
            if live.intersects(dst) {
                live.clear_range(dst);
                if let Some(src) = src {
                    live.set_range(src);
                }
            } else {
                keep[i] = false;
                removed += 1;
            }
        } else {
            for_each_read(&ops[i], &mut |f| live.set_range(f));
        }
    }
    if removed > 0 {
        let mut it = keep.iter();
        ops.retain(|_| *it.next().expect("keep mask parallel to ops"));
    }
    removed
}

/// Final analysis: broadcasts of shard-invariant values — compile-time
/// constants, or registers derived purely from external scalar inputs
/// through controller-side ops. Per-shard quantities (min-search
/// results, reduction sums) poison the derivation.
fn mark_hoistable(ops: &[ApOp]) -> Vec<u32> {
    let mut invariant: Vec<bool> = Vec::new();
    let set = |inv: &mut Vec<bool>, id: RegId, val: bool| {
        let i = id.index();
        if inv.len() <= i {
            inv.resize(i + 1, false);
        }
        inv[i] = val;
    };
    let get = |inv: &[bool], id: RegId| inv.get(id.index()).copied().unwrap_or(false);
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            ApOp::RegLoad { dst, .. } => set(&mut invariant, dst, true),
            ApOp::RegMax1 { dst, src } => {
                let v = get(&invariant, src);
                set(&mut invariant, dst, v);
            }
            ApOp::RegMin { dst, a, b } => {
                let v = get(&invariant, a) && get(&invariant, b);
                set(&mut invariant, dst, v);
            }
            ApOp::MinSearch { dst, .. } | ApOp::ReduceSum { dst, .. } => {
                set(&mut invariant, dst, false);
            }
            ApOp::Broadcast { value, .. } => {
                let inv = match value {
                    Operand::Const(_) => true,
                    Operand::Reg(r) => get(&invariant, r),
                };
                if inv {
                    out.push(u32::try_from(i).expect("trace longer than u32::MAX ops"));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ExecIo, ProgramScratch, Recorder};
    use crate::{ApConfig, ApCore};

    fn record_with(
        rows: usize,
        cols: usize,
        widths: &[usize],
        data: &[u64],
        build: impl FnOnce(&mut Recorder<'_, '_>, &[Field]),
    ) -> (ApProgram, Vec<u64>) {
        let mut core = ApCore::new(ApConfig::new(rows, cols)).unwrap();
        let fields: Vec<Field> = widths
            .iter()
            .map(|&w| core.alloc_field(w).unwrap())
            .collect();
        let inputs: [&[u64]; 1] = [data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&inputs, &mut outs),
            &mut scratch,
            &mut on_step,
            true,
        );
        build(&mut rec, &fields);
        (rec.finish().unwrap(), out)
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_garbage() {
        assert_eq!(OptLevel::parse("none"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse(" Basic "), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("1"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("FULL"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("2"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("fast"), None);
        assert_eq!(OptLevel::parse(""), None);
        assert_eq!(OptLevel::default(), OptLevel::Full);
    }

    #[test]
    fn opt_env_overrides_level() {
        // Race-safe mirror of the SOFTMAP_THREADS override test: only
        // values equivalent to the default (Full) plus garbage/unset
        // are ever set, so tests reading SOFTMAP_OPT concurrently can
        // never observe a non-default level.
        std::env::set_var(OptLevel::ENV, "full");
        assert_eq!(OptLevel::from_env(), OptLevel::Full);
        std::env::set_var(OptLevel::ENV, " 2 ");
        assert_eq!(OptLevel::from_env(), OptLevel::Full);
        std::env::set_var(OptLevel::ENV, "not-a-level");
        assert_eq!(OptLevel::from_env(), OptLevel::Full, "garbage falls back");
        std::env::remove_var(OptLevel::ENV);
        assert_eq!(OptLevel::from_env(), OptLevel::Full, "unset falls back");
    }

    #[test]
    fn none_level_is_identity() {
        let (mut program, _) = record_with(4, 40, &[8, 8], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 3).unwrap();
            rec.add_into(f[0], f[1]).unwrap();
            rec.read(f[0], 0).unwrap();
        });
        let before = program.ops.clone();
        let report = optimize(&mut program, OptLevel::None);
        assert!(!report.changed());
        assert_eq!(program.ops, before);
        assert!(program.hoisted.is_empty());
    }

    #[test]
    fn shr_copy_fuses_into_source_window() {
        // work = x * k; work >>= 4; q = work[0..8); work fully killed.
        let (mut program, _) = record_with(4, 80, &[8, 8, 20, 8], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 37).unwrap();
            rec.mul(f[0], f[1], f[2]).unwrap();
            rec.shr_const(f[2], 4).unwrap();
            rec.copy(f[2].sub(0, 8), f[3]).unwrap();
            rec.broadcast(f[2], 0).unwrap();
            rec.read(f[3], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Basic);
        assert_eq!(report.shr_fused, 1);
        assert!(report.changed());
        assert!(!program
            .ops
            .iter()
            .any(|op| matches!(op, ApOp::ShrConst { .. })));
        let copy = program
            .ops
            .iter()
            .find_map(|op| match *op {
                ApOp::Copy { src, dst } => Some((src, dst)),
                _ => None,
            })
            .unwrap();
        // The source window moved up by the shift amount.
        assert_eq!(copy.0.width(), 8);
        assert_eq!(copy.1.width(), 8);
    }

    #[test]
    fn shr_copy_does_not_fuse_when_field_stays_visible() {
        // No kill after the copy: the shifted planes are final state.
        let (mut program, _) = record_with(4, 80, &[8, 8, 20, 8], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 37).unwrap();
            rec.mul(f[0], f[1], f[2]).unwrap();
            rec.shr_const(f[2], 4).unwrap();
            rec.copy(f[2].sub(0, 8), f[3]).unwrap();
            rec.read(f[3], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Basic);
        assert_eq!(report.shr_fused, 0);
        assert!(program
            .ops
            .iter()
            .any(|op| matches!(op, ApOp::ShrConst { .. })));
    }

    #[test]
    fn mul_folds_to_const_with_subfield_extraction() {
        let (mut program, _) = record_with(4, 80, &[6, 13, 20], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 1365).unwrap();
            rec.mul(f[0], f[1], f[2]).unwrap();
            rec.read(f[2], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Full);
        assert_eq!(report.muls_folded, 1);
        let (bits, width) = program
            .ops
            .iter()
            .find_map(|op| match *op {
                ApOp::MulConst { bits, width, .. } => Some((bits, width)),
                _ => None,
            })
            .unwrap();
        assert_eq!(bits, 1365);
        assert_eq!(width, 13);
        // Basic leaves multiplies alone.
        let (mut program2, _) = record_with(4, 80, &[6, 13, 20], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 1365).unwrap();
            rec.mul(f[0], f[1], f[2]).unwrap();
            rec.read(f[2], 0).unwrap();
        });
        let report2 = optimize(&mut program2, OptLevel::Basic);
        assert_eq!(report2.muls_folded, 0);
        assert!(program2.ops.iter().any(|op| matches!(op, ApOp::Mul { .. })));
    }

    #[test]
    fn mul_fold_stops_at_intervening_write() {
        // The broadcast planes are overwritten before the multiply, so
        // the constant is stale and the fold must not fire.
        let (mut program, _) = record_with(4, 80, &[6, 13, 20], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 1365).unwrap();
            rec.load(f[1], 0).unwrap();
            rec.mul(f[0], f[1], f[2]).unwrap();
            rec.read(f[2], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Full);
        assert_eq!(report.muls_folded, 0);
    }

    #[test]
    fn dead_rebroadcast_is_removed_but_final_state_kept() {
        let (mut program, _) = record_with(4, 40, &[8, 8], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 5).unwrap(); // dead: fully re-broadcast
            rec.broadcast(f[1], 9).unwrap(); // live: final state
            rec.add_into(f[0], f[1]).unwrap();
            rec.read(f[0], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Basic);
        assert_eq!(report.dead_writes, 1);
        let broadcasts: Vec<u64> = program
            .ops
            .iter()
            .filter_map(|op| match op {
                ApOp::Broadcast {
                    value: Operand::Const(c),
                    ..
                } => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(broadcasts, vec![9]);
    }

    #[test]
    fn visible_final_planes_are_never_removed() {
        // A broadcast nothing reads is still final plane state.
        let (mut program, _) = record_with(4, 40, &[8, 8], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 5).unwrap();
            rec.read(f[0], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Basic);
        assert_eq!(report.dead_writes, 0);
        assert_eq!(program.ops.len(), 3);
    }

    #[test]
    fn adjacent_divides_fuse_and_batch() {
        let (mut program, _) = record_with(4, 120, &[8, 6, 12, 8, 12], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 3).unwrap();
            rec.load(f[3], 0).unwrap();
            rec.divide(f[0], f[1], f[2], 2, DivStyle::Restoring)
                .unwrap();
            rec.divide(f[3], f[1], f[4], 2, DivStyle::Restoring)
                .unwrap();
            rec.read(f[2], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Full);
        assert_eq!(report.divides_fused, 2);
        assert_eq!(report.divides_batched, 1);
        let n = program
            .ops
            .iter()
            .find_map(|op| match *op {
                ApOp::FusedDivide { n_channels, .. } => Some(n_channels),
                _ => None,
            })
            .unwrap();
        assert_eq!(n, 2);
        assert!(!program
            .ops
            .iter()
            .any(|op| matches!(op, ApOp::Divide { .. })));
    }

    #[test]
    fn reciprocal_divides_are_left_alone() {
        let (mut program, _) = record_with(4, 120, &[8, 6, 12], &[1, 2, 3, 4], |rec, f| {
            rec.load(f[0], 0).unwrap();
            rec.broadcast(f[1], 3).unwrap();
            rec.divide(f[0], f[1], f[2], 2, DivStyle::ControllerReciprocal)
                .unwrap();
            rec.read(f[2], 0).unwrap();
        });
        let report = optimize(&mut program, OptLevel::Full);
        assert_eq!(report.divides_fused, 0);
        assert!(program.ops.iter().any(|op| matches!(
            op,
            ApOp::Divide {
                style: DivStyle::ControllerReciprocal,
                ..
            }
        )));
    }

    #[test]
    fn hoist_marks_const_and_scalar_derived_broadcasts_only() {
        let data: Vec<u64> = vec![9, 4, 7, 12];
        let mut core = ApCore::new(ApConfig::new(4, 60)).unwrap();
        let x = core.alloc_field(8).unwrap();
        let m = core.alloc_field(8).unwrap();
        let k = core.alloc_field(8).unwrap();
        let inputs: [&[u64]; 1] = [&data];
        let mut out = Vec::new();
        let mut outs: [&mut Vec<u64>; 1] = [&mut out];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&inputs, &mut outs).with_scalars(&[3]),
            &mut scratch,
            &mut on_step,
            true,
        );
        rec.load(x, 0).unwrap();
        rec.broadcast(k, 7).unwrap(); // const: hoistable
        let ext = rec.reg_input(0).unwrap();
        let clamped = rec.reg_max1(ext);
        rec.broadcast_reg(m, clamped).unwrap(); // scalar-derived: hoistable
        rec.sub_assert_clean(x, m).unwrap();
        let local = rec.min_search(x);
        rec.broadcast_reg(m, local).unwrap(); // per-shard: NOT hoistable
        rec.sub_assert_clean(x, m).unwrap();
        rec.read(x, 0).unwrap();
        let mut program = rec.finish().unwrap();
        let report = optimize(&mut program, OptLevel::Basic);
        assert_eq!(report.hoisted, 2);
        assert_eq!(program.hoisted().len(), 2);
        for &i in program.hoisted() {
            assert!(matches!(program.ops()[i as usize], ApOp::Broadcast { .. }));
        }
    }
}
