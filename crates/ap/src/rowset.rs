/// A fixed-length bit vector over CAM rows.
///
/// Backs both the tag register and the per-column bit planes of
/// [`crate::CamArray`]. Bits are packed into `u64` words; all bulk
/// operations are word-parallel.
///
/// # Examples
///
/// ```
/// use softmap_ap::RowSet;
///
/// let mut t = RowSet::new(100);
/// t.set(3, true);
/// t.set(64, true);
/// assert_eq!(t.count(), 2);
/// assert!(t.get(64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RowSet {
    len: usize,
    words: Vec<u64>,
}

impl RowSet {
    /// Creates an all-zero set over `len` rows.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-one set over `len` rows.
    #[must_use]
    pub fn all(len: usize) -> Self {
        let mut s = Self {
            len,
            words: vec![u64::MAX; len.div_ceil(64)],
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// Number of rows this set ranges over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set ranges over zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    #[must_use]
    pub fn get(&self, row: usize) -> bool {
        assert!(row < self.len, "row {row} out of range {}", self.len);
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Sets the bit for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    pub fn set(&mut self, row: usize, value: bool) {
        assert!(row < self.len, "row {row} out of range {}", self.len);
        let w = &mut self.words[row / 64];
        if value {
            *w |= 1 << (row % 64);
        } else {
            *w &= !(1 << (row % 64));
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn is_none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit, if any.
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self &= !other`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_not_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Sets every bit to `value` in place (allocation-free counterpart
    /// of [`RowSet::new`] / [`RowSet::all`], used by the reusable tag
    /// scratch of the microcode engine).
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        if value {
            self.trim();
        }
    }

    /// In-place complement.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Intersects `self` with either `other` (when `polarity` is true) or
    /// its complement, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_with_polarity(&mut self, other: &Self, polarity: bool) {
        if polarity {
            self.and_with(other);
        } else {
            self.and_not_with(other);
        }
    }

    /// Intersects `self` with a raw plane (packed row-words straight
    /// from the CAM arena) under the given polarity.
    ///
    /// Complemented planes have set tail bits, but `self`'s tail is
    /// zero and AND keeps it zero, so the invariant holds.
    ///
    /// # Panics
    ///
    /// Panics if the word counts differ.
    pub(crate) fn and_with_plane(&mut self, plane: &[u64], polarity: bool) {
        assert_eq!(self.words.len(), plane.len(), "plane word-count mismatch");
        if polarity {
            for (a, b) in self.words.iter_mut().zip(plane) {
                *a &= b;
            }
        } else {
            for (a, b) in self.words.iter_mut().zip(plane) {
                *a &= !b;
            }
        }
    }

    /// Resizes in place to `len` rows, all bits cleared. Keeps the
    /// word buffer's capacity, so tile-state reuse across geometries
    /// does not reallocate once the high-water mark is reached.
    pub(crate) fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Copies packed row-words into this set and re-trims the tail.
    ///
    /// # Panics
    ///
    /// Panics if the word counts differ.
    pub(crate) fn copy_from_words(&mut self, words: &[u64]) {
        self.words.copy_from_slice(words);
        self.trim();
    }

    /// Iterates over indices of set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + b)
                }
            })
        })
    }

    /// Raw word access for word-parallel composition.
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty_all_is_full() {
        let z = RowSet::new(70);
        assert_eq!(z.count(), 0);
        assert!(z.is_none_set());
        let f = RowSet::all(70);
        assert_eq!(f.count(), 70);
        // the tail beyond `len` must stay clear
        assert_eq!(f.words().last().copied().unwrap().count_ones(), 6);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = RowSet::new(130);
        for row in [0, 1, 63, 64, 65, 127, 128, 129] {
            s.set(row, true);
            assert!(s.get(row));
            s.set(row, false);
            assert!(!s.get(row));
        }
    }

    #[test]
    fn boolean_algebra() {
        let mut a = RowSet::new(100);
        let mut b = RowSet::new(100);
        for i in (0..100).step_by(2) {
            a.set(i, true);
        }
        for i in (0..100).step_by(3) {
            b.set(i, true);
        }
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.count(), (0..100).filter(|i| i % 6 == 0).count());
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(
            or.count(),
            (0..100).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );
        let mut diff = a.clone();
        diff.and_not_with(&b);
        assert_eq!(
            diff.count(),
            (0..100).filter(|i| i % 2 == 0 && i % 3 != 0).count()
        );
        a.invert();
        assert_eq!(a.count(), 50);
    }

    #[test]
    fn invert_respects_length() {
        let mut s = RowSet::new(65);
        s.invert();
        assert_eq!(s.count(), 65);
        s.invert();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn iter_set_ascending() {
        let mut s = RowSet::new(200);
        let rows = [0usize, 5, 63, 64, 100, 199];
        for &r in &rows {
            s.set(r, true);
        }
        let collected: Vec<usize> = s.iter_set().collect();
        assert_eq!(collected, rows);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn first_on_empty_is_none() {
        assert_eq!(RowSet::new(10).first(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = RowSet::new(10);
        let _ = s.get(10);
    }
}
