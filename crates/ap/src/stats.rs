/// Cycle and cell-event counters accumulated by the CAM.
///
/// The AP executes in compare/write cycles; energy is driven by how many
/// *cells* each cycle touches. A compare broadcasts the key on every
/// masked column to all rows (`rows × masked columns` cell events); a
/// write drives only the tagged rows (`tagged rows × masked columns`).
/// 2D (row-parallel) operations are charged via
/// [`CycleStats::charge_2d`].
///
/// # Examples
///
/// ```
/// use softmap_ap::CycleStats;
///
/// let mut s = CycleStats::default();
/// s.charge_compare(1024, 3);
/// s.charge_write(128, 2);
/// assert_eq!(s.cycles(), 2);
/// assert_eq!(s.compare_cell_events(), 3072);
/// assert_eq!(s.write_cell_events(), 256);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    compare_cycles: u64,
    write_cycles: u64,
    twod_cycles: u64,
    compare_cell_events: u64,
    write_cell_events: u64,
}

impl CycleStats {
    /// Records one compare cycle over `rows` rows and `cols` masked
    /// columns.
    pub fn charge_compare(&mut self, rows: u64, cols: u64) {
        self.compare_cycles += 1;
        self.compare_cell_events += rows * cols;
    }

    /// Records one write cycle over `tagged_rows` rows and `cols` masked
    /// columns.
    pub fn charge_write(&mut self, tagged_rows: u64, cols: u64) {
        self.write_cycles += 1;
        self.write_cell_events += tagged_rows * cols;
    }

    /// Records `cycles` compare cycles touching `cell_events` cells in
    /// total.
    ///
    /// This is the bulk entry point of the shared cost model: the
    /// `FastWord` backend computes the same per-cycle charges the
    /// microcode backend issues through [`CycleStats::charge_compare`],
    /// but aggregated per operation.
    pub fn charge_compares_bulk(&mut self, cycles: u64, cell_events: u64) {
        self.compare_cycles += cycles;
        self.compare_cell_events += cell_events;
    }

    /// Records `cycles` write cycles touching `cell_events` cells in
    /// total (bulk counterpart of [`CycleStats::charge_write`]).
    pub fn charge_writes_bulk(&mut self, cycles: u64, cell_events: u64) {
        self.write_cycles += cycles;
        self.write_cell_events += cell_events;
    }

    /// Records `cycles` cycles of 2D (row-parallel) operation touching
    /// `cell_events` cells in total, split evenly between compare-like
    /// and write-like activity.
    pub fn charge_2d(&mut self, cycles: u64, cell_events: u64) {
        self.twod_cycles += cycles;
        self.compare_cell_events += cell_events / 2;
        self.write_cell_events += cell_events - cell_events / 2;
    }

    /// Total cycles (compare + write + 2D).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.compare_cycles + self.write_cycles + self.twod_cycles
    }

    /// Compare cycles only.
    #[must_use]
    pub fn compare_cycles(&self) -> u64 {
        self.compare_cycles
    }

    /// Write cycles only.
    #[must_use]
    pub fn write_cycles(&self) -> u64 {
        self.write_cycles
    }

    /// 2D row-parallel cycles only.
    #[must_use]
    pub fn twod_cycles(&self) -> u64 {
        self.twod_cycles
    }

    /// Cells touched by compares.
    #[must_use]
    pub fn compare_cell_events(&self) -> u64 {
        self.compare_cell_events
    }

    /// Cells touched by writes.
    #[must_use]
    pub fn write_cell_events(&self) -> u64 {
        self.write_cell_events
    }

    /// Total cell events (the "ops" denominator of the paper's
    /// energy-per-op metric, Table VI).
    #[must_use]
    pub fn cell_events(&self) -> u64 {
        self.compare_cell_events + self.write_cell_events
    }

    /// Difference since an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters than `self`.
    #[must_use]
    pub fn since(&self, earlier: &CycleStats) -> CycleStats {
        CycleStats {
            compare_cycles: self.compare_cycles - earlier.compare_cycles,
            write_cycles: self.write_cycles - earlier.write_cycles,
            twod_cycles: self.twod_cycles - earlier.twod_cycles,
            compare_cell_events: self.compare_cell_events - earlier.compare_cell_events,
            write_cell_events: self.write_cell_events - earlier.write_cell_events,
        }
    }

    /// Adds another set of counters into this one.
    pub fn accumulate(&mut self, other: &CycleStats) {
        self.compare_cycles += other.compare_cycles;
        self.write_cycles += other.write_cycles;
        self.twod_cycles += other.twod_cycles;
        self.compare_cell_events += other.compare_cell_events;
        self.write_cell_events += other.write_cell_events;
    }

    /// Scales all counters by `k` (used when one simulated AP stands in
    /// for `k` identical tiles running the same microcode).
    #[must_use]
    pub fn scaled(&self, k: u64) -> CycleStats {
        CycleStats {
            compare_cycles: self.compare_cycles,
            write_cycles: self.write_cycles,
            twod_cycles: self.twod_cycles,
            compare_cell_events: self.compare_cell_events * k,
            write_cell_events: self.write_cell_events * k,
        }
    }
}

impl core::fmt::Display for CycleStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} cycles ({} cmp, {} wr, {} 2d), {} cell events",
            self.cycles(),
            self.compare_cycles,
            self.write_cycles,
            self.twod_cycles,
            self.cell_events()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates() {
        let mut s = CycleStats::default();
        s.charge_compare(100, 3);
        s.charge_compare(100, 3);
        s.charge_write(10, 1);
        s.charge_2d(5, 100);
        assert_eq!(s.cycles(), 8);
        assert_eq!(s.compare_cycles(), 2);
        assert_eq!(s.write_cycles(), 1);
        assert_eq!(s.twod_cycles(), 5);
        assert_eq!(s.compare_cell_events(), 650);
        assert_eq!(s.write_cell_events(), 60);
        assert_eq!(s.cell_events(), 710);
    }

    #[test]
    fn since_subtracts() {
        let mut s = CycleStats::default();
        s.charge_compare(10, 2);
        let snap = s;
        s.charge_write(5, 1);
        let d = s.since(&snap);
        assert_eq!(d.cycles(), 1);
        assert_eq!(d.write_cell_events(), 5);
        assert_eq!(d.compare_cell_events(), 0);
    }

    #[test]
    fn scaled_multiplies_events_not_cycles() {
        let mut s = CycleStats::default();
        s.charge_compare(10, 2);
        s.charge_write(4, 2);
        let k = s.scaled(8);
        assert_eq!(k.cycles(), s.cycles());
        assert_eq!(k.cell_events(), s.cell_events() * 8);
    }

    #[test]
    fn display_is_informative() {
        let mut s = CycleStats::default();
        s.charge_compare(1, 1);
        assert!(s.to_string().contains("1 cycles"));
    }
}
