//! Reusable AP tile state.
//!
//! SoftmAP's deployment model treats a tile as **persistent hardware**
//! that many softmax vectors stream through — the arrays are not
//! rebuilt between vectors, only rewritten. [`ApTile`] is the host-side
//! analogue: one slot that owns a simulated [`ApCore`] (the flat CAM
//! arena, the tag/borrow/search registers, the LUT tables, and the
//! `FastWord` gather buffers) and hands it out freshly cleared per
//! program. Acquiring a tile at a previously seen geometry performs
//! **zero** heap allocations; only growing past the high-water mark
//! allocates.
//!
//! The batched execution layers keep one `ApTile` per worker thread
//! (via `softmap_par::try_parallel_map_with`), so a batch of `n`
//! vectors touches `threads` tile allocations instead of `n`.
//!
//! # Examples
//!
//! ```
//! use softmap_ap::{ApConfig, ApTile, ExecBackend};
//!
//! let mut tile = ApTile::new();
//! for round in 0..3u64 {
//!     let ap = tile
//!         .acquire(ApConfig::new(8, 16), ExecBackend::FastWord)
//!         .unwrap();
//!     let f = ap.alloc_field(6).unwrap();
//!     ap.load(f, &[round; 8]).unwrap();
//!     assert_eq!(ap.read(f), vec![round; 8]); // fresh state each round
//! }
//! ```

use crate::{ApConfig, ApCore, ApError, ExecBackend};

/// A reusable slot for one simulated AP tile; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ApTile {
    core: Option<ApCore>,
}

impl ApTile {
    /// Creates an empty tile slot (no arena allocated yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out the tile's core, cleared for a fresh program at the
    /// requested geometry and backend: all CAM cells zero, statistics
    /// zero, no fields allocated. Buffer capacities are kept across
    /// acquisitions, so steady-state reuse allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] for degenerate geometries.
    pub fn acquire(
        &mut self,
        config: ApConfig,
        backend: ExecBackend,
    ) -> Result<&mut ApCore, ApError> {
        match &mut self.core {
            Some(core) => core.reshape(config, backend)?,
            None => self.core = Some(ApCore::with_backend(config, backend)?),
        }
        Ok(self.core.as_mut().expect("core was just ensured"))
    }

    /// Hands out the tile's core for the next **resident** phase: the
    /// CAM cells are kept (the previous phase's output planes are the
    /// next phase's input planes), only the statistics and the field
    /// cursor are reset. The held core must already be at exactly
    /// `config`'s geometry and `backend` — residency never silently
    /// reshapes, because a reshape would clear the very planes
    /// residency exists to keep.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::BadConfig`] when the slot is empty or the
    /// held core's geometry or backend differs from the request.
    pub fn rearm_resident(
        &mut self,
        config: ApConfig,
        backend: ExecBackend,
    ) -> Result<&mut ApCore, ApError> {
        let Some(core) = &mut self.core else {
            return Err(ApError::BadConfig("resident rearm on an empty tile slot"));
        };
        if core.rows() != config.rows || core.cols() != config.cols || core.backend() != backend {
            return Err(ApError::BadConfig(
                "resident rearm geometry/backend mismatch",
            ));
        }
        core.rearm();
        Ok(core)
    }

    /// Clears the held core's cells, statistics, and field allocations
    /// in place (no-op for an empty slot). The arena stays allocated.
    pub fn clear(&mut self) {
        if let Some(core) = &mut self.core {
            core.clear();
        }
    }

    /// The held core, if one has been acquired.
    #[must_use]
    pub fn core(&self) -> Option<&ApCore> {
        self.core.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_state_across_geometries() {
        let mut tile = ApTile::new();
        let ap = tile
            .acquire(ApConfig::new(100, 16), ExecBackend::Microcode)
            .unwrap();
        let f = ap.alloc_field(8).unwrap();
        ap.load(f, &(0..100).map(|i| i % 250).collect::<Vec<_>>())
            .unwrap();
        assert!(ap.stats().cycles() > 0);

        // Same slot, smaller geometry, other backend: fresh state.
        let ap = tile
            .acquire(ApConfig::new(40, 12), ExecBackend::FastWord)
            .unwrap();
        assert_eq!((ap.rows(), ap.cols()), (40, 12));
        assert_eq!(ap.stats().cycles(), 0);
        assert_eq!(ap.backend(), ExecBackend::FastWord);
        let g = ap.alloc_field(10).unwrap();
        assert_eq!(ap.read(g), vec![0; 40], "acquire must clear cells");

        // Bad geometry is rejected without poisoning the slot.
        assert!(tile
            .acquire(ApConfig::new(0, 8), ExecBackend::FastWord)
            .is_err());
        assert!(tile
            .acquire(ApConfig::new(8, 8), ExecBackend::FastWord)
            .is_ok());
    }

    #[test]
    fn clear_resets_in_place() {
        let mut tile = ApTile::new();
        tile.clear(); // empty slot: no-op
        let ap = tile
            .acquire(ApConfig::new(8, 16), ExecBackend::FastWord)
            .unwrap();
        let f = ap.alloc_field(6).unwrap();
        ap.load(f, &[9; 8]).unwrap();
        tile.clear();
        let ap = tile.core().unwrap();
        assert_eq!(ap.stats().cycles(), 0);
        assert_eq!(ap.free_cols(), 14);
    }
}
