//! Differential tests: the `FastWord` backend must be **bit-exact**
//! (every CAM plane, including the reserved carry/flag columns) and
//! **cycle-exact** (identical [`CycleStats`], all five counters)
//! against the `Microcode` ground truth, for every `ApCore` operation,
//! overflow mode, and division style.

use proptest::prelude::*;
use softmap_ap::{ApConfig, ApCore, ApTile, CycleStats, DivStyle, ExecBackend, Field, Overflow};

/// Runs `op` on a fresh core per backend and asserts identical CAM
/// state (every column plane) and identical cycle statistics.
fn assert_backends_agree<R: PartialEq + core::fmt::Debug>(
    rows: usize,
    cols: usize,
    op: impl Fn(&mut ApCore) -> R,
) {
    let mut micro = ApCore::with_backend(ApConfig::new(rows, cols), ExecBackend::Microcode)
        .expect("micro core");
    let mut fast =
        ApCore::with_backend(ApConfig::new(rows, cols), ExecBackend::FastWord).expect("fast core");
    assert_eq!(fast.backend(), ExecBackend::FastWord);
    let rm = op(&mut micro);
    let rf = op(&mut fast);
    assert_eq!(rm, rf, "operation results diverge");
    assert_eq!(
        micro.stats(),
        fast.stats(),
        "cycle statistics diverge: micro {} vs fast {}",
        micro.stats(),
        fast.stats()
    );
    for col in 0..cols {
        assert_eq!(
            micro.cam().plane(col),
            fast.cam().plane(col),
            "bit-plane {col} diverges"
        );
    }
}

fn truncate_pairs(xs: &[u64], ys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = xs.len().min(ys.len());
    (xs[..n].to_vec(), ys[..n].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_into_agrees(
        xs in prop::collection::vec(0u64..256, 1..48),
        ys in prop::collection::vec(0u64..512, 1..48),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 32, |ap| {
            let a = ap.alloc_field(8).unwrap();
            let acc = ap.alloc_field(10).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(acc, &ys).unwrap();
            ap.add_into(acc, a).unwrap();
            ap.read(acc)
        });
    }

    #[test]
    fn gated_add_agrees(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..256, 1..32),
        gates in prop::collection::vec(0u64..2, 1..32),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        let n = xs.len().min(gates.len());
        let (xs, ys) = (xs[..n].to_vec(), ys[..n].to_vec());
        let gates = gates[..n].to_vec();
        assert_backends_agree(n, 32, |ap| {
            let a = ap.alloc_field(8).unwrap();
            let acc = ap.alloc_field(9).unwrap();
            let g = ap.alloc_field(1).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(acc, &ys).unwrap();
            ap.load(g, &gates).unwrap();
            ap.add_into_gated(acc, a, Some((g.col(0), true))).unwrap();
            ap.read(acc)
        });
    }

    #[test]
    fn sub_into_agrees(
        xs in prop::collection::vec(0u64..256, 1..48),
        ys in prop::collection::vec(0u64..256, 1..48),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 32, |ap| {
            let a = ap.alloc_field(8).unwrap();
            let acc = ap.alloc_field(8).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(acc, &ys).unwrap();
            let borrowed = ap.sub_into(acc, a).unwrap();
            (ap.read(acc), borrowed.iter_set().collect::<Vec<_>>())
        });
    }

    #[test]
    fn saturating_sub_agrees(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..256, 1..32),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 32, |ap| {
            let a = ap.alloc_field(8).unwrap();
            let acc = ap.alloc_field(9).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(acc, &ys).unwrap();
            ap.saturating_sub_into(acc, a).unwrap();
            ap.read(acc)
        });
    }

    #[test]
    fn mul_and_square_agree(
        xs in prop::collection::vec(0u64..64, 1..32),
        ys in prop::collection::vec(0u64..64, 1..32),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 64, |ap| {
            let a = ap.alloc_field(6).unwrap();
            let b = ap.alloc_field(6).unwrap();
            let r = ap.alloc_field(12).unwrap();
            let sq = ap.alloc_field(12).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(b, &ys).unwrap();
            ap.mul(a, b, r).unwrap();
            ap.square(b, sq).unwrap();
            (ap.read(r), ap.read(sq))
        });
    }

    #[test]
    fn logic_ops_agree(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..64, 1..32),
    ) {
        // Deliberately unequal operand widths (8 vs 6) to cover the
        // zero-extension paths of the bitwise engine.
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 64, |ap| {
            let a = ap.alloc_field(8).unwrap();
            let b = ap.alloc_field(6).unwrap();
            let rx = ap.alloc_field(8).unwrap();
            let ra = ap.alloc_field(8).unwrap();
            let ro = ap.alloc_field(8).unwrap();
            let rn = ap.alloc_field(8).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(b, &ys).unwrap();
            ap.xor(a, b, rx).unwrap();
            ap.and(a, b, ra).unwrap();
            ap.or(a, b, ro).unwrap();
            ap.not(a, rn).unwrap();
            (ap.read(rx), ap.read(ra), ap.read(ro), ap.read(rn))
        });
    }

    #[test]
    fn copy_agrees(xs in prop::collection::vec(0u64..4096, 1..32)) {
        assert_backends_agree(xs.len(), 40, |ap| {
            let src = ap.alloc_field(12).unwrap();
            let dst = ap.alloc_field(16).unwrap();
            ap.load(src, &xs).unwrap();
            ap.broadcast(dst, 0xFFFF).unwrap();
            ap.copy(src, dst).unwrap();
            ap.read(dst)
        });
    }

    #[test]
    fn shifts_agree(
        xs in prop::collection::vec(0u64..1024, 1..24),
        ss in prop::collection::vec(0u64..16, 1..24),
        k in 0usize..12,
    ) {
        let (xs, ss) = truncate_pairs(&xs, &ss);
        assert_backends_agree(xs.len(), 32, |ap| {
            let f = ap.alloc_field(10).unwrap();
            let amt = ap.alloc_field(4).unwrap();
            ap.load(f, &xs).unwrap();
            ap.load(amt, &ss).unwrap();
            ap.shr_variable(f, amt).unwrap();
            ap.shr_const(f, k).unwrap();
            ap.read(f)
        });
    }

    #[test]
    fn searches_agree(xs in prop::collection::vec(0u64..4096, 1..64)) {
        assert_backends_agree(xs.len(), 16, |ap| {
            let f = ap.alloc_field(12).unwrap();
            ap.load(f, &xs).unwrap();
            let (max, max_rows) = ap.max_search(f);
            let (min, min_rows) = ap.min_search(f);
            (
                max,
                min,
                max_rows.iter_set().collect::<Vec<_>>(),
                min_rows.iter_set().collect::<Vec<_>>(),
            )
        });
    }

    #[test]
    fn reductions_agree_in_every_overflow_mode(
        xs in prop::collection::vec(0u64..256, 1..8),
        log_seg in 0u32..4,
    ) {
        let seg = 1usize << log_seg;
        let mut data = xs.clone();
        while data.len() % seg != 0 {
            data.push(0);
        }
        for mode in [Overflow::Error, Overflow::Saturate, Overflow::Wrap] {
            let data = data.clone();
            assert_backends_agree(data.len(), 32, move |ap| {
                let f = ap.alloc_field(8).unwrap();
                // Narrow sum field so Saturate/Wrap actually fire.
                let sum = ap.alloc_field(9).unwrap();
                ap.load(f, &data).unwrap();
                ap.reduce_sum_2d_mode(f, sum, seg, mode)
            });
        }
    }

    #[test]
    fn divide_agrees_in_both_styles(
        ns in prop::collection::vec(0u64..256, 1..8),
        ds in prop::collection::vec(1u64..256, 1..8),
        frac in 0usize..6,
    ) {
        let (ns, ds) = truncate_pairs(&ns, &ds);
        for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
            let (ns, ds) = (ns.clone(), ds.clone());
            assert_backends_agree(ns.len(), 96, move |ap| {
                let num = ap.alloc_field(8).unwrap();
                let den = ap.alloc_field(8).unwrap();
                let quot = ap.alloc_field(14).unwrap();
                ap.load(num, &ns).unwrap();
                ap.load(den, &ds).unwrap();
                ap.divide(num, den, quot, frac, style).unwrap();
                ap.read(quot)
            });
        }
    }

    #[test]
    fn divide_saturation_agrees(
        ns in prop::collection::vec(100u64..256, 1..8),
        ds in prop::collection::vec(1u64..4, 1..8),
    ) {
        // Narrow quotient field: quotient bits land above the field and
        // exercise the saturation branch on both backends.
        let (ns, ds) = truncate_pairs(&ns, &ds);
        assert_backends_agree(ns.len(), 80, |ap| {
            let num = ap.alloc_field(8).unwrap();
            let den = ap.alloc_field(4).unwrap();
            let quot = ap.alloc_field(4).unwrap();
            ap.load(num, &ns).unwrap();
            ap.load(den, &ds).unwrap();
            ap.divide(num, den, quot, 0, DivStyle::Restoring).unwrap();
            ap.read(quot)
        });
    }

    #[test]
    fn dot_agrees(
        xs in prop::collection::vec(0u64..64, 2..32),
        ys in prop::collection::vec(0u64..64, 2..32),
    ) {
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 64, |ap| {
            let a = ap.alloc_field(6).unwrap();
            let b = ap.alloc_field(6).unwrap();
            let prod = ap.alloc_field(12).unwrap();
            let sum = ap.alloc_field(18).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(b, &ys).unwrap();
            ap.dot(a, b, prod, sum).unwrap()
        });
    }

    #[test]
    fn pooled_tiles_agree_across_reuse(
        xs in prop::collection::vec(0u64..64, 2..24),
        ys in prop::collection::vec(1u64..64, 2..24),
    ) {
        // The pooled/arena path: both backends execute the same
        // program repeatedly through ONE reused ApTile each. Every
        // round must be bit- and cycle-identical between backends and
        // to a fresh-core run (no residual state across acquisitions).
        let (xs, ys) = truncate_pairs(&xs, &ys);
        let rows = xs.len();
        let cols = 64;
        let program = |ap: &mut ApCore| {
            let a = ap.alloc_field(6).unwrap();
            let b = ap.alloc_field(6).unwrap();
            let p = ap.alloc_field(12).unwrap();
            let q = ap.alloc_field(8).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(b, &ys).unwrap();
            ap.mul(a, b, p).unwrap();
            ap.shr_const(p, 1).unwrap();
            ap.add_into(p.sub(0, 8), a).unwrap();
            ap.divide(p.sub(0, 8), b, q, 1, DivStyle::Restoring).unwrap();
            (ap.read(p), ap.read(q), ap.stats())
        };
        let mut fresh = ApCore::with_backend(ApConfig::new(rows, cols), ExecBackend::Microcode)
            .expect("fresh core");
        let reference = program(&mut fresh);
        let mut micro_tile = ApTile::new();
        let mut fast_tile = ApTile::new();
        for round in 0..3 {
            let rm = program(
                micro_tile
                    .acquire(ApConfig::new(rows, cols), ExecBackend::Microcode)
                    .unwrap(),
            );
            let rf = program(
                fast_tile
                    .acquire(ApConfig::new(rows, cols), ExecBackend::FastWord)
                    .unwrap(),
            );
            prop_assert_eq!(&rm, &rf, "backends diverge on round {}", round);
            prop_assert_eq!(&rm, &reference, "tile reuse leaks state on round {}", round);
            // Plane state (incl. carry/flag columns) must match too.
            let (mc, fc) = (
                micro_tile.core().unwrap().cam(),
                fast_tile.core().unwrap().cam(),
            );
            for col in 0..cols {
                prop_assert_eq!(mc.plane(col), fc.plane(col), "plane {} diverges", col);
            }
        }
    }

    #[test]
    fn mixed_program_agrees(
        xs in prop::collection::vec(0u64..64, 2..24),
        ys in prop::collection::vec(1u64..64, 2..24),
    ) {
        // A longer compound program: state (including the reserved
        // carry/flag columns) must track exactly across many ops.
        let (xs, ys) = truncate_pairs(&xs, &ys);
        assert_backends_agree(xs.len(), 96, |ap| {
            let a = ap.alloc_field(6).unwrap();
            let b = ap.alloc_field(6).unwrap();
            let p = ap.alloc_field(12).unwrap();
            let q = ap.alloc_field(10).unwrap();
            ap.load(a, &xs).unwrap();
            ap.load(b, &ys).unwrap();
            ap.mul(a, b, p).unwrap();
            ap.shr_const(p, 2).unwrap();
            let borrow = ap.sub_into(p.sub(0, 6), b).unwrap();
            let _ = borrow.count();
            ap.add_into(p.sub(0, 8), a).unwrap();
            ap.divide(p.sub(0, 8), b, q, 2, DivStyle::Restoring).unwrap();
            let (mx, _) = ap.max_search(q);
            (ap.read(p), ap.read(q), mx)
        });
    }
}

#[test]
fn stats_equal_including_event_split() {
    // Deterministic spot check that the equality above is meaningful:
    // a nontrivial program charges nonzero counters of every kind.
    let mut fast = ApCore::with_backend(ApConfig::new(8, 64), ExecBackend::FastWord).expect("core");
    let a = fast.alloc_field(6).unwrap();
    let b = fast.alloc_field(6).unwrap();
    let r = fast.alloc_field(12).unwrap();
    let s = fast.alloc_field(16).unwrap();
    fast.load(a, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    fast.load(b, &[8, 7, 6, 5, 4, 3, 2, 1]).unwrap();
    fast.mul(a, b, r).unwrap();
    fast.reduce_sum_2d(r, s, 8).unwrap();
    let st: CycleStats = fast.stats();
    assert!(st.compare_cycles() > 0);
    assert!(st.write_cycles() > 0);
    assert!(st.twod_cycles() > 0);
    assert!(st.compare_cell_events() > 0);
    assert!(st.write_cell_events() > 0);
}

#[test]
fn backend_switch_preserves_state() {
    let mut ap = ApCore::new(ApConfig::new(4, 24)).expect("core");
    let f = ap.alloc_field(8).unwrap();
    ap.load(f, &[1, 2, 3, 4]).unwrap();
    assert_eq!(ap.backend(), ExecBackend::Microcode);
    ap.set_backend(ExecBackend::FastWord);
    let acc = ap.alloc_field(9).unwrap();
    ap.load(acc, &[10, 20, 30, 40]).unwrap();
    ap.add_into(acc, f).unwrap();
    assert_eq!(ap.read(acc), vec![11, 22, 33, 44]);
}

#[test]
fn field_geometry_survives_both_backends() {
    for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
        let mut ap = ApCore::with_backend(ApConfig::new(2, 8), backend).expect("core");
        let f: Field = ap.alloc_field(6).unwrap();
        assert_eq!(f.width(), 6);
        assert!(ap.alloc_field(1).is_err());
    }
}
