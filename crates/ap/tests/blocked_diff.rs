//! Differential proptests for the region-blocked strip-mined executor:
//! a blocked replay must leave **bit-identical CAM state** — every
//! column plane, the reserved carry/flag columns included — identical
//! outputs, and **identical `CycleStats`** versus the op-by-op replay
//! and versus direct issue, on both backends, across row counts not
//! divisible by 64 and at sharded lengths. Blocking is a host-execution
//! optimization only: the device cost contract (static == simulated)
//! must keep holding on blocked replays.

use proptest::prelude::*;
use softmap_ap::program::optimizer::{self, OptLevel};
use softmap_ap::program::{self, ExecIo, ProgramScratch, Recorder};
use softmap_ap::{ApConfig, ApCore, ApProgram, CycleStats, DivStyle, ExecBackend, Overflow};

const COLS: usize = 200;

/// One execution's observable outcome: outputs, cost, and the entire
/// arena — every column plane including carry (col 0), flag (col 1),
/// and division scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    outs: [Vec<u64>; 3],
    stats: CycleStats,
    planes: Vec<Vec<u64>>,
}

fn capture_planes(core: &ApCore) -> Vec<Vec<u64>> {
    (0..core.cols())
        .map(|c| core.cam().plane(c).to_vec())
        .collect()
}

struct Inputs<'a> {
    xs: &'a [u64],
    ys: &'a [u64],
    amts: &'a [u64],
    ext: u64,
}

/// Issues the optimizer-diff pipeline: long blockable runs (broadcast,
/// mul, shifts, copies, clean subtraction) separated by the cross-row
/// boundaries (loads, min-search, reduction, divides, reads) that end
/// regions.
fn issue_pipeline(
    rec: &mut Recorder<'_, '_>,
    f: &Fields,
    rows: usize,
    style: DivStyle,
    phase: bool,
) {
    rec.load(f.a, 0).unwrap();
    rec.load(f.b, 1).unwrap();
    rec.load(f.amt, 2).unwrap();
    rec.step("stage-in");
    rec.broadcast(f.k, 1365).unwrap();
    rec.mul(f.a, f.k, f.work).unwrap();
    rec.shr_const(f.work, 5).unwrap();
    rec.copy(f.work.sub(0, 9), f.t).unwrap();
    rec.mul(f.a, f.b, f.work).unwrap();
    rec.shr_variable(f.work, f.amt).unwrap();
    rec.copy(f.work.sub(0, 9), f.t2).unwrap();
    let r0 = rec.min_search(f.a);
    rec.broadcast_reg(f.c, r0).unwrap();
    rec.sub_assert_clean(f.a, f.c).unwrap();
    rec.step("compute");
    let rd = if phase {
        let ext = rec.reg_input(0).unwrap();
        rec.reg_max1(ext)
    } else {
        let rs = rec
            .reduce_sum(f.t, f.sum, rows, Overflow::Saturate)
            .unwrap();
        rec.reg_max1(rs)
    };
    rec.broadcast_reg(f.den, rd).unwrap();
    rec.divide(f.t, f.den, f.q1, 4, style).unwrap();
    rec.divide(f.t2, f.den, f.q2, 4, style).unwrap();
    rec.step("normalize");
    rec.read(f.a, 0).unwrap();
    rec.read(f.q1, 1).unwrap();
    rec.read(f.q2, 2).unwrap();
}

struct Fields {
    a: softmap_ap::Field,
    b: softmap_ap::Field,
    amt: softmap_ap::Field,
    k: softmap_ap::Field,
    work: softmap_ap::Field,
    t: softmap_ap::Field,
    t2: softmap_ap::Field,
    c: softmap_ap::Field,
    sum: softmap_ap::Field,
    den: softmap_ap::Field,
    q1: softmap_ap::Field,
    q2: softmap_ap::Field,
}

fn alloc_fields(core: &mut ApCore) -> Fields {
    Fields {
        a: core.alloc_field(8).unwrap(),
        b: core.alloc_field(8).unwrap(),
        amt: core.alloc_field(3).unwrap(),
        k: core.alloc_field(13).unwrap(),
        work: core.alloc_field(21).unwrap(),
        t: core.alloc_field(9).unwrap(),
        t2: core.alloc_field(9).unwrap(),
        c: core.alloc_field(8).unwrap(),
        sum: core.alloc_field(16).unwrap(),
        den: core.alloc_field(16).unwrap(),
        q1: core.alloc_field(12).unwrap(),
        q2: core.alloc_field(12).unwrap(),
    }
}

/// Direct issue (and optionally recording) on a fresh core.
fn run_direct(
    rows: usize,
    backend: ExecBackend,
    style: DivStyle,
    phase: bool,
    inputs: &Inputs<'_>,
    record: bool,
) -> (Outcome, Option<ApProgram>) {
    let mut core = ApCore::with_backend(ApConfig::new(rows, COLS), backend).unwrap();
    let fields = alloc_fields(&mut core);
    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let scalars = [inputs.ext];
    let mut outs_bufs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let program;
    {
        let [o0, o1, o2] = &mut outs_bufs;
        let mut outs: [&mut Vec<u64>; 3] = [o0, o1, o2];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars),
            &mut scratch,
            &mut on_step,
            record,
        );
        issue_pipeline(&mut rec, &fields, rows, style, phase);
        program = rec.finish();
    }
    (
        Outcome {
            outs: outs_bufs,
            stats: core.stats(),
            planes: capture_planes(&core),
        },
        program,
    )
}

/// Replays (or resident-replays) `program` on a fresh core.
fn run_replay(
    program: &ApProgram,
    backend: ExecBackend,
    inputs: &Inputs<'_>,
    resident: bool,
) -> Outcome {
    let mut core = ApCore::with_backend(program.config(), backend).unwrap();
    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let scalars = [inputs.ext];
    let mut outs_bufs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    {
        let [o0, o1, o2] = &mut outs_bufs;
        let mut outs: [&mut Vec<u64>; 3] = [o0, o1, o2];
        let mut scratch = ProgramScratch::default();
        let io = ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars);
        if resident {
            program
                .replay_resident(&mut core, io, &mut scratch, |_, _| {})
                .unwrap();
        } else {
            program
                .replay(&mut core, io, &mut scratch, |_, _| {})
                .unwrap();
        }
    }
    Outcome {
        outs: outs_bufs,
        stats: core.stats(),
        planes: capture_planes(&core),
    }
}

/// Clones `program` with a region-blocking plan at the given strip
/// override.
fn planned(program: &ApProgram, strip: Option<usize>) -> ApProgram {
    let mut p = program.clone();
    p.plan_blocking(strip);
    p
}

/// Optimizes a clone of `program` at `level` and recosts it on a fresh
/// microcode core with the compile inputs.
fn optimized(program: &ApProgram, level: OptLevel, inputs: &Inputs<'_>) -> ApProgram {
    let mut opt = program.clone();
    let report = optimizer::optimize(&mut opt, level);
    if report.changed() {
        let mut core = ApCore::new(opt.config()).unwrap();
        let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
        let scalars = [inputs.ext];
        let mut o0 = Vec::new();
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        let mut outs: [&mut Vec<u64>; 3] = [&mut o0, &mut o1, &mut o2];
        let mut scratch = ProgramScratch::default();
        opt.recost(
            &mut core,
            ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars),
            &mut scratch,
            |_, _| {},
        )
        .unwrap();
    }
    opt
}

fn make_inputs(rows: usize, salt: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let xs = (0..rows as u64).map(|i| (i * 7 + salt) % 256).collect();
    let ys = (0..rows as u64)
        .map(|i| (i * 13 + salt + 5) % 256)
        .collect();
    let amts = (0..rows as u64).map(|i| (i + salt) % 8).collect();
    (xs, ys, amts)
}

/// Blocked replay == op-by-op replay of the same program, full outcome
/// (planes, outputs, *and* CycleStats), on both backends, for every
/// strip width in `strips`. With `expect_direct`, the op-by-op replay
/// must also match direct issue exactly (holds for unoptimized traces;
/// an optimizer-fused trace legitimately charges less than direct).
#[allow(clippy::too_many_arguments)]
fn assert_blocked_exact(
    program: &ApProgram,
    rows: usize,
    style: DivStyle,
    phase: bool,
    inputs: &Inputs<'_>,
    strips: &[Option<usize>],
    label: &str,
    expect_direct: bool,
) {
    for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
        let plain = run_replay(program, backend, inputs, false);
        if expect_direct {
            let (direct, _) = run_direct(rows, backend, style, phase, inputs, false);
            assert_eq!(plain, direct, "{label}: op-by-op replay on {backend:?}");
        }
        for &strip in strips {
            let blocked = run_replay(&planned(program, strip), backend, inputs, false);
            assert_eq!(
                blocked, plain,
                "{label}: blocked replay on {backend:?}, strip {strip:?}"
            );
        }
    }
}

fn data_strategy() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>, Vec<u64>, u64)> {
    (
        1usize..200,
        prop::collection::vec(0u64..256, 200..201),
        prop::collection::vec(0u64..256, 200..201),
        prop::collection::vec(0u64..8, 200..201),
        0u64..4096,
    )
        .prop_map(|(rows, mut xs, mut ys, mut amts, ext)| {
            xs.truncate(rows);
            ys.truncate(rows);
            amts.truncate(rows);
            (rows, xs, ys, amts, ext)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn blocked_replay_is_bit_and_cycle_exact(
        data in data_strategy(),
        data2 in data_strategy(),
        style in prop_oneof![Just(DivStyle::Restoring), Just(DivStyle::ControllerReciprocal)],
        phase in any::<bool>(),
    ) {
        let (rows, xs, ys, amts, ext) = data;
        let compile = Inputs { xs: &xs, ys: &ys, amts: &amts, ext };
        let (_, program) =
            run_direct(rows, ExecBackend::Microcode, style, phase, &compile, true);
        let program = program.expect("recording returns a program");

        // Fresh inputs the plan has never seen, resized to shape.
        let (_, mut xs2, mut ys2, mut amts2, ext2) = data2;
        xs2.resize(rows, 1);
        ys2.resize(rows, 2);
        amts2.resize(rows, 3);
        let fresh = Inputs { xs: &xs2, ys: &ys2, amts: &amts2, ext: ext2 };

        // The pipeline's blockable runs must actually form regions.
        let raw = planned(&program, None);
        let stats = raw.block_stats().expect("plan_blocking records stats");
        prop_assert!(stats.regions >= 2, "regions must form: {stats:?}");
        prop_assert!(stats.blocked_ops >= 6, "ops must be covered: {stats:?}");

        // Strip widths: auto, single-block (maximal partial-strip
        // coverage), and a width that divides nothing evenly.
        let strips = [None, Some(1), Some(3)];
        assert_blocked_exact(&program, rows, style, phase, &fresh, &strips, "raw", true);

        // Same contract on the optimizer-fused trace.
        let opt = optimized(&program, OptLevel::Full, &compile);
        assert_blocked_exact(&opt, rows, style, phase, &fresh, &strips, "optimized", false);

        // Static == simulated must keep holding on a blocked replay:
        // blocking never changes what the device is charged.
        let sim = run_replay(&planned(&opt, None), ExecBackend::FastWord, &compile, false);
        prop_assert_eq!(sim.stats, opt.static_cost(), "static == simulated under blocking");
    }

    #[test]
    fn blocked_resident_replay_matches_op_by_op_resident(
        data in data_strategy(),
    ) {
        // Phase-style program: hoistable broadcasts land inside blocked
        // regions, so the resident discount must survive blocking.
        let (rows, xs, ys, amts, ext) = data;
        let compile = Inputs { xs: &xs, ys: &ys, amts: &amts, ext };
        let (_, program) = run_direct(
            rows, ExecBackend::Microcode, DivStyle::Restoring, true, &compile, true,
        );
        let program = program.expect("recording returns a program");
        let opt = optimized(&program, OptLevel::Full, &compile);
        let blocked = planned(&opt, None);

        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let plain = run_replay(&opt, backend, &compile, true);
            let strip = run_replay(&blocked, backend, &compile, true);
            prop_assert_eq!(&strip, &plain, "resident blocked replay on {:?}", backend);
        }
    }
}

/// Row counts straddling the 64-row block boundary (none divisible by
/// 64 except 64 itself) stay exact under narrow strips, where partial
/// last strips and single-block strips are the common case.
#[test]
fn odd_row_counts_stay_exact() {
    for rows in [1usize, 63, 64, 65, 100, 127, 130] {
        let (xs, ys, amts) = make_inputs(rows, 3);
        let inputs = Inputs {
            xs: &xs,
            ys: &ys,
            amts: &amts,
            ext: 77,
        };
        let (_, program) = run_direct(
            rows,
            ExecBackend::Microcode,
            DivStyle::Restoring,
            false,
            &inputs,
            true,
        );
        let program = program.expect("recording returns a program");
        assert_blocked_exact(
            &program,
            rows,
            DivStyle::Restoring,
            false,
            &inputs,
            &[None, Some(1), Some(2), Some(1000)],
            &format!("rows={rows}"),
            true,
        );
    }
}

/// Sharded-length arena (4160 rows = 65 blocks): blocked FastWord
/// replay stays exact, strips actually tile the arena, and the plan
/// reports elided arena sweeps.
#[test]
fn sharded_length_blocked_replay_is_exact() {
    let rows = 4160;
    let (xs, ys, amts) = make_inputs(rows, 9);
    let inputs = Inputs {
        xs: &xs,
        ys: &ys,
        amts: &amts,
        ext: 1234,
    };
    let (direct, program) = run_direct(
        rows,
        ExecBackend::FastWord,
        DivStyle::Restoring,
        true,
        &inputs,
        true,
    );
    let program = program.expect("recording returns a program");
    for strip in [None, Some(8)] {
        let blocked = planned(&program, strip);
        let stats = blocked.block_stats().expect("stats recorded");
        assert!(stats.regions >= 2, "{stats:?}");
        assert!(stats.strip_blocks_min >= 1, "{stats:?}");
        assert!(
            stats.strip_blocks_max <= 65,
            "strips clamp to the arena: {stats:?}"
        );
        assert!(stats.gathers_elided > 0, "{stats:?}");
        assert!(stats.scatters_elided > 0, "{stats:?}");
        if let Some(s) = strip {
            assert_eq!(stats.strip_blocks_max, s, "{stats:?}");
        }
        let run = run_replay(&blocked, ExecBackend::FastWord, &inputs, false);
        assert_eq!(run, direct, "strip {strip:?}");
    }
}

/// The blocking plan's lifecycle: absent until planned, always present
/// after planning (even when no region forms), and invalidated by any
/// optimizer rewrite (the plan indexes the pre-rewrite trace).
#[test]
fn block_plan_lifecycle() {
    let rows = 70;
    let (xs, ys, amts) = make_inputs(rows, 1);
    let inputs = Inputs {
        xs: &xs,
        ys: &ys,
        amts: &amts,
        ext: 9,
    };
    let (_, program) = run_direct(
        rows,
        ExecBackend::Microcode,
        DivStyle::Restoring,
        false,
        &inputs,
        true,
    );
    let mut program = program.expect("recording returns a program");
    assert!(program.block_stats().is_none(), "no plan before planning");

    program.plan_blocking(None);
    let stats = program.block_stats().expect("plan recorded");
    assert!(stats.regions >= 2 && stats.blocked_ops >= 6, "{stats:?}");
    assert!(stats.footprint_bytes_max > 0, "{stats:?}");

    // Any rewrite invalidates the plan.
    let report = optimizer::optimize(&mut program, OptLevel::Full);
    assert!(report.changed(), "pipeline must rewrite this trace");
    assert!(
        program.block_stats().is_none(),
        "optimizer must drop a stale blocking plan"
    );
    program.plan_blocking(Some(2));
    let stats = program.block_stats().expect("re-planned");
    assert_eq!(stats.strip_blocks_max, 2, "override honored: {stats:?}");
}

/// A trace with no blockable run of ≥ 2 ops still records a (empty)
/// plan, so observability always has stats to report.
#[test]
fn boundary_only_trace_records_empty_plan() {
    let rows = 8;
    let mut core = ApCore::new(ApConfig::new(rows, 40)).unwrap();
    let f = core.alloc_field(8).unwrap();
    let xs: Vec<u64> = (0..rows as u64).collect();
    let in_slices: [&[u64]; 1] = [&xs];
    let mut out = Vec::new();
    let mut outs: [&mut Vec<u64>; 1] = [&mut out];
    let mut scratch = ProgramScratch::default();
    let mut on_step = |_: &'static str, _: CycleStats| {};
    let mut rec = Recorder::new(
        &mut core,
        ExecIo::new(&in_slices, &mut outs),
        &mut scratch,
        &mut on_step,
        true,
    );
    rec.load(f, 0).unwrap();
    rec.read(f, 0).unwrap();
    let mut program = rec.finish().expect("recording returns a program");
    program.plan_blocking(None);
    let stats = program.block_stats().expect("empty plan still recorded");
    assert_eq!(stats.regions, 0);
    assert_eq!(stats.blocked_ops, 0);
}

#[test]
fn parse_strip_accepts_auto_and_positive_widths() {
    assert_eq!(program::parse_strip("auto"), Some(None));
    assert_eq!(program::parse_strip(" AUTO "), Some(None));
    assert_eq!(program::parse_strip("8"), Some(Some(8)));
    assert_eq!(program::parse_strip(" 8 "), Some(Some(8)));
    assert_eq!(program::parse_strip("1"), Some(Some(1)));
    assert_eq!(program::parse_strip("0"), None);
    assert_eq!(program::parse_strip("-1"), None);
    assert_eq!(program::parse_strip(""), None);
    assert_eq!(program::parse_strip("wide"), None);
}

#[test]
fn strip_env_overrides_width() {
    // Race-safe mirror of the SOFTMAP_OPT override test: only values
    // equivalent to the default (auto) plus garbage/unset are ever
    // set, so tests reading SOFTMAP_STRIP concurrently can never
    // observe a non-default width.
    std::env::set_var(program::STRIP_ENV, "auto");
    assert_eq!(program::strip_from_env(), None);
    std::env::set_var(program::STRIP_ENV, " Auto ");
    assert_eq!(program::strip_from_env(), None);
    std::env::set_var(program::STRIP_ENV, "not-a-width");
    assert_eq!(program::strip_from_env(), None, "garbage falls back");
    std::env::remove_var(program::STRIP_ENV);
    assert_eq!(program::strip_from_env(), None, "unset falls back");
}
