//! Differential proptests for the program-IR optimizer: an optimized
//! replay must leave **bit-identical CAM state** — every column plane,
//! the reserved carry/flag columns included — and identical outputs
//! versus the unoptimized replay and versus direct issue, on both
//! backends, for whole-vector-style programs and for sharded
//! phase-style programs (scalar inputs arriving via `RegLoad`). The
//! optimized cost must be *lower* whenever the pipeline reports a
//! rewrite, and static == simulated must hold on the fused schedule.

use proptest::prelude::*;
use softmap_ap::program::optimizer::{self, OptLevel};
use softmap_ap::program::{ExecIo, ProgramScratch, Recorder};
use softmap_ap::{ApConfig, ApCore, ApProgram, CycleStats, DivStyle, ExecBackend, Overflow};

const COLS: usize = 200;

/// One execution's observable outcome: outputs, cost, and the entire
/// arena — every column plane including carry (col 0), flag (col 1),
/// and division scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    outs: [Vec<u64>; 3],
    stats: CycleStats,
    planes: Vec<Vec<u64>>,
}

fn capture_planes(core: &ApCore) -> Vec<Vec<u64>> {
    (0..core.cols())
        .map(|c| core.cam().plane(c).to_vec())
        .collect()
}

struct Inputs<'a> {
    xs: &'a [u64],
    ys: &'a [u64],
    amts: &'a [u64],
    /// External scalar (phase-style programs only): the value a
    /// cross-tile reduction would feed back into the shard.
    ext: u64,
}

/// Issues a pipeline hitting every optimizer pass: a constant-broadcast
/// multiplier (folds to `MulConst`), a shift consumed by one copy and
/// then overwritten (shift/copy fusion), two adjacent restoring
/// divisions sharing a divisor (fusion + batching), plus min-search,
/// saturating/clean subtraction, variable shift, and 2D reduction for
/// coverage. With `phase` set, the divisor value arrives through a
/// scalar input slot instead of the in-program reduction — the shape of
/// a sharded phase body, making the divisor broadcast hoistable.
fn issue_pipeline(
    rec: &mut Recorder<'_, '_>,
    f: &Fields,
    rows: usize,
    style: DivStyle,
    phase: bool,
) {
    rec.load(f.a, 0).unwrap();
    rec.load(f.b, 1).unwrap();
    rec.load(f.amt, 2).unwrap();
    rec.step("stage-in");
    rec.broadcast(f.k, 1365).unwrap();
    rec.mul(f.a, f.k, f.work).unwrap();
    rec.shr_const(f.work, 5).unwrap();
    rec.copy(f.work.sub(0, 9), f.t).unwrap();
    rec.mul(f.a, f.b, f.work).unwrap();
    rec.shr_variable(f.work, f.amt).unwrap();
    rec.copy(f.work.sub(0, 9), f.t2).unwrap();
    let r0 = rec.min_search(f.a);
    rec.broadcast_reg(f.c, r0).unwrap();
    rec.sub_assert_clean(f.a, f.c).unwrap();
    rec.step("compute");
    let rd = if phase {
        let ext = rec.reg_input(0).unwrap();
        rec.reg_max1(ext)
    } else {
        let rs = rec
            .reduce_sum(f.t, f.sum, rows, Overflow::Saturate)
            .unwrap();
        rec.reg_max1(rs)
    };
    rec.broadcast_reg(f.den, rd).unwrap();
    rec.divide(f.t, f.den, f.q1, 4, style).unwrap();
    rec.divide(f.t2, f.den, f.q2, 4, style).unwrap();
    rec.step("normalize");
    rec.read(f.a, 0).unwrap();
    rec.read(f.q1, 1).unwrap();
    rec.read(f.q2, 2).unwrap();
}

struct Fields {
    a: softmap_ap::Field,
    b: softmap_ap::Field,
    amt: softmap_ap::Field,
    k: softmap_ap::Field,
    work: softmap_ap::Field,
    t: softmap_ap::Field,
    t2: softmap_ap::Field,
    c: softmap_ap::Field,
    sum: softmap_ap::Field,
    den: softmap_ap::Field,
    q1: softmap_ap::Field,
    q2: softmap_ap::Field,
}

fn alloc_fields(core: &mut ApCore) -> Fields {
    Fields {
        a: core.alloc_field(8).unwrap(),
        b: core.alloc_field(8).unwrap(),
        amt: core.alloc_field(3).unwrap(),
        k: core.alloc_field(13).unwrap(),
        work: core.alloc_field(21).unwrap(),
        t: core.alloc_field(9).unwrap(),
        t2: core.alloc_field(9).unwrap(),
        c: core.alloc_field(8).unwrap(),
        sum: core.alloc_field(16).unwrap(),
        den: core.alloc_field(16).unwrap(),
        q1: core.alloc_field(12).unwrap(),
        q2: core.alloc_field(12).unwrap(),
    }
}

/// Direct issue (and optionally recording) on a fresh core.
fn run_direct(
    rows: usize,
    backend: ExecBackend,
    style: DivStyle,
    phase: bool,
    inputs: &Inputs<'_>,
    record: bool,
) -> (Outcome, Option<ApProgram>) {
    let mut core = ApCore::with_backend(ApConfig::new(rows, COLS), backend).unwrap();
    let fields = alloc_fields(&mut core);
    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let scalars = [inputs.ext];
    let mut outs_bufs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let program;
    {
        let [o0, o1, o2] = &mut outs_bufs;
        let mut outs: [&mut Vec<u64>; 3] = [o0, o1, o2];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |_: &'static str, _: CycleStats| {};
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars),
            &mut scratch,
            &mut on_step,
            record,
        );
        issue_pipeline(&mut rec, &fields, rows, style, phase);
        program = rec.finish();
    }
    (
        Outcome {
            outs: outs_bufs,
            stats: core.stats(),
            planes: capture_planes(&core),
        },
        program,
    )
}

/// Replays (or resident-replays) `program` on a fresh core.
fn run_replay(
    program: &ApProgram,
    backend: ExecBackend,
    inputs: &Inputs<'_>,
    resident: bool,
) -> Outcome {
    let mut core = ApCore::with_backend(program.config(), backend).unwrap();
    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let scalars = [inputs.ext];
    let mut outs_bufs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    {
        let [o0, o1, o2] = &mut outs_bufs;
        let mut outs: [&mut Vec<u64>; 3] = [o0, o1, o2];
        let mut scratch = ProgramScratch::default();
        let io = ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars);
        if resident {
            program
                .replay_resident(&mut core, io, &mut scratch, |_, _| {})
                .unwrap();
        } else {
            program
                .replay(&mut core, io, &mut scratch, |_, _| {})
                .unwrap();
        }
    }
    Outcome {
        outs: outs_bufs,
        stats: core.stats(),
        planes: capture_planes(&core),
    }
}

/// Optimizes a clone of `program` at `level` and recosts it on a fresh
/// microcode core with the compile inputs.
fn optimized(
    program: &ApProgram,
    level: OptLevel,
    inputs: &Inputs<'_>,
) -> (ApProgram, optimizer::PassReport) {
    let mut opt = program.clone();
    let report = optimizer::optimize(&mut opt, level);
    if report.changed() {
        let mut core = ApCore::new(opt.config()).unwrap();
        let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
        let scalars = [inputs.ext];
        let mut o0 = Vec::new();
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        let mut outs: [&mut Vec<u64>; 3] = [&mut o0, &mut o1, &mut o2];
        let mut scratch = ProgramScratch::default();
        opt.recost(
            &mut core,
            ExecIo::new(&in_slices, &mut outs).with_scalars(&scalars),
            &mut scratch,
            |_, _| {},
        )
        .unwrap();
    }
    (opt, report)
}

fn data_strategy() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>, Vec<u64>, u64)> {
    (
        1usize..48,
        prop::collection::vec(0u64..256, 48..49),
        prop::collection::vec(0u64..256, 48..49),
        prop::collection::vec(0u64..8, 48..49),
        0u64..4096,
    )
        .prop_map(|(rows, mut xs, mut ys, mut amts, ext)| {
            xs.truncate(rows);
            ys.truncate(rows);
            amts.truncate(rows);
            (rows, xs, ys, amts, ext)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_replay_is_bit_identical_and_cheaper(
        data in data_strategy(),
        data2 in data_strategy(),
        style in prop_oneof![Just(DivStyle::Restoring), Just(DivStyle::ControllerReciprocal)],
        phase in any::<bool>(),
    ) {
        let (rows, xs, ys, amts, ext) = data;
        let compile = Inputs { xs: &xs, ys: &ys, amts: &amts, ext };
        let (_, program) =
            run_direct(rows, ExecBackend::Microcode, style, phase, &compile, true);
        let program = program.expect("recording returns a program");

        // Fresh inputs the program has never seen, resized to shape.
        let (_, mut xs2, mut ys2, mut amts2, ext2) = data2;
        xs2.resize(rows, 1);
        ys2.resize(rows, 2);
        amts2.resize(rows, 3);
        let fresh = Inputs { xs: &xs2, ys: &ys2, amts: &amts2, ext: ext2 };

        for level in [OptLevel::Basic, OptLevel::Full] {
            let (opt, report) = optimized(&program, level, &compile);
            prop_assert!(report.shr_fused >= 1, "shift/copy fusion must fire");
            if level == OptLevel::Full {
                prop_assert!(report.muls_folded >= 1, "constant-mul fold must fire");
                if style == DivStyle::Restoring {
                    prop_assert_eq!(report.divides_fused, 2);
                    prop_assert_eq!(report.divides_batched, 1);
                }
            }

            // Static == simulated on the fused schedule: replaying the
            // compile inputs charges exactly the recosted static cost.
            let sim = run_replay(&opt, ExecBackend::Microcode, &compile, false);
            prop_assert_eq!(sim.stats, opt.static_cost(),
                "static == simulated at {:?}", level);
            prop_assert!(opt.static_cost().cycles() < program.static_cost().cycles(),
                "optimized schedule must be strictly cheaper at {:?}", level);

            // Bit-exactness: all planes (carry/flag/scratch included)
            // and outputs match direct issue, on both backends, for
            // inputs the optimizer never saw.
            for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
                let (direct, _) = run_direct(rows, backend, style, phase, &fresh, false);
                let unopt = run_replay(&program, backend, &fresh, false);
                prop_assert_eq!(&unopt, &direct, "unoptimized replay on {:?}", backend);
                let opt_run = run_replay(&opt, backend, &fresh, false);
                prop_assert_eq!(&opt_run.planes, &direct.planes,
                    "optimized planes on {:?} at {:?}", backend, level);
                prop_assert_eq!(&opt_run.outs, &direct.outs,
                    "optimized outputs on {:?} at {:?}", backend, level);
                prop_assert!(opt_run.stats.cycles() < direct.stats.cycles(),
                    "optimized execution cheaper on {:?} at {:?}", backend, level);
            }
        }
    }

    #[test]
    fn resident_replay_discounts_hoisted_broadcasts_only(
        data in data_strategy(),
    ) {
        // Phase-style program: the divisor arrives via a scalar slot,
        // so its broadcast (and the constant-multiplier broadcast) are
        // shard-invariant and hoistable.
        let (rows, xs, ys, amts, ext) = data;
        let compile = Inputs { xs: &xs, ys: &ys, amts: &amts, ext };
        let (_, program) = run_direct(
            rows, ExecBackend::Microcode, DivStyle::Restoring, true, &compile, true,
        );
        let program = program.expect("recording returns a program");
        let (opt, report) = optimized(&program, OptLevel::Full, &compile);
        prop_assert!(report.hoisted >= 2, "const + scalar-derived broadcasts hoist");

        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let normal = run_replay(&opt, backend, &compile, false);
            let resident = run_replay(&opt, backend, &compile, true);
            // Identical planes and outputs — the broadcasts still
            // execute; only their charge is discounted.
            prop_assert_eq!(&resident.planes, &normal.planes, "{:?}", backend);
            prop_assert_eq!(&resident.outs, &normal.outs, "{:?}", backend);
            prop_assert!(resident.stats.cycles() < normal.stats.cycles(),
                "resident replay must charge less on {:?}", backend);
        }
    }
}
