//! Differential proptests for the program IR: replaying a recorded
//! [`ApProgram`] must be bit- and cycle-exact versus issuing the same
//! ops directly — on both backends, for any input of the recorded
//! shape (including inputs the program has never seen), across odd and
//! even row counts and both division styles.

use proptest::prelude::*;
use softmap_ap::program::{ExecIo, ProgramScratch, Recorder};
use softmap_ap::{ApConfig, ApCore, ApProgram, CycleStats, DivStyle, ExecBackend, Overflow};

/// One execution's observable outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    out_a: Vec<u64>,
    out_acc: Vec<u64>,
    out_q: Vec<u64>,
    stats: CycleStats,
    steps: Vec<(&'static str, CycleStats)>,
}

struct Inputs<'a> {
    xs: &'a [u64],
    ys: &'a [u64],
    amts: &'a [u64],
}

/// Issues a pipeline exercising every op kind (load, broadcast
/// const/reg, min-search compare, copy-free register folds, add, clean
/// and saturating subtract, multiply, constant and variable shifts, 2D
/// reduction, division, read) against a fresh core. Returns the
/// outcome plus the recorded program when `record` is set.
fn run_pipeline(
    rows: usize,
    backend: ExecBackend,
    style: DivStyle,
    inputs: &Inputs<'_>,
    record: bool,
) -> (Outcome, Option<ApProgram>) {
    let mut core = ApCore::with_backend(ApConfig::new(rows, 168), backend).unwrap();
    let a = core.alloc_field(8).unwrap();
    let b = core.alloc_field(8).unwrap();
    let c = core.alloc_field(8).unwrap();
    let acc = core.alloc_field(9).unwrap();
    let prod = core.alloc_field(17).unwrap();
    let q = core.alloc_field(12).unwrap();
    let den = core.alloc_field(16).unwrap();
    let sum = core.alloc_field(16).unwrap();
    let amt = core.alloc_field(3).unwrap();

    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let mut out_a = Vec::new();
    let mut out_acc = Vec::new();
    let mut out_q = Vec::new();
    let mut steps: Vec<(&'static str, CycleStats)> = Vec::new();
    let program;
    {
        let mut outs: [&mut Vec<u64>; 3] = [&mut out_a, &mut out_acc, &mut out_q];
        let mut scratch = ProgramScratch::default();
        let mut on_step = |name: &'static str, s: CycleStats| steps.push((name, s));
        let mut rec = Recorder::new(
            &mut core,
            ExecIo::new(&in_slices, &mut outs),
            &mut scratch,
            &mut on_step,
            record,
        );
        rec.load(a, 0).unwrap();
        rec.load(b, 1).unwrap();
        rec.load(amt, 2).unwrap();
        rec.step("stage-in");
        // Min over both operands via registers; subtracting it from `a`
        // can never underflow.
        let r0 = rec.min_search(a);
        let r1 = rec.min_search(b);
        let rm = rec.reg_min(r0, r1);
        rec.broadcast_reg(c, rm).unwrap();
        rec.sub_assert_clean(a, c).unwrap();
        rec.broadcast(acc, 17).unwrap();
        rec.add_into(acc, b).unwrap();
        rec.mul(a, b, prod).unwrap();
        rec.shr_const(prod, 3).unwrap();
        rec.saturating_sub_into(acc, a).unwrap();
        rec.shr_variable(prod, amt).unwrap();
        rec.step("compute");
        let rs = rec.reduce_sum(acc, sum, rows, Overflow::Saturate).unwrap();
        let rd = rec.reg_max1(rs);
        rec.broadcast_reg(den, rd).unwrap();
        rec.divide(acc, den, q, 6, style).unwrap();
        rec.step("normalize");
        rec.read(a, 0).unwrap();
        rec.read(acc, 1).unwrap();
        rec.read(q, 2).unwrap();
        program = rec.finish();
    }
    (
        Outcome {
            out_a,
            out_acc,
            out_q,
            stats: core.stats(),
            steps,
        },
        program,
    )
}

/// Replays `program` on a fresh core and returns the outcome.
fn replay_pipeline(
    program: &ApProgram,
    backend: ExecBackend,
    inputs: &Inputs<'_>,
    scratch: &mut ProgramScratch,
) -> Outcome {
    let mut core = ApCore::with_backend(program.config(), backend).unwrap();
    let in_slices: [&[u64]; 3] = [inputs.xs, inputs.ys, inputs.amts];
    let mut out_a = Vec::new();
    let mut out_acc = Vec::new();
    let mut out_q = Vec::new();
    let mut steps: Vec<(&'static str, CycleStats)> = Vec::new();
    {
        let mut outs: [&mut Vec<u64>; 3] = [&mut out_a, &mut out_acc, &mut out_q];
        program
            .replay(
                &mut core,
                ExecIo::new(&in_slices, &mut outs),
                scratch,
                |name, s| steps.push((name, s)),
            )
            .unwrap();
    }
    Outcome {
        out_a,
        out_acc,
        out_q,
        stats: core.stats(),
        steps,
    }
}

/// (rows, xs, ys, amts): full-length pools truncated to `rows` by the
/// test body (the vendored proptest stub has no `prop_flat_map`).
fn data_strategy() -> impl Strategy<Value = (usize, Vec<u64>, Vec<u64>, Vec<u64>)> {
    (
        1usize..48,
        prop::collection::vec(0u64..256, 48..49),
        prop::collection::vec(0u64..256, 48..49),
        prop::collection::vec(0u64..8, 48..49),
    )
        .prop_map(|(rows, mut xs, mut ys, mut amts)| {
            xs.truncate(rows);
            ys.truncate(rows);
            amts.truncate(rows);
            (rows, xs, ys, amts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replay_is_bit_and_cycle_exact_vs_direct_issue(
        data in data_strategy(),
        data2 in data_strategy(),
        style in prop_oneof![Just(DivStyle::Restoring), Just(DivStyle::ControllerReciprocal)],
    ) {
        let (rows, xs, ys, amts) = data;
        let (_, xs2, ys2, amts2) = data2;
        let compile_inputs = Inputs { xs: &xs, ys: &ys, amts: &amts };
        // Record on the microcode (ground-truth) backend.
        let (direct, program) =
            run_pipeline(rows, ExecBackend::Microcode, style, &compile_inputs, true);
        let program = program.expect("recording returns a program");
        prop_assert_eq!(program.static_cost(), direct.stats,
            "static cost must equal the recording execution's stats");

        let mut scratch = ProgramScratch::default();
        // Replay with the compile input: identical to direct issue on
        // both backends.
        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let replayed = replay_pipeline(&program, backend, &compile_inputs, &mut scratch);
            prop_assert_eq!(&replayed, &direct, "compile-input replay on {:?}", backend);
        }

        // Replay with data the program has never seen (resized to the
        // recorded shape): identical to directly issuing the same ops
        // with that data, on both backends.
        let mut xs2 = xs2; xs2.resize(rows, 1);
        let mut ys2 = ys2; ys2.resize(rows, 2);
        let mut amts2 = amts2; amts2.resize(rows, 3);
        let fresh_inputs = Inputs { xs: &xs2, ys: &ys2, amts: &amts2 };
        let (direct2, _) =
            run_pipeline(rows, ExecBackend::Microcode, style, &fresh_inputs, false);
        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let replayed = replay_pipeline(&program, backend, &fresh_inputs, &mut scratch);
            prop_assert_eq!(&replayed, &direct2, "fresh-input replay on {:?}", backend);
        }
    }

    #[test]
    fn passthrough_recorder_is_invisible(
        data in data_strategy(),
    ) {
        // The pass-through (direct-issue) recorder must behave exactly
        // like the recording one minus the program.
        let (rows, xs, ys, amts) = data;
        let inputs = Inputs { xs: &xs, ys: &ys, amts: &amts };
        let (recorded, program) =
            run_pipeline(rows, ExecBackend::FastWord, DivStyle::Restoring, &inputs, true);
        let (passthrough, none) =
            run_pipeline(rows, ExecBackend::FastWord, DivStyle::Restoring, &inputs, false);
        prop_assert!(none.is_none());
        prop_assert_eq!(passthrough, recorded);
        prop_assert!(program.is_some());
    }
}
