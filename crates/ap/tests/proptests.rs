//! Property-based tests: the AP microcode must agree with ordinary
//! integer arithmetic for arbitrary operands and widths.

use proptest::prelude::*;
use softmap_ap::{ApConfig, ApCore, DivStyle};

fn core(rows: usize, cols: usize) -> ApCore {
    ApCore::new(ApConfig::new(rows, cols)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_matches_integer_addition(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..256, 1..32),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mut ap = core(n, 32);
        let a = ap.alloc_field(8).unwrap();
        let acc = ap.alloc_field(9).unwrap();
        ap.load(a, xs).unwrap();
        ap.load(acc, ys).unwrap();
        ap.add_into(acc, a).unwrap();
        let out = ap.read(acc);
        for i in 0..n {
            prop_assert_eq!(out[i], xs[i] + ys[i]);
        }
    }

    #[test]
    fn sub_matches_wrapping_subtraction(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..256, 1..32),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mut ap = core(n, 32);
        let a = ap.alloc_field(8).unwrap();
        let acc = ap.alloc_field(8).unwrap();
        ap.load(a, xs).unwrap();
        ap.load(acc, ys).unwrap();
        let borrow = ap.sub_into(acc, a).unwrap();
        let out = ap.read(acc);
        for i in 0..n {
            let expect = (256 + ys[i] - xs[i]) % 256;
            prop_assert_eq!(out[i], expect);
            prop_assert_eq!(borrow.get(i), ys[i] < xs[i]);
        }
    }

    #[test]
    fn mul_matches_integer_multiplication(
        xs in prop::collection::vec(0u64..64, 1..24),
        ys in prop::collection::vec(0u64..64, 1..24),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mut ap = core(n, 40);
        let a = ap.alloc_field(6).unwrap();
        let b = ap.alloc_field(6).unwrap();
        let r = ap.alloc_field(12).unwrap();
        ap.load(a, xs).unwrap();
        ap.load(b, ys).unwrap();
        ap.mul(a, b, r).unwrap();
        let out = ap.read(r);
        for i in 0..n {
            prop_assert_eq!(out[i], xs[i] * ys[i]);
        }
    }

    #[test]
    fn xor_matches_bitwise_xor(
        xs in prop::collection::vec(0u64..256, 1..32),
        ys in prop::collection::vec(0u64..256, 1..32),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mut ap = core(n, 32);
        let a = ap.alloc_field(8).unwrap();
        let b = ap.alloc_field(8).unwrap();
        let r = ap.alloc_field(8).unwrap();
        ap.load(a, xs).unwrap();
        ap.load(b, ys).unwrap();
        ap.xor(a, b, r).unwrap();
        let out = ap.read(r);
        for i in 0..n {
            prop_assert_eq!(out[i], xs[i] ^ ys[i]);
        }
    }

    #[test]
    fn variable_shift_matches_shr(
        xs in prop::collection::vec(0u64..1024, 1..16),
        ss in prop::collection::vec(0u64..16, 1..16),
    ) {
        let n = xs.len().min(ss.len());
        let xs = &xs[..n];
        let ss = &ss[..n];
        let mut ap = core(n, 24);
        let f = ap.alloc_field(10).unwrap();
        let amt = ap.alloc_field(4).unwrap();
        ap.load(f, xs).unwrap();
        ap.load(amt, ss).unwrap();
        ap.shr_variable(f, amt).unwrap();
        let out = ap.read(f);
        for i in 0..n {
            prop_assert_eq!(out[i], xs[i] >> ss[i]);
        }
    }

    #[test]
    fn restoring_division_matches_fixed_point(
        ns in prop::collection::vec(0u64..256, 1..8),
        ds in prop::collection::vec(1u64..256, 1..8),
        frac in 0usize..6,
    ) {
        let n = ns.len().min(ds.len());
        let ns = &ns[..n];
        let ds = &ds[..n];
        let mut ap = core(n, 80);
        let num = ap.alloc_field(8).unwrap();
        let den = ap.alloc_field(8).unwrap();
        let quot = ap.alloc_field(14).unwrap();
        ap.load(num, ns).unwrap();
        ap.load(den, ds).unwrap();
        ap.divide(num, den, quot, frac, DivStyle::Restoring).unwrap();
        let out = ap.read(quot);
        for i in 0..n {
            let exact = (ns[i] << frac) / ds[i];
            let expect = exact.min(quot.max_value());
            prop_assert_eq!(out[i], expect, "num={} den={} frac={}", ns[i], ds[i], frac);
        }
    }

    #[test]
    fn reciprocal_division_within_one_ulp(
        ns in prop::collection::vec(0u64..256, 1..8),
        d in 1u64..256,
        frac in 0usize..8,
    ) {
        let n = ns.len();
        let mut ap = core(n, 96);
        let num = ap.alloc_field(8).unwrap();
        let den = ap.alloc_field(8).unwrap();
        let quot = ap.alloc_field(16).unwrap();
        ap.load(num, &ns).unwrap();
        ap.load(den, &vec![d; n]).unwrap();
        ap.divide(num, den, quot, frac, DivStyle::ControllerReciprocal).unwrap();
        let out = ap.read(quot);
        for i in 0..n {
            let exact = ((ns[i] << frac) / d).min(quot.max_value());
            prop_assert!(out[i] <= exact && exact - out[i] <= 1,
                "num={} den={} frac={} got={} exact={}", ns[i], d, frac, out[i], exact);
        }
    }

    #[test]
    fn max_search_matches_iterator_max(
        xs in prop::collection::vec(0u64..4096, 1..64),
    ) {
        let mut ap = core(xs.len(), 16);
        let f = ap.alloc_field(12).unwrap();
        ap.load(f, &xs).unwrap();
        let (max, rows) = ap.max_search(f);
        let expect = xs.iter().copied().max().unwrap();
        prop_assert_eq!(max, expect);
        for r in rows.iter_set() {
            prop_assert_eq!(xs[r], expect);
        }
        prop_assert_eq!(rows.count(), xs.iter().filter(|&&x| x == expect).count());
    }

    #[test]
    fn reduction_matches_sum(
        xs in prop::collection::vec(0u64..256, 1..7),
        log_seg in 0u32..4,
    ) {
        // segments of 2^log_seg rows; pad the data to a multiple
        let seg = 1usize << log_seg;
        let mut data = xs.clone();
        while data.len() % seg != 0 {
            data.push(0);
        }
        let mut ap = core(data.len(), 32);
        let f = ap.alloc_field(8).unwrap();
        let sum = ap.alloc_field(16).unwrap();
        ap.load(f, &data).unwrap();
        let sums = ap.reduce_sum_2d(f, sum, seg).unwrap();
        for (i, chunk) in data.chunks(seg).enumerate() {
            prop_assert_eq!(sums[i], chunk.iter().sum::<u64>());
        }
    }

    #[test]
    fn width64_fields_roundtrip_end_to_end(
        xs in prop::collection::vec(any::<u64>(), 1..40),
        constant in any::<u64>(),
        poke in any::<u64>(),
    ) {
        // A full-width 64-bit field: `Field::max_value()` saturates to
        // u64::MAX, so the load overflow check can reject nothing, and
        // every per-bit shift path (load transpose, read, broadcast,
        // poke) must stay below the shift-overflow boundary.
        let n = xs.len();
        let mut ap = core(n, 67);
        let f = ap.alloc_field(64).unwrap();
        prop_assert_eq!(f.max_value(), u64::MAX);
        ap.load(f, &xs).unwrap();
        prop_assert_eq!(ap.read(f), xs.clone());
        for (row, &x) in xs.iter().enumerate() {
            prop_assert_eq!(ap.read_row(row, f), x);
        }
        ap.broadcast(f, constant).unwrap();
        prop_assert_eq!(ap.read(f), vec![constant; n]);
        ap.poke_row(0, f, poke);
        prop_assert_eq!(ap.read_row(0, f), poke);
        if n > 1 {
            prop_assert_eq!(ap.read_row(1, f), constant, "poke must not leak");
        }
    }

    #[test]
    fn arena_io_handles_rows_not_divisible_by_64(
        rows_minus_one in 0usize..200,
        fill in 0u64..256,
        loaded in prop::collection::vec(0u64..256, 1..200),
    ) {
        // Partial final arena blocks: load fewer words than rows at an
        // arbitrary (often non-multiple-of-64) row count, and check the
        // blend, the read-back, and a bystander column's isolation.
        let rows = rows_minus_one + 1;
        let n = loaded.len().min(rows);
        let loaded = &loaded[..n];
        let mut ap = core(rows, 20);
        let bystander = ap.alloc_field(8).unwrap();
        let f = ap.alloc_field(8).unwrap();
        let by_data: Vec<u64> = (0..rows as u64).map(|i| i % 251).collect();
        ap.load(bystander, &by_data).unwrap();
        ap.broadcast(f, fill).unwrap();
        ap.load(f, loaded).unwrap();
        let out = ap.read(f);
        prop_assert_eq!(out.len(), rows);
        for (i, &v) in loaded.iter().enumerate() {
            prop_assert_eq!(out[i], v, "loaded row {}", i);
        }
        for (i, &v) in out.iter().enumerate().skip(n) {
            prop_assert_eq!(v, fill, "unloaded row {} must keep contents", i);
        }
        prop_assert_eq!(ap.read(bystander), by_data);
    }

    #[test]
    fn operations_never_touch_unrelated_fields(
        xs in prop::collection::vec(0u64..64, 4..16),
        ys in prop::collection::vec(0u64..64, 4..16),
    ) {
        let n = xs.len().min(ys.len());
        let xs = &xs[..n];
        let ys = &ys[..n];
        let mut ap = core(n, 48);
        let bystander = ap.alloc_field(6).unwrap();
        let a = ap.alloc_field(6).unwrap();
        let acc = ap.alloc_field(13).unwrap();
        ap.load(bystander, xs).unwrap();
        ap.load(a, ys).unwrap();
        ap.broadcast(acc, 0).unwrap();
        ap.add_into(acc, a).unwrap();
        ap.mul(a, a, acc).unwrap();
        prop_assert_eq!(ap.read(bystander), xs.to_vec());
    }
}
