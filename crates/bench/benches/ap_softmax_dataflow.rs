//! Core kernel benchmark: the sixteen-step Fig. 5 dataflow on the
//! simulated AP, across vector lengths and division styles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softmap::ApSoftmax;
use softmap_ap::DivStyle;
use softmap_softmax::PrecisionConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ap_dataflow");
    g.sample_size(10);
    for len in [128usize, 512, 2048] {
        let scores: Vec<f64> = (0..len)
            .map(|i| -f64::from((i % 97) as u32) * 0.07)
            .collect();
        for (name, style) in [
            ("restoring", DivStyle::Restoring),
            ("reciprocal", DivStyle::ControllerReciprocal),
        ] {
            let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_autotune(false)
                .with_div_style(style);
            g.bench_with_input(BenchmarkId::new(name, len), &scores, |b, s| {
                b.iter(|| black_box(mapping.execute_floats(s).unwrap().total.cycles()))
            });
        }
    }
    g.finish();

    // Report the ablation once: cycles per style.
    for (name, style) in [
        ("restoring", DivStyle::Restoring),
        ("controller-reciprocal", DivStyle::ControllerReciprocal),
    ] {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_div_style(style);
        let scores: Vec<f64> = (0..1024)
            .map(|i| -f64::from((i % 97) as u32) * 0.07)
            .collect();
        let run = mapping.execute_floats(&scores).unwrap();
        println!(
            "division ablation {name}: {} cycles/vector ({} cell events)",
            run.total.cycles(),
            run.total.cell_events()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
