//! Dual-backend comparison: the bit-serial `Microcode` engine vs. the
//! word-level `FastWord` engine on the full Fig. 5 softmax dataflow,
//! plus the plan-cache series:
//!
//! * `fastword-reused` — one persistent `TileState` + run buffer
//!   streaming vectors in **direct-issue** mode (the pre-plan
//!   per-vector interpretation; comparable with earlier records),
//! * `fastword-replayed` — the same pooled streaming through the
//!   **cached-plan replay** path (compile once per shape, then
//!   load → replay → read with no per-op host dispatch),
//! * `fastword-compile` — plan cache cleared every iteration, so each
//!   vector pays record + execute; `fastword-compile − fastword-replayed`
//!   is the compile cost a plan amortizes (`plan_compile_us` in
//!   `BENCH_ap.json`),
//! * `fastword-optimized` — the same pooled replay through the
//!   optimizer's fused schedule (`OptLevel::Full`); against the
//!   `OptLevel::None` pin on `fastword-replayed` this isolates what the
//!   pass pipeline buys (`opt_gain_rows*` in `BENCH_ap.json`),
//! * `fastword-blocked` — the fused schedule again, but replayed by
//!   the region-blocked strip-mined executor (the default engine);
//!   every other pooled series pins `.with_blocked(false)`, so
//!   `fastword-blocked / fastword-optimized` is exactly what region
//!   blocking buys on the same fused plan (`blocking.*` fields and the
//!   blocking gate in `BENCH_ap.json`),
//! * `fastword-batch32` — the multi-tile batch driver's throughput,
//! * `fastword-sharded` / `fastword-sharded-optimized` — long
//!   sequences (8192/16384 scores) sharded across fixed 2048-row tiles
//!   through the cached sharded plan, unoptimized and fused, pinned to
//!   the **re-staged** regime (`with_resident(false)`) so the series
//!   stays comparable with earlier records
//!   (`shard_*` fields and the shard-scaling gate in `BENCH_ap.json`),
//! * `fastword-sharded-resident` — the same long sequences through the
//!   default **resident** regime: shards stay pinned in their tiles
//!   across the min → exp → divide phases, so phase-boundary Load/Read
//!   staging is elided (`resident_*` fields and the residency gate in
//!   `BENCH_ap.json`),
//! * `fastword-sharded-blocked` — the resident regime with the
//!   region-blocked executor on, i.e. the full default stack at long
//!   sequence lengths (every per-shard replay strip-mines its
//!   row-parallel regions).
//!
//! * `fastword-autotuned` — the pooled replay of the **autotuned**
//!   winner at 4096 and 16384 (the mapping autotuner's chosen layout /
//!   partition / residency per shape; `cycles/fastword-autotuned/...`
//!   vs `cycles/fastword-default/...` records feed the autotune gate in
//!   `scripts/bench_ap.sh`).
//!
//! The pooled plan-cache series (`fastword-reused` / `-replayed` /
//! `-optimized` / `-compile`) run in their own group at a 4x
//! measurement budget: `BENCH_ap.json` consumes them as ratios
//! (`plan_replay_gain_*`) and differences (`plan_compile_us_*`), so
//! their noise multiplies in the recorded numbers — see the
//! methodology comment at the group.
//!
//! Besides wall-clock series, the bench appends `cycles/...` records to
//! `CRITERION_JSON`: simulated cycle counts from the compiled plans'
//! static costs (static == simulated is enforced by
//! `crates/eval/tests/static_cost.rs`). `scripts/bench_ap.sh` gates the
//! optimizer on these, so the gate is host-invariant.
//!
//! `FastWord` charges identical `CycleStats` (enforced by the
//! differential proptests; spot-checked here) while running ~13× faster
//! at 256 rows and ~5–6× at 2048 rows against this repo's optimized
//! interpreter. Measured numbers are recorded in `BENCH_ap.json` by
//! `scripts/bench_ap.sh`, which also gates `fastword-replayed` against
//! the recorded `fastword-reused` baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softmap::{ApSoftmax, ApSoftmaxRun, PlanMode, TileState};
use softmap_ap::{ExecBackend, OptLevel};
use softmap_softmax::PrecisionConfig;
use std::hint::black_box;
use std::time::Instant;

fn scores(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| -f64::from((i % 97) as u32) * 0.07)
        .collect()
}

/// The paper-default mapping, autotuning pinned off: every legacy
/// series below measures the fixed mapping so its trajectory stays
/// comparable with earlier records. The autotuned series construct
/// their mapping explicitly.
fn mapping(backend: ExecBackend) -> ApSoftmax {
    ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_autotune(false)
        .with_backend(backend)
}

fn tuned_mapping() -> ApSoftmax {
    ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord)
}

/// Appends a simulated-cycle record to the `CRITERION_JSON` stream in
/// the same `{"bench":..., "ns_per_iter":...}` shape the harness emits,
/// so `scripts/bench_ap.sh` can gate on numbers that do not depend on
/// host speed.
fn emit_cycles(name: &str, cycles: u64) {
    use std::io::Write;
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{{\"bench\":\"{name}\",\"ns_per_iter\":{cycles}}}");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    g.sample_size(10);
    for len in [512usize, 1024, 2048, 4096] {
        let s = scores(len);
        // The two raw-engine series stay pinned at `OptLevel::None`
        // and op-by-op replay so their trajectory is comparable with
        // earlier records; the optimizer's and the blocked executor's
        // effects are their own series below.
        for (name, backend) in [
            ("microcode", ExecBackend::Microcode),
            ("fastword", ExecBackend::FastWord),
        ] {
            let m = mapping(backend)
                .with_opt_level(OptLevel::None)
                .with_blocked(false);
            g.bench_with_input(BenchmarkId::new(name, len / 2), &s, |b, s| {
                b.iter(|| black_box(m.execute_floats(s).unwrap().total.cycles()))
            });
        }
    }
    g.finish();

    // Pooled plan-cache series, in their own group at a 4x measurement
    // budget (`sample_size(40)` vs the 10 elsewhere; the harness scales
    // measure/warmup time by the sample count).
    //
    // Methodology: `scripts/bench_ap.sh` derives `plan_replay_gain_*`
    // and `plan_compile_us_*` as RATIOS/DIFFERENCES of these four
    // series, so per-series noise multiplies in the recorded numbers.
    // Per-iteration times here are single-digit microseconds; under the
    // short shared budget a single scheduler preemption inside one
    // series' window could skew its mean enough to push a gain ratio
    // below 1.0 (the recorded `plan_replay_gain_rows1024 = 0.53`
    // anomaly — replay can be equal to, but not ~2x slower than,
    // direct issue of the same schedule). The longer warmup also
    // retires the first-iteration cache/branch-train transient before
    // measurement starts.
    let mut g = c.benchmark_group("backend");
    g.sample_size(40);
    for len in [512usize, 1024, 2048, 4096] {
        let s = scores(len);
        // Direct-issue pooled path: one persistent tile + run buffer,
        // the dataflow re-interpreted per vector (pre-plan behaviour).
        let m = mapping(ExecBackend::FastWord)
            .with_plan_mode(PlanMode::DirectIssue)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-reused", len / 2), &s, |b, s| {
            b.iter(|| {
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.total.cycles())
            })
        });
        // Cached-plan replay: compile once, then load → replay → read.
        // Pinned to `OptLevel::None` + op-by-op so the series keeps
        // measuring the replay mechanism itself, comparable with
        // earlier records.
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::None)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-replayed", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.total.cycles())
                })
            },
        );
        // Optimized cached-plan replay: the fused schedule the pass
        // pipeline produces; vs `fastword-replayed` this is the
        // optimizer's wall-clock gain on the same pooled path. Pinned
        // op-by-op: this is the blocking gate's baseline.
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-optimized", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.total.cycles())
                })
            },
        );
        // Region-blocked strip-mined replay of the SAME fused schedule
        // (the default executor): against `fastword-optimized` this
        // isolates the blocked engine's wall-clock effect, everything
        // else held fixed. Same pooled path, same plan, same charges —
        // the differential proptests pin bit- and cycle-exactness.
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_blocked(true);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-blocked", len / 2), &s, |b, s| {
            b.iter(|| {
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.total.cycles())
            })
        });
        // Compile every vector: the cache is cleared per iteration, so
        // this series pays record + execute each time (OptLevel::None,
        // so `fastword-compile − fastword-replayed` stays the plain
        // record cost without the optimize + recost overhead).
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::None)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-compile", len / 2), &s, |b, s| {
            b.iter(|| {
                m.clear_plans();
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.total.cycles())
            })
        });
    }
    g.finish();
    let mut g = c.benchmark_group("backend");
    g.sample_size(10);

    // Sharded long-sequence series at the paper's fixed 2048-row
    // tiles: seq 8192 (2 shards) and 16384 (4 shards) through the
    // pooled replay path — per-shard min search, cross-tile min,
    // per-shard exp + partial sums, cross-tile sum, per-shard divide.
    for len in [8192usize, 16384] {
        let s = scores(len);
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::None)
            .with_resident(false)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-sharded", len / 2), &s, |b, s| {
            b.iter(|| {
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.latency_cycles)
            })
        });
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_resident(false)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-sharded-optimized", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.latency_cycles)
                })
            },
        );
        // Resident regime (the default): shards keep their tiles across
        // phases, followers replay in lockstep, staging is elided.
        // Pinned op-by-op so `fastword-sharded-blocked` below isolates
        // the blocked executor on the identical resident stack.
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_blocked(false);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-sharded-resident", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.latency_cycles)
                })
            },
        );
        // The full default stack: resident shards, fused schedule, and
        // the region-blocked strip-mined executor per shard replay.
        let m = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_blocked(true);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-sharded-blocked", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.latency_cycles)
                })
            },
        );
    }

    // Multi-tile batch driver: a full layer's worth of rows across
    // host threads vs. sequential single-tile execution.
    let batch: Vec<Vec<f64>> = (0..32).map(|_| scores(1024)).collect();
    let fast = mapping(ExecBackend::FastWord).with_opt_level(OptLevel::None);
    g.bench_with_input(
        BenchmarkId::new("fastword-batch32", 512),
        &batch,
        |b, batch| b.iter(|| black_box(fast.execute_batch_floats(batch).unwrap().len())),
    );
    g.finish();

    // Verification + speedup headline at the 2048-row point.
    let s = scores(4096);
    let micro = mapping(ExecBackend::Microcode);
    let fast = mapping(ExecBackend::FastWord);
    let t0 = Instant::now();
    let run_micro = micro.execute_floats(&s).unwrap();
    let micro_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let run_fast = fast.execute_floats(&s).unwrap();
    let fast_s = t1.elapsed().as_secs_f64();
    assert_eq!(run_micro.codes, run_fast.codes, "bit-exactness violated");
    assert_eq!(run_micro.total, run_fast.total, "cycle-exactness violated");
    println!(
        "backend speedup @2048 rows: {:.1}x (microcode {:.1} ms, fastword {:.2} ms), \
         identical stats: {}",
        micro_s / fast_s,
        micro_s * 1e3,
        fast_s * 1e3,
        run_fast.total
    );
    let plan = fast.plan(4096).expect("plan compiled above");
    println!(
        "plan @2048 rows: {} ops, compile {:.1} us, static cost {}",
        plan.program().len(),
        plan.compile_micros(),
        plan.program().static_cost()
    );
    println!("plan @2048 rows: {}", plan.pass_report());

    // Host-invariant simulated-cycle records for the optimizer gate:
    // static == simulated is enforced by the eval tests, so the plans'
    // static costs ARE the simulated cycle counts.
    for len in [512usize, 1024, 2048, 4096] {
        let unopt = mapping(ExecBackend::FastWord).with_opt_level(OptLevel::None);
        let opt = mapping(ExecBackend::FastWord).with_opt_level(OptLevel::Full);
        let u = unopt.static_cost(len).unwrap().cycles();
        let o = opt.static_cost(len).unwrap().cycles();
        emit_cycles(&format!("cycles/fastword/{}", len / 2), u);
        emit_cycles(&format!("cycles/fastword-optimized/{}", len / 2), o);
        if len == 4096 {
            println!(
                "optimizer @2048 rows: {o} fused vs {u} unoptimized simulated \
                 cycles ({}% remaining)",
                o * 100 / u
            );
        }
    }
    for len in [8192usize, 16384] {
        let unopt = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::None)
            .with_resident(false);
        let opt = mapping(ExecBackend::FastWord)
            .with_opt_level(OptLevel::Full)
            .with_resident(false);
        let res = mapping(ExecBackend::FastWord).with_opt_level(OptLevel::Full);
        emit_cycles(
            &format!("cycles/fastword-sharded/{}", len / 2),
            unopt.static_vector_cost(len).unwrap().total.cycles(),
        );
        emit_cycles(
            &format!("cycles/fastword-sharded-optimized/{}", len / 2),
            opt.static_vector_cost(len).unwrap().total.cycles(),
        );
        emit_cycles(
            &format!("cycles/fastword-sharded-resident/{}", len / 2),
            res.static_vector_cost(len).unwrap().total.cycles(),
        );
        if len == 16384 {
            let r = res.static_vector_cost(len).unwrap().total.cycles();
            let o = opt.static_vector_cost(len).unwrap().total.cycles();
            println!(
                "residency @16384: {r} resident vs {o} re-staged simulated \
                 cycles ({}% remaining)",
                r * 100 / o
            );
        }
    }
    // Autotuner series: wall-clock replay of the tuned winner at the
    // single-tile boundary and the four-shard acceptance length ...
    {
        let mut g = c.benchmark_group("backend");
        g.sample_size(10);
        let m = tuned_mapping();
        for len in [4096usize, 16384] {
            let s = scores(len);
            let mut state = TileState::new();
            let mut run = ApSoftmaxRun::default();
            g.bench_with_input(
                BenchmarkId::new("fastword-autotuned", len / 2),
                &s,
                |b, s| {
                    b.iter(|| {
                        m.execute_floats_into(&mut state, s, &mut run).unwrap();
                        black_box(run.total.cycles())
                    })
                },
            );
        }
        g.finish();
    }
    // ... and host-invariant simulated-cycle records for the autotune
    // gate: at every measured length the tuned winner's static cycles
    // must not exceed the paper-default mapping's (checked by
    // `scripts/bench_ap.sh`; `static == simulated` makes both numbers
    // exact device cycles, independent of host speed).
    {
        let tuned = tuned_mapping();
        let default = tuned_mapping().with_autotune(false);
        for len in [64usize, 512, 1024, 2048, 4096, 8192, 16384, 32768] {
            let t = tuned.static_cost(len).unwrap().cycles();
            let d = default.static_cost(len).unwrap().cycles();
            emit_cycles(&format!("cycles/fastword-autotuned/{}", len / 2), t);
            emit_cycles(&format!("cycles/fastword-default/{}", len / 2), d);
        }
        let plan = tuned.tuned_plan(4096).expect("tuned above");
        println!(
            "autotune @4096: chose [{}] — {} vs default {} simulated cycles \
             ({} candidates scored, search {:.1} us)",
            plan.choice(),
            plan.winner_cost().total.cycles(),
            plan.default_cost().total.cycles(),
            plan.scores().len(),
            plan.compile_micros()
        );
    }

    let sharded = fast
        .sharded_plan(16384)
        .expect("sharded plan compiled above");
    println!(
        "sharded plan @16384: {} shards, {} waves, latency {} cyc, work {} cyc \
         (reduction {} cyc), compile {:.1} us",
        sharded.shards(),
        sharded.waves(),
        sharded.latency_cycles(),
        sharded.total().cycles(),
        sharded.reduction().cycles(),
        sharded.compile_micros()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
