//! Dual-backend comparison: the bit-serial `Microcode` engine vs. the
//! word-level `FastWord` engine on the full Fig. 5 softmax dataflow,
//! plus the plan-cache series:
//!
//! * `fastword-reused` — one persistent `TileState` + run buffer
//!   streaming vectors in **direct-issue** mode (the pre-plan
//!   per-vector interpretation; comparable with earlier records),
//! * `fastword-replayed` — the same pooled streaming through the
//!   **cached-plan replay** path (compile once per shape, then
//!   load → replay → read with no per-op host dispatch),
//! * `fastword-compile` — plan cache cleared every iteration, so each
//!   vector pays record + execute; `fastword-compile − fastword-replayed`
//!   is the compile cost a plan amortizes (`plan_compile_us` in
//!   `BENCH_ap.json`),
//! * `fastword-batch32` — the multi-tile batch driver's throughput,
//! * `fastword-sharded` — long sequences (8192/16384 scores) sharded
//!   across fixed 2048-row tiles through the cached sharded plan
//!   (`shard_*` fields and the shard-scaling gate in `BENCH_ap.json`).
//!
//! `FastWord` charges identical `CycleStats` (enforced by the
//! differential proptests; spot-checked here) while running ~13× faster
//! at 256 rows and ~5–6× at 2048 rows against this repo's optimized
//! interpreter. Measured numbers are recorded in `BENCH_ap.json` by
//! `scripts/bench_ap.sh`, which also gates `fastword-replayed` against
//! the recorded `fastword-reused` baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softmap::{ApSoftmax, ApSoftmaxRun, PlanMode, TileState};
use softmap_ap::ExecBackend;
use softmap_softmax::PrecisionConfig;
use std::hint::black_box;
use std::time::Instant;

fn scores(len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| -f64::from((i % 97) as u32) * 0.07)
        .collect()
}

fn mapping(backend: ExecBackend) -> ApSoftmax {
    ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(backend)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    g.sample_size(10);
    for len in [512usize, 1024, 2048, 4096] {
        let s = scores(len);
        for (name, backend) in [
            ("microcode", ExecBackend::Microcode),
            ("fastword", ExecBackend::FastWord),
        ] {
            let m = mapping(backend);
            g.bench_with_input(BenchmarkId::new(name, len / 2), &s, |b, s| {
                b.iter(|| black_box(m.execute_floats(s).unwrap().total.cycles()))
            });
        }
        // Direct-issue pooled path: one persistent tile + run buffer,
        // the dataflow re-interpreted per vector (pre-plan behaviour).
        let m = mapping(ExecBackend::FastWord).with_plan_mode(PlanMode::DirectIssue);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-reused", len / 2), &s, |b, s| {
            b.iter(|| {
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.total.cycles())
            })
        });
        // Cached-plan replay: compile once, then load → replay → read.
        let m = mapping(ExecBackend::FastWord);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(
            BenchmarkId::new("fastword-replayed", len / 2),
            &s,
            |b, s| {
                b.iter(|| {
                    m.execute_floats_into(&mut state, s, &mut run).unwrap();
                    black_box(run.total.cycles())
                })
            },
        );
        // Compile every vector: the cache is cleared per iteration, so
        // this series pays record + execute each time.
        let m = mapping(ExecBackend::FastWord);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-compile", len / 2), &s, |b, s| {
            b.iter(|| {
                m.clear_plans();
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.total.cycles())
            })
        });
    }

    // Sharded long-sequence series at the paper's fixed 2048-row
    // tiles: seq 8192 (2 shards) and 16384 (4 shards) through the
    // pooled replay path — per-shard min search, cross-tile min,
    // per-shard exp + partial sums, cross-tile sum, per-shard divide.
    for len in [8192usize, 16384] {
        let s = scores(len);
        let m = mapping(ExecBackend::FastWord);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        g.bench_with_input(BenchmarkId::new("fastword-sharded", len / 2), &s, |b, s| {
            b.iter(|| {
                m.execute_floats_into(&mut state, s, &mut run).unwrap();
                black_box(run.latency_cycles)
            })
        });
    }

    // Multi-tile batch driver: a full layer's worth of rows across
    // host threads vs. sequential single-tile execution.
    let batch: Vec<Vec<f64>> = (0..32).map(|_| scores(1024)).collect();
    let fast = mapping(ExecBackend::FastWord);
    g.bench_with_input(
        BenchmarkId::new("fastword-batch32", 512),
        &batch,
        |b, batch| b.iter(|| black_box(fast.execute_batch_floats(batch).unwrap().len())),
    );
    g.finish();

    // Verification + speedup headline at the 2048-row point.
    let s = scores(4096);
    let micro = mapping(ExecBackend::Microcode);
    let fast = mapping(ExecBackend::FastWord);
    let t0 = Instant::now();
    let run_micro = micro.execute_floats(&s).unwrap();
    let micro_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let run_fast = fast.execute_floats(&s).unwrap();
    let fast_s = t1.elapsed().as_secs_f64();
    assert_eq!(run_micro.codes, run_fast.codes, "bit-exactness violated");
    assert_eq!(run_micro.total, run_fast.total, "cycle-exactness violated");
    println!(
        "backend speedup @2048 rows: {:.1}x (microcode {:.1} ms, fastword {:.2} ms), \
         identical stats: {}",
        micro_s / fast_s,
        micro_s * 1e3,
        fast_s * 1e3,
        run_fast.total
    );
    let plan = fast.plan(4096).expect("plan compiled above");
    println!(
        "plan @2048 rows: {} ops, compile {:.1} us, static cost {}",
        plan.program().len(),
        plan.compile_micros(),
        plan.program().static_cost()
    );
    let sharded = fast
        .sharded_plan(16384)
        .expect("sharded plan compiled above");
    println!(
        "sharded plan @16384: {} shards, {} waves, latency {} cyc, work {} cyc \
         (reduction {} cyc), compile {:.1} us",
        sharded.shards(),
        sharded.waves(),
        sharded.latency_cycles(),
        sharded.total().cycles(),
        sharded.reduction().cycles(),
        sharded.compile_micros()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
