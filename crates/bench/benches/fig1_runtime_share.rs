//! Bench + regeneration of Fig. 1 (softmax runtime share on A100).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap_gpu::{transformer::PrefillModel, GpuSpec};
use softmap_llm::configs::llama2_7b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", softmap_eval::fig1::render(&softmap_eval::fig1::run()));
    let model = PrefillModel::new(GpuSpec::a100());
    let cfg = llama2_7b();
    c.bench_function("fig1/runtime_sweep", |b| {
        b.iter(|| {
            for seq in [128usize, 1024, 4096, 16384] {
                black_box(model.runtime(&cfg, seq, 1));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
