//! Bench + regeneration of Fig. 6 (normalized energy, all models).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap::characterize::{Characterizer, OperatingPoint};
use softmap_eval::fig678::{render_figure, Quantity};
use softmap_llm::configs::llama2_7b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", render_figure(Quantity::Energy).unwrap());
    let ch = Characterizer::paper_default().unwrap();
    let model = llama2_7b();
    c.bench_function("fig6/compare_point", |b| {
        b.iter(|| {
            black_box(
                ch.compare(
                    &model,
                    OperatingPoint {
                        seq_len: 2048,
                        batch: 8,
                    },
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
