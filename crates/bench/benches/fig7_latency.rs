//! Bench + regeneration of Fig. 7 (normalized latency, all models).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap::characterize::Characterizer;
use softmap_eval::fig678::{render_figure, Quantity};
use softmap_llm::configs::llama2_13b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", render_figure(Quantity::Latency).unwrap());
    let ch = Characterizer::paper_default().unwrap();
    let model = llama2_13b();
    c.bench_function("fig7/full_sweep_13b", |b| {
        b.iter(|| black_box(ch.sweep(&model).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
