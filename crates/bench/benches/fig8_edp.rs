//! Bench + regeneration of Fig. 8 (normalized EDP, Llama2-13b).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap_eval::fig678::{render_panel, Quantity};
use softmap_llm::configs::llama2_13b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", render_panel(&llama2_13b(), Quantity::Edp).unwrap());
    c.bench_function("fig8/panel_13b", |b| {
        b.iter(|| black_box(render_panel(&llama2_13b(), Quantity::Edp).unwrap().len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
