//! Scalar softmax kernels: the integer-only pipeline vs. the exact
//! float softmax, across vector lengths and precisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softmap_softmax::{float_ref, IntSoftmax, PrecisionConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalar_softmax");
    for len in [64usize, 1024, 4096] {
        let scores: Vec<f64> = (0..len)
            .map(|i| -f64::from((i % 89) as u32) * 0.08)
            .collect();
        g.bench_with_input(BenchmarkId::new("float", len), &scores, |b, s| {
            b.iter(|| black_box(float_ref::softmax(s)))
        });
        for m in [6u32, 8] {
            let sm = IntSoftmax::new(PrecisionConfig::new(m, 0, 16)).unwrap();
            g.bench_with_input(
                BenchmarkId::new(format!("int_m{m}"), len),
                &scores,
                |b, s| b.iter(|| black_box(sm.run_floats(s).unwrap().sum)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
