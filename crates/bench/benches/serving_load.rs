//! Load generator for the multi-tenant serving layer: mixed 64–16k
//! traffic from a closed-loop client with a bounded outstanding
//! window, versus the sequential one-request-at-a-time baseline on a
//! single `TileState`.
//!
//! Wall-clock records (host-dependent, informational):
//!
//! * `serving/throughput_rps` — served requests per second,
//! * `serving/p50_us` / `serving/p99_us` — per-request latency
//!   percentiles, submission to collection,
//! * `serving/wall_speedup_x1000` — sequential wall time over served
//!   wall time (×1000; ~1000 on a single-core host, where the worker
//!   pool degenerates to one worker).
//!
//! Host-invariant records (the `serving` gate in `scripts/bench_ap.sh`
//! runs on these; they are *device-model* quantities — simulated
//! cycles and admission counters — so host speed never enters):
//!
//! * `serving/device_speedup_x1000` — Σ per-request `latency_cycles`
//!   over the continuous-batching schedule's makespan (the grid runs
//!   requests concurrently; sequential device time runs them back to
//!   back),
//! * `serving/occupancy_x1000` — busy tile-cycles over makespan ×
//!   tiles,
//! * `serving/waves_formed` / `serving/coalesced` — admission passes
//!   that formed a wave, and requests packed into an already-forming
//!   wave,
//! * `serving/requests` — workload size (quick mode serves a smaller
//!   workload).
//!
//! The bench also asserts the serving bit-exactness contract's cost
//! half: the served requests' summed device latency must equal the
//! sequential baseline's, cycle for cycle.
//!
//! Run: `scripts/bench_ap.sh` (or
//! `cargo bench -p softmap-bench --bench serving_load`).

use softmap::{ApSoftmax, ApSoftmaxRun, ServeConfig, SoftmaxServer, Ticket, TileState};
use softmap_ap::ExecBackend;
use softmap_softmax::PrecisionConfig;
use std::collections::VecDeque;
use std::time::Instant;

/// One workload period: mostly short attention rows with periodic long
/// contexts (8k spans two shard tiles, 16k four on the default grid).
const PATTERN: [usize; 12] = [64, 256, 64, 1024, 64, 4096, 256, 64, 8192, 1024, 64, 16384];

/// Outstanding requests the closed-loop client keeps in flight.
const WINDOW: usize = 48;

/// Appends a record to the `CRITERION_JSON` stream in the harness's
/// `{"bench":..., "ns_per_iter":...}` shape so `scripts/bench_ap.sh`
/// can assemble and gate the serving section.
fn emit(name: &str, value: u64) {
    use std::io::Write;
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{{\"bench\":\"{name}\",\"ns_per_iter\":{value}}}");
    }
}

fn row(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| -f64::from(((i + salt * 31) % 97) as u32) * 0.07)
        .collect()
}

fn mapping() -> ApSoftmax {
    ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord)
}

fn main() {
    // Quick smoke runs (scripts/bench_ap.sh --quick sets a small
    // CRITERION_MEASURE_MS) serve a smaller workload; the gate ratios
    // are scale-free, so they hold at either size.
    let quick = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .is_some_and(|ms| ms <= 100);
    let requests: usize = if quick { 120 } else { 600 };
    let rows: Vec<Vec<f64>> = PATTERN
        .iter()
        .enumerate()
        .map(|(salt, &len)| row(len, salt))
        .collect();
    let mut shapes: Vec<usize> = PATTERN.to_vec();
    shapes.sort_unstable();
    shapes.dedup();

    // Sequential baseline: one persistent TileState executing the same
    // request sequence in arrival order. Warm (compile) each shape
    // first so the timed pass replays, exactly like the warmed server.
    let base = mapping();
    let mut state = TileState::new();
    let mut run = ApSoftmaxRun::default();
    for r in &rows {
        base.execute_floats_into(&mut state, r, &mut run).unwrap();
    }
    let t0 = Instant::now();
    let mut seq_cycles: u64 = 0;
    for i in 0..requests {
        base.execute_floats_into(&mut state, &rows[i % rows.len()], &mut run)
            .unwrap();
        seq_cycles += run.latency_cycles;
    }
    let seq_wall = t0.elapsed().as_secs_f64();

    // Served: a closed-loop client keeping WINDOW requests in flight
    // through the bounded queue (SOFTMAP_SERVE_* knobs still apply).
    let mut cfg = ServeConfig::from_env();
    cfg.warmup_shapes = shapes;
    let window = WINDOW.min(cfg.queue_depth);
    let server = SoftmaxServer::new(mapping(), cfg).unwrap();
    let mut inflight: VecDeque<(Instant, Ticket)> = VecDeque::with_capacity(window);
    let mut lat_us: Vec<f64> = Vec::with_capacity(requests);
    let mut served_cycles: u64 = 0;
    let mut collect = |submitted: Instant, ticket: Ticket, out: &mut ApSoftmaxRun| {
        ticket.wait_into(out).unwrap();
        served_cycles += out.latency_cycles;
        lat_us.push(submitted.elapsed().as_secs_f64() * 1e6);
    };
    let t1 = Instant::now();
    for i in 0..requests {
        while inflight.len() >= window {
            let (submitted, ticket) = inflight.pop_front().unwrap();
            collect(submitted, ticket, &mut run);
        }
        let submitted = Instant::now();
        let ticket = server.submit(&rows[i % rows.len()]).unwrap();
        inflight.push_back((submitted, ticket));
    }
    for (submitted, ticket) in inflight {
        collect(submitted, ticket, &mut run);
    }
    let served_wall = t1.elapsed().as_secs_f64();

    let stats = server.stats();
    assert_eq!(stats.completed, requests as u64, "requests lost: {stats}");
    assert_eq!(
        served_cycles, seq_cycles,
        "served device work must equal the sequential baseline's \
         (bit-exactness contract, cost half)"
    );

    let device_speedup = served_cycles as f64 / stats.makespan_cycles.max(1) as f64;
    let occupancy = stats.occupancy();
    lat_us.sort_by(f64::total_cmp);
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let rps = requests as f64 / served_wall;

    println!(
        "serving_load: {requests} requests (mixed {}..{} scores), window {window}",
        PATTERN.iter().min().unwrap(),
        PATTERN.iter().max().unwrap()
    );
    println!(
        "  wall: {rps:.0} req/s served vs {:.0} req/s sequential \
         ({:.2}x), p50 {p50:.0} us, p99 {p99:.0} us",
        requests as f64 / seq_wall,
        seq_wall / served_wall
    );
    println!(
        "  device: {served_cycles} cyc sequential -> {} cyc makespan \
         ({device_speedup:.1}x, occupancy {occupancy:.2} over {} tiles)",
        stats.makespan_cycles, stats.tiles
    );
    println!("  admission: {stats}");

    emit("serving/requests", requests as u64);
    emit("serving/throughput_rps", rps as u64);
    emit("serving/p50_us", p50 as u64);
    emit("serving/p99_us", p99 as u64);
    emit(
        "serving/wall_speedup_x1000",
        (seq_wall / served_wall * 1000.0) as u64,
    );
    emit(
        "serving/device_speedup_x1000",
        (device_speedup * 1000.0) as u64,
    );
    emit("serving/occupancy_x1000", (occupancy * 1000.0) as u64);
    emit("serving/waves_formed", stats.waves_formed);
    emit("serving/coalesced", stats.coalesced);
}
