//! Bench + regeneration of Table I (bit-width allocations).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate and print the table once.
    println!("{}", softmap_eval::table1::run().render());
    c.bench_function("table1/width_grid", |b| {
        b.iter(|| black_box(softmap_eval::table1::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
