//! Bench + regeneration of Table II (AP primitive runtimes): times the
//! simulator executing each primitive's microcode and prints the
//! formula-vs-measured table once.

use criterion::{criterion_group, criterion_main, Criterion};
use softmap_ap::{ApConfig, ApCore, DivStyle};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        softmap_eval::table2::render(&softmap_eval::table2::run())
    );

    let rows = 1024usize;
    let data: Vec<u64> = (0..rows as u64).map(|i| i % 64).collect();

    c.bench_function("table2/add_m6", |b| {
        b.iter(|| {
            let mut ap = ApCore::new(ApConfig::new(rows, 24)).unwrap();
            let x = ap.alloc_field(6).unwrap();
            let acc = ap.alloc_field(7).unwrap();
            ap.load(x, &data).unwrap();
            ap.load(acc.sub(0, 6), &data).unwrap();
            ap.add_into(acc, x).unwrap();
            black_box(ap.stats().cycles())
        })
    });
    c.bench_function("table2/mul_m6", |b| {
        b.iter(|| {
            let mut ap = ApCore::new(ApConfig::new(rows, 32)).unwrap();
            let x = ap.alloc_field(6).unwrap();
            let y = ap.alloc_field(6).unwrap();
            let r = ap.alloc_field(12).unwrap();
            ap.load(x, &data).unwrap();
            ap.load(y, &data).unwrap();
            ap.mul(x, y, r).unwrap();
            black_box(ap.stats().cycles())
        })
    });
    c.bench_function("table2/reduce_2048", |b| {
        b.iter(|| {
            let mut ap = ApCore::new(ApConfig::new(rows, 32)).unwrap();
            let x = ap.alloc_field(6).unwrap();
            let s = ap.alloc_field(18).unwrap();
            ap.load(x, &data).unwrap();
            black_box(ap.reduce_sum_2d(x, s, rows).unwrap())
        })
    });
    c.bench_function("table2/divide_m6", |b| {
        b.iter(|| {
            let mut ap = ApCore::new(ApConfig::new(256, 96)).unwrap();
            let n = ap.alloc_field(12).unwrap();
            let d = ap.alloc_field(12).unwrap();
            let q = ap.alloc_field(24).unwrap();
            ap.load(n, &data[..256]).unwrap();
            ap.broadcast(d, 63).unwrap();
            ap.divide(n, d, q, 12, DivStyle::Restoring).unwrap();
            black_box(ap.stats().cycles())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
