//! Bench + regeneration of the Table III perplexity grid (tiny stand-in
//! for Llama2-7b; see the README substitution notes). Training happens once;
//! the benchmark times one full-grid perplexity evaluation cell.

use criterion::{criterion_group, criterion_main, Criterion};
use softmap_eval::{paper, table34};
use softmap_llm::corpus::Corpus;
use softmap_llm::perplexity::perplexity;
use softmap_llm::softmax_impls::IntApproxSoftmax;
use softmap_llm::train::{train_language_model, TrainConfig};
use softmap_softmax::PrecisionConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let grid = table34::run(table34::StandIn::A).unwrap();
    println!("{}", grid.render(&paper::TABLE3_PPL, paper::TABLE3_FP_PPL));

    // One evaluation cell as the timed kernel (training excluded).
    let corpus = Corpus::generate(42, 12_000);
    let cfg = TrainConfig {
        steps: 40,
        ..TrainConfig::default()
    };
    let trained = train_language_model(&corpus, &cfg).unwrap();
    let (_, val) = corpus.split(0.1);
    let sm = IntApproxSoftmax::new(PrecisionConfig::paper_best()).unwrap();
    let mut g = c.benchmark_group("table34");
    g.sample_size(10);
    g.bench_function("perplexity_cell", |b| {
        b.iter(|| black_box(perplexity(&trained.model, val, &sm).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
