//! Bench + regeneration of Table V (highest EDP ratios per model).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap::characterize::Characterizer;
use softmap_llm::configs::llama2_7b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        softmap_eval::table5::render(&softmap_eval::table5::run().unwrap())
    );
    let ch = Characterizer::paper_default().unwrap();
    c.bench_function("table5/edp_peak_7b", |b| {
        b.iter(|| black_box(ch.highest_edp_ratios(&llama2_7b()).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
