//! Bench + regeneration of Table VI (energy per operation).

use criterion::{criterion_group, criterion_main, Criterion};
use softmap::ApSoftmax;
use softmap_ap::EnergyModel;
use softmap_softmax::PrecisionConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        softmap_eval::table6::render(&softmap_eval::table6::run().unwrap())
    );
    let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_autotune(false);
    let scores: Vec<f64> = (0..256).map(|i| -f64::from(i % 97) * 0.07).collect();
    let energy = EnergyModel::nm16();
    c.bench_function("table6/dataflow_energy_256", |b| {
        b.iter(|| {
            let run = mapping.execute_floats(&scores).unwrap();
            black_box(energy.energy_per_op_pj(&run.total))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
