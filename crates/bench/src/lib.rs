//! Criterion benchmark crate for the SoftmAP reproduction.
//!
//! All content lives in `benches/`; this library is intentionally empty.
