//! The paper's hardware evaluation: AP vs. GPU energy, latency and EDP
//! across Llama models, sequence lengths and batch sizes
//! (Figs. 6, 7, 8 and Table V).
//!
//! Normalization follows the paper: every reported number is
//! `GPU / AP`, so values above 1 favour the AP.
//!
//! # Examples
//!
//! ```
//! use softmap::characterize::{Characterizer, OperatingPoint};
//! use softmap_llm::configs::llama2_7b;
//!
//! let ch = Characterizer::paper_default()?;
//! let c = ch.compare(&llama2_7b(), OperatingPoint { seq_len: 1024, batch: 1 })?;
//! // energy always favours the AP
//! assert!(c.gpus[0].norm_energy > 1.0);
//! # Ok::<(), softmap::CoreError>(())
//! ```

use softmap_gpu::{GpuSpec, SoftmaxKernelModel};
use softmap_llm::configs::{LlamaConfig, SoftmaxWorkload};
use softmap_softmax::PrecisionConfig;

use crate::deploy::{ApDeployment, ApWorkloadCost, WorkloadModel};
use crate::CoreError;

/// One point of the paper's sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    /// Sequence length.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
}

/// The paper's sweep: `L ∈ {128 … 4096}`, `B ∈ {1, 8, 16, 32}`.
#[must_use]
pub fn paper_grid() -> Vec<OperatingPoint> {
    let mut grid = Vec::new();
    for &seq_len in &[128usize, 256, 512, 1024, 2048, 4096] {
        for &batch in &[1usize, 8, 16, 32] {
            grid.push(OperatingPoint { seq_len, batch });
        }
    }
    grid
}

/// GPU-side cost and normalized (GPU/AP) ratios at one point.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuComparison {
    /// GPU name.
    pub gpu: &'static str,
    /// GPU latency, seconds.
    pub latency_s: f64,
    /// GPU energy, joules.
    pub energy_j: f64,
    /// `latency_GPU / latency_AP` (the paper's Fig. 7 y-axis).
    pub norm_latency: f64,
    /// `energy_GPU / energy_AP` (Fig. 6).
    pub norm_energy: f64,
    /// `EDP_GPU / EDP_AP` (Fig. 8).
    pub norm_edp: f64,
}

/// Full comparison at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Model name.
    pub model: &'static str,
    /// The operating point.
    pub point: OperatingPoint,
    /// AP cost.
    pub ap: ApWorkloadCost,
    /// Per-GPU costs and ratios, in [`GpuSpec::paper_gpus`] order.
    pub gpus: Vec<GpuComparison>,
}

/// Drives the evaluation across models, GPUs and operating points.
#[derive(Debug)]
pub struct Characterizer {
    workload_model: WorkloadModel,
    gpus: Vec<GpuSpec>,
    kernel: SoftmaxKernelModel,
}

impl Characterizer {
    /// The paper's setup: best precision combination (`M=6, v_corr=M,
    /// N=16`), default deployment, A100 + RTX3090, integer softmax as
    /// (partially fused) GPU kernels.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn paper_default() -> Result<Self, CoreError> {
        Self::new(
            PrecisionConfig::paper_best(),
            ApDeployment::default(),
            GpuSpec::paper_gpus(),
            SoftmaxKernelModel::int_unfused(),
        )
    }

    /// Fully parameterized constructor.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the workload model.
    pub fn new(
        cfg: PrecisionConfig,
        deploy: ApDeployment,
        gpus: Vec<GpuSpec>,
        kernel: SoftmaxKernelModel,
    ) -> Result<Self, CoreError> {
        Ok(Self {
            workload_model: WorkloadModel::new(cfg, deploy)?,
            gpus,
            kernel,
        })
    }

    /// The underlying AP workload model.
    #[must_use]
    pub fn workload_model(&self) -> &WorkloadModel {
        &self.workload_model
    }

    /// Compares AP and GPUs on one model at one operating point.
    ///
    /// # Errors
    ///
    /// Propagates workload errors (e.g. a sequence exceeding the tile).
    pub fn compare(
        &self,
        model: &LlamaConfig,
        point: OperatingPoint,
    ) -> Result<Comparison, CoreError> {
        let ap = self
            .workload_model
            .cost(model.layers, model.heads, point.seq_len, point.batch)?;
        let w = SoftmaxWorkload::prefill(model, point.seq_len, point.batch);
        let gpus = self
            .gpus
            .iter()
            .map(|g| {
                let c = self.kernel.cost(g, &w);
                GpuComparison {
                    gpu: g.name,
                    latency_s: c.latency_s,
                    energy_j: c.energy_j,
                    norm_latency: c.latency_s / ap.latency_s,
                    norm_energy: c.energy_j / ap.energy_j,
                    norm_edp: c.edp() / ap.edp(),
                }
            })
            .collect();
        Ok(Comparison {
            model: model.name,
            point,
            ap,
            gpus,
        })
    }

    /// Runs the full paper grid for one model (Figs. 6/7/8 panel data).
    ///
    /// # Errors
    ///
    /// Propagates comparison errors.
    pub fn sweep(&self, model: &LlamaConfig) -> Result<Vec<Comparison>, CoreError> {
        paper_grid()
            .into_iter()
            .map(|p| self.compare(model, p))
            .collect()
    }

    /// Table V: the highest EDP ratio per GPU over the sweep grid.
    ///
    /// # Errors
    ///
    /// Propagates comparison errors.
    pub fn highest_edp_ratios(
        &self,
        model: &LlamaConfig,
    ) -> Result<Vec<(&'static str, f64, OperatingPoint)>, CoreError> {
        let sweep = self.sweep(model)?;
        let mut out = Vec::new();
        for (gi, gpu) in self.gpus.iter().enumerate() {
            let best = sweep
                .iter()
                .map(|c| (c.gpus[gi].norm_edp, c.point))
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .expect("non-empty grid");
            out.push((gpu.name, best.0, best.1));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_llm::configs::{llama2_13b, llama2_70b, llama2_7b};

    fn ch() -> Characterizer {
        Characterizer::paper_default().unwrap()
    }

    #[test]
    fn energy_always_favours_the_ap() {
        // Fig. 6: normalized energy > 1 for all models, lengths, batches.
        let ch = ch();
        for model in [llama2_7b(), llama2_13b(), llama2_70b()] {
            for c in ch.sweep(&model).unwrap() {
                for g in &c.gpus {
                    assert!(
                        g.norm_energy > 1.0,
                        "{} {:?} {}: {}",
                        c.model,
                        c.point,
                        g.gpu,
                        g.norm_energy
                    );
                }
            }
        }
    }

    #[test]
    fn energy_ratio_magnitudes_match_paper_bands() {
        // Paper: A100/AP up to ~489-760x, average ~300x; RTX3090 higher.
        let ch = ch();
        let sweep = ch.sweep(&llama2_7b()).unwrap();
        let a100_max = sweep
            .iter()
            .map(|c| c.gpus[0].norm_energy)
            .fold(0.0, f64::max);
        let a100_mean: f64 =
            sweep.iter().map(|c| c.gpus[0].norm_energy).sum::<f64>() / sweep.len() as f64;
        assert!(
            a100_max > 100.0 && a100_max < 5000.0,
            "max energy ratio {a100_max}"
        );
        assert!(
            a100_mean > 50.0 && a100_mean < 2000.0,
            "mean energy ratio {a100_mean}"
        );
        // 3090 ratios exceed A100 ratios (paper: 710 vs 289 on average)
        let r3090_mean: f64 =
            sweep.iter().map(|c| c.gpus[1].norm_energy).sum::<f64>() / sweep.len() as f64;
        assert!(r3090_mean > a100_mean);
    }

    #[test]
    fn energy_ratio_peaks_at_smallest_workload() {
        // Paper: highest savings at batch 1, sequence length 128.
        let ch = ch();
        let sweep = ch.sweep(&llama2_7b()).unwrap();
        let best = sweep
            .iter()
            .max_by(|a, b| a.gpus[0].norm_energy.total_cmp(&b.gpus[0].norm_energy))
            .unwrap();
        assert_eq!(best.point.seq_len, 128);
        assert_eq!(best.point.batch, 1);
    }

    #[test]
    fn latency_crossover_near_1024() {
        // Fig. 7: AP slower below 1024, faster at 2048-4096.
        let ch = ch();
        for model in [llama2_7b(), llama2_13b()] {
            for batch in [1usize, 8, 32] {
                let short = ch
                    .compare(
                        &model,
                        OperatingPoint {
                            seq_len: 256,
                            batch,
                        },
                    )
                    .unwrap();
                assert!(
                    short.gpus[0].norm_latency < 1.0,
                    "{} B={batch}: short-seq ratio {}",
                    model.name,
                    short.gpus[0].norm_latency
                );
                let long = ch
                    .compare(
                        &model,
                        OperatingPoint {
                            seq_len: 4096,
                            batch,
                        },
                    )
                    .unwrap();
                assert!(
                    long.gpus[0].norm_latency > 1.0,
                    "{} B={batch}: long-seq ratio {}",
                    model.name,
                    long.gpus[0].norm_latency
                );
            }
        }
    }

    #[test]
    fn latency_gain_at_4096_in_paper_band() {
        // Paper: 1.06x-6.7x (A100) and up to 12.58x (RTX3090) for
        // L in [1024, 4096]. Our model reproduces the crossover location
        // and the GPU ordering; the 70b magnitude runs a few times above
        // the paper's 6.7x because all 64 heads are fully parallel on
        // the AP side while the GPU pays for their full traffic — see
        // EXPERIMENTS.md. The 7b magnitude lands inside the band.
        let ch = ch();
        let c7 = ch
            .compare(
                &llama2_7b(),
                OperatingPoint {
                    seq_len: 4096,
                    batch: 1,
                },
            )
            .unwrap();
        assert!(
            c7.gpus[0].norm_latency > 1.5 && c7.gpus[0].norm_latency < 15.0,
            "A100/7b ratio {}",
            c7.gpus[0].norm_latency
        );
        let c = ch
            .compare(
                &llama2_70b(),
                OperatingPoint {
                    seq_len: 4096,
                    batch: 8,
                },
            )
            .unwrap();
        let a100 = c.gpus[0].norm_latency;
        let r3090 = c.gpus[1].norm_latency;
        assert!(a100 > 1.5 && a100 < 60.0, "A100 ratio {a100}");
        assert!(r3090 > a100, "3090 ({r3090}) should exceed A100 ({a100})");
    }

    #[test]
    fn edp_always_above_one_with_max_at_4096() {
        // Fig. 8 + Table V: EDP ratio > 1 everywhere; maxima at the
        // longest sequences, batch 8-32, in the 10^3-10^4 range.
        let ch = ch();
        for model in [llama2_7b(), llama2_13b(), llama2_70b()] {
            let sweep = ch.sweep(&model).unwrap();
            for c in &sweep {
                for g in &c.gpus {
                    assert!(g.norm_edp > 1.0, "{} {:?}", c.model, c.point);
                }
            }
            let tops = ch.highest_edp_ratios(&model).unwrap();
            for (gpu, ratio, point) in &tops {
                assert_eq!(point.seq_len, 4096, "{gpu} peak at {point:?}");
                assert!(
                    *ratio > 100.0 && *ratio < 100_000.0,
                    "{gpu}: EDP ratio {ratio}"
                );
            }
            // 3090 EDP tops exceed A100's (paper: 4421-8851 vs 1068-2091)
            assert!(tops[1].1 > tops[0].1);
        }
    }

    #[test]
    fn edp_ordering_follows_model_size() {
        // Table V: bigger models show bigger peak EDP ratios.
        let ch = ch();
        let t7 = ch.highest_edp_ratios(&llama2_7b()).unwrap()[0].1;
        let t70 = ch.highest_edp_ratios(&llama2_70b()).unwrap()[0].1;
        assert!(t70 > t7, "70b ({t70}) should exceed 7b ({t7})");
    }
}
