//! The AP deployment model: how many tiles, how vectors are scheduled,
//! and what one full-model softmax workload costs.
//!
//! The paper deploys "an AP inside each head" (Fig. 4) and sizes the
//! area tables accordingly (one 2048-row tile per head reproduces the
//! 0.64/0.81/1.28 mm² of Section V-B), while its latency comparisons
//! imply several vectors in flight per head. Both knobs are explicit
//! here: `tiles_per_head` (1 for the area table, more for the latency
//! figures) and `packing` (whether multiple short vectors share a tile
//! — an ablation; the baseline 2D reduction network is unsegmented, so
//! the default is one vector in flight per tile). See the README's
//! "Reconciliation note" under the device-model section for the full
//! discussion.
//!
//! The tile capacity is **enforced**: the model hands its geometry to
//! the mapping as a [`softmap_ap::DeviceConfig`], so sequences past
//! `2 × rows_per_tile` tokens execute (and are costed) **sharded**
//! across the head's tiles — per-phase waves plus the cross-tile
//! reduction-network cycles — instead of being rejected.

use softmap_ap::{AreaModel, CycleStats, DeviceConfig, DivStyle, EnergyModel, ExecBackend};
use softmap_softmax::PrecisionConfig;

use crate::mapping::ApSoftmax;
use crate::CoreError;

/// Deployment-level configuration of the AP accelerator.
///
/// # Examples
///
/// ```
/// use softmap::ApDeployment;
///
/// let d = ApDeployment::default();
/// assert_eq!(d.tiles_per_head, 48);
/// assert_eq!(d.rows_per_tile, 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApDeployment {
    /// AP tiles per attention head (vectors processed concurrently).
    /// The default (48) is calibrated so the latency crossover against
    /// the GPU models falls at the paper's L ≈ 1024.
    pub tiles_per_head: usize,
    /// Rows per tile (2048 rows = sequence length 4096 at two words per
    /// row, the paper's maximum for a single tile; longer sequences
    /// execute sharded across the head's tiles).
    pub rows_per_tile: usize,
    /// Clock frequency in GHz (the paper's Table VI: 1000 MHz).
    pub clock_ghz: f64,
    /// Division microcode style.
    pub div_style: DivStyle,
    /// Whether several short vectors may share a tile (requires a
    /// segmented reduction network; ablation knob).
    pub packing: bool,
    /// Simulation backend used to characterize the microcode. Both
    /// backends charge identical [`CycleStats`] (the dual-backend
    /// contract), so this only trades host simulation time; the default
    /// is the fast word-level engine.
    pub backend: ExecBackend,
    /// Whether sharded vectors keep their shards **pinned** in tiles
    /// across the three phases (the residency plan; see
    /// `softmap_ap::device`). On: phase-boundary staging is elided and
    /// same-length shards run in SIMD lockstep, cutting sharded work
    /// and energy sharply. Off: the re-staged path, kept for
    /// differential testing and as the automatic per-vector fallback
    /// whenever a vector needs more shards than the head has tiles.
    /// Occupancy is unchanged either way — a resident vector holds the
    /// same `shards` tiles its waves would.
    pub resident: bool,
    /// Whether the mapping autotuner searches candidate mappings per
    /// shape ([`softmap_ap::DivStyle`]-preserving layout/partition
    /// search; see `softmap::AUTOTUNE_ENV`). **Off by default at the
    /// deployment level** so the paper-reproduction tables keep the
    /// paper's fixed mapping byte-for-byte; opt in per deployment with
    /// `ApDeployment { autotune: true, ..ApDeployment::default() }`.
    /// (Bare [`crate::ApSoftmax`] mappings default to *on*.)
    pub autotune: bool,
}

impl Default for ApDeployment {
    fn default() -> Self {
        Self {
            tiles_per_head: 48,
            rows_per_tile: 2048,
            clock_ghz: 1.0,
            div_style: DivStyle::Restoring,
            packing: false,
            backend: ExecBackend::FastWord,
            resident: true,
            autotune: false,
        }
    }
}

impl ApDeployment {
    /// The paper's area-table deployment: one tile per head.
    #[must_use]
    pub fn area_reference() -> Self {
        Self {
            tiles_per_head: 1,
            ..Self::default()
        }
    }
}

/// Cost of one full-model softmax workload on the AP deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApWorkloadCost {
    /// End-to-end latency, seconds (heads run in parallel; layers and
    /// vector waves serialize).
    pub latency_s: f64,
    /// Total energy, joules (scales with every processed vector across
    /// all heads and layers).
    pub energy_j: f64,
    /// Critical-path cycles for one vector (for a sharded vector this
    /// includes intra-vector waves and the cross-tile reductions).
    pub cycles_per_vector: u64,
    /// Cell events for one vector.
    pub events_per_vector: u64,
    /// Number of sequential waves per layer.
    pub waves_per_layer: u64,
    /// Tiles (shards) one vector occupies (1 when it fits one tile).
    pub shards_per_vector: u64,
}

impl ApWorkloadCost {
    /// Energy-delay product, J·s.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.latency_s * self.energy_j
    }
}

/// Characterizes the mapped dataflow per vector length and schedules it
/// over a transformer's softmax workload.
///
/// # Examples
///
/// ```
/// use softmap::{ApDeployment, WorkloadModel};
/// use softmap_softmax::PrecisionConfig;
///
/// let model = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default())?;
/// let cost = model.cost(32, 32, 512, 1)?; // layers, heads, seq, batch
/// assert!(cost.latency_s > 0.0);
/// assert!(cost.energy_j > 0.0);
/// # Ok::<(), softmap::CoreError>(())
/// ```
#[derive(Debug)]
pub struct WorkloadModel {
    mapping: ApSoftmax,
    deploy: ApDeployment,
    energy: EnergyModel,
}

impl WorkloadModel {
    /// Builds the model for one precision configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the mapping.
    pub fn new(cfg: PrecisionConfig, deploy: ApDeployment) -> Result<Self, CoreError> {
        Ok(Self {
            mapping: ApSoftmax::new(cfg)?
                .with_div_style(deploy.div_style)
                .with_backend(deploy.backend)
                .with_resident(deploy.resident)
                .with_autotune(deploy.autotune)
                .with_device(DeviceConfig::new(
                    deploy.tiles_per_head,
                    deploy.rows_per_tile,
                )),
            deploy,
            energy: EnergyModel::nm16(),
        })
    }

    /// The deployment parameters.
    #[must_use]
    pub fn deployment(&self) -> ApDeployment {
        self.deploy
    }

    /// The underlying per-vector mapping (e.g. to inspect the tuned
    /// plan chosen for a shape when `autotune` is on).
    #[must_use]
    pub fn mapping(&self) -> &ApSoftmax {
        &self.mapping
    }

    /// The energy model in use.
    #[must_use]
    pub fn energy_model(&self) -> EnergyModel {
        self.energy
    }

    /// Per-vector microcode statistics for a softmax of length
    /// `seq_len`, answered by the compiled plan's static cost
    /// ([`ApSoftmax::static_cost`]): the shape's plan is compiled once
    /// from the mapping's deterministic representative input, and every
    /// further query is an execution-free cache lookup. Sequences past
    /// the tile capacity answer with the **sharded** total (every
    /// shard's work plus the cross-tile reduction charges).
    ///
    /// # Errors
    ///
    /// Propagates mapping execution errors.
    pub fn vector_stats(&self, seq_len: usize) -> Result<CycleStats, CoreError> {
        self.mapping.static_cost(seq_len)
    }

    /// The full static device view per vector ([`crate::VectorCost`]):
    /// shards, waves, reduction charges, and the critical path.
    ///
    /// # Errors
    ///
    /// Propagates mapping execution errors.
    pub fn vector_cost(&self, seq_len: usize) -> Result<crate::VectorCost, CoreError> {
        self.mapping.static_vector_cost(seq_len)
    }

    /// Cost of the softmax workload of one full transformer forward
    /// pass: `layers × batch × seq_len` softmax vectors per head, heads
    /// in parallel across their tiles.
    ///
    /// # Errors
    ///
    /// * [`CoreError::BadWorkload`] for zero-sized workloads or vectors
    ///   exceeding the tile capacity.
    /// * Mapping execution errors.
    pub fn cost(
        &self,
        layers: usize,
        heads: usize,
        seq_len: usize,
        batch: usize,
    ) -> Result<ApWorkloadCost, CoreError> {
        self.cost_vectors(layers, heads, seq_len, batch * seq_len)
    }

    /// Cost of the softmax workload of one *decode* step: one query
    /// vector per batch element per head per layer, each attending over
    /// a `seq_len`-deep KV cache (extension experiment; the paper
    /// evaluates prefill).
    ///
    /// # Errors
    ///
    /// As [`WorkloadModel::cost`].
    pub fn cost_decode(
        &self,
        layers: usize,
        heads: usize,
        seq_len: usize,
        batch: usize,
    ) -> Result<ApWorkloadCost, CoreError> {
        self.cost_vectors(layers, heads, seq_len, batch)
    }

    fn cost_vectors(
        &self,
        layers: usize,
        heads: usize,
        seq_len: usize,
        vectors_per_head_layer: usize,
    ) -> Result<ApWorkloadCost, CoreError> {
        if layers == 0 || heads == 0 || seq_len == 0 || vectors_per_head_layer == 0 {
            return Err(CoreError::BadWorkload(
                "layers, heads, seq_len and batch must be non-zero".into(),
            ));
        }
        let vc = self.mapping.static_vector_cost(seq_len)?;
        let (slots, cycles_per_vector) = if vc.shards > 1 {
            // A sharded vector occupies `shards` of the head's tiles at
            // a time; its critical path already includes intra-vector
            // waves and the cross-tile reductions. Remaining tiles run
            // other vectors concurrently.
            let concurrent = (self.deploy.tiles_per_head / vc.shards).max(1);
            (concurrent, vc.latency_cycles)
        } else {
            let rows_needed = seq_len.div_ceil(2);
            let vectors_per_tile = if self.deploy.packing {
                (self.deploy.rows_per_tile / rows_needed).max(1)
            } else {
                1
            };
            (
                self.deploy.tiles_per_head * vectors_per_tile,
                vc.total.cycles(),
            )
        };
        let waves = vectors_per_head_layer.div_ceil(slots) as u64;

        let latency_s =
            (layers as u64 * waves * cycles_per_vector) as f64 / (self.deploy.clock_ghz * 1e9);

        let per_vec_energy = self.energy.energy(&vc.total).total_j;
        let total_vectors = (layers * heads * vectors_per_head_layer) as f64;
        let energy_j = per_vec_energy * total_vectors;

        Ok(ApWorkloadCost {
            latency_s,
            energy_j,
            cycles_per_vector,
            events_per_vector: vc.total.cell_events(),
            waves_per_layer: waves,
            shards_per_vector: vc.shards as u64,
        })
    }

    /// Deployment area in mm² for `heads` attention heads, using the
    /// mapped column budget and the calibrated 16 nm area model.
    ///
    /// # Errors
    ///
    /// Propagates mapping execution errors (the column budget comes from
    /// a compiled layout).
    pub fn area_mm2(&self, heads: usize) -> Result<f64, CoreError> {
        // Column budget from the compiled plan at full tile occupancy
        // (the layout is shape-determined, so the plan's metadata is
        // exactly the executed-layout measurement).
        let probe_len = (self.deploy.rows_per_tile * 2).min(256);
        let plan = self.mapping.plan(probe_len)?;
        let area = AreaModel::nm16();
        Ok(area.deployment_area_mm2(
            heads * self.deploy.tiles_per_head,
            self.deploy.rows_per_tile,
            plan.cols_used(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WorkloadModel {
        WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default()).unwrap()
    }

    #[test]
    fn latency_scales_linearly_with_batch_and_layers() {
        // 480 = 10 full waves at the default 48 tiles/head, so the
        // ceil() in wave scheduling does not distort the ratios.
        let m = model();
        let base = m.cost(2, 8, 480, 1).unwrap();
        let b4 = m.cost(2, 8, 480, 4).unwrap();
        let l4 = m.cost(8, 8, 480, 1).unwrap();
        assert!((b4.latency_s / base.latency_s - 4.0).abs() < 0.01);
        assert!((l4.latency_s / base.latency_s - 4.0).abs() < 0.01);
    }

    #[test]
    fn heads_parallel_in_latency_but_not_energy() {
        let m = model();
        let h8 = m.cost(2, 8, 256, 1).unwrap();
        let h16 = m.cost(2, 16, 256, 1).unwrap();
        assert!((h16.latency_s - h8.latency_s).abs() < 1e-12);
        assert!((h16.energy_j / h8.energy_j - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_tiles_cut_latency() {
        let small = WorkloadModel::new(
            PrecisionConfig::paper_best(),
            ApDeployment {
                tiles_per_head: 1,
                ..ApDeployment::default()
            },
        )
        .unwrap();
        let big = WorkloadModel::new(
            PrecisionConfig::paper_best(),
            ApDeployment {
                tiles_per_head: 8,
                ..ApDeployment::default()
            },
        )
        .unwrap();
        let a = small.cost(2, 8, 256, 1).unwrap();
        let b = big.cost(2, 8, 256, 1).unwrap();
        assert!(
            (a.latency_s / b.latency_s - 8.0).abs() < 0.2,
            "ratio = {}",
            a.latency_s / b.latency_s
        );
        // energy is workload-proportional, not tile-proportional
        assert!((a.energy_j - b.energy_j).abs() / a.energy_j < 1e-9);
    }

    #[test]
    fn packing_helps_short_sequences() {
        let base = ApDeployment {
            tiles_per_head: 8,
            ..ApDeployment::default()
        };
        let packed = WorkloadModel::new(
            PrecisionConfig::paper_best(),
            ApDeployment {
                packing: true,
                ..base
            },
        )
        .unwrap();
        let unpacked = WorkloadModel::new(PrecisionConfig::paper_best(), base).unwrap();
        let a = packed.cost(2, 8, 128, 1).unwrap();
        let b = unpacked.cost(2, 8, 128, 1).unwrap();
        assert!(a.latency_s < b.latency_s / 8.0);
    }

    #[test]
    fn long_sequences_shard_instead_of_failing() {
        // The seed rejected anything past 2 × rows_per_tile; the device
        // model runs it sharded — the very regime (8k–32k tokens) where
        // softmax dominates transformer latency.
        let m = model();
        let c8k = m.cost(1, 1, 8192, 1).unwrap();
        assert_eq!(c8k.shards_per_vector, 2);
        let c16k = m.cost(1, 1, 16384, 1).unwrap();
        assert_eq!(c16k.shards_per_vector, 4);
        // On the re-staged path, work (energy) scales ~linearly with
        // the token count; the critical path includes the cross-tile
        // reductions.
        let restaged = WorkloadModel::new(
            PrecisionConfig::paper_best(),
            ApDeployment {
                resident: false,
                ..ApDeployment::default()
            },
        )
        .unwrap();
        let c4k = m.cost(1, 1, 4096, 1).unwrap();
        assert_eq!(c4k.shards_per_vector, 1);
        let r16k = restaged.cost(1, 1, 16384, 1).unwrap();
        let per_tok_4k = c4k.energy_j / (4096.0 * 4096.0);
        let per_tok_16k = r16k.energy_j / (16384.0 * 16384.0);
        assert!(
            (per_tok_16k / per_tok_4k - 1.0).abs() < 0.25,
            "sharded energy per token drifted: {per_tok_16k} vs {per_tok_4k}"
        );
        // The default deployment keeps shards resident: at four shards
        // in one wave, lockstep execution cuts sharded energy well
        // below the re-staged characterization.
        assert!(
            c16k.energy_j < 0.5 * r16k.energy_j,
            "resident energy {} should undercut re-staged {}",
            c16k.energy_j,
            r16k.energy_j
        );
        assert!(c16k.cycles_per_vector > c8k.cycles_per_vector);
        // Degenerate workloads still error.
        assert!(matches!(
            m.cost(0, 1, 128, 1),
            Err(CoreError::BadWorkload(_))
        ));
    }

    #[test]
    fn sharded_vector_cost_exposes_device_view() {
        let m = model();
        let vc = m.vector_cost(16384).unwrap();
        assert_eq!(vc.shards, 4);
        assert_eq!(vc.waves, 1, "48 tiles hold 4 shards in one wave");
        assert!(vc.reduction.cycles() > 0);
        assert!(vc.latency_cycles < vc.total.cycles());
        assert_eq!(m.vector_stats(16384).unwrap(), vc.total);
    }

    #[test]
    fn area_reference_matches_paper_shape() {
        let m = WorkloadModel::new(
            PrecisionConfig::paper_best(),
            ApDeployment::area_reference(),
        )
        .unwrap();
        let a7 = m.area_mm2(32).unwrap();
        let a13 = m.area_mm2(40).unwrap();
        let a70 = m.area_mm2(64).unwrap();
        assert!((a13 / a7 - 1.25).abs() < 1e-6);
        assert!((a70 / a7 - 2.0).abs() < 1e-6);
        // magnitude in the paper's band (0.64 mm² for 32 heads)
        assert!(a7 > 0.2 && a7 < 2.0, "a7 = {a7}");
    }

    #[test]
    fn decode_costs_scale_with_batch_not_length_squared() {
        let m = model();
        let a = m.cost_decode(32, 32, 1024, 1).unwrap();
        let b = m.cost_decode(32, 32, 2048, 1).unwrap();
        // per-vector cycles barely grow with cache depth (log reduction)
        assert!(b.latency_s < a.latency_s * 1.2);
        // but energy grows with the cache depth (more rows active)
        assert!(b.energy_j > a.energy_j * 1.5);
        // decode is far cheaper than prefill at the same point
        let prefill = m.cost(32, 32, 1024, 1).unwrap();
        assert!(a.latency_s < prefill.latency_s / 10.0);
    }

    #[test]
    fn vector_stats_memoized() {
        let m = model();
        let a = m.vector_stats(512).unwrap();
        let b = m.vector_stats(512).unwrap();
        assert_eq!(a, b);
    }
}
