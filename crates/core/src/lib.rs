//! SoftmAP: software–hardware co-design for integer-only softmax on
//! associative processors — the paper's primary contribution.
//!
//! This crate ties the substrates together:
//!
//! * [`ApSoftmax`] — the sixteen-step Fig. 5 dataflow executed on the
//!   bit-level AP simulator, bit-exact against the scalar
//!   `softmap_softmax::IntSoftmax` specification,
//! * [`ApDeployment`] / [`WorkloadModel`] — the deployment model (tiles
//!   per head, scheduling, area) and per-workload latency/energy,
//! * [`characterize`] — the paper's evaluation: AP vs. A100/RTX3090
//!   energy, latency and EDP across Llama models, sequence lengths and
//!   batch sizes (Figs. 6–8, Tables V–VI).
//!
//! # Examples
//!
//! Run the integer softmax on the AP and check it against the scalar
//! specification:
//!
//! ```
//! use softmap::ApSoftmax;
//! use softmap_softmax::{IntSoftmax, PrecisionConfig};
//!
//! let cfg = PrecisionConfig::paper_best();
//! let scores = [0.0_f64, -0.4, -1.2, -3.0];
//! let scalar = IntSoftmax::new(cfg)?.run_floats(&scores)?;
//! let on_ap = ApSoftmax::new(cfg)?.execute_floats(&scores)?;
//! assert_eq!(on_ap.codes, scalar.codes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod llm_bridge;
pub mod mapping;
pub mod plan;
pub mod serve;

mod deploy;

pub use deploy::{ApDeployment, ApWorkloadCost, WorkloadModel};
pub use llm_bridge::ApMappedSoftmax;
pub use mapping::{
    ApSoftmax, ApSoftmaxRun, CacheStats, Layout, PlanMode, StepStats, TileState, VectorCost,
    AUTOTUNE_ENV, BLOCKED_ENV, RESIDENT_ENV,
};
pub use plan::{
    AutotuneStats, CandidateScore, CompiledPlan, MappingChoice, PlanCache, PlanStats, ShardedPlan,
    TunedPlan,
};
pub use serve::{
    ServeConfig, ServeStats, SoftmaxServer, Ticket, SERVE_QUEUE_ENV, SERVE_WORKERS_ENV,
};

/// Errors from the co-design layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The input vector is empty.
    EmptyInput,
    /// A workload parameter is invalid.
    BadWorkload(String),
    /// A non-blocking submission found the serving queue at its bound
    /// (see [`SoftmaxServer::try_submit`]); the caller should back off
    /// and retry, or use the blocking [`SoftmaxServer::submit`].
    QueueFull,
    /// An error from the AP simulator.
    Ap(softmap_ap::ApError),
    /// An error from the scalar softmax specification.
    Softmax(softmap_softmax::SoftmaxError),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyInput => write!(f, "input vector is empty"),
            Self::BadWorkload(msg) => write!(f, "bad workload: {msg}"),
            Self::QueueFull => write!(f, "serving queue is full (backpressure)"),
            Self::Ap(e) => write!(f, "AP error: {e}"),
            Self::Softmax(e) => write!(f, "softmax error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ap(e) => Some(e),
            Self::Softmax(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<softmap_ap::ApError> for CoreError {
    fn from(e: softmap_ap::ApError) -> Self {
        Self::Ap(e)
    }
}

#[doc(hidden)]
impl From<softmap_softmax::SoftmaxError> for CoreError {
    fn from(e: softmap_softmax::SoftmaxError) -> Self {
        Self::Softmax(e)
    }
}
