//! The LLM-harness adapter: run every attention row's softmax on the
//! simulated AP, through the compiled-plan replay path.
//!
//! `softmap_llm`'s perplexity experiments (Tables III/IV) swap softmax
//! implementations behind [`SoftmaxFn`]; [`ApMappedSoftmax`] is the
//! variant that executes the mapped Fig. 5 dataflow instead of the
//! scalar specification. It is bit-exact with
//! [`softmap_llm::softmax_impls::IntApproxSoftmax`] at the same
//! precision (the mapping's defining property), so the perplexity
//! numbers are identical — what it adds is the deployment-faithful
//! execution path: every worker of
//! [`softmap_llm::softmax_impls::apply_batch_parallel`] holds one
//! persistent [`TileState`] in its [`SoftmaxScratch`] extension slot
//! and replays the shape's cached plan for every row it claims.

use std::sync::Arc;

use softmap_llm::softmax_impls::{SoftmaxFn, SoftmaxScratch};
use softmap_softmax::PrecisionConfig;

use crate::mapping::{ApSoftmax, ApSoftmaxRun, TileState};
use crate::serve::SoftmaxServer;
use crate::CoreError;

/// Per-worker state parked in [`SoftmaxScratch::ext`]: the persistent
/// tile (with its cached-plan slot), the reused run buffers, and the
/// `f32 → f64` staging vector.
#[derive(Default)]
struct ApWorkerState {
    tile: TileState,
    run: ApSoftmaxRun,
    scores64: Vec<f64>,
}

/// A [`SoftmaxFn`] that executes rows on the simulated AP via
/// [`ApSoftmax`], replaying cached plans per worker.
///
/// Rows longer than the device's tile capacity (the default is the
/// paper's 48 × 2048-row grid, i.e. 4096 scores per tile) execute
/// **sharded** across tiles, so long-context attention (8k–32k tokens)
/// runs through the same adapter, still bit-exact versus the scalar
/// specification.
///
/// # Examples
///
/// ```
/// use softmap::ApMappedSoftmax;
/// use softmap_llm::softmax_impls::{apply_batch_parallel, SoftmaxFn};
/// use softmap_softmax::PrecisionConfig;
///
/// let sm = ApMappedSoftmax::new(PrecisionConfig::paper_best())?;
/// let rows: Vec<Vec<f32>> = (0..4)
///     .map(|r| (0..8).map(|i| -((r * 3 + i) as f32) * 0.4).collect())
///     .collect();
/// let probs = apply_batch_parallel(&sm, &rows).map_err(softmap::CoreError::BadWorkload)?;
/// assert_eq!(probs.len(), 4);
/// // One shape across the batch: one compile, replays after.
/// assert_eq!(sm.mapping().plan_stats().compiles, 1);
/// # Ok::<(), softmap::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApMappedSoftmax {
    mapping: ApSoftmax,
    /// When set, rows go through the serving layer's queue instead of
    /// executing inline — many harness workers then share the server's
    /// continuous wave batching.
    serve: Option<Arc<SoftmaxServer>>,
}

impl ApMappedSoftmax {
    /// Builds the adapter at one precision point with the mapping's
    /// defaults (fast backend plan-cached execution is selected by
    /// [`ApSoftmax`] itself).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, CoreError> {
        Ok(Self {
            mapping: ApSoftmax::new(cfg)?.with_backend(softmap_ap::ExecBackend::FastWord),
            serve: None,
        })
    }

    /// Wraps an already-configured mapping (layout, division style,
    /// backend, plan mode).
    #[must_use]
    pub fn with_mapping(mapping: ApSoftmax) -> Self {
        Self {
            mapping,
            serve: None,
        }
    }

    /// Routes every row through `server`'s submission queue instead of
    /// executing inline: harness workers become serving clients, and
    /// concurrent rows coalesce into device waves. The server should
    /// wrap the same precision/mapping configuration for the
    /// bit-exactness contract to refer to this adapter's mapping.
    #[must_use]
    pub fn with_server(mut self, server: Arc<SoftmaxServer>) -> Self {
        self.serve = Some(server);
        self
    }

    /// The serving layer this adapter routes through, if any.
    #[must_use]
    pub fn server(&self) -> Option<&Arc<SoftmaxServer>> {
        self.serve.as_ref()
    }

    /// The underlying mapping (plan-cache statistics live here).
    #[must_use]
    pub fn mapping(&self) -> &ApSoftmax {
        &self.mapping
    }
}

impl SoftmaxFn for ApMappedSoftmax {
    fn apply(&self, scores: &[f32]) -> Result<Vec<f32>, String> {
        self.apply_scratch(scores, &mut SoftmaxScratch::default())
    }

    fn apply_scratch(
        &self,
        scores: &[f32],
        scratch: &mut SoftmaxScratch,
    ) -> Result<Vec<f32>, String> {
        // Park the worker state in the scratch's extension slot; a
        // foreign occupant (another implementation's state) is
        // replaced.
        if !scratch
            .ext
            .as_ref()
            .is_some_and(|ext| ext.is::<ApWorkerState>())
        {
            scratch.ext = Some(Box::<ApWorkerState>::default());
        }
        let state = scratch
            .ext
            .as_mut()
            .and_then(|ext| ext.downcast_mut::<ApWorkerState>())
            .expect("slot was just ensured");
        let ApWorkerState {
            tile,
            run,
            scores64,
        } = state;
        scores64.clear();
        scores64.extend(scores.iter().map(|&s| f64::from(s)));
        if let Some(server) = &self.serve {
            let ticket = server.submit(scores64).map_err(|e| e.to_string())?;
            ticket.wait_into(run).map_err(|e| e.to_string())?;
        } else {
            self.mapping
                .execute_floats_into(tile, scores64, run)
                .map_err(|e| e.to_string())?;
        }
        let scale = f64::from(run.frac_bits).exp2().recip();
        Ok(run
            .codes
            .iter()
            .map(|&c| (c as f64 * scale) as f32)
            .collect())
    }

    fn name(&self) -> String {
        format!("SoftmAP AP replay {}", self.mapping.spec().config().label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_llm::softmax_impls::{apply_batch_parallel, IntApproxSoftmax};

    #[test]
    fn matches_scalar_int_softmax_exactly() {
        let cfg = PrecisionConfig::paper_best();
        let ap = ApMappedSoftmax::new(cfg).unwrap();
        let scalar = IntApproxSoftmax::new(cfg).unwrap();
        for len in [3usize, 8, 17] {
            let row: Vec<f32> = (0..len).map(|i| -(i as f32) * 0.63 % 6.9).collect();
            assert_eq!(
                ap.apply(&row).unwrap(),
                scalar.apply(&row).unwrap(),
                "len {len}"
            );
        }
    }

    #[test]
    fn batch_workers_share_the_plan_cache() {
        let ap = ApMappedSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let rows: Vec<Vec<f32>> = (0..12)
            .map(|r| {
                (0..16)
                    .map(|i| -((r * 7 + i) as f32) * 0.21 % 6.3)
                    .collect()
            })
            .collect();
        let batched = apply_batch_parallel(&ap, &rows).unwrap();
        for (row, got) in rows.iter().zip(&batched) {
            assert_eq!(&ap.apply(row).unwrap(), got);
        }
        // One shape across the whole batch: exactly one compile, every
        // other row replays (possibly across several workers).
        assert_eq!(ap.mapping().plan_stats().compiles, 1);
        assert!(ap.mapping().plan_stats().hits >= 12);
    }

    #[test]
    fn worker_state_survives_and_foreign_ext_is_replaced() {
        let ap = ApMappedSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let mut scratch = SoftmaxScratch {
            ext: Some(Box::new(42u32)),
            ..SoftmaxScratch::default()
        };
        let row: Vec<f32> = (0..8).map(|i| -(i as f32) * 0.5).collect();
        let a = ap.apply_scratch(&row, &mut scratch).unwrap();
        let b = ap.apply_scratch(&row, &mut scratch).unwrap();
        assert_eq!(a, b);
        assert!(scratch
            .ext
            .as_ref()
            .is_some_and(|e| e.is::<super::ApWorkerState>()));
        assert!(ap.name().contains("AP replay"));
    }

    #[test]
    fn empty_rows_are_errors() {
        let ap = ApMappedSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(ap.apply(&[]).is_err());
    }

    #[test]
    fn long_context_rows_shard_and_match_scalar() {
        // A 6000-score attention row exceeds one 2048-row tile (4096
        // packed scores) on the default device: the adapter shards it
        // and stays bit-exact with the scalar implementation.
        let cfg = PrecisionConfig::paper_best();
        let ap = ApMappedSoftmax::new(cfg).unwrap();
        let scalar = IntApproxSoftmax::new(cfg).unwrap();
        let row: Vec<f32> = (0..6000).map(|i| -((i % 83) as f32) * 0.08).collect();
        assert_eq!(ap.apply(&row).unwrap(), scalar.apply(&row).unwrap());
        // The default mapping autotunes, so the winning partition may
        // use more shards than the paper's packed two-shard split.
        assert!(ap.mapping().sharded_plan(6000).unwrap().shards() >= 2);
    }

    #[test]
    fn long_context_batch_replays_sharded_plans_per_worker() {
        // Tiny device so the sharded path is exercised cheaply: every
        // batch row shards, workers share the compiled phase programs.
        let cfg = PrecisionConfig::paper_best();
        let mapping = crate::ApSoftmax::new(cfg)
            .unwrap()
            .with_backend(softmap_ap::ExecBackend::FastWord)
            .with_device(softmap_ap::DeviceConfig::new(2, 8));
        let ap = ApMappedSoftmax::with_mapping(mapping);
        let scalar = IntApproxSoftmax::new(cfg).unwrap();
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|r| {
                (0..48)
                    .map(|i| -(((r * 5 + i) % 67) as f32) * 0.1)
                    .collect()
            })
            .collect();
        let batched = apply_batch_parallel(&ap, &rows).unwrap();
        for (row, got) in rows.iter().zip(&batched) {
            assert_eq!(&scalar.apply(row).unwrap(), got);
        }
        // One row shape: at most one sharded plan + six phase programs.
        assert!(ap.mapping().plan_stats().compiles <= 7);
        assert!(ap.mapping().plan_stats().hits >= 5);
    }
}
