//! The Fig. 4/5 dataflow: Algorithm 1 mapped onto the AP.
//!
//! One attention head's softmax vector is packed two words per row (the
//! paper's layout: a vector of length `L` occupies `L/2` rows), and the
//! sixteen dataflow steps of Fig. 5 execute as LUT microcode on the
//! simulated AP. The result is **bit-exact** against the scalar
//! specification in `softmap-softmax` (verified by integration tests and
//! by [`ApSoftmaxRun::codes`] comparisons in this module's tests).

use softmap_ap::batch::{self, BatchStats};
use softmap_ap::{ApConfig, ApCore, ApTile, CycleStats, DivStyle, ExecBackend, Field, Overflow};
use softmap_softmax::{IntSoftmax, PrecisionConfig, SumMode};

use crate::CoreError;

/// How vector elements are packed into AP rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Two words per row — the paper's layout (`rows = L/2`); requires
    /// an even vector length. The dataflow executes once per half and
    /// the reduction starts with the pairwise add of the two halves
    /// (the `8M` term of Table II's reduction row).
    #[default]
    TwoWordsPerRow,
    /// One word per row (`rows = L`); used for odd lengths and as an
    /// ablation.
    OneWordPerRow,
}

/// Cycle statistics for one dataflow step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Step name, matching Fig. 5 (e.g. `"4: multiply+shift (barrett)"`).
    pub name: &'static str,
    /// Cycles and cell events spent in the step.
    pub stats: CycleStats,
}

/// The outcome of executing the mapped dataflow on the AP.
///
/// All buffers are plain `Vec`s so a run can be reused as an output
/// slot by [`ApSoftmax::execute_floats_into`]: repeated executions at
/// the same vector length overwrite in place without reallocating.
#[derive(Debug, Clone, Default)]
pub struct ApSoftmaxRun {
    /// Fixed-point probability codes, in input order (bit-exact vs. the
    /// scalar `IntSoftmax`).
    pub codes: Vec<u64>,
    /// Fraction bits of the codes.
    pub frac_bits: u32,
    /// The `v_approx` intermediates, in input order.
    pub vapprox: Vec<u64>,
    /// The (possibly truncated) sum used as divisor.
    pub sum: u64,
    /// Total cycle statistics.
    pub total: CycleStats,
    /// Per-step breakdown in dataflow order.
    pub steps: Vec<StepStats>,
    /// Rows occupied in the AP tile.
    pub rows: usize,
    /// Columns used by the field layout (excluding scratch headroom).
    pub cols_used: usize,
}

impl ApSoftmaxRun {
    /// Dequantized probabilities (`codes · 2^-frac_bits`).
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let scale = f64::from(self.frac_bits).exp2().recip();
        self.codes.iter().map(|&c| c as f64 * scale).collect()
    }
}

/// Executes the integer-only softmax dataflow on a simulated AP tile.
///
/// # Examples
///
/// ```
/// use softmap::ApSoftmax;
/// use softmap_softmax::{IntSoftmax, PrecisionConfig};
///
/// let cfg = PrecisionConfig::paper_best();
/// let scores = [0.0_f64, -1.0, -2.5, -0.3];
/// let scalar = IntSoftmax::new(cfg)?.run_floats(&scores)?;
/// let run = ApSoftmax::new(cfg)?.execute_floats(&scores)?;
/// assert_eq!(run.codes, scalar.codes); // bit-exact
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApSoftmax {
    sm: IntSoftmax,
    div_style: DivStyle,
    layout: Layout,
    backend: ExecBackend,
}

/// Reusable per-worker execution state for the pooled path: one
/// persistent simulated tile ([`ApTile`]) plus the host-side staging
/// buffers (quantized codes, packed half-vectors, reduction sums).
///
/// SoftmAP's deployment model streams many vectors through fixed
/// hardware tiles; this is the host analogue. After a warm-up vector
/// establishes buffer capacities, every further vector of the same
/// shape executes with **zero heap allocations** (asserted by the
/// counting-allocator regression test in `crates/core/tests`).
///
/// # Examples
///
/// ```
/// use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
/// use softmap_softmax::PrecisionConfig;
///
/// let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
/// let mut state = TileState::new();
/// let mut run = ApSoftmaxRun::default();
/// for scores in [[0.0, -1.0, -2.0, -3.0], [0.0, -0.5, -1.5, -2.5]] {
///     mapping.execute_floats_into(&mut state, &scores, &mut run)?;
///     assert_eq!(run.codes.len(), 4);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TileState {
    tile: ApTile,
    codes: Vec<i64>,
    half0: Vec<u64>,
    half1: Vec<u64>,
    sums: Vec<u64>,
}

impl TileState {
    /// Creates an empty state (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying tile slot (observer access).
    #[must_use]
    pub fn tile(&self) -> &ApTile {
        &self.tile
    }
}

thread_local! {
    /// The per-thread tile pool backing the non-`_into` entry points:
    /// every `execute_floats`/`execute_codes` call on a thread streams
    /// through one persistent tile, exactly like vectors stream through
    /// fixed hardware in the deployed accelerator. The arena is sized
    /// to the largest geometry the thread has executed and lives for
    /// the thread's lifetime.
    static THREAD_TILE: std::cell::RefCell<TileState> =
        std::cell::RefCell::new(TileState::new());
}

struct HalfFields {
    /// Working value: |code|, then `neg_vstable`, then `r`.
    x: Field,
    /// Barrett quotient.
    q: Field,
    /// Wide scratch: products and polynomial.
    work: Field,
    /// Polynomial input `t = v_b - r`.
    t: Field,
    /// `v_approx`.
    vapprox: Field,
    /// Final result (the paper's `R` column, `2M + 12` bits).
    res: Field,
}

impl ApSoftmax {
    /// Builds the mapping for a precision configuration with the default
    /// layout (two words per row) and restoring division.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the scalar pipeline.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, CoreError> {
        Ok(Self {
            sm: IntSoftmax::new(cfg)?,
            div_style: DivStyle::Restoring,
            layout: Layout::TwoWordsPerRow,
            backend: ExecBackend::default(),
        })
    }

    /// Selects the division microcode style.
    #[must_use]
    pub fn with_div_style(mut self, style: DivStyle) -> Self {
        self.div_style = style;
        self
    }

    /// Selects the AP execution backend. `FastWord` produces bit- and
    /// cycle-identical results at a fraction of the simulation time
    /// (the backends share one cost model; see `softmap_ap::backend`).
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The AP execution backend in use.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the row packing layout.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// The underlying scalar specification.
    #[must_use]
    pub fn spec(&self) -> &IntSoftmax {
        &self.sm
    }

    /// Quantizes scores and executes the dataflow.
    ///
    /// Executes on this thread's pooled tile (see [`TileState`]): the
    /// CAM arena and scratch state persist across calls, so repeated
    /// vectors reallocate nothing but the returned run's buffers. Use
    /// [`ApSoftmax::execute_floats_into`] to also reuse those.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats(&self, scores: &[f64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(&mut state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_floats`]: executes on `state`'s
    /// persistent tile and writes the outcome into `run`, reusing every
    /// buffer. In steady state (same vector shape as the previous call)
    /// this performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats_into(
        &self,
        state: &mut TileState,
        scores: &[f64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        if scores.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let mut codes = std::mem::take(&mut state.codes);
        self.sm.quantize_into(scores, &mut codes);
        let result = self.execute_codes_into(state, &codes, run);
        state.codes = codes;
        result
    }

    /// Executes a whole batch of softmax vectors across host threads
    /// with **one persistent simulated tile per worker** (not one tile
    /// allocation per vector) — the multi-tile analogue of
    /// [`ApSoftmax::execute_floats`], matching the deployment model
    /// where vectors stream through fixed hardware. Results are
    /// returned in input order and are identical to running each
    /// vector alone.
    ///
    /// # Errors
    ///
    /// The first (by input order) failing vector's error; see
    /// [`ApSoftmax::execute_codes`]. On failure the remaining vectors
    /// are cancelled.
    pub fn execute_batch_floats(&self, batch: &[Vec<f64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, scores| {
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Batched [`ApSoftmax::execute_codes`] with per-worker tile reuse;
    /// see [`ApSoftmax::execute_batch_floats`].
    ///
    /// # Errors
    ///
    /// The first failing vector's error.
    pub fn execute_batch_codes(&self, batch: &[Vec<i64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, codes| {
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Aggregate tile statistics for a batch of runs: total work across
    /// tiles plus the concurrent-hardware makespan.
    #[must_use]
    pub fn batch_stats(runs: &[ApSoftmaxRun]) -> BatchStats {
        let per_tile: Vec<CycleStats> = runs.iter().map(|r| r.total).collect();
        BatchStats::aggregate(&per_tile)
    }

    /// Executes the sixteen-step dataflow of Fig. 5 on quantized codes.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyInput`] for an empty slice,
    /// * [`CoreError::Softmax`] for out-of-range codes,
    /// * [`CoreError::Ap`] if the tile geometry cannot hold the layout.
    pub fn execute_codes(&self, codes: &[i64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(&mut state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_codes`]; see
    /// [`ApSoftmax::execute_floats_into`].
    ///
    /// # Errors
    ///
    /// As [`ApSoftmax::execute_codes`].
    pub fn execute_codes_into(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        if codes.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        // Validate codes through the scalar spec's range check (cheap:
        // no full trace).
        self.sm.validate_codes(codes)?;
        let packed = self.layout == Layout::TwoWordsPerRow
            && codes.len().is_multiple_of(2)
            && codes.len() >= 2;
        let rows = if packed { codes.len() / 2 } else { codes.len() };
        // Pack the |code| magnitudes of each half-vector (the sign is
        // implicit in the paper's non-positive input convention).
        state.half0.clear();
        state
            .half0
            .extend(codes[..rows].iter().map(|&c| c.unsigned_abs()));
        state.half1.clear();
        if packed {
            state
                .half1
                .extend(codes[rows..].iter().map(|&c| c.unsigned_abs()));
        }
        let TileState {
            tile,
            half0,
            half1,
            sums,
            ..
        } = state;
        let halves: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
        let halves = if packed { &halves[..] } else { &halves[..1] };
        self.execute_layout(tile, sums, halves, rows, codes.len(), run)
    }

    fn cfg(&self) -> &PrecisionConfig {
        self.sm.config()
    }

    /// Column budget for one half-vector's fields.
    fn half_width(&self) -> usize {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work = (3 * m + 2).max(w.poly as usize + 1);
        m + w.q as usize + work + m + w.vapprox as usize + w.result as usize
    }

    fn alloc_half(&self, ap: &mut ApCore) -> Result<HalfFields, CoreError> {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work_w = (3 * m + 2).max(w.poly as usize + 1);
        Ok(HalfFields {
            x: ap.alloc_field(m)?,
            q: ap.alloc_field(w.q as usize)?,
            work: ap.alloc_field(work_w)?,
            t: ap.alloc_field(m)?,
            vapprox: ap.alloc_field(w.vapprox as usize)?,
            res: ap.alloc_field(w.result as usize)?,
        })
    }

    fn overflow_mode(&self) -> Overflow {
        match self.cfg().sum_mode {
            SumMode::Saturate => Overflow::Saturate,
            SumMode::Wrap => Overflow::Wrap,
            SumMode::Exact => Overflow::Error,
        }
    }

    /// The shared engine: `halves` hold the |code| magnitudes of each
    /// half-vector (one or two), each of length `rows`. Executes on the
    /// pooled `tile` and writes everything into `run`'s reused buffers.
    #[allow(clippy::too_many_lines)]
    fn execute_layout(
        &self,
        tile: &mut ApTile,
        sums: &mut Vec<u64>,
        halves: &[&[u64]],
        rows: usize,
        total_len: usize,
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        let cfg = *self.cfg();
        let consts = *self.sm.constants();
        let w = *self.sm.widths();
        let m = cfg.m as usize;
        let sum_bits = consts.effective_sum_bits(&cfg) as usize;

        // Tile geometry: per-half fields + shared operand/sum/divisor
        // fields + reserved carry/flag + scratch headroom for division.
        let shared = (2 * m + 1) + sum_bits + sum_bits + m;
        let scratch = 2 * (sum_bits + 2) + 2 * (w.result as usize + w.vapprox as usize + 2);
        let cols = 2 + halves.len() * self.half_width() + shared + scratch;
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;

        let mut field_slots: [Option<HalfFields>; 2] = [None, None];
        for slot in field_slots.iter_mut().take(halves.len()) {
            *slot = Some(self.alloc_half(ap)?);
        }
        let fields = &field_slots[..halves.len()];
        // Shared operand field (holds µ, vln2, vb, vc in turn), the
        // per-row pair-sum field, the broadcast divisor, and the min.
        let op = ap.alloc_field(2 * m + 1)?;
        let sumw = ap.alloc_field(sum_bits)?;
        let den = ap.alloc_field(sum_bits)?;
        let minf = ap.alloc_field(m)?;
        let cols_used = den.end();

        run.steps.clear();
        let mut mark = ap.stats();
        let step =
            |ap: &ApCore, name: &'static str, steps: &mut Vec<StepStats>, mark: &mut CycleStats| {
                let now = ap.stats();
                steps.push(StepStats {
                    name,
                    stats: now.since(mark),
                });
                *mark = now;
            };

        // Step 1: write v (as magnitudes |code|; the sign is implicit in
        // the paper's non-positive input convention).
        for (f, data) in fields.iter().flatten().zip(halves) {
            ap.load(f.x, data)?;
        }
        step(ap, "1: write v", &mut run.steps, &mut mark);

        // Step 1b/2: find min |code| (= max v) and subtract it:
        // x := neg_vstable = |code| - min.
        let mut min = u64::MAX;
        for f in fields.iter().flatten() {
            min = min.min(ap.min_search_value(f.x));
        }
        ap.broadcast(minf, min)?;
        for f in fields.iter().flatten() {
            let clean = ap.sub_into_ref(f.x, minf)?.is_none_set();
            debug_assert!(clean, "min subtraction must not underflow");
            let _ = clean;
        }
        step(ap, "2: subtract max", &mut run.steps, &mut mark);

        // Steps 3-4: write µ, Barrett multiply + shift -> q̂.
        ap.broadcast(op, consts.mu)?;
        step(ap, "3: write mu", &mut run.steps, &mut mark);
        for f in fields.iter().flatten() {
            ap.mul(f.x, op, f.work)?;
            ap.shr_const(f.work, 2 * m)?;
            ap.copy(f.work.sub(0, w.q as usize), f.q)?;
        }
        step(ap, "4: multiply+shift (barrett)", &mut run.steps, &mut mark);

        // Steps 5-6: write vln2, multiply q̂ · vln2.
        ap.broadcast(op, consts.vln2)?;
        step(ap, "5: write vln2", &mut run.steps, &mut mark);
        for f in fields.iter().flatten() {
            ap.mul(f.q, op.sub(0, w.vln2 as usize), f.work)?;
        }
        step(ap, "6: multiply q*vln2", &mut run.steps, &mut mark);

        // Step 7: subtract -> r = neg_vstable - q̂·vln2 (fits M bits).
        for f in fields.iter().flatten() {
            let clean = ap.sub_into_ref(f.x, f.work.sub(0, m))?.is_none_set();
            debug_assert!(clean, "vcorr subtraction must not underflow");
            let _ = clean;
        }
        step(ap, "7: subtract (vcorr)", &mut run.steps, &mut mark);

        // Steps 8-9: write vb, add: t = vb - r (saturating at zero).
        for f in fields.iter().flatten() {
            ap.broadcast(f.t, consts.vb)?;
            ap.saturating_sub_into(f.t, f.x)?;
        }
        step(ap, "8-9: write vb, add vcorr", &mut run.steps, &mut mark);

        // Steps 10-11: copy + multiply -> t².
        for f in fields.iter().flatten() {
            ap.square(f.t, f.work)?;
        }
        step(ap, "10-11: copy, square", &mut run.steps, &mut mark);

        // Steps 12-13: write vc, add, then variable shift by q̂.
        ap.broadcast(op, consts.vc)?;
        step(ap, "12: write vc", &mut run.steps, &mut mark);
        for f in fields.iter().flatten() {
            ap.add_into(f.work.sub(0, w.poly as usize), op.sub(0, w.vc as usize))?;
            ap.shr_variable(f.work.sub(0, w.poly as usize), f.q)?;
            ap.copy(f.work.sub(0, w.vapprox as usize), f.vapprox)?;
        }
        step(ap, "13: add+shift (vapprox)", &mut run.steps, &mut mark);

        // Step 14: reduction. Pair-add the halves, then tree-reduce.
        // v_approx values provably fit the effective sum width (they are
        // bounded by vb²+vc < 2^used_bits ≤ 2^sum_bits), so when the
        // allocated v_approx field is wider than the sum register only
        // the low bits carry information.
        let vap_low = (w.vapprox as usize).min(sum_bits);
        let vap0 = fields[0].as_ref().expect("half 0 allocated").vapprox;
        ap.copy(vap0.sub(0, vap_low), sumw)?;
        if let Some(f1) = fields.get(1).and_then(Option::as_ref) {
            ap.add_into(sumw, f1.vapprox.sub(0, vap_low))?;
        }
        ap.reduce_sum_2d_mode_into(sumw, den, rows, self.overflow_mode(), sums)?;
        let sum = sums[0];
        step(ap, "14: reduction", &mut run.steps, &mut mark);

        // Step 15: copy Σ to all rows (broadcast divisor). A wrapped sum
        // of zero is clamped to 1, mirroring the scalar divisor clamp.
        ap.broadcast(den, sum.max(1))?;
        step(ap, "15: copy sum", &mut run.steps, &mut mark);

        // Step 16: divide.
        let f_bits = w.frac_bits() as usize;
        for f in fields.iter().flatten() {
            ap.divide(f.vapprox, den, f.res, f_bits, self.div_style)?;
        }
        step(ap, "16: divide", &mut run.steps, &mut mark);

        // Gather outputs in input order (halves are concatenated),
        // appending into the run's reused buffers.
        run.codes.clear();
        run.vapprox.clear();
        for f in fields.iter().flatten() {
            ap.read_append(f.res, &mut run.codes);
        }
        for f in fields.iter().flatten() {
            ap.read_append(f.vapprox, &mut run.vapprox);
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.frac_bits = w.frac_bits();
        run.sum = sum;
        run.total = ap.stats();
        run.rows = rows;
        run.cols_used = cols_used;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_softmax::IntSoftmax;

    fn assert_bit_exact(cfg: PrecisionConfig, scores: &[f64], layout: Layout) {
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_layout(layout)
            .execute_floats(scores)
            .unwrap();
        assert_eq!(run.vapprox, scalar.vapprox, "vapprox mismatch");
        assert_eq!(run.sum, scalar.sum, "sum mismatch");
        assert_eq!(run.codes, scalar.codes, "codes mismatch");
    }

    #[test]
    fn packed_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2, -6.9];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::TwoWordsPerRow,
        );
    }

    #[test]
    fn unpacked_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::OneWordPerRow,
        );
    }

    #[test]
    fn all_paper_precisions_match_scalar() {
        let scores: Vec<f64> = (0..16).map(|i| -(f64::from(i) * 0.47) % 6.8).collect();
        for m in [4, 6, 8] {
            for delta in [0, 1, 2] {
                for n in [8, 16] {
                    let cfg = PrecisionConfig::new(m, delta, n);
                    assert_bit_exact(cfg, &scores, Layout::TwoWordsPerRow);
                }
            }
        }
    }

    #[test]
    fn reciprocal_division_close_to_scalar() {
        let cfg = PrecisionConfig::paper_best();
        let scores = [0.0, -0.5, -1.5, -2.5];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_div_style(DivStyle::ControllerReciprocal)
            .execute_floats(&scores)
            .unwrap();
        for (got, want) in run.codes.iter().zip(&scalar.codes) {
            assert!(got <= want && want - got <= 1, "got {got}, want {want}");
        }
    }

    #[test]
    fn step_names_follow_fig5() {
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let names: Vec<_> = run.steps.iter().map(|s| s.name).collect();
        assert_eq!(names.first().copied(), Some("1: write v"));
        assert_eq!(names.last().copied(), Some("16: divide"));
        assert_eq!(run.steps.len(), 14);
        // total equals the sum of the steps
        let total: u64 = run.steps.iter().map(|s| s.stats.cycles()).sum();
        assert_eq!(total, run.total.cycles());
    }

    #[test]
    fn division_dominates_runtime() {
        // The restoring divider is the most expensive step — the
        // motivation for the ControllerReciprocal ablation.
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let divide = run
            .steps
            .iter()
            .find(|s| s.name == "16: divide")
            .unwrap()
            .stats
            .cycles();
        assert!(divide * 2 > run.total.cycles());
    }

    #[test]
    fn saturating_sum_matches_scalar_on_long_flat_input() {
        let cfg = PrecisionConfig::new(6, 0, 8);
        let scores = vec![0.0; 1024];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        assert!(scalar.sum_overflowed);
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(run.sum, scalar.sum);
        assert_eq!(run.codes, scalar.codes);
    }

    #[test]
    fn empty_input_rejected() {
        let apsm = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(matches!(
            apsm.execute_floats(&[]),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn fast_backend_is_bit_and_cycle_identical_end_to_end() {
        let scores: Vec<f64> = (0..96).map(|i| -(f64::from(i) * 0.37) % 6.9).collect();
        for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
            let micro = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .execute_floats(&scores)
                .unwrap();
            let fast = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .with_backend(softmap_ap::ExecBackend::FastWord)
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(micro.codes, fast.codes);
            assert_eq!(micro.vapprox, fast.vapprox);
            assert_eq!(micro.sum, fast.sum);
            assert_eq!(micro.total, fast.total, "cycle stats must be identical");
            for (m, f) in micro.steps.iter().zip(&fast.steps) {
                assert_eq!(m.stats, f.stats, "step {} diverges", m.name);
            }
        }
    }

    #[test]
    fn batch_matches_individual_runs() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(softmap_ap::ExecBackend::FastWord);
        let batch: Vec<Vec<f64>> = (0..9)
            .map(|v| {
                (0..32)
                    .map(|i| -((v * 7 + i) as f64 * 0.21) % 6.5)
                    .collect()
            })
            .collect();
        let runs = mapping.execute_batch_floats(&batch).unwrap();
        assert_eq!(runs.len(), batch.len());
        for (run, scores) in runs.iter().zip(&batch) {
            let single = mapping.execute_floats(scores).unwrap();
            assert_eq!(run.codes, single.codes);
            assert_eq!(run.total, single.total);
        }
        let agg = ApSoftmax::batch_stats(&runs);
        assert_eq!(agg.tiles, 9);
        assert!(agg.makespan_cycles > 0);
        assert!(agg.total.cycles() >= agg.makespan_cycles * 9 / 10);
    }

    #[test]
    fn batch_propagates_errors() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let batch = vec![vec![0.0, -1.0], vec![]];
        assert!(matches!(
            mapping.execute_batch_floats(&batch),
            Err(CoreError::EmptyInput)
        ));
    }
}
