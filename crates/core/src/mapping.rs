//! The Fig. 4/5 dataflow: Algorithm 1 mapped onto the AP.
//!
//! One attention head's softmax vector is packed two words per row (the
//! paper's layout: a vector of length `L` occupies `L/2` rows), and the
//! sixteen dataflow steps of Fig. 5 execute as LUT microcode on the
//! simulated AP. The result is **bit-exact** against the scalar
//! specification in `softmap-softmax` (verified by integration tests and
//! by [`ApSoftmaxRun::codes`] comparisons in this module's tests).
//!
//! # Compile once, replay many
//!
//! The dataflow's op sequence is *static* per shape: it depends only on
//! `(vector length, Layout, PrecisionConfig, DivStyle)`, never on the
//! data (run-time scalars — the min search result, the reduction sum —
//! flow through program registers). [`ApSoftmax`] therefore records the
//! trace once per shape into a [`softmap_ap::ApProgram`], caches it in
//! a shape-keyed [`crate::PlanCache`], and every further vector of that
//! shape executes as load → replay → read with no per-op host dispatch
//! (and zero heap allocations through a warmed [`TileState`]). The
//! compiled program also answers analytic cost queries without touching
//! a CAM: see [`ApSoftmax::static_cost`].

use std::sync::Arc;

use softmap_ap::batch::{self, BatchStats};
use softmap_ap::program::{ExecIo, ProgramScratch, Recorder};
use softmap_ap::{
    ApConfig, ApCore, ApError, ApTile, CycleStats, DivStyle, ExecBackend, Field, Overflow, RegId,
};
use softmap_softmax::{IntSoftmax, PrecisionConfig, SumMode};

use crate::plan::{CompiledPlan, PlanCache, PlanKey, PlanStats};
use crate::CoreError;

/// How vector elements are packed into AP rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Two words per row — the paper's layout (`rows = L/2`); requires
    /// an even vector length. The dataflow executes once per half and
    /// the reduction starts with the pairwise add of the two halves
    /// (the `8M` term of Table II's reduction row).
    #[default]
    TwoWordsPerRow,
    /// One word per row (`rows = L`); used for odd lengths and as an
    /// ablation.
    OneWordPerRow,
}

/// Whether execution goes through the shape-keyed plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Compile the dataflow once per shape and replay the cached
    /// program for every further vector (the default).
    #[default]
    Cached,
    /// Re-issue the dataflow op by op for every vector, exactly like
    /// the pre-plan mapping — the differential-testing and benchmarking
    /// baseline.
    DirectIssue,
}

/// Cycle statistics for one dataflow step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Step name, matching Fig. 5 (e.g. `"4: multiply+shift (barrett)"`).
    pub name: &'static str,
    /// Cycles and cell events spent in the step.
    pub stats: CycleStats,
}

/// The outcome of executing the mapped dataflow on the AP.
///
/// All buffers are plain `Vec`s so a run can be reused as an output
/// slot by [`ApSoftmax::execute_floats_into`]: repeated executions at
/// the same vector length overwrite in place without reallocating.
#[derive(Debug, Clone, Default)]
pub struct ApSoftmaxRun {
    /// Fixed-point probability codes, in input order (bit-exact vs. the
    /// scalar `IntSoftmax`).
    pub codes: Vec<u64>,
    /// Fraction bits of the codes.
    pub frac_bits: u32,
    /// The `v_approx` intermediates, in input order.
    pub vapprox: Vec<u64>,
    /// The (possibly truncated) sum used as divisor.
    pub sum: u64,
    /// Total cycle statistics.
    pub total: CycleStats,
    /// Per-step breakdown in dataflow order.
    pub steps: Vec<StepStats>,
    /// Rows occupied in the AP tile.
    pub rows: usize,
    /// Columns used by the field layout (excluding scratch headroom).
    pub cols_used: usize,
}

impl ApSoftmaxRun {
    /// Dequantized probabilities (`codes · 2^-frac_bits`).
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let scale = f64::from(self.frac_bits).exp2().recip();
        self.codes.iter().map(|&c| c as f64 * scale).collect()
    }
}

/// Executes the integer-only softmax dataflow on a simulated AP tile.
///
/// # Examples
///
/// ```
/// use softmap::ApSoftmax;
/// use softmap_softmax::{IntSoftmax, PrecisionConfig};
///
/// let cfg = PrecisionConfig::paper_best();
/// let scores = [0.0_f64, -1.0, -2.5, -0.3];
/// let scalar = IntSoftmax::new(cfg)?.run_floats(&scores)?;
/// let run = ApSoftmax::new(cfg)?.execute_floats(&scores)?;
/// assert_eq!(run.codes, scalar.codes); // bit-exact
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApSoftmax {
    sm: IntSoftmax,
    div_style: DivStyle,
    layout: Layout,
    backend: ExecBackend,
    plan_mode: PlanMode,
    plans: Arc<PlanCache>,
}

/// Reusable per-worker execution state for the pooled path: one
/// persistent simulated tile ([`ApTile`]), the host-side staging
/// buffers (quantized codes, packed half-vectors), the program
/// scratch (registers + reduction sums), and a one-entry cached-plan
/// slot so steady-state replay touches no lock.
///
/// SoftmAP's deployment model streams many vectors through fixed
/// hardware tiles; this is the host analogue. After a warm-up vector
/// establishes buffer capacities and compiles the shape's plan, every
/// further vector of the same shape *replays* the cached program with
/// **zero heap allocations** (asserted by the counting-allocator
/// regression test in `crates/core/tests`).
///
/// # Examples
///
/// ```
/// use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
/// use softmap_softmax::PrecisionConfig;
///
/// let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
/// let mut state = TileState::new();
/// let mut run = ApSoftmaxRun::default();
/// for scores in [[0.0, -1.0, -2.0, -3.0], [0.0, -0.5, -1.5, -2.5]] {
///     mapping.execute_floats_into(&mut state, &scores, &mut run)?;
///     assert_eq!(run.codes.len(), 4);
/// }
/// assert!(state.cached_plan().is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TileState {
    tile: ApTile,
    codes: Vec<i64>,
    half0: Vec<u64>,
    half1: Vec<u64>,
    scratch: ProgramScratch,
    plan: Option<PlanSlot>,
}

/// The tile-local cached-plan slot: (cache identity token, shape key,
/// plan).
type PlanSlot = ((u64, u64), PlanKey, Arc<CompiledPlan>);

impl TileState {
    /// Creates an empty state (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying tile slot (observer access).
    #[must_use]
    pub fn tile(&self) -> &ApTile {
        &self.tile
    }

    /// The plan cached in this tile's slot, if one has been resolved.
    #[must_use]
    pub fn cached_plan(&self) -> Option<&CompiledPlan> {
        self.plan.as_ref().map(|(_, _, p)| &**p)
    }
}

thread_local! {
    /// The per-thread tile pool backing the non-`_into` entry points:
    /// every `execute_floats`/`execute_codes` call on a thread streams
    /// through one persistent tile, exactly like vectors stream through
    /// fixed hardware in the deployed accelerator. The arena is sized
    /// to the largest geometry the thread has executed and lives for
    /// the thread's lifetime.
    static THREAD_TILE: std::cell::RefCell<TileState> =
        std::cell::RefCell::new(TileState::new());
}

struct HalfFields {
    /// Working value: |code|, then `neg_vstable`, then `r`.
    x: Field,
    /// Barrett quotient.
    q: Field,
    /// Wide scratch: products and polynomial.
    work: Field,
    /// Polynomial input `t = v_b - r`.
    t: Field,
    /// `v_approx`.
    vapprox: Field,
    /// Final result (the paper's `R` column, `2M + 12` bits).
    res: Field,
}

impl ApSoftmax {
    /// Builds the mapping for a precision configuration with the default
    /// layout (two words per row), restoring division, and plan caching
    /// enabled.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the scalar pipeline.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, CoreError> {
        Ok(Self {
            sm: IntSoftmax::new(cfg)?,
            div_style: DivStyle::Restoring,
            layout: Layout::TwoWordsPerRow,
            backend: ExecBackend::default(),
            plan_mode: PlanMode::default(),
            plans: Arc::new(PlanCache::new()),
        })
    }

    /// Selects the division microcode style. Compiled plans depend on
    /// the style, so the plan cache starts fresh.
    #[must_use]
    pub fn with_div_style(mut self, style: DivStyle) -> Self {
        self.div_style = style;
        self.plans = Arc::new(PlanCache::new());
        self
    }

    /// Selects the AP execution backend. `FastWord` produces bit- and
    /// cycle-identical results at a fraction of the simulation time
    /// (the backends share one cost model; see `softmap_ap::backend`).
    /// Compiled plans are backend-agnostic — a program recorded under
    /// one backend replays exactly on the other — so the cache is kept.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The AP execution backend in use.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the row packing layout. Compiled plans depend on the
    /// layout, so the plan cache starts fresh.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self.plans = Arc::new(PlanCache::new());
        self
    }

    /// Selects whether execution goes through the plan cache
    /// ([`PlanMode::Cached`], the default) or re-issues the dataflow op
    /// by op per vector ([`PlanMode::DirectIssue`]).
    #[must_use]
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// The plan-cache mode in use.
    #[must_use]
    pub fn plan_mode(&self) -> PlanMode {
        self.plan_mode
    }

    /// Counters of the shared plan cache (plans, compiles, hits,
    /// compile time).
    #[must_use]
    pub fn plan_stats(&self) -> PlanStats {
        self.plans.stats()
    }

    /// Drops every cached plan (compile-cost benchmarking; tile slots
    /// warmed earlier re-resolve on their next vector).
    pub fn clear_plans(&self) {
        self.plans.clear();
    }

    /// The underlying scalar specification.
    #[must_use]
    pub fn spec(&self) -> &IntSoftmax {
        &self.sm
    }

    /// Quantizes scores and executes the dataflow.
    ///
    /// Executes on this thread's pooled tile (see [`TileState`]): the
    /// CAM arena and scratch state persist across calls, so repeated
    /// vectors reallocate nothing but the returned run's buffers. Use
    /// [`ApSoftmax::execute_floats_into`] to also reuse those.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats(&self, scores: &[f64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(&mut state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_floats`]: executes on `state`'s
    /// persistent tile and writes the outcome into `run`, reusing every
    /// buffer. In steady state (same vector shape as the previous call)
    /// this replays the cached plan with zero heap allocations.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats_into(
        &self,
        state: &mut TileState,
        scores: &[f64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        if scores.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let mut codes = std::mem::take(&mut state.codes);
        self.sm.quantize_into(scores, &mut codes);
        let result = self.execute_codes_into(state, &codes, run);
        state.codes = codes;
        result
    }

    /// Executes a whole batch of softmax vectors across host threads
    /// with **one persistent simulated tile per worker** (not one tile
    /// allocation per vector) — the multi-tile analogue of
    /// [`ApSoftmax::execute_floats`], matching the deployment model
    /// where vectors stream through fixed hardware. Workers replay
    /// plans from the shared cache: a shape is compiled once per batch,
    /// not once per worker. Results are returned in input order and are
    /// identical to running each vector alone.
    ///
    /// # Errors
    ///
    /// The first (by input order) failing vector's error; see
    /// [`ApSoftmax::execute_codes`]. On failure the remaining vectors
    /// are cancelled.
    pub fn execute_batch_floats(&self, batch: &[Vec<f64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, scores| {
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Batched [`ApSoftmax::execute_codes`] with per-worker tile reuse;
    /// see [`ApSoftmax::execute_batch_floats`].
    ///
    /// # Errors
    ///
    /// The first failing vector's error.
    pub fn execute_batch_codes(&self, batch: &[Vec<i64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, codes| {
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Aggregate tile statistics for a batch of runs: total work across
    /// tiles plus the concurrent-hardware makespan.
    #[must_use]
    pub fn batch_stats(runs: &[ApSoftmaxRun]) -> BatchStats {
        let per_tile: Vec<CycleStats> = runs.iter().map(|r| r.total).collect();
        BatchStats::aggregate(&per_tile)
    }

    /// Executes the sixteen-step dataflow of Fig. 5 on quantized codes.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyInput`] for an empty slice,
    /// * [`CoreError::Softmax`] for out-of-range codes,
    /// * [`CoreError::Ap`] if the tile geometry cannot hold the layout.
    pub fn execute_codes(&self, codes: &[i64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(&mut state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_codes`]; see
    /// [`ApSoftmax::execute_floats_into`].
    ///
    /// # Errors
    ///
    /// As [`ApSoftmax::execute_codes`].
    pub fn execute_codes_into(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        self.execute_codes_mode(state, codes, run, self.plan_mode)
    }

    /// The shared entry point: packs codes into half-vectors, then
    /// either replays the shape's cached plan or issues the dataflow
    /// directly (compiling it on a cache miss).
    fn execute_codes_mode(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        mode: PlanMode,
    ) -> Result<(), CoreError> {
        if codes.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        // Validate codes through the scalar spec's range check (cheap:
        // no full trace).
        self.sm.validate_codes(codes)?;
        let packed = self.layout == Layout::TwoWordsPerRow
            && codes.len().is_multiple_of(2)
            && codes.len() >= 2;
        let rows = if packed { codes.len() / 2 } else { codes.len() };
        let total_len = codes.len();
        // Pack the |code| magnitudes of each half-vector (the sign is
        // implicit in the paper's non-positive input convention).
        state.half0.clear();
        state
            .half0
            .extend(codes[..rows].iter().map(|&c| c.unsigned_abs()));
        state.half1.clear();
        if packed {
            state
                .half1
                .extend(codes[rows..].iter().map(|&c| c.unsigned_abs()));
        }
        let TileState {
            tile,
            half0,
            half1,
            scratch,
            plan: plan_slot,
            ..
        } = state;
        let halves_arr: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
        let halves = if packed {
            &halves_arr[..]
        } else {
            &halves_arr[..1]
        };

        if mode == PlanMode::DirectIssue {
            self.issue_once(tile, scratch, halves, rows, total_len, run, false)?;
            return Ok(());
        }

        let key = PlanKey {
            len: total_len,
            layout: self.layout,
            div: self.div_style,
        };
        let token = self.plans.slot_token();
        if let Some((slot_token, slot_key, plan)) = plan_slot.as_ref() {
            if *slot_token == token && *slot_key == key {
                self.plans.note_hit();
                let plan = Arc::clone(plan);
                return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
            }
        }
        if let Some(plan) = self.plans.get(&key) {
            *plan_slot = Some((token, key, Arc::clone(&plan)));
            return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
        }
        // Cache miss: take the compile lock and re-check, so workers
        // racing on the same fresh shape converge on one plan (one
        // compile per batch, not one per worker).
        let compile_guard = self.plans.lock_for_compile();
        if let Some(plan) = self.plans.get(&key) {
            drop(compile_guard);
            *plan_slot = Some((token, key, Arc::clone(&plan)));
            return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
        }
        // Still missing: record the trace while executing this vector.
        let started = std::time::Instant::now();
        let (program, sum_reg) = self
            .issue_once(tile, scratch, halves, rows, total_len, run, true)?
            .expect("recording execution returns a program");
        let plan = Arc::new(CompiledPlan::new(
            program,
            sum_reg,
            run.rows,
            run.cols_used,
            started.elapsed().as_secs_f64() * 1e6,
        ));
        self.plans.insert(key, Arc::clone(&plan));
        drop(compile_guard);
        // Stamp the slot with the token captured before the lookup: a
        // clear_plans() racing in after the insert must still
        // invalidate this slot on its next vector.
        *plan_slot = Some((token, key, plan));
        Ok(())
    }

    fn cfg(&self) -> &PrecisionConfig {
        self.sm.config()
    }

    /// Column budget for one half-vector's fields.
    fn half_width(&self) -> usize {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work = (3 * m + 2).max(w.poly as usize + 1);
        m + w.q as usize + work + m + w.vapprox as usize + w.result as usize
    }

    fn alloc_half(&self, ap: &mut ApCore) -> Result<HalfFields, CoreError> {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work_w = (3 * m + 2).max(w.poly as usize + 1);
        Ok(HalfFields {
            x: ap.alloc_field(m)?,
            q: ap.alloc_field(w.q as usize)?,
            work: ap.alloc_field(work_w)?,
            t: ap.alloc_field(m)?,
            vapprox: ap.alloc_field(w.vapprox as usize)?,
            res: ap.alloc_field(w.result as usize)?,
        })
    }

    fn overflow_mode(&self) -> Overflow {
        match self.cfg().sum_mode {
            SumMode::Saturate => Overflow::Saturate,
            SumMode::Wrap => Overflow::Wrap,
            SumMode::Exact => Overflow::Error,
        }
    }

    /// Executes the dataflow once by direct issue, optionally recording
    /// the trace into a program. `halves` hold the |code| magnitudes of
    /// each half-vector (one or two), each of length `rows`. Executes
    /// on the pooled `tile` and writes everything into `run`'s reused
    /// buffers.
    #[allow(clippy::too_many_arguments)]
    fn issue_once(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        rows: usize,
        total_len: usize,
        run: &mut ApSoftmaxRun,
        record: bool,
    ) -> Result<Option<(softmap_ap::ApProgram, RegId)>, CoreError> {
        let m = self.cfg().m as usize;
        let w = *self.sm.widths();
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;

        // Tile geometry: per-half fields + shared operand/sum/divisor
        // fields + reserved carry/flag + scratch headroom for division.
        let shared = (2 * m + 1) + sum_bits + sum_bits + m;
        let scratch_cols = 2 * (sum_bits + 2) + 2 * (w.result as usize + w.vapprox as usize + 2);
        let cols = 2 + halves.len() * self.half_width() + shared + scratch_cols;
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;

        let mut field_slots: [Option<HalfFields>; 2] = [None, None];
        for slot in field_slots.iter_mut().take(halves.len()) {
            *slot = Some(self.alloc_half(ap)?);
        }
        // Shared operand field (holds µ, vln2, vb, vc in turn), the
        // per-row pair-sum field, the broadcast divisor, and the min.
        let op = ap.alloc_field(2 * m + 1)?;
        let sumw = ap.alloc_field(sum_bits)?;
        let den = ap.alloc_field(sum_bits)?;
        let minf = ap.alloc_field(m)?;
        let cols_used = den.end();

        let sum_reg;
        let program;
        {
            let ApSoftmaxRun {
                codes,
                vapprox,
                steps,
                ..
            } = run;
            codes.clear();
            vapprox.clear();
            steps.clear();
            let mut outs: [&mut Vec<u64>; 2] = [codes, vapprox];
            let mut on_step =
                |name: &'static str, stats: CycleStats| steps.push(StepStats { name, stats });
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                &mut on_step,
                record,
            );
            sum_reg =
                self.issue_dataflow(&mut rec, &field_slots[..halves.len()], op, sumw, den, minf)?;
            program = rec.finish();
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.frac_bits = w.frac_bits();
        run.sum = scratch.reg(sum_reg);
        run.total = ap.stats();
        run.rows = rows;
        run.cols_used = cols_used;
        Ok(program.map(|p| (p, sum_reg)))
    }

    /// Replays a cached plan: load → replay → read, no per-op host
    /// dispatch. Bit- and cycle-exact versus [`PlanMode::DirectIssue`]
    /// by the program-replay contract.
    fn replay_plan(
        &self,
        plan: &CompiledPlan,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        total_len: usize,
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        let ap = tile.acquire(plan.program().config(), self.backend)?;
        {
            let ApSoftmaxRun {
                codes,
                vapprox,
                steps,
                ..
            } = run;
            codes.clear();
            vapprox.clear();
            steps.clear();
            let mut outs: [&mut Vec<u64>; 2] = [codes, vapprox];
            plan.program().replay(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                |name, stats| steps.push(StepStats { name, stats }),
            )?;
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.frac_bits = self.sm.widths().frac_bits();
        run.sum = scratch.reg(plan.sum_reg());
        run.total = ap.stats();
        run.rows = plan.rows();
        run.cols_used = plan.cols_used();
        Ok(())
    }

    /// The sixteen dataflow steps of Fig. 5, issued through a
    /// [`Recorder`] (which either just executes them or additionally
    /// captures the trace). Returns the register holding the reduction
    /// sum.
    fn issue_dataflow(
        &self,
        rec: &mut Recorder<'_, '_>,
        fields: &[Option<HalfFields>],
        op: Field,
        sumw: Field,
        den: Field,
        minf: Field,
    ) -> Result<RegId, ApError> {
        let cfg = *self.cfg();
        let consts = *self.sm.constants();
        let w = *self.sm.widths();
        let m = cfg.m as usize;
        let sum_bits = consts.effective_sum_bits(&cfg) as usize;

        // Step 1: write v (as magnitudes |code|; the sign is implicit in
        // the paper's non-positive input convention).
        for (slot, f) in fields.iter().flatten().enumerate() {
            rec.load(f.x, slot)?;
        }
        rec.step("1: write v");

        // Step 1b/2: find min |code| (= max v) and subtract it:
        // x := neg_vstable = |code| - min. The fold over halves runs in
        // program registers.
        let mut min_reg: Option<RegId> = None;
        for f in fields.iter().flatten() {
            let r = rec.min_search(f.x);
            min_reg = Some(match min_reg {
                Some(prev) => rec.reg_min(prev, r),
                None => r,
            });
        }
        let min_reg = min_reg.expect("at least one half");
        rec.broadcast_reg(minf, min_reg)?;
        for f in fields.iter().flatten() {
            rec.sub_assert_clean(f.x, minf)?;
        }
        rec.step("2: subtract max");

        // Steps 3-4: write µ, Barrett multiply + shift -> q̂.
        rec.broadcast(op, consts.mu)?;
        rec.step("3: write mu");
        for f in fields.iter().flatten() {
            rec.mul(f.x, op, f.work)?;
            rec.shr_const(f.work, 2 * m)?;
            rec.copy(f.work.sub(0, w.q as usize), f.q)?;
        }
        rec.step("4: multiply+shift (barrett)");

        // Steps 5-6: write vln2, multiply q̂ · vln2.
        rec.broadcast(op, consts.vln2)?;
        rec.step("5: write vln2");
        for f in fields.iter().flatten() {
            rec.mul(f.q, op.sub(0, w.vln2 as usize), f.work)?;
        }
        rec.step("6: multiply q*vln2");

        // Step 7: subtract -> r = neg_vstable - q̂·vln2 (fits M bits).
        for f in fields.iter().flatten() {
            rec.sub_assert_clean(f.x, f.work.sub(0, m))?;
        }
        rec.step("7: subtract (vcorr)");

        // Steps 8-9: write vb, add: t = vb - r (saturating at zero).
        for f in fields.iter().flatten() {
            rec.broadcast(f.t, consts.vb)?;
            rec.saturating_sub_into(f.t, f.x)?;
        }
        rec.step("8-9: write vb, add vcorr");

        // Steps 10-11: copy + multiply -> t².
        for f in fields.iter().flatten() {
            rec.mul(f.t, f.t, f.work)?;
        }
        rec.step("10-11: copy, square");

        // Steps 12-13: write vc, add, then variable shift by q̂.
        rec.broadcast(op, consts.vc)?;
        rec.step("12: write vc");
        for f in fields.iter().flatten() {
            rec.add_into(f.work.sub(0, w.poly as usize), op.sub(0, w.vc as usize))?;
            rec.shr_variable(f.work.sub(0, w.poly as usize), f.q)?;
            rec.copy(f.work.sub(0, w.vapprox as usize), f.vapprox)?;
        }
        rec.step("13: add+shift (vapprox)");

        // Step 14: reduction. Pair-add the halves, then tree-reduce.
        // v_approx values provably fit the effective sum width (they are
        // bounded by vb²+vc < 2^used_bits ≤ 2^sum_bits), so when the
        // allocated v_approx field is wider than the sum register only
        // the low bits carry information.
        let vap_low = (w.vapprox as usize).min(sum_bits);
        let vap0 = fields[0].as_ref().expect("half 0 allocated").vapprox;
        rec.copy(vap0.sub(0, vap_low), sumw)?;
        if let Some(f1) = fields.get(1).and_then(Option::as_ref) {
            rec.add_into(sumw, f1.vapprox.sub(0, vap_low))?;
        }
        let rows = rec.rows();
        let sum_reg = rec.reduce_sum(sumw, den, rows, self.overflow_mode())?;
        rec.step("14: reduction");

        // Step 15: copy Σ to all rows (broadcast divisor). A wrapped sum
        // of zero is clamped to 1, mirroring the scalar divisor clamp.
        let den_reg = rec.reg_max1(sum_reg);
        rec.broadcast_reg(den, den_reg)?;
        rec.step("15: copy sum");

        // Step 16: divide.
        let f_bits = w.frac_bits() as usize;
        for f in fields.iter().flatten() {
            rec.divide(f.vapprox, den, f.res, f_bits, self.div_style)?;
        }
        rec.step("16: divide");

        // Gather outputs in input order (halves are concatenated),
        // appending into the run's reused buffers.
        for f in fields.iter().flatten() {
            rec.read(f.res, 0)?;
        }
        for f in fields.iter().flatten() {
            rec.read(f.vapprox, 1)?;
        }
        Ok(sum_reg)
    }

    // ---- analytic cost queries ------------------------------------------

    /// The deterministic representative input the cost tables compile
    /// plans from: a spread over the clip range exercising write-tag
    /// populations broadly (the formula `softmap_eval`'s latency tables
    /// have always characterized with).
    #[must_use]
    pub fn representative_scores(len: usize) -> Vec<f64> {
        (0..len).map(|i| -((i % 97) as f64) * 7.0 / 97.0).collect()
    }

    /// The compiled plan for vectors of length `len`, compiling one
    /// from [`ApSoftmax::representative_scores`] on this thread's
    /// pooled tile if the shape has not been seen yet.
    ///
    /// # Errors
    ///
    /// Propagates compilation (execution) errors.
    pub fn plan(&self, len: usize) -> Result<Arc<CompiledPlan>, CoreError> {
        if len == 0 {
            return Err(CoreError::EmptyInput);
        }
        let key = PlanKey {
            len,
            layout: self.layout,
            div: self.div_style,
        };
        // Observer lookup: a cost query is not a replay, so it must
        // not count as a cache hit.
        if let Some(plan) = self.plans.peek(&key) {
            return Ok(plan);
        }
        let scores = Self::representative_scores(len);
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            let mut codes = std::mem::take(&mut state.codes);
            self.sm.quantize_into(&scores, &mut codes);
            let result = self.execute_codes_mode(&mut state, &codes, &mut run, PlanMode::Cached);
            state.codes = codes;
            result
        })?;
        // Observer fetch of the plan the compile just inserted — not a
        // replay, so it must not count as a cache hit.
        self.plans
            .peek(&key)
            .ok_or_else(|| CoreError::BadWorkload("plan compilation did not cache".into()))
    }

    /// Cycle/cell-event totals for one vector of length `len`, answered
    /// from the compiled plan **without executing anything** once the
    /// shape's plan exists — [`softmap_ap::ApProgram::static_cost`]
    /// surfaced at the mapping level. The cost is exact for the input
    /// the plan was compiled from (the cost tables compile from
    /// [`ApSoftmax::representative_scores`], so table queries are
    /// deterministic); see the static-cost contract in the `softmap_ap`
    /// program-module docs.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors from [`ApSoftmax::plan`].
    pub fn static_cost(&self, len: usize) -> Result<CycleStats, CoreError> {
        Ok(self.plan(len)?.program().static_cost())
    }

    /// Per-step static costs for one vector of length `len` (the
    /// analytic counterpart of [`ApSoftmaxRun::steps`]).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors from [`ApSoftmax::plan`].
    pub fn static_step_stats(&self, len: usize) -> Result<Vec<StepStats>, CoreError> {
        Ok(self
            .plan(len)?
            .program()
            .static_steps()
            .iter()
            .map(|&(name, stats)| StepStats { name, stats })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_softmax::IntSoftmax;

    fn assert_bit_exact(cfg: PrecisionConfig, scores: &[f64], layout: Layout) {
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_layout(layout)
            .execute_floats(scores)
            .unwrap();
        assert_eq!(run.vapprox, scalar.vapprox, "vapprox mismatch");
        assert_eq!(run.sum, scalar.sum, "sum mismatch");
        assert_eq!(run.codes, scalar.codes, "codes mismatch");
    }

    #[test]
    fn packed_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2, -6.9];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::TwoWordsPerRow,
        );
    }

    #[test]
    fn unpacked_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::OneWordPerRow,
        );
    }

    #[test]
    fn all_paper_precisions_match_scalar() {
        let scores: Vec<f64> = (0..16).map(|i| -(f64::from(i) * 0.47) % 6.8).collect();
        for m in [4, 6, 8] {
            for delta in [0, 1, 2] {
                for n in [8, 16] {
                    let cfg = PrecisionConfig::new(m, delta, n);
                    assert_bit_exact(cfg, &scores, Layout::TwoWordsPerRow);
                }
            }
        }
    }

    #[test]
    fn reciprocal_division_close_to_scalar() {
        let cfg = PrecisionConfig::paper_best();
        let scores = [0.0, -0.5, -1.5, -2.5];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_div_style(DivStyle::ControllerReciprocal)
            .execute_floats(&scores)
            .unwrap();
        for (got, want) in run.codes.iter().zip(&scalar.codes) {
            assert!(got <= want && want - got <= 1, "got {got}, want {want}");
        }
    }

    #[test]
    fn step_names_follow_fig5() {
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let names: Vec<_> = run.steps.iter().map(|s| s.name).collect();
        assert_eq!(names.first().copied(), Some("1: write v"));
        assert_eq!(names.last().copied(), Some("16: divide"));
        assert_eq!(run.steps.len(), 14);
        // total equals the sum of the steps
        let total: u64 = run.steps.iter().map(|s| s.stats.cycles()).sum();
        assert_eq!(total, run.total.cycles());
    }

    #[test]
    fn division_dominates_runtime() {
        // The restoring divider is the most expensive step — the
        // motivation for the ControllerReciprocal ablation.
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let divide = run
            .steps
            .iter()
            .find(|s| s.name == "16: divide")
            .unwrap()
            .stats
            .cycles();
        assert!(divide * 2 > run.total.cycles());
    }

    #[test]
    fn saturating_sum_matches_scalar_on_long_flat_input() {
        let cfg = PrecisionConfig::new(6, 0, 8);
        let scores = vec![0.0; 1024];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        assert!(scalar.sum_overflowed);
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(run.sum, scalar.sum);
        assert_eq!(run.codes, scalar.codes);
    }

    #[test]
    fn empty_input_rejected() {
        let apsm = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(matches!(
            apsm.execute_floats(&[]),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn fast_backend_is_bit_and_cycle_identical_end_to_end() {
        let scores: Vec<f64> = (0..96).map(|i| -(f64::from(i) * 0.37) % 6.9).collect();
        for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
            let micro = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .execute_floats(&scores)
                .unwrap();
            let fast = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .with_backend(softmap_ap::ExecBackend::FastWord)
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(micro.codes, fast.codes);
            assert_eq!(micro.vapprox, fast.vapprox);
            assert_eq!(micro.sum, fast.sum);
            assert_eq!(micro.total, fast.total, "cycle stats must be identical");
            for (m, f) in micro.steps.iter().zip(&fast.steps) {
                assert_eq!(m.stats, f.stats, "step {} diverges", m.name);
            }
        }
    }

    #[test]
    fn batch_matches_individual_runs() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(softmap_ap::ExecBackend::FastWord);
        let batch: Vec<Vec<f64>> = (0..9)
            .map(|v| {
                (0..32)
                    .map(|i| -((v * 7 + i) as f64 * 0.21) % 6.5)
                    .collect()
            })
            .collect();
        let runs = mapping.execute_batch_floats(&batch).unwrap();
        assert_eq!(runs.len(), batch.len());
        for (run, scores) in runs.iter().zip(&batch) {
            let single = mapping.execute_floats(scores).unwrap();
            assert_eq!(run.codes, single.codes);
            assert_eq!(run.total, single.total);
        }
        let agg = ApSoftmax::batch_stats(&runs);
        assert_eq!(agg.tiles, 9);
        assert!(agg.makespan_cycles > 0);
        assert!(agg.total.cycles() >= agg.makespan_cycles * 9 / 10);
        // One shape across the whole batch: exactly one compile, the
        // rest replays from the shared cache.
        assert_eq!(mapping.plan_stats().compiles, 1);
    }

    #[test]
    fn batch_propagates_errors() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let batch = vec![vec![0.0, -1.0], vec![]];
        assert!(matches!(
            mapping.execute_batch_floats(&batch),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn replay_matches_direct_issue_exactly() {
        let cfg = PrecisionConfig::paper_best();
        let warm: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.11) % 6.0).collect();
        let scores: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.29) % 6.8).collect();
        for layout in [Layout::TwoWordsPerRow, Layout::OneWordPerRow] {
            for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
                let direct = ApSoftmax::new(cfg)
                    .unwrap()
                    .with_layout(layout)
                    .with_div_style(style)
                    .with_plan_mode(PlanMode::DirectIssue)
                    .execute_floats(&scores)
                    .unwrap();
                let cached = ApSoftmax::new(cfg)
                    .unwrap()
                    .with_layout(layout)
                    .with_div_style(style)
                    .unwrap_execute_pair(&warm, &scores);
                assert_eq!(cached.codes, direct.codes);
                assert_eq!(cached.vapprox, direct.vapprox);
                assert_eq!(cached.sum, direct.sum);
                assert_eq!(cached.total, direct.total);
                assert_eq!(cached.steps, direct.steps);
            }
        }
    }

    #[test]
    fn static_cost_matches_executed_representative() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let len = 64;
        let cost = mapping.static_cost(len).unwrap();
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(cost, run.total);
        let steps = mapping.static_step_stats(len).unwrap();
        assert_eq!(steps, run.steps);
        assert_eq!(mapping.plan_stats().compiles, 1);
        assert!(mapping.plan(len).unwrap().compile_micros() > 0.0);
    }

    #[test]
    fn clear_plans_invalidates_slots_and_recompiles() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        let scores = [0.0, -1.0, -2.0, -3.0];
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        let first = run.codes.clone();
        assert_eq!(mapping.plan_stats().compiles, 1);
        mapping.clear_plans();
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        assert_eq!(run.codes, first);
        assert_eq!(
            mapping.plan_stats().compiles,
            2,
            "cleared cache must recompile, not reuse the stale slot"
        );
    }

    impl ApSoftmax {
        /// Test helper: executes `warm` (compiling the plan), then
        /// `scores` (replaying it), returning the second run.
        fn unwrap_execute_pair(&self, warm: &[f64], scores: &[f64]) -> ApSoftmaxRun {
            self.execute_floats(warm).unwrap();
            let run = self.execute_floats(scores).unwrap();
            assert!(self.plan_stats().hits >= 1, "second run must replay");
            run
        }
    }
}
