//! The Fig. 4/5 dataflow: Algorithm 1 mapped onto the AP.
//!
//! One attention head's softmax vector is packed two words per row (the
//! paper's layout: a vector of length `L` occupies `L/2` rows), and the
//! sixteen dataflow steps of Fig. 5 execute as LUT microcode on the
//! simulated AP. The result is **bit-exact** against the scalar
//! specification in `softmap-softmax` (verified by integration tests and
//! by [`ApSoftmaxRun::codes`] comparisons in this module's tests).
//!
//! # Compile once, replay many
//!
//! The dataflow's op sequence is *static* per shape: it depends only on
//! `(vector length, Layout, PrecisionConfig, DivStyle)`, never on the
//! data (run-time scalars — the min search result, the reduction sum —
//! flow through program registers). [`ApSoftmax`] therefore records the
//! trace once per shape into a [`softmap_ap::ApProgram`], caches it in
//! a shape-keyed [`crate::PlanCache`], and every further vector of that
//! shape executes as load → replay → read with no per-op host dispatch
//! (and zero heap allocations through a warmed [`TileState`]). The
//! compiled program also answers analytic cost queries without touching
//! a CAM: see [`ApSoftmax::static_cost`].

use std::sync::Arc;

use softmap_ap::batch::{self, BatchStats};
use softmap_ap::device::{self, DeviceConfig};
use softmap_ap::program::{optimizer, ExecIo, ProgramScratch, Recorder};
use softmap_ap::{
    ApConfig, ApCore, ApError, ApProgram, ApTile, CycleStats, DivStyle, ExecBackend, Field,
    OptLevel, Overflow, PassReport, RegId,
};
use softmap_softmax::{IntSoftmax, PrecisionConfig, SumMode};

use crate::plan::{
    CachedPlan, CompiledPlan, PlanCache, PlanKey, PlanPhase, PlanStats, ShardedPlan, TunedPlan,
};
use crate::CoreError;

pub(crate) mod autotune;
pub(crate) mod fanout;

pub use autotune::AUTOTUNE_ENV;

/// How vector elements are packed into AP rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Two words per row — the paper's layout (`rows = L/2`); requires
    /// an even vector length. The dataflow executes once per half and
    /// the reduction starts with the pairwise add of the two halves
    /// (the `8M` term of Table II's reduction row).
    #[default]
    TwoWordsPerRow,
    /// One word per row (`rows = L`); used for odd lengths and as an
    /// ablation.
    OneWordPerRow,
}

/// Whether execution goes through the shape-keyed plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Compile the dataflow once per shape and replay the cached
    /// program for every further vector (the default).
    #[default]
    Cached,
    /// Re-issue the dataflow op by op for every vector, exactly like
    /// the pre-plan mapping — the differential-testing and benchmarking
    /// baseline.
    DirectIssue,
}

/// Cycle statistics for one dataflow step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Step name, matching Fig. 5 (e.g. `"4: multiply+shift (barrett)"`).
    pub name: &'static str,
    /// Cycles and cell events spent in the step.
    pub stats: CycleStats,
}

/// The outcome of executing the mapped dataflow on the AP.
///
/// All buffers are plain `Vec`s so a run can be reused as an output
/// slot by [`ApSoftmax::execute_floats_into`]: repeated executions at
/// the same vector length overwrite in place without reallocating.
#[derive(Debug, Clone, Default)]
pub struct ApSoftmaxRun {
    /// Fixed-point probability codes, in input order (bit-exact vs. the
    /// scalar `IntSoftmax`).
    pub codes: Vec<u64>,
    /// Fraction bits of the codes.
    pub frac_bits: u32,
    /// The `v_approx` intermediates, in input order.
    pub vapprox: Vec<u64>,
    /// The (possibly truncated) sum used as divisor.
    pub sum: u64,
    /// Total cycle statistics.
    pub total: CycleStats,
    /// Per-step breakdown in dataflow order.
    pub steps: Vec<StepStats>,
    /// Rows occupied in the AP tile (the largest shard's tile for a
    /// sharded run).
    pub rows: usize,
    /// Columns used by the field layout (excluding scratch headroom;
    /// the widest phase for a sharded run).
    pub cols_used: usize,
    /// Tiles (shards) the vector occupied — 1 when it fits one tile.
    pub shards: usize,
    /// Sequential waves per phase on the device's tile grid.
    pub waves: u64,
    /// Device critical path in cycles: per-phase wave makespans plus
    /// the cross-tile reduction-network cycles. Equals
    /// `total.cycles()` for an unsharded run.
    pub latency_cycles: u64,
    /// Cross-tile reduction-network charges (zero when unsharded).
    pub reduction: CycleStats,
}

impl ApSoftmaxRun {
    /// Dequantized probabilities (`codes · 2^-frac_bits`).
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let scale = f64::from(self.frac_bits).exp2().recip();
        self.codes.iter().map(|&c| c as f64 * scale).collect()
    }
}

/// Executes the integer-only softmax dataflow on a simulated AP tile.
///
/// # Examples
///
/// ```
/// use softmap::ApSoftmax;
/// use softmap_softmax::{IntSoftmax, PrecisionConfig};
///
/// let cfg = PrecisionConfig::paper_best();
/// let scores = [0.0_f64, -1.0, -2.5, -0.3];
/// let scalar = IntSoftmax::new(cfg)?.run_floats(&scores)?;
/// let run = ApSoftmax::new(cfg)?.execute_floats(&scores)?;
/// assert_eq!(run.codes, scalar.codes); // bit-exact
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApSoftmax {
    sm: IntSoftmax,
    div_style: DivStyle,
    layout: Layout,
    backend: ExecBackend,
    plan_mode: PlanMode,
    opt_level: OptLevel,
    device: DeviceConfig,
    resident: bool,
    /// Whether compiled plans get a region-blocking plan attached
    /// (strip-mined FastWord execution; see
    /// [`softmap_ap::ApProgram::plan_blocking`]).
    blocked: bool,
    /// Whether cached compilation searches candidate mappings and
    /// installs the statically cheapest one (see
    /// [`crate::mapping::autotune`]).
    autotune: bool,
    /// Set by [`ApSoftmax::with_layout`]: the caller pinned the layout
    /// explicitly, so the autotuner must not search the layout axis.
    layout_pinned: bool,
    /// Internal candidate-view hook: when set, sharded execution uses
    /// this partition instead of [`DeviceConfig::partition_into`].
    partition_override: Option<Arc<Vec<(usize, usize)>>>,
    plans: Arc<PlanCache>,
}

/// Environment variable enabling/disabling resident sharded execution:
/// `0`/`false` forces the re-staging path, `1`/`true` (the default)
/// keeps shards pinned in their tiles across phases whenever they fit
/// the grid in one wave. Invalid values warn once and keep the
/// default.
pub const RESIDENT_ENV: &str = "SOFTMAP_RESIDENT";

/// Reads [`RESIDENT_ENV`]; invalid values fail loudly (one warning per
/// process) instead of silently falling back.
fn resident_from_env() -> bool {
    let Ok(raw) = std::env::var(RESIDENT_ENV) else {
        return true;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "false" => false,
        "1" | "true" => true,
        _ => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "softmap: invalid {RESIDENT_ENV}={raw:?}; accepted values are \
                     0/false/1/true — keeping the default (1)"
                );
            });
            true
        }
    }
}

/// Environment variable enabling/disabling region-blocked strip-mined
/// FastWord execution: `0`/`false` forces the op-by-op replay path,
/// `1`/`true` (the default) attaches a region-blocking plan to every
/// compiled program. Host-execution knob only — results and
/// `CycleStats` are identical either way. Invalid values warn once and
/// keep the default.
pub const BLOCKED_ENV: &str = "SOFTMAP_BLOCKED";

/// Reads [`BLOCKED_ENV`]; invalid values fail loudly (one warning per
/// process) instead of silently falling back.
fn blocked_from_env() -> bool {
    let Ok(raw) = std::env::var(BLOCKED_ENV) else {
        return true;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "false" => false,
        "1" | "true" => true,
        _ => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "softmap: invalid {BLOCKED_ENV}={raw:?}; accepted values are \
                     0/false/1/true — keeping the default (1)"
                );
            });
            true
        }
    }
}

/// Aggregate plan-cache counters surfaced as one struct; see
/// [`ApSoftmax::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Plans currently cached.
    pub plans: usize,
    /// Shape-miss compilations performed.
    pub compiles: u64,
    /// Cache hits (lock-free tile-slot hits included).
    pub hits: u64,
    /// LRU evictions over the cache's lifetime.
    pub evictions: u64,
    /// Currently cached entries compiled for resident execution.
    pub resident_entries: usize,
    /// Shapes the autotuner searched candidate mappings for.
    pub shapes_tuned: u64,
    /// Candidate mappings compiled and scored across all searches.
    pub candidates_scored: u64,
    /// Searches whose winner strictly beat the configured default
    /// mapping in total work cycles.
    pub tuned_wins: u64,
    /// Requests accepted into the serving queue (zero unless queried
    /// through a [`crate::SoftmaxServer`]).
    pub queued: u64,
    /// Admission passes that dispatched at least one request into a
    /// device wave (zero unless queried through a server).
    pub waves_formed: u64,
    /// Requests packed into a wave beyond each admission pass's first
    /// (zero unless queried through a server).
    pub coalesced: u64,
    /// Submissions that found the queue at its bound — blocked callers
    /// and [`crate::CoreError::QueueFull`] rejections (zero unless
    /// queried through a server).
    pub backpressure: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} plans ({} resident), {} compiles, {} hits, {} evictions, \
             {} shapes tuned ({} candidates, {} wins), \
             {} queued ({} waves, {} coalesced, {} backpressure)",
            self.plans,
            self.resident_entries,
            self.compiles,
            self.hits,
            self.evictions,
            self.shapes_tuned,
            self.candidates_scored,
            self.tuned_wins,
            self.queued,
            self.waves_formed,
            self.coalesced,
            self.backpressure
        )
    }
}

/// Static per-vector cost of one softmax, covering both regimes: a
/// vector that fits one tile (`shards == 1`, `latency_cycles ==
/// total.cycles()`) and a sharded long vector (waves + cross-tile
/// reduction cycles on the device's critical path). Answered from
/// compiled plans without executing anything; see
/// [`ApSoftmax::static_vector_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorCost {
    /// Total work: every shard's cycles/cell events plus the
    /// cross-tile reduction charges (the energy-model input).
    pub total: CycleStats,
    /// The device critical path in cycles (the latency-model input).
    pub latency_cycles: u64,
    /// Tiles (shards) the vector occupies.
    pub shards: usize,
    /// Sequential waves per phase on the tile grid.
    pub waves: u64,
    /// Cross-tile reduction-network charges (zero when unsharded).
    pub reduction: CycleStats,
}

/// Reusable per-worker execution state for the pooled path: one
/// persistent simulated tile ([`ApTile`]), the host-side staging
/// buffers (quantized codes, packed half-vectors), the program
/// scratch (registers + reduction sums), and a one-entry cached-plan
/// slot so steady-state replay touches no lock.
///
/// SoftmAP's deployment model streams many vectors through fixed
/// hardware tiles; this is the host analogue. After a warm-up vector
/// establishes buffer capacities and compiles the shape's plan, every
/// further vector of the same shape *replays* the cached program with
/// **zero heap allocations** (asserted by the counting-allocator
/// regression test in `crates/core/tests`).
///
/// # Examples
///
/// ```
/// use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
/// use softmap_softmax::PrecisionConfig;
///
/// let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
/// let mut state = TileState::new();
/// let mut run = ApSoftmaxRun::default();
/// for scores in [[0.0, -1.0, -2.0, -3.0], [0.0, -0.5, -1.5, -2.5]] {
///     mapping.execute_floats_into(&mut state, &scores, &mut run)?;
///     assert_eq!(run.codes.len(), 4);
/// }
/// assert!(state.cached_plan().is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TileState {
    tile: ApTile,
    codes: Vec<i64>,
    half0: Vec<u64>,
    half1: Vec<u64>,
    scratch: ProgramScratch,
    shard: ShardScratch,
    plan: Option<PlanSlot>,
}

/// The tile-local cached-plan slot: (cache identity token, shape key,
/// plan — whole-vector program or sharded vector plan).
type PlanSlot = ((u64, u64), PlanKey, CachedPlan);

/// Reusable per-worker buffers for sharded execution: the shard
/// partition, the per-shard scalars exchanged over the reduction
/// network, the per-shard per-phase cycle counts the wave scheduler
/// consumes, and the scheduler's tile-load scratch. All capacities
/// persist across vectors, so steady-state sharded execution performs
/// zero heap allocations.
#[derive(Debug, Clone, Default)]
struct ShardScratch {
    ranges: Vec<(usize, usize)>,
    minima: Vec<u64>,
    partials: Vec<u64>,
    phase_cycles: [Vec<u64>; 3],
    loads: Vec<u64>,
    /// Persistent tile-per-shard pool for resident execution: shard
    /// `i` owns `tiles[i]` for the vector's lifetime, so neither the
    /// simulated arenas nor the host-side staging buffers are
    /// rewritten between phases. The pool only grows (never shrinks),
    /// keeping steady-state resident execution zero-alloc.
    tiles: Vec<ApTile>,
}

impl TileState {
    /// Creates an empty state (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying tile slot (observer access).
    #[must_use]
    pub fn tile(&self) -> &ApTile {
        &self.tile
    }

    /// The whole-vector plan cached in this tile's slot, if one has
    /// been resolved (`None` when the slot holds a sharded plan; see
    /// [`TileState::cached_sharded_plan`]). A tuned slot resolves to
    /// its winner.
    #[must_use]
    pub fn cached_plan(&self) -> Option<&CompiledPlan> {
        match self.plan.as_ref() {
            Some((_, _, CachedPlan::Program(p))) => Some(p),
            Some((_, _, CachedPlan::Tuned(t))) => match &t.plan {
                CachedPlan::Program(p) => Some(p),
                _ => None,
            },
            _ => None,
        }
    }

    /// The sharded vector plan cached in this tile's slot, if one has
    /// been resolved. A tuned slot resolves to its winner.
    #[must_use]
    pub fn cached_sharded_plan(&self) -> Option<&ShardedPlan> {
        match self.plan.as_ref() {
            Some((_, _, CachedPlan::Sharded(p))) => Some(p),
            Some((_, _, CachedPlan::Tuned(t))) => match &t.plan {
                CachedPlan::Sharded(p) => Some(p),
                _ => None,
            },
            _ => None,
        }
    }
}

thread_local! {
    /// The per-thread tile pool backing the non-`_into` entry points:
    /// every `execute_floats`/`execute_codes` call on a thread streams
    /// through one persistent tile, exactly like vectors stream through
    /// fixed hardware in the deployed accelerator. The arena is sized
    /// to the largest geometry the thread has executed and lives for
    /// the thread's lifetime.
    static THREAD_TILE: std::cell::RefCell<TileState> =
        std::cell::RefCell::new(TileState::new());
}

/// The per-half fields of the exponential sub-dataflow (steps 1–13) —
/// shared between the whole-vector program and the sharded exp phase.
#[derive(Clone, Copy)]
struct ExpFields {
    /// Working value: |code|, then `neg_vstable`, then `r`.
    x: Field,
    /// Barrett quotient.
    q: Field,
    /// Wide scratch: products and polynomial.
    work: Field,
    /// Polynomial input `t = v_b - r`.
    t: Field,
    /// `v_approx`.
    vapprox: Field,
}

/// Whole-vector per-half fields: the exp sub-dataflow plus the final
/// result (the paper's `R` column, `2M + 12` bits). Also the per-half
/// layout of the resident shard phases, which allocate the *union*
/// geometry in every phase so column ranges line up across phase
/// boundaries (the residency contract).
#[derive(Clone, Copy)]
struct HalfFields {
    exp: ExpFields,
    res: Field,
}

/// Accumulates one step's cost into the named entry of `steps`
/// (appending on first sight). Per-program step names are unique, so
/// the whole-vector path degenerates to a plain push; sharded runs
/// merge the per-shard repetitions of each phase step into one entry.
fn accumulate_step(steps: &mut Vec<StepStats>, name: &'static str, stats: CycleStats) {
    if let Some(s) = steps.iter_mut().find(|s| s.name == name) {
        s.stats.accumulate(&stats);
    } else {
        steps.push(StepStats { name, stats });
    }
}

/// Whether shard `i` is a *follower*: every shard after the first
/// occurrence of its shape shares that leader's device-wide drivers.
/// On the re-staging path followers ride the broadcast of
/// shard-invariant operands for free
/// ([`ApProgram::replay_resident`]); on the resident path they
/// execute the whole phase in SIMD lockstep and are charged only
/// their input staging ([`ApProgram::replay_lockstep`]). Leaders pay
/// full price (their recording execution anchors the phase program's
/// cost). The rule is a pure function of the partition, so
/// compile-time totals and replay totals agree.
fn shard_follower(ranges: &[(usize, usize)], i: usize) -> bool {
    let len = ranges[i].1 - ranges[i].0;
    ranges[..i].iter().any(|&(s, e)| e - s == len)
}

/// How one shard's phase program replays: full price (leaders), the
/// hoisted-broadcast discount (re-staged followers), or the
/// wave-lockstep discount (resident followers).
#[derive(Clone, Copy, PartialEq, Eq)]
enum PhaseReplay {
    Full,
    Hoisted,
    Lockstep,
}

/// Replay pricing for shard `i` of a partition under a residency mode.
fn phase_replay(ranges: &[(usize, usize)], i: usize, resident: bool) -> PhaseReplay {
    match (shard_follower(ranges, i), resident) {
        (false, _) => PhaseReplay::Full,
        (true, false) => PhaseReplay::Hoisted,
        (true, true) => PhaseReplay::Lockstep,
    }
}

/// How one sharded pass executes each shard's phase program.
enum ShardExec<'a> {
    /// Issue every op directly (no cache, no recording) — the
    /// differential-testing baseline.
    Direct,
    /// Replay the cached sharded plan's phase programs.
    Replay(&'a ShardedPlan),
    /// Get-or-record each shard shape's phase program while executing,
    /// collecting the `Arc`s for the sharded plan under construction.
    Compile(&'a mut ShardPlanBuilder),
}

/// Phase-program `Arc`s collected while compiling a sharded plan.
#[derive(Default)]
struct ShardPlanBuilder {
    min_plans: Vec<Arc<CompiledPlan>>,
    exp_plans: Vec<Arc<CompiledPlan>>,
    div_plans: Vec<Arc<CompiledPlan>>,
}

impl ApSoftmax {
    /// Builds the mapping for a precision configuration with the default
    /// layout (two words per row), restoring division, and plan caching
    /// enabled.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the scalar pipeline.
    pub fn new(cfg: PrecisionConfig) -> Result<Self, CoreError> {
        Ok(Self {
            sm: IntSoftmax::new(cfg)?,
            div_style: DivStyle::Restoring,
            layout: Layout::TwoWordsPerRow,
            backend: ExecBackend::default(),
            plan_mode: PlanMode::default(),
            opt_level: OptLevel::from_env(),
            device: DeviceConfig::default(),
            resident: resident_from_env(),
            blocked: blocked_from_env(),
            autotune: autotune::autotune_from_env(),
            layout_pinned: false,
            partition_override: None,
            plans: Arc::new(PlanCache::new()),
        })
    }

    /// Enables or disables the mapping autotuner (the default is on,
    /// overridable via [`AUTOTUNE_ENV`]). Enabled, each cached shape's
    /// first vector searches the candidate mappings enumerated by
    /// the `mapping::autotune` layer, scores every candidate with the
    /// static-cost contract, and installs the cheapest bit-exact plan;
    /// further vectors replay the winner. Disabled, compilation uses
    /// the configured mapping exactly as before the autotuner existed
    /// — byte-identical plans, keys, and counters. Tuned entries live
    /// under their own key axis, so toggling keeps the cache.
    #[must_use]
    pub fn with_autotune(mut self, autotune: bool) -> Self {
        self.autotune = autotune;
        self
    }

    /// Whether the mapping autotuner is enabled.
    #[must_use]
    pub fn autotune(&self) -> bool {
        self.autotune
    }

    /// Enables or disables resident sharded execution. When enabled
    /// (the default, overridable via [`RESIDENT_ENV`]), a vector whose
    /// shards fit the tile grid in one wave keeps each shard pinned in
    /// its tile across the three phases — phase-boundary staging is
    /// elided and same-length shards after the wave's first are
    /// charged in lockstep (see the residency contract in the
    /// `softmap_ap` program/device module docs). Disabled, or whenever
    /// shards exceed the grid, execution takes the re-staging path
    /// exactly as before residency existed. Residency is part of the
    /// plan key, so resident and re-staged plans coexist and the cache
    /// is kept.
    #[must_use]
    pub fn with_resident(mut self, resident: bool) -> Self {
        self.resident = resident;
        self
    }

    /// Whether resident sharded execution is enabled (the knob, not
    /// the per-vector fallback decision).
    #[must_use]
    pub fn resident(&self) -> bool {
        self.resident
    }

    /// Enables or disables region-blocked strip-mined execution (the
    /// default is on, overridable via [`BLOCKED_ENV`]). Enabled, every
    /// compiled program carries a region-blocking plan and FastWord
    /// replays execute row-parallel op runs strip by strip out of a
    /// cache-resident scratch image (`SOFTMAP_STRIP` overrides the
    /// strip width). This is a host-execution optimization only: the
    /// device cost contract is untouched — planes, outputs, and
    /// `CycleStats` are bit-identical either way. Disabled, replays
    /// take the op-by-op path exactly as before blocking existed.
    /// Already-compiled plans keep their blocking, so the cache starts
    /// fresh.
    #[must_use]
    pub fn with_blocked(mut self, blocked: bool) -> Self {
        self.blocked = blocked;
        self.plans = Arc::new(PlanCache::with_capacity(self.plans.capacity()));
        self
    }

    /// Whether region-blocked strip-mined execution is enabled.
    #[must_use]
    pub fn blocked(&self) -> bool {
        self.blocked
    }

    /// Attaches the region-blocking plan to a freshly compiled program
    /// (after the optimizer pipeline settles — any rewrite drops a
    /// stale plan) when blocking is enabled.
    fn apply_blocking(&self, program: &mut ApProgram) {
        if self.blocked {
            program.plan_blocking(softmap_ap::program::strip_from_env());
        }
    }

    /// Whether a vector splitting into `shards` shards executes
    /// resident: the knob is on and the whole vector fits the tile
    /// grid in a single wave (a tile can stay pinned only if no later
    /// wave evicts it).
    fn resident_for(&self, shards: usize) -> bool {
        self.resident && shards <= self.device.tiles
    }

    /// Bounds execution by a device geometry (tile grid). Vectors whose
    /// rows exceed `rows_per_tile` execute **sharded** across tiles;
    /// shards beyond `tiles` run in waves. The default is the paper's
    /// deployment ([`DeviceConfig::default`]: 48 × 2048-row tiles).
    /// Shard shapes depend on the geometry, so the plan cache starts
    /// fresh.
    #[must_use]
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self.plans = Arc::new(PlanCache::with_capacity(self.plans.capacity()));
        self
    }

    /// The device geometry bounding execution.
    #[must_use]
    pub fn device(&self) -> DeviceConfig {
        self.device
    }

    /// Bounds the plan cache to `capacity` entries (LRU eviction; the
    /// default is [`PlanCache::DEFAULT_CAPACITY`]). The cache starts
    /// fresh.
    #[must_use]
    pub fn with_plan_capacity(mut self, capacity: usize) -> Self {
        self.plans = Arc::new(PlanCache::with_capacity(capacity));
        self
    }

    /// Selects the division microcode style. Compiled plans depend on
    /// the style, so the plan cache starts fresh.
    #[must_use]
    pub fn with_div_style(mut self, style: DivStyle) -> Self {
        self.div_style = style;
        self.plans = Arc::new(PlanCache::with_capacity(self.plans.capacity()));
        self
    }

    /// Selects the AP execution backend. `FastWord` produces bit- and
    /// cycle-identical results at a fraction of the simulation time
    /// (the backends share one cost model; see `softmap_ap::backend`).
    /// Compiled plans are backend-agnostic — a program recorded under
    /// one backend replays exactly on the other — so the cache is kept.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The AP execution backend in use.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the row packing layout. Compiled plans depend on the
    /// layout, so the plan cache starts fresh. An explicit layout also
    /// **pins** the autotuner's layout axis: a caller who asked for a
    /// layout gets that layout, tuned or not.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self.layout_pinned = true;
        self.plans = Arc::new(PlanCache::with_capacity(self.plans.capacity()));
        self
    }

    /// Selects whether execution goes through the plan cache
    /// ([`PlanMode::Cached`], the default) or re-issues the dataflow op
    /// by op per vector ([`PlanMode::DirectIssue`]).
    #[must_use]
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// The plan-cache mode in use.
    #[must_use]
    pub fn plan_mode(&self) -> PlanMode {
        self.plan_mode
    }

    /// Selects the trace-optimization level plans compile at. The
    /// default reads the `SOFTMAP_OPT` environment variable
    /// ([`OptLevel::ENV`]) and falls back to [`OptLevel::Full`];
    /// [`OptLevel::None`] replays the recorded trace byte-for-byte (the
    /// differential-testing baseline). The level is part of the plan
    /// key, so plans compiled at different levels coexist and the
    /// cache is kept.
    #[must_use]
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// The trace-optimization level in use.
    #[must_use]
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Counters of the shared plan cache (plans, compiles, hits,
    /// compile time).
    #[must_use]
    pub fn plan_stats(&self) -> PlanStats {
        self.plans.stats()
    }

    /// One-stop plan-cache counters (compiles, hits, evictions,
    /// resident entries, autotune activity) — the single query tests
    /// and profiling examples read instead of scattering per-counter
    /// probes.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let s = self.plans.stats();
        let a = self.plans.autotune_stats();
        CacheStats {
            plans: s.plans,
            compiles: s.compiles,
            hits: s.hits,
            evictions: s.evictions,
            resident_entries: self.plans.resident_entries(),
            shapes_tuned: a.shapes_tuned,
            candidates_scored: a.candidates_scored,
            tuned_wins: a.wins,
            queued: 0,
            waves_formed: 0,
            coalesced: 0,
            backpressure: 0,
        }
    }

    /// Drops every cached plan (compile-cost benchmarking; tile slots
    /// warmed earlier re-resolve on their next vector).
    pub fn clear_plans(&self) {
        self.plans.clear();
    }

    /// Precompiles the plan for every vector length in `shapes` — and
    /// autotunes each, when autotuning is enabled — so the first real
    /// vector of a warmed shape replays instead of paying the compile
    /// (or search) on the request path. The serving layer calls this
    /// at startup ([`crate::ServeConfig::warmup_shapes`]); it is also
    /// useful before latency-sensitive benchmarking. Shapes already
    /// cached are skipped; one compile is counted per fresh shape
    /// (`cache_stats().compiles`), none count as cache hits.
    ///
    /// # Errors
    ///
    /// The first failing shape's compile error (e.g.
    /// [`CoreError::EmptyInput`] for a zero length).
    pub fn warmup(&self, shapes: &[usize]) -> Result<(), CoreError> {
        for &len in shapes {
            self.resolve_vector_entry(len)?;
        }
        Ok(())
    }

    /// Tiles a request of `len` elements occupies under the configured
    /// mapping: 1 when the vector fits one tile, the shard partition's
    /// length otherwise (written into the reusable `ranges` scratch).
    /// The serving layer's admission policy claims this many tiles per
    /// request.
    pub(crate) fn shard_count_into(
        &self,
        len: usize,
        ranges: &mut Vec<(usize, usize)>,
    ) -> Result<usize, CoreError> {
        if len == 0 {
            return Err(CoreError::EmptyInput);
        }
        let (_, rows) = self.packing(len);
        if rows <= self.device.rows_per_tile {
            return Ok(1);
        }
        self.effective_partition(len, ranges)?;
        Ok(ranges.len())
    }

    /// The underlying scalar specification.
    #[must_use]
    pub fn spec(&self) -> &IntSoftmax {
        &self.sm
    }

    /// Quantizes scores and executes the dataflow.
    ///
    /// Executes on this thread's pooled tile (see [`TileState`]): the
    /// CAM arena and scratch state persist across calls, so repeated
    /// vectors reallocate nothing but the returned run's buffers. Use
    /// [`ApSoftmax::execute_floats_into`] to also reuse those.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats(&self, scores: &[f64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(&mut state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_floats`]: executes on `state`'s
    /// persistent tile and writes the outcome into `run`, reusing every
    /// buffer. In steady state (same vector shape as the previous call)
    /// this replays the cached plan with zero heap allocations.
    ///
    /// # Errors
    ///
    /// See [`ApSoftmax::execute_codes`].
    pub fn execute_floats_into(
        &self,
        state: &mut TileState,
        scores: &[f64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        if scores.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let mut codes = std::mem::take(&mut state.codes);
        self.sm.quantize_into(scores, &mut codes);
        let result = self.execute_codes_into(state, &codes, run);
        state.codes = codes;
        result
    }

    /// Executes a whole batch of softmax vectors across host threads
    /// with **one persistent simulated tile per worker** (not one tile
    /// allocation per vector) — the multi-tile analogue of
    /// [`ApSoftmax::execute_floats`], matching the deployment model
    /// where vectors stream through fixed hardware. Workers replay
    /// plans from the shared cache: a shape is compiled once per batch,
    /// not once per worker. Results are returned in input order and are
    /// identical to running each vector alone.
    ///
    /// # Errors
    ///
    /// The first (by input order) failing vector's error; see
    /// [`ApSoftmax::execute_codes`]. On failure the remaining vectors
    /// are cancelled.
    pub fn execute_batch_floats(&self, batch: &[Vec<f64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, scores| {
            let mut run = ApSoftmaxRun::default();
            self.execute_floats_into(state, scores, &mut run)?;
            Ok(run)
        })
    }

    /// Batched [`ApSoftmax::execute_codes`] with per-worker tile reuse;
    /// see [`ApSoftmax::execute_batch_floats`].
    ///
    /// # Errors
    ///
    /// The first failing vector's error.
    pub fn execute_batch_codes(&self, batch: &[Vec<i64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        batch::try_parallel_map_with(batch, TileState::new, |state, codes| {
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Aggregate tile statistics for a batch of runs: total work across
    /// tiles plus the concurrent-hardware makespan (one tile per run —
    /// the unbounded-grid view).
    #[must_use]
    pub fn batch_stats(runs: &[ApSoftmaxRun]) -> BatchStats {
        let per_tile: Vec<CycleStats> = runs.iter().map(|r| r.total).collect();
        BatchStats::aggregate(&per_tile)
    }

    /// [`ApSoftmax::batch_stats`] on a **finite** grid of `tiles`
    /// concurrent tiles: runs beyond the grid execute in waves and the
    /// makespan is the wave-scheduled critical path.
    #[must_use]
    pub fn batch_stats_on(runs: &[ApSoftmaxRun], tiles: usize) -> BatchStats {
        let per_tile: Vec<CycleStats> = runs.iter().map(|r| r.total).collect();
        BatchStats::aggregate_on(&per_tile, tiles)
    }

    /// Executes the sixteen-step dataflow of Fig. 5 on quantized codes.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyInput`] for an empty slice,
    /// * [`CoreError::Softmax`] for out-of-range codes,
    /// * [`CoreError::Ap`] if the tile geometry cannot hold the layout.
    pub fn execute_codes(&self, codes: &[i64]) -> Result<ApSoftmaxRun, CoreError> {
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            self.execute_codes_into(&mut state, codes, &mut run)?;
            Ok(run)
        })
    }

    /// Pooled [`ApSoftmax::execute_codes`]; see
    /// [`ApSoftmax::execute_floats_into`].
    ///
    /// # Errors
    ///
    /// As [`ApSoftmax::execute_codes`].
    pub fn execute_codes_into(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        self.execute_codes_mode(state, codes, run, self.plan_mode)
    }

    /// Words per row of the selected layout.
    fn words_per_row(&self) -> usize {
        match self.layout {
            Layout::TwoWordsPerRow => 2,
            Layout::OneWordPerRow => 1,
        }
    }

    /// Whether a vector of `len` elements is packed two words per row
    /// under the selected layout, and the rows it then occupies.
    fn packing(&self, len: usize) -> (bool, usize) {
        Self::packing_of(self.layout, len)
    }

    /// [`ApSoftmax::packing`] for an arbitrary layout — replaying a
    /// tuned plan packs by the *winner's* layout, not the configured
    /// one.
    fn packing_of(layout: Layout, len: usize) -> (bool, usize) {
        let packed = layout == Layout::TwoWordsPerRow && len.is_multiple_of(2) && len >= 2;
        (packed, if packed { len / 2 } else { len })
    }

    /// The shared entry point: routes through the capacity-bounded
    /// device — a vector that fits one tile packs into half-vectors and
    /// replays (or directly issues) the whole-vector dataflow; a longer
    /// vector executes **sharded** across the tile grid.
    fn execute_codes_mode(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        mode: PlanMode,
    ) -> Result<(), CoreError> {
        if codes.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        // Validate codes through the scalar spec's range check (cheap:
        // no full trace).
        self.sm.validate_codes(codes)?;
        if mode == PlanMode::Cached && self.autotune {
            return self.execute_autotuned(state, codes, run);
        }
        let (packed, rows) = self.packing(codes.len());
        if rows > self.device.rows_per_tile {
            return self.execute_sharded(state, codes, run, mode);
        }
        let total_len = codes.len();
        // Pack the |code| magnitudes of each half-vector (the sign is
        // implicit in the paper's non-positive input convention).
        state.half0.clear();
        state
            .half0
            .extend(codes[..rows].iter().map(|&c| c.unsigned_abs()));
        state.half1.clear();
        if packed {
            state
                .half1
                .extend(codes[rows..].iter().map(|&c| c.unsigned_abs()));
        }
        let TileState {
            tile,
            half0,
            half1,
            scratch,
            plan: plan_slot,
            ..
        } = state;
        let halves_arr: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
        let halves = if packed {
            &halves_arr[..]
        } else {
            &halves_arr[..1]
        };

        if mode == PlanMode::DirectIssue {
            self.issue_once(tile, scratch, halves, rows, total_len, run, false)?;
            return Ok(());
        }

        let key = PlanKey {
            len: total_len,
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase: PlanPhase::Vector,
            resident: false,
            tuned: false,
        };
        let token = self.plans.slot_token();
        if let Some((slot_token, slot_key, CachedPlan::Program(plan))) = plan_slot.as_ref() {
            if *slot_token == token && *slot_key == key {
                self.plans.note_hit();
                let plan = Arc::clone(plan);
                return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
            }
        }
        if let Some(CachedPlan::Program(plan)) = self.plans.get(&key) {
            *plan_slot = Some((token, key, CachedPlan::Program(Arc::clone(&plan))));
            return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
        }
        // Cache miss: take the compile lock and re-check, so workers
        // racing on the same fresh shape converge on one plan (one
        // compile per batch, not one per worker).
        let compile_guard = self.plans.lock_for_compile();
        if let Some(CachedPlan::Program(plan)) = self.plans.get(&key) {
            drop(compile_guard);
            *plan_slot = Some((token, key, CachedPlan::Program(Arc::clone(&plan))));
            return self.replay_plan(&plan, tile, scratch, halves, total_len, run);
        }
        // Still missing: record the trace while executing this vector.
        let started = std::time::Instant::now();
        let (mut program, sum_reg) = self
            .issue_once(tile, scratch, halves, rows, total_len, run, true)?
            .expect("recording execution returns a program");
        let report = optimizer::optimize(&mut program, self.opt_level);
        if report.changed() {
            // The pass pipeline rewrote the trace and invalidated the
            // recorded costs: one recost execution charges the fused
            // schedule and overwrites this vector's run with it.
            self.recost_whole(&mut program, sum_reg, tile, scratch, halves, total_len, run)?;
        }
        self.apply_blocking(&mut program);
        let plan = Arc::new(CompiledPlan::new(
            program,
            sum_reg,
            run.rows,
            run.cols_used,
            report,
            started.elapsed().as_secs_f64() * 1e6,
        ));
        self.plans
            .insert(key, CachedPlan::Program(Arc::clone(&plan)));
        drop(compile_guard);
        // Stamp the slot with the token captured before the lookup: a
        // clear_plans() racing in after the insert must still
        // invalidate this slot on its next vector.
        *plan_slot = Some((token, key, CachedPlan::Program(plan)));
        Ok(())
    }

    fn cfg(&self) -> &PrecisionConfig {
        self.sm.config()
    }

    /// Column budget for one half-vector's fields.
    fn half_width(&self) -> usize {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work = (3 * m + 2).max(w.poly as usize + 1);
        m + w.q as usize + work + m + w.vapprox as usize + w.result as usize
    }

    /// Column budget of one half-vector's exp-phase fields (the
    /// whole-vector budget minus the result column).
    fn exp_half_width(&self) -> usize {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work = (3 * m + 2).max(w.poly as usize + 1);
        m + w.q as usize + work + m + w.vapprox as usize
    }

    fn alloc_exp_half(&self, ap: &mut ApCore) -> Result<ExpFields, CoreError> {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work_w = (3 * m + 2).max(w.poly as usize + 1);
        Ok(ExpFields {
            x: ap.alloc_field(m)?,
            q: ap.alloc_field(w.q as usize)?,
            work: ap.alloc_field(work_w)?,
            t: ap.alloc_field(m)?,
            vapprox: ap.alloc_field(w.vapprox as usize)?,
        })
    }

    fn alloc_half(&self, ap: &mut ApCore) -> Result<HalfFields, CoreError> {
        let w = self.sm.widths();
        Ok(HalfFields {
            exp: self.alloc_exp_half(ap)?,
            res: ap.alloc_field(w.result as usize)?,
        })
    }

    fn overflow_mode(&self) -> Overflow {
        match self.cfg().sum_mode {
            SumMode::Saturate => Overflow::Saturate,
            SumMode::Wrap => Overflow::Wrap,
            SumMode::Exact => Overflow::Error,
        }
    }

    /// Executes the dataflow once by direct issue, optionally recording
    /// the trace into a program. `halves` hold the |code| magnitudes of
    /// each half-vector (one or two), each of length `rows`. Executes
    /// on the pooled `tile` and writes everything into `run`'s reused
    /// buffers.
    #[allow(clippy::too_many_arguments)]
    fn issue_once(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        rows: usize,
        total_len: usize,
        run: &mut ApSoftmaxRun,
        record: bool,
    ) -> Result<Option<(softmap_ap::ApProgram, RegId)>, CoreError> {
        let m = self.cfg().m as usize;
        let w = *self.sm.widths();
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;

        // Tile geometry: per-half fields + shared operand/sum/divisor
        // fields + reserved carry/flag + scratch headroom for division.
        let shared = (2 * m + 1) + sum_bits + sum_bits + m;
        let scratch_cols = 2 * (sum_bits + 2) + 2 * (w.result as usize + w.vapprox as usize + 2);
        let cols = 2 + halves.len() * self.half_width() + shared + scratch_cols;
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;

        let mut field_slots: [Option<HalfFields>; 2] = [None, None];
        for slot in field_slots.iter_mut().take(halves.len()) {
            *slot = Some(self.alloc_half(ap)?);
        }
        // Shared operand field (holds µ, vln2, vb, vc in turn), the
        // per-row pair-sum field, the broadcast divisor, and the min.
        let op = ap.alloc_field(2 * m + 1)?;
        let sumw = ap.alloc_field(sum_bits)?;
        let den = ap.alloc_field(sum_bits)?;
        let minf = ap.alloc_field(m)?;
        let cols_used = den.end();

        let sum_reg;
        let program;
        {
            let ApSoftmaxRun {
                codes,
                vapprox,
                steps,
                ..
            } = run;
            codes.clear();
            vapprox.clear();
            steps.clear();
            let mut outs: [&mut Vec<u64>; 2] = [codes, vapprox];
            let mut on_step =
                |name: &'static str, stats: CycleStats| steps.push(StepStats { name, stats });
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                &mut on_step,
                record,
            );
            sum_reg =
                self.issue_dataflow(&mut rec, &field_slots[..halves.len()], op, sumw, den, minf)?;
            program = rec.finish();
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.frac_bits = w.frac_bits();
        run.sum = scratch.reg(sum_reg);
        run.total = ap.stats();
        run.rows = rows;
        run.cols_used = cols_used;
        Self::finish_unsharded(run);
        Ok(program.map(|p| (p, sum_reg)))
    }

    /// Stamps the single-tile device view onto an unsharded run.
    fn finish_unsharded(run: &mut ApSoftmaxRun) {
        run.shards = 1;
        run.waves = 1;
        run.latency_cycles = run.total.cycles();
        run.reduction = CycleStats::default();
    }

    /// Replays a cached plan: load → replay → read, no per-op host
    /// dispatch. Bit- and cycle-exact versus [`PlanMode::DirectIssue`]
    /// by the program-replay contract.
    fn replay_plan(
        &self,
        plan: &CompiledPlan,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        total_len: usize,
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        let ap = tile.acquire(plan.program().config(), self.backend)?;
        {
            let ApSoftmaxRun {
                codes,
                vapprox,
                steps,
                ..
            } = run;
            codes.clear();
            vapprox.clear();
            steps.clear();
            let mut outs: [&mut Vec<u64>; 2] = [codes, vapprox];
            plan.program().replay(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                |name, stats| steps.push(StepStats { name, stats }),
            )?;
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.frac_bits = self.sm.widths().frac_bits();
        run.sum = scratch.reg(plan.result_reg());
        run.total = ap.stats();
        run.rows = plan.rows();
        run.cols_used = plan.cols_used();
        Self::finish_unsharded(run);
        Ok(())
    }

    /// Re-executes a freshly optimized whole-vector program once
    /// ([`ApProgram::recost`]): the recorded per-op costs described the
    /// unoptimized trace, so one execution of the fused schedule
    /// re-anchors the program's static cost and overwrites `run` with
    /// the optimized outcome this vector returns.
    #[allow(clippy::too_many_arguments)]
    fn recost_whole(
        &self,
        program: &mut ApProgram,
        sum_reg: RegId,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        total_len: usize,
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        let ap = tile.acquire(program.config(), self.backend)?;
        {
            let ApSoftmaxRun {
                codes,
                vapprox,
                steps,
                ..
            } = run;
            codes.clear();
            vapprox.clear();
            steps.clear();
            let mut outs: [&mut Vec<u64>; 2] = [codes, vapprox];
            program.recost(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                |name, stats| {
                    steps.push(StepStats { name, stats });
                },
            )?;
        }
        run.codes.truncate(total_len);
        run.vapprox.truncate(total_len);
        run.sum = scratch.reg(sum_reg);
        run.total = ap.stats();
        Self::finish_unsharded(run);
        Ok(())
    }

    // ---- sharded long-sequence execution --------------------------------

    /// Executes a vector that exceeds one tile's row capacity, sharded
    /// across the device's tile grid. The dataflow has two cross-tile
    /// synchronization points (Fig. 5 adapted to a tile grid):
    ///
    /// 1. **min phase** — every shard loads its slice and runs the
    ///    bit-serial min search; the shard minima combine over the
    ///    reduction network into the global minimum,
    /// 2. **exp phase** — every shard re-stages its slice, subtracts
    ///    the global minimum (arriving as a program *scalar input*),
    ///    runs the integer exponential, and tree-reduces its partial
    ///    sum; the partials combine over the network (in the scalar
    ///    spec's overflow mode) into the divisor,
    /// 3. **divide phase** — every shard stages its `v_approx` slice
    ///    and divides by the broadcast divisor.
    ///
    /// Bit-exactness versus the scalar spec holds because the global
    /// minimum is the min of shard minima and the saturating/wrapping
    /// sum of non-negative values is order-independent. The cost
    /// contract charges each phase's staging (tiles do not retain state
    /// across global synchronization points) plus the deterministic
    /// reduction-network formula; the device critical path adds wave
    /// scheduling when shards exceed the grid.
    fn execute_sharded(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        mode: PlanMode,
    ) -> Result<(), CoreError> {
        let mut ranges = std::mem::take(&mut state.shard.ranges);
        let part = self.effective_partition(codes.len(), &mut ranges);
        let result =
            part.and_then(|()| self.execute_sharded_with(state, codes, run, mode, &ranges));
        state.shard.ranges = ranges;
        result
    }

    /// The shard partition this mapping executes `len` elements with:
    /// the candidate-view override when the autotuner is evaluating a
    /// specific partition, the device's greedy default otherwise.
    fn effective_partition(
        &self,
        len: usize,
        ranges: &mut Vec<(usize, usize)>,
    ) -> Result<(), CoreError> {
        if let Some(ov) = &self.partition_override {
            ranges.clear();
            ranges.extend_from_slice(ov);
            return Ok(());
        }
        self.device
            .partition_into(len, self.words_per_row(), ranges)
            .map_err(CoreError::Ap)
    }

    fn execute_sharded_with(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        mode: PlanMode,
        ranges: &[(usize, usize)],
    ) -> Result<(), CoreError> {
        if mode == PlanMode::DirectIssue {
            // Direct issue stays on the re-staging path: residency is
            // a plan-level optimization, and the direct-vs-replay
            // differential baseline keeps characterizing PR 5's
            // contract exactly.
            return self.run_sharded(
                state,
                codes,
                run,
                ranges,
                ShardExec::Direct,
                false,
                self.layout,
            );
        }
        let resident = self.resident_for(ranges.len());
        let vkey = PlanKey {
            len: codes.len(),
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase: PlanPhase::Vector,
            resident,
            tuned: false,
        };
        let token = self.plans.slot_token();
        if let Some((slot_token, slot_key, CachedPlan::Sharded(plan))) = state.plan.as_ref() {
            if *slot_token == token && *slot_key == vkey {
                self.plans.note_hit();
                let plan = Arc::clone(plan);
                return self.run_sharded(
                    state,
                    codes,
                    run,
                    ranges,
                    ShardExec::Replay(&plan),
                    resident,
                    self.layout,
                );
            }
        }
        if let Some(CachedPlan::Sharded(plan)) = self.plans.get(&vkey) {
            state.plan = Some((token, vkey, CachedPlan::Sharded(Arc::clone(&plan))));
            return self.run_sharded(
                state,
                codes,
                run,
                ranges,
                ShardExec::Replay(&plan),
                resident,
                self.layout,
            );
        }
        // Vector-shape miss: compile under the lock so racing workers
        // converge on one sharded plan (phase programs compiled along
        // the way are themselves cached and shared).
        let compile_guard = self.plans.lock_for_compile();
        if let Some(CachedPlan::Sharded(plan)) = self.plans.get(&vkey) {
            drop(compile_guard);
            state.plan = Some((token, vkey, CachedPlan::Sharded(Arc::clone(&plan))));
            return self.run_sharded(
                state,
                codes,
                run,
                ranges,
                ShardExec::Replay(&plan),
                resident,
                self.layout,
            );
        }
        let started = std::time::Instant::now();
        let mut builder = ShardPlanBuilder::default();
        self.run_sharded(
            state,
            codes,
            run,
            ranges,
            ShardExec::Compile(&mut builder),
            resident,
            self.layout,
        )?;
        let plan = Arc::new(ShardedPlan {
            ranges: ranges.to_vec(),
            min_plans: builder.min_plans,
            exp_plans: builder.exp_plans,
            div_plans: builder.div_plans,
            steps: run.steps.clone(),
            total: run.total,
            reduction: run.reduction,
            latency_cycles: run.latency_cycles,
            waves: run.waves,
            rows: run.rows,
            cols_used: run.cols_used,
            compile_micros: started.elapsed().as_secs_f64() * 1e6,
            resident,
        });
        self.plans
            .insert(vkey, CachedPlan::Sharded(Arc::clone(&plan)));
        drop(compile_guard);
        state.plan = Some((token, vkey, CachedPlan::Sharded(plan)));
        Ok(())
    }

    /// The three sharded passes; `exec` selects direct issue, cached
    /// replay, or compile (get-or-record each shard shape's phase
    /// program while executing). `resident` selects the residency
    /// plan: shard tiles pinned across phases (from the per-shard tile
    /// pool), phase-boundary staging elided, followers charged in
    /// lockstep — versus the PR 5 re-staging path. `layout` is the row
    /// packing the shards stage under — the configured layout on every
    /// path except tuned replay, which packs by the winner's layout.
    #[allow(clippy::too_many_arguments)]
    fn run_sharded(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        ranges: &[(usize, usize)],
        mut exec: ShardExec<'_>,
        resident: bool,
        layout: Layout,
    ) -> Result<(), CoreError> {
        // A cached sharded plan is only valid for the exact partition
        // (and residency mode) it was compiled at; the phase-program
        // vectors are indexed by shard position below.
        if let ShardExec::Replay(plan) = &exec {
            if plan.ranges != ranges || plan.resident != resident {
                return Err(CoreError::BadWorkload(
                    "cached sharded plan does not match the device partition".into(),
                ));
            }
        }
        let shards = ranges.len();
        let total_len = codes.len();
        let m_bits = self.cfg().m;
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg());
        let w = *self.sm.widths();

        let TileState {
            tile,
            half0,
            half1,
            scratch,
            shard,
            ..
        } = state;
        let ShardScratch {
            minima,
            partials,
            phase_cycles,
            loads,
            tiles: shard_tiles,
            ..
        } = shard;
        let ApSoftmaxRun {
            codes: out_codes,
            vapprox: out_vap,
            steps,
            ..
        } = run;
        out_codes.clear();
        out_vap.clear();
        steps.clear();
        minima.clear();
        partials.clear();
        for pc in phase_cycles.iter_mut() {
            pc.clear();
        }
        if resident && shard_tiles.len() < shards {
            // The pool only grows; steady-state resident execution
            // re-acquires existing arenas with zero allocations.
            shard_tiles.resize_with(shards, ApTile::new);
        }
        let mut total = CycleStats::default();
        let mut rows_max = 0usize;
        let mut cols_max = 0usize;

        // Pass 1: per-shard min search. Resident shards acquire their
        // pinned tile at the shared union geometry here (the one clear
        // of the vector's lifetime); passes 2 and 3 only re-arm it.
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let (packed, rows) = Self::packing_of(layout, e - s);
            rows_max = rows_max.max(rows);
            half0.clear();
            half0.extend(codes[s..s + rows].iter().map(|&c| c.unsigned_abs()));
            half1.clear();
            if packed {
                half1.extend(codes[s + rows..e].iter().map(|&c| c.unsigned_abs()));
            }
            let halves_arr: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
            let halves = if packed {
                &halves_arr[..]
            } else {
                &halves_arr[..1]
            };
            let tile_i: &mut ApTile = if resident {
                &mut shard_tiles[i]
            } else {
                &mut *tile
            };
            let (stats, cols_used, minv) = match &mut exec {
                ShardExec::Direct => {
                    let (stats, cols, minv, _) =
                        self.issue_min_phase(tile_i, scratch, halves, rows, steps, false)?;
                    (stats, cols, minv)
                }
                ShardExec::Replay(plan) => {
                    let p = &plan.min_plans[i];
                    let mut outs: [&mut Vec<u64>; 0] = [];
                    let stats = self.replay_shard_phase(
                        p,
                        tile_i,
                        scratch,
                        halves,
                        &[],
                        &mut outs,
                        steps,
                        phase_replay(ranges, i, resident),
                        false,
                    )?;
                    (stats, p.cols_used(), scratch.reg(p.result_reg()))
                }
                ShardExec::Compile(builder) => {
                    let key = self.shard_key(e - s, PlanPhase::ShardMin, resident);
                    if let Some(CachedPlan::Program(p)) = self.plans.peek(&key) {
                        let mut outs: [&mut Vec<u64>; 0] = [];
                        let stats = self.replay_shard_phase(
                            &p,
                            tile_i,
                            scratch,
                            halves,
                            &[],
                            &mut outs,
                            steps,
                            phase_replay(ranges, i, resident),
                            false,
                        )?;
                        let minv = scratch.reg(p.result_reg());
                        builder.min_plans.push(Arc::clone(&p));
                        (stats, p.cols_used(), minv)
                    } else {
                        let steps_snapshot = steps.clone();
                        let started = std::time::Instant::now();
                        let (stats, cols, _, prog) = if resident {
                            self.issue_resident_min_phase(
                                tile_i, scratch, halves, rows, steps, true,
                            )?
                        } else {
                            self.issue_min_phase(tile_i, scratch, halves, rows, steps, true)?
                        };
                        let (mut program, reg) = prog.expect("recording returns a program");
                        let mut outs: [&mut Vec<u64>; 0] = [];
                        let (report, stats, minv) = self.optimize_phase(
                            &mut program,
                            reg,
                            tile_i,
                            scratch,
                            halves,
                            &[],
                            &mut outs,
                            &[],
                            &[],
                            steps,
                            steps_snapshot,
                            stats,
                        )?;
                        let p = Arc::new(CompiledPlan::new(
                            program,
                            reg,
                            rows,
                            cols,
                            report,
                            started.elapsed().as_secs_f64() * 1e6,
                        ));
                        self.plans.insert(key, CachedPlan::Program(Arc::clone(&p)));
                        builder.min_plans.push(p);
                        (stats, cols, minv)
                    }
                }
            };
            minima.push(minv);
            phase_cycles[0].push(stats.cycles());
            cols_max = cols_max.max(cols_used);
            total.accumulate(&stats);
        }

        // Cross-tile min over the reduction network.
        let global_min = minima.iter().copied().min().expect("shards >= 1");
        let red_min = self.device.reduction_network(shards, m_bits);
        accumulate_step(steps, "device: cross-tile min", red_min);
        total.accumulate(&red_min);

        // Pass 2: per-shard exp + partial sum (global min arrives as a
        // program scalar input). Resident shards re-arm their pinned
        // tile: the score planes written by the min phase are the exp
        // phase's input, so no host staging and no `Load` ops happen —
        // the halves are only (re)packed on the compile path, where
        // the optimizer's recost needs them to prestage a cleared
        // tile.
        let no_inputs: [&[u64]; 0] = [];
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let (packed, rows) = Self::packing_of(layout, e - s);
            let stage_hosts = !resident || matches!(exec, ShardExec::Compile(_));
            half0.clear();
            half1.clear();
            if stage_hosts {
                half0.extend(codes[s..s + rows].iter().map(|&c| c.unsigned_abs()));
                if packed {
                    half1.extend(codes[s + rows..e].iter().map(|&c| c.unsigned_abs()));
                }
            }
            let halves_arr: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
            let halves = if packed {
                &halves_arr[..]
            } else {
                &halves_arr[..1]
            };
            let halves_n = halves.len();
            let replay_inputs: &[&[u64]] = if resident { &no_inputs } else { halves };
            let tile_i: &mut ApTile = if resident {
                &mut shard_tiles[i]
            } else {
                &mut *tile
            };
            let scalars = [global_min];
            let (stats, cols_used, partial) = match &mut exec {
                ShardExec::Direct => {
                    let (stats, cols, partial, _) = self.issue_exp_phase(
                        tile_i, scratch, halves, rows, &scalars, out_vap, steps, false,
                    )?;
                    (stats, cols, partial)
                }
                ShardExec::Replay(plan) => {
                    let p = &plan.exp_plans[i];
                    let mut outs: [&mut Vec<u64>; 1] = [out_vap];
                    let stats = self.replay_shard_phase(
                        p,
                        tile_i,
                        scratch,
                        replay_inputs,
                        &scalars,
                        &mut outs,
                        steps,
                        phase_replay(ranges, i, resident),
                        resident,
                    )?;
                    (stats, p.cols_used(), scratch.reg(p.result_reg()))
                }
                ShardExec::Compile(builder) => {
                    let key = self.shard_key(e - s, PlanPhase::ShardExp, resident);
                    if let Some(CachedPlan::Program(p)) = self.plans.peek(&key) {
                        let mut outs: [&mut Vec<u64>; 1] = [out_vap];
                        let stats = self.replay_shard_phase(
                            &p,
                            tile_i,
                            scratch,
                            replay_inputs,
                            &scalars,
                            &mut outs,
                            steps,
                            phase_replay(ranges, i, resident),
                            resident,
                        )?;
                        let partial = scratch.reg(p.result_reg());
                        builder.exp_plans.push(Arc::clone(&p));
                        (stats, p.cols_used(), partial)
                    } else {
                        let steps_snapshot = steps.clone();
                        let vap_mark = out_vap.len();
                        let started = std::time::Instant::now();
                        let (stats, cols, _, prog) = if resident {
                            self.issue_resident_exp_phase(
                                tile_i, scratch, halves_n, rows, &scalars, out_vap, steps, true,
                            )?
                        } else {
                            self.issue_exp_phase(
                                tile_i, scratch, halves, rows, &scalars, out_vap, steps, true,
                            )?
                        };
                        let (mut program, reg) = prog.expect("recording returns a program");
                        let mut outs: [&mut Vec<u64>; 1] = [out_vap];
                        // The resident recost re-creates the pre-phase
                        // plane state on a cleared tile by prestaging
                        // the score planes the min phase left behind.
                        let prestage: Vec<(Field, &[u64])> = if resident {
                            (0..halves_n)
                                .map(|h| (self.resident_x_field(h), halves[h]))
                                .collect()
                        } else {
                            Vec::new()
                        };
                        let (report, stats, partial) = self.optimize_phase(
                            &mut program,
                            reg,
                            tile_i,
                            scratch,
                            replay_inputs,
                            &scalars,
                            &mut outs,
                            &[vap_mark],
                            &prestage,
                            steps,
                            steps_snapshot,
                            stats,
                        )?;
                        let p = Arc::new(CompiledPlan::new(
                            program,
                            reg,
                            rows,
                            cols,
                            report,
                            started.elapsed().as_secs_f64() * 1e6,
                        ));
                        self.plans.insert(key, CachedPlan::Program(Arc::clone(&p)));
                        builder.exp_plans.push(p);
                        (stats, cols, partial)
                    }
                }
            };
            partials.push(partial);
            phase_cycles[1].push(stats.cycles());
            cols_max = cols_max.max(cols_used);
            total.accumulate(&stats);
        }

        // Cross-tile sum over the reduction network, in the scalar
        // spec's overflow mode.
        let combined = self.combine_partials(partials)?;
        let red_sum = self.device.reduction_network(shards, sum_bits);
        accumulate_step(steps, "device: cross-tile sum", red_sum);
        total.accumulate(&red_sum);

        // Pass 3: per-shard divide by the broadcast divisor. Resident
        // shards divide the `v_approx` planes the exp phase left in
        // their pinned tiles, so the host never re-stages them.
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let (packed, rows) = Self::packing_of(layout, e - s);
            let stage_hosts = !resident || matches!(exec, ShardExec::Compile(_));
            let vap = &out_vap[s..e];
            let vap_halves_arr: [&[u64]; 2] = [&vap[..rows], &vap[rows.min(vap.len())..]];
            let vap_halves_all = if packed {
                &vap_halves_arr[..]
            } else {
                &vap_halves_arr[..1]
            };
            let halves_n = vap_halves_all.len();
            let vap_halves: &[&[u64]] = if stage_hosts {
                vap_halves_all
            } else {
                &no_inputs
            };
            let replay_inputs: &[&[u64]] = if resident { &no_inputs } else { vap_halves };
            let tile_i: &mut ApTile = if resident {
                &mut shard_tiles[i]
            } else {
                &mut *tile
            };
            let scalars = [combined];
            let (stats, cols_used) = match &mut exec {
                ShardExec::Direct => {
                    let (stats, cols, _) = self.issue_div_phase(
                        tile_i, scratch, vap_halves, rows, &scalars, out_codes, steps, false,
                    )?;
                    (stats, cols)
                }
                ShardExec::Replay(plan) => {
                    let p = &plan.div_plans[i];
                    let mut outs: [&mut Vec<u64>; 1] = [out_codes];
                    let stats = self.replay_shard_phase(
                        p,
                        tile_i,
                        scratch,
                        replay_inputs,
                        &scalars,
                        &mut outs,
                        steps,
                        phase_replay(ranges, i, resident),
                        resident,
                    )?;
                    (stats, p.cols_used())
                }
                ShardExec::Compile(builder) => {
                    let key = self.shard_key(e - s, PlanPhase::ShardDiv, resident);
                    if let Some(CachedPlan::Program(p)) = self.plans.peek(&key) {
                        let mut outs: [&mut Vec<u64>; 1] = [out_codes];
                        let stats = self.replay_shard_phase(
                            &p,
                            tile_i,
                            scratch,
                            replay_inputs,
                            &scalars,
                            &mut outs,
                            steps,
                            phase_replay(ranges, i, resident),
                            resident,
                        )?;
                        builder.div_plans.push(Arc::clone(&p));
                        (stats, p.cols_used())
                    } else {
                        let steps_snapshot = steps.clone();
                        let codes_mark = out_codes.len();
                        let started = std::time::Instant::now();
                        let (stats, cols, prog) = if resident {
                            self.issue_resident_div_phase(
                                tile_i, scratch, halves_n, rows, &scalars, out_codes, steps, true,
                            )?
                        } else {
                            self.issue_div_phase(
                                tile_i, scratch, vap_halves, rows, &scalars, out_codes, steps, true,
                            )?
                        };
                        let (mut program, reg) = prog.expect("recording returns a program");
                        let mut outs: [&mut Vec<u64>; 1] = [out_codes];
                        // Recost on a cleared tile prestages the
                        // `v_approx` planes the exp phase persisted.
                        let prestage: Vec<(Field, &[u64])> = if resident {
                            (0..halves_n)
                                .map(|h| (self.resident_vapprox_field(h), vap_halves_all[h]))
                                .collect()
                        } else {
                            Vec::new()
                        };
                        let (report, stats, _) = self.optimize_phase(
                            &mut program,
                            reg,
                            tile_i,
                            scratch,
                            replay_inputs,
                            &scalars,
                            &mut outs,
                            &[codes_mark],
                            &prestage,
                            steps,
                            steps_snapshot,
                            stats,
                        )?;
                        let p = Arc::new(CompiledPlan::new(
                            program,
                            reg,
                            rows,
                            cols,
                            report,
                            started.elapsed().as_secs_f64() * 1e6,
                        ));
                        self.plans.insert(key, CachedPlan::Program(Arc::clone(&p)));
                        builder.div_plans.push(p);
                        (stats, cols)
                    }
                }
            };
            phase_cycles[2].push(stats.cycles());
            cols_max = cols_max.max(cols_used);
            total.accumulate(&stats);
        }
        debug_assert_eq!(out_codes.len(), total_len);
        debug_assert_eq!(out_vap.len(), total_len);

        // Device view: critical path = per-phase wave makespans plus
        // the reduction-network cycles. Under residency the followers'
        // per-phase cycles are tiny (input staging only) or zero, so
        // the makespan collapses to the per-wave leader.
        let mut latency = red_min.cycles() + red_sum.cycles();
        for pc in phase_cycles.iter() {
            latency += device::wave_makespan(pc, self.device.tiles, loads);
        }
        let mut reduction = red_min;
        reduction.accumulate(&red_sum);

        run.frac_bits = w.frac_bits();
        run.sum = combined;
        run.total = total;
        run.rows = rows_max;
        run.cols_used = cols_max;
        run.shards = shards;
        run.waves = self.device.waves(shards);
        run.latency_cycles = latency;
        run.reduction = reduction;
        Ok(())
    }

    fn shard_key(&self, shard_len: usize, phase: PlanPhase, resident: bool) -> PlanKey {
        PlanKey {
            len: shard_len,
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase,
            resident,
            tuned: false,
        }
    }

    /// Combines per-shard partial sums over the reduction network in
    /// the scalar spec's overflow mode — bit-identical to the
    /// whole-vector reduction because saturating/wrapping addition of
    /// non-negative values is order-independent.
    fn combine_partials(&self, partials: &[u64]) -> Result<u64, CoreError> {
        self.combine_partials_from(partials.iter().copied())
    }

    /// [`ApSoftmax::combine_partials`] over any per-shard value source
    /// — the shard-parallel fan-out combines straight from its atomic
    /// deposit array without staging a slice.
    fn combine_partials_from(&self, partials: impl Iterator<Item = u64>) -> Result<u64, CoreError> {
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg());
        let mask: u128 = if sum_bits >= 128 {
            u128::MAX
        } else {
            (1u128 << sum_bits) - 1
        };
        let exact: u128 = partials.map(u128::from).sum();
        match self.overflow_mode() {
            Overflow::Error => {
                if exact > mask {
                    Err(CoreError::Ap(ApError::WidthOverflow {
                        value: u64::try_from(exact).unwrap_or(u64::MAX),
                        width: sum_bits as usize,
                    }))
                } else {
                    Ok(exact as u64)
                }
            }
            Overflow::Saturate => Ok(exact.min(mask) as u64),
            Overflow::Wrap => Ok((exact & mask) as u64),
        }
    }

    /// Replays one shard-phase program on a tile. `mode` selects the
    /// pricing (see [`phase_replay`]); `rearm` keeps the tile's CAM
    /// cells across the call (resident phases re-arm their pinned tile
    /// instead of clearing it, so the previous phase's output planes
    /// survive as this phase's inputs).
    #[allow(clippy::too_many_arguments)]
    fn replay_shard_phase<'d>(
        &self,
        plan: &CompiledPlan,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        inputs: &[&'d [u64]],
        scalars: &[u64],
        outs: &mut [&'d mut Vec<u64>],
        steps: &mut Vec<StepStats>,
        mode: PhaseReplay,
        rearm: bool,
    ) -> Result<CycleStats, CoreError> {
        let config = plan.program().config();
        let ap = if rearm {
            tile.rearm_resident(config, self.backend)?
        } else {
            tile.acquire(config, self.backend)?
        };
        let io = ExecIo::new(inputs, outs).with_scalars(scalars);
        let on_step = |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
        match mode {
            PhaseReplay::Full => plan.program().replay(ap, io, scratch, on_step)?,
            PhaseReplay::Hoisted => plan.program().replay_resident(ap, io, scratch, on_step)?,
            PhaseReplay::Lockstep => plan.program().replay_lockstep(ap, io, scratch, on_step)?,
        }
        Ok(ap.stats())
    }

    /// Optimizes a freshly recorded shard-phase program. When the pass
    /// pipeline changed the trace, the recording execution's outputs
    /// and step deltas no longer describe it: they are rolled back (to
    /// `out_marks` / `steps_snapshot`) and one recost execution of the
    /// fused schedule replaces them, also re-anchoring the program's
    /// static cost. A resident phase reads planes a previous phase left
    /// in the tile; `prestage` re-creates that pre-phase state on the
    /// recost's cleared tile by loading `(field, data)` pairs before
    /// the run (and resetting the statistics, so the prestage loads —
    /// which a resident replay never performs — are not charged). The
    /// recost total still matches a resident replay exactly because
    /// write costs are content-independent: charging a program on a
    /// cleared-then-prestaged tile and on a re-armed tile with stale
    /// scratch planes prices identically. Returns the pass report plus
    /// the (possibly re-derived) phase stats and result scalar.
    #[allow(clippy::too_many_arguments)]
    fn optimize_phase<'d>(
        &self,
        program: &mut ApProgram,
        reg: RegId,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        inputs: &[&'d [u64]],
        scalars: &[u64],
        outs: &mut [&'d mut Vec<u64>],
        out_marks: &[usize],
        prestage: &[(Field, &[u64])],
        steps: &mut Vec<StepStats>,
        steps_snapshot: Vec<StepStats>,
        stats: CycleStats,
    ) -> Result<(PassReport, CycleStats, u64), CoreError> {
        let report = optimizer::optimize(program, self.opt_level);
        if !report.changed() {
            self.apply_blocking(program);
            return Ok((report, stats, scratch.reg(reg)));
        }
        *steps = steps_snapshot;
        for (out, &mark) in outs.iter_mut().zip(out_marks) {
            out.truncate(mark);
        }
        let ap = tile.acquire(program.config(), self.backend)?;
        for &(field, data) in prestage {
            ap.load(field, data)?;
        }
        if !prestage.is_empty() {
            ap.reset_stats();
        }
        program.recost(
            ap,
            ExecIo::new(inputs, outs).with_scalars(scalars),
            scratch,
            |name, stats| accumulate_step(steps, name, stats),
        )?;
        self.apply_blocking(program);
        Ok((report, ap.stats(), scratch.reg(reg)))
    }

    /// Min phase: load the shard's halves and min-search them. Returns
    /// (stats, cols_used, shard minimum, recorded program).
    #[allow(clippy::type_complexity)]
    fn issue_min_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        rows: usize,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, u64, Option<(ApProgram, RegId)>), CoreError> {
        let m = self.cfg().m as usize;
        let cols = 2 + halves.len() * m;
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;
        let mut fields: [Option<Field>; 2] = [None, None];
        for slot in fields.iter_mut().take(halves.len()) {
            *slot = Some(ap.alloc_field(m)?);
        }
        let cols_used = fields
            .iter()
            .flatten()
            .last()
            .map_or(0, softmap_ap::Field::end);
        let min_reg;
        let program;
        {
            let mut outs: [&mut Vec<u64>; 0] = [];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                &mut on_step,
                record,
            );
            for (slot, f) in fields.iter().flatten().enumerate() {
                rec.load(*f, slot)?;
            }
            rec.step("shard: write v");
            let mut reg: Option<RegId> = None;
            for f in fields.iter().flatten() {
                let r = rec.min_search(*f);
                reg = Some(match reg {
                    Some(prev) => rec.reg_min(prev, r),
                    None => r,
                });
            }
            min_reg = reg.expect("at least one half");
            rec.step("shard: min search");
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((
            stats,
            cols_used,
            scratch.reg(min_reg),
            program.map(|p| (p, min_reg)),
        ))
    }

    /// Exp phase: re-stage the shard, subtract the global minimum
    /// (scalar input 0), run the integer exponential, tree-reduce the
    /// partial sum, and read `v_approx` out (output slot 0). Returns
    /// (stats, cols_used, partial sum, recorded program).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn issue_exp_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        rows: usize,
        scalars: &[u64],
        vap_out: &mut Vec<u64>,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, u64, Option<(ApProgram, RegId)>), CoreError> {
        let m = self.cfg().m as usize;
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;
        let shared = (2 * m + 1) + sum_bits + sum_bits + m;
        let cols = 2 + halves.len() * self.exp_half_width() + shared + (sum_bits + 2);
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;
        let mut exp_arr: [Option<ExpFields>; 2] = [None, None];
        for slot in exp_arr.iter_mut().take(halves.len()) {
            *slot = Some(self.alloc_exp_half(ap)?);
        }
        let exp = &exp_arr[..halves.len()];
        let op = ap.alloc_field(2 * m + 1)?;
        let sumw = ap.alloc_field(sum_bits)?;
        let den = ap.alloc_field(sum_bits)?;
        let minf = ap.alloc_field(m)?;
        let cols_used = minf.end();
        let sum_reg;
        let program;
        {
            let mut outs: [&mut Vec<u64>; 1] = [vap_out];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(halves, &mut outs).with_scalars(scalars),
                scratch,
                &mut on_step,
                record,
            );
            for (slot, f) in exp.iter().flatten().enumerate() {
                rec.load(f.x, slot)?;
            }
            rec.step("shard: rewrite v");
            let g = rec.reg_input(0)?;
            Self::issue_stabilize(&mut rec, exp, minf, g, "2: subtract max")?;
            self.issue_exp_approx(&mut rec, exp, op)?;
            sum_reg =
                self.issue_partial_reduce(&mut rec, exp, sumw, den, "14: partial reduction")?;
            for f in exp.iter().flatten() {
                rec.read(f.vapprox, 0)?;
            }
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((
            stats,
            cols_used,
            scratch.reg(sum_reg),
            program.map(|p| (p, sum_reg)),
        ))
    }

    /// Divide phase: stage the shard's `v_approx` slice, broadcast the
    /// clamped divisor (scalar input 0), divide, and read the codes out
    /// (output slot 0). Returns (stats, cols_used, recorded program).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn issue_div_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        vap_halves: &[&[u64]],
        rows: usize,
        scalars: &[u64],
        codes_out: &mut Vec<u64>,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, Option<(ApProgram, RegId)>), CoreError> {
        let w = *self.sm.widths();
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;
        let per_half = w.vapprox as usize + w.result as usize;
        let scratch_cols = (sum_bits + 2) + 2 * (w.result as usize + w.vapprox as usize + 2);
        let cols = 2 + vap_halves.len() * per_half + sum_bits + scratch_cols;
        let ap = tile.acquire(ApConfig::new(rows, cols), self.backend)?;
        let mut fields: [Option<(Field, Field)>; 2] = [None, None];
        for slot in fields.iter_mut().take(vap_halves.len()) {
            *slot = Some((
                ap.alloc_field(w.vapprox as usize)?,
                ap.alloc_field(w.result as usize)?,
            ));
        }
        let den = ap.alloc_field(sum_bits)?;
        let cols_used = den.end();
        let sum_reg;
        let program;
        {
            let mut outs: [&mut Vec<u64>; 1] = [codes_out];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(vap_halves, &mut outs).with_scalars(scalars),
                scratch,
                &mut on_step,
                record,
            );
            for (slot, (vap, _)) in fields.iter().flatten().enumerate() {
                rec.load(*vap, slot)?;
            }
            sum_reg = rec.reg_input(0)?;
            let den_reg = rec.reg_max1(sum_reg);
            rec.broadcast_reg(den, den_reg)?;
            rec.step("shard: write v_approx + divisor");
            let f_bits = w.frac_bits() as usize;
            for (vap, res) in fields.iter().flatten() {
                rec.divide(*vap, den, *res, f_bits, self.div_style)?;
            }
            rec.step("16: divide");
            for (_, res) in fields.iter().flatten() {
                rec.read(*res, 0)?;
            }
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((stats, cols_used, program.map(|p| (p, sum_reg))))
    }

    /// The **union** tile geometry every resident shard phase runs at:
    /// the whole-vector layout of [`ApSoftmax::issue_once`] (per-half
    /// [`HalfFields`], then the shared operand/sum/divisor/min fields,
    /// then division scratch headroom). All three resident phase
    /// programs allocate these fields in the identical order, so a
    /// column range means the same thing in every phase and planes
    /// written by one phase are readable by the next (the residency
    /// contract in `softmap_ap::program`).
    fn resident_config(&self, halves: usize, rows: usize) -> ApConfig {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;
        let shared = (2 * m + 1) + sum_bits + sum_bits + m;
        let scratch_cols = 2 * (sum_bits + 2) + 2 * (w.result as usize + w.vapprox as usize + 2);
        let cols = 2 + halves * self.half_width() + shared + scratch_cols;
        ApConfig::new(rows, cols)
    }

    /// Allocates the union layout on a (cleared or re-armed) core.
    /// Returns the per-half fields and the shared
    /// (`op`, `sumw`, `den`, `minf`) fields, in allocation order.
    #[allow(clippy::type_complexity)]
    fn alloc_resident_fields(
        &self,
        ap: &mut ApCore,
        halves: usize,
    ) -> Result<([Option<HalfFields>; 2], Field, Field, Field, Field), CoreError> {
        let m = self.cfg().m as usize;
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;
        let mut slots: [Option<HalfFields>; 2] = [None, None];
        for slot in slots.iter_mut().take(halves) {
            *slot = Some(self.alloc_half(ap)?);
        }
        let op = ap.alloc_field(2 * m + 1)?;
        let sumw = ap.alloc_field(sum_bits)?;
        let den = ap.alloc_field(sum_bits)?;
        let minf = ap.alloc_field(m)?;
        Ok((slots, op, sumw, den, minf))
    }

    /// Column range of half `h`'s score plane (`x`) in the union
    /// layout — what the min phase loads and the exp phase consumes in
    /// place. Used to prestage the optimizer's recost tile.
    fn resident_x_field(&self, half: usize) -> Field {
        let m = self.cfg().m as usize;
        Field::new(2 + half * self.half_width(), m)
    }

    /// Column range of half `h`'s `v_approx` plane in the union
    /// layout — what the exp phase writes and the divide phase consumes
    /// in place.
    fn resident_vapprox_field(&self, half: usize) -> Field {
        let m = self.cfg().m as usize;
        let w = self.sm.widths();
        let work_w = (3 * m + 2).max(w.poly as usize + 1);
        let offset = m + w.q as usize + work_w + m;
        Field::new(2 + half * self.half_width() + offset, w.vapprox as usize)
    }

    /// Resident min phase: acquire the shard's pinned tile at the
    /// union geometry, load the score planes (the only host staging the
    /// resident lifetime performs), and min-search them. Same return
    /// shape as [`ApSoftmax::issue_min_phase`].
    #[allow(clippy::type_complexity)]
    fn issue_resident_min_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: &[&[u64]],
        rows: usize,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, u64, Option<(ApProgram, RegId)>), CoreError> {
        let ap = tile.acquire(self.resident_config(halves.len(), rows), self.backend)?;
        let (fields, _op, _sumw, _den, minf) = self.alloc_resident_fields(ap, halves.len())?;
        let cols_used = minf.end();
        let min_reg;
        let program;
        {
            let mut outs: [&mut Vec<u64>; 0] = [];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(halves, &mut outs),
                scratch,
                &mut on_step,
                record,
            );
            for (slot, f) in fields.iter().flatten().enumerate() {
                rec.load(f.exp.x, slot)?;
            }
            rec.step("shard: write v");
            let mut reg: Option<RegId> = None;
            for f in fields.iter().flatten() {
                let r = rec.min_search(f.exp.x);
                reg = Some(match reg {
                    Some(prev) => rec.reg_min(prev, r),
                    None => r,
                });
            }
            min_reg = reg.expect("at least one half");
            rec.step("shard: min search");
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((
            stats,
            cols_used,
            scratch.reg(min_reg),
            program.map(|p| (p, min_reg)),
        ))
    }

    /// Resident exp phase: re-arm the pinned tile (score planes stay
    /// put — **no** staging loads), subtract the global minimum (scalar
    /// input 0) in place, run the integer exponential, tree-reduce the
    /// partial sum, and read `v_approx` out (output slot 0). Same
    /// return shape as [`ApSoftmax::issue_exp_phase`].
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn issue_resident_exp_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: usize,
        rows: usize,
        scalars: &[u64],
        vap_out: &mut Vec<u64>,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, u64, Option<(ApProgram, RegId)>), CoreError> {
        let ap = tile.rearm_resident(self.resident_config(halves, rows), self.backend)?;
        let (fields, op, sumw, den, minf) = self.alloc_resident_fields(ap, halves)?;
        let cols_used = minf.end();
        let mut exp_arr: [Option<ExpFields>; 2] = [None, None];
        for (slot, f) in fields.iter().flatten().enumerate() {
            exp_arr[slot] = Some(f.exp);
        }
        let exp = &exp_arr[..halves];
        let sum_reg;
        let program;
        {
            let inputs: [&[u64]; 0] = [];
            let mut outs: [&mut Vec<u64>; 1] = [vap_out];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(&inputs, &mut outs).with_scalars(scalars),
                scratch,
                &mut on_step,
                record,
            );
            let g = rec.reg_input(0)?;
            Self::issue_stabilize(&mut rec, exp, minf, g, "2: subtract max")?;
            self.issue_exp_approx(&mut rec, exp, op)?;
            sum_reg =
                self.issue_partial_reduce(&mut rec, exp, sumw, den, "14: partial reduction")?;
            for f in exp.iter().flatten() {
                rec.read(f.vapprox, 0)?;
            }
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((
            stats,
            cols_used,
            scratch.reg(sum_reg),
            program.map(|p| (p, sum_reg)),
        ))
    }

    /// Resident divide phase: re-arm the pinned tile (`v_approx`
    /// planes stay put — **no** staging loads), broadcast the clamped
    /// divisor (scalar input 0), divide, and read the codes out
    /// (output slot 0). Same return shape as
    /// [`ApSoftmax::issue_div_phase`].
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn issue_resident_div_phase(
        &self,
        tile: &mut ApTile,
        scratch: &mut ProgramScratch,
        halves: usize,
        rows: usize,
        scalars: &[u64],
        codes_out: &mut Vec<u64>,
        steps: &mut Vec<StepStats>,
        record: bool,
    ) -> Result<(CycleStats, usize, Option<(ApProgram, RegId)>), CoreError> {
        let w = *self.sm.widths();
        let ap = tile.rearm_resident(self.resident_config(halves, rows), self.backend)?;
        let (fields, _op, _sumw, den, minf) = self.alloc_resident_fields(ap, halves)?;
        let cols_used = minf.end();
        let sum_reg;
        let program;
        {
            let inputs: [&[u64]; 0] = [];
            let mut outs: [&mut Vec<u64>; 1] = [codes_out];
            let mut on_step =
                |name: &'static str, stats: CycleStats| accumulate_step(steps, name, stats);
            let mut rec = Recorder::new(
                ap,
                ExecIo::new(&inputs, &mut outs).with_scalars(scalars),
                scratch,
                &mut on_step,
                record,
            );
            sum_reg = rec.reg_input(0)?;
            let den_reg = rec.reg_max1(sum_reg);
            rec.broadcast_reg(den, den_reg)?;
            rec.step("shard: write divisor");
            let f_bits = w.frac_bits() as usize;
            for f in fields.iter().flatten() {
                rec.divide(f.exp.vapprox, den, f.res, f_bits, self.div_style)?;
            }
            rec.step("16: divide");
            for f in fields.iter().flatten() {
                rec.read(f.res, 0)?;
            }
            program = rec.finish();
        }
        let stats = ap.stats();
        Ok((stats, cols_used, program.map(|p| (p, sum_reg))))
    }

    /// The sixteen dataflow steps of Fig. 5, issued through a
    /// [`Recorder`] (which either just executes them or additionally
    /// captures the trace). Returns the register holding the reduction
    /// sum.
    fn issue_dataflow(
        &self,
        rec: &mut Recorder<'_, '_>,
        fields: &[Option<HalfFields>],
        op: Field,
        sumw: Field,
        den: Field,
        minf: Field,
    ) -> Result<RegId, ApError> {
        let w = *self.sm.widths();
        let mut exp_arr: [Option<ExpFields>; 2] = [None, None];
        let mut halves = 0;
        for f in fields.iter().flatten() {
            exp_arr[halves] = Some(f.exp);
            halves += 1;
        }
        let exp = &exp_arr[..halves];

        // Step 1: write v (as magnitudes |code|; the sign is implicit in
        // the paper's non-positive input convention).
        for (slot, f) in exp.iter().flatten().enumerate() {
            rec.load(f.x, slot)?;
        }
        rec.step("1: write v");

        // Step 1b/2: find min |code| (= max v) and subtract it:
        // x := neg_vstable = |code| - min. The fold over halves runs in
        // program registers.
        let mut min_reg: Option<RegId> = None;
        for f in exp.iter().flatten() {
            let r = rec.min_search(f.x);
            min_reg = Some(match min_reg {
                Some(prev) => rec.reg_min(prev, r),
                None => r,
            });
        }
        let min_reg = min_reg.expect("at least one half");
        Self::issue_stabilize(rec, exp, minf, min_reg, "2: subtract max")?;

        // Steps 3-13: the integer exponential (shared with the sharded
        // exp phase).
        self.issue_exp_approx(rec, exp, op)?;

        // Step 14: reduction over all rows.
        let sum_reg = self.issue_partial_reduce(rec, exp, sumw, den, "14: reduction")?;

        // Step 15: copy Σ to all rows (broadcast divisor). A wrapped sum
        // of zero is clamped to 1, mirroring the scalar divisor clamp.
        let den_reg = rec.reg_max1(sum_reg);
        rec.broadcast_reg(den, den_reg)?;
        rec.step("15: copy sum");

        // Step 16: divide.
        let f_bits = w.frac_bits() as usize;
        for f in fields.iter().flatten() {
            rec.divide(f.exp.vapprox, den, f.res, f_bits, self.div_style)?;
        }
        rec.step("16: divide");

        // Gather outputs in input order (halves are concatenated),
        // appending into the run's reused buffers.
        for f in fields.iter().flatten() {
            rec.read(f.res, 0)?;
        }
        for f in fields.iter().flatten() {
            rec.read(f.exp.vapprox, 1)?;
        }
        Ok(sum_reg)
    }

    /// Broadcast the (global or per-vector) minimum from `min_reg` and
    /// subtract it from every `x`: `x := neg_vstable = |code| - min`.
    fn issue_stabilize(
        rec: &mut Recorder<'_, '_>,
        exp: &[Option<ExpFields>],
        minf: Field,
        min_reg: RegId,
        mark: &'static str,
    ) -> Result<(), ApError> {
        rec.broadcast_reg(minf, min_reg)?;
        for f in exp.iter().flatten() {
            rec.sub_assert_clean(f.x, minf)?;
        }
        rec.step(mark);
        Ok(())
    }

    /// Steps 3-13 of Fig. 5: Barrett range reduction, the polynomial,
    /// and the variable shift producing `v_approx` — identical between
    /// the whole-vector dataflow and the sharded exp phase.
    fn issue_exp_approx(
        &self,
        rec: &mut Recorder<'_, '_>,
        exp: &[Option<ExpFields>],
        op: Field,
    ) -> Result<(), ApError> {
        let consts = *self.sm.constants();
        let w = *self.sm.widths();
        let m = self.cfg().m as usize;

        // Steps 3-4: write µ, Barrett multiply + shift -> q̂.
        rec.broadcast(op, consts.mu)?;
        rec.step("3: write mu");
        for f in exp.iter().flatten() {
            rec.mul(f.x, op, f.work)?;
            rec.shr_const(f.work, 2 * m)?;
            rec.copy(f.work.sub(0, w.q as usize), f.q)?;
        }
        rec.step("4: multiply+shift (barrett)");

        // Steps 5-6: write vln2, multiply q̂ · vln2.
        rec.broadcast(op, consts.vln2)?;
        rec.step("5: write vln2");
        for f in exp.iter().flatten() {
            rec.mul(f.q, op.sub(0, w.vln2 as usize), f.work)?;
        }
        rec.step("6: multiply q*vln2");

        // Step 7: subtract -> r = neg_vstable - q̂·vln2 (fits M bits).
        for f in exp.iter().flatten() {
            rec.sub_assert_clean(f.x, f.work.sub(0, m))?;
        }
        rec.step("7: subtract (vcorr)");

        // Steps 8-9: write vb, add: t = vb - r (saturating at zero).
        for f in exp.iter().flatten() {
            rec.broadcast(f.t, consts.vb)?;
            rec.saturating_sub_into(f.t, f.x)?;
        }
        rec.step("8-9: write vb, add vcorr");

        // Steps 10-11: copy + multiply -> t².
        for f in exp.iter().flatten() {
            rec.mul(f.t, f.t, f.work)?;
        }
        rec.step("10-11: copy, square");

        // Steps 12-13: write vc, add, then variable shift by q̂.
        rec.broadcast(op, consts.vc)?;
        rec.step("12: write vc");
        for f in exp.iter().flatten() {
            rec.add_into(f.work.sub(0, w.poly as usize), op.sub(0, w.vc as usize))?;
            rec.shr_variable(f.work.sub(0, w.poly as usize), f.q)?;
            rec.copy(f.work.sub(0, w.vapprox as usize), f.vapprox)?;
        }
        rec.step("13: add+shift (vapprox)");
        Ok(())
    }

    /// Step 14: pair-add the halves, then tree-reduce all rows. The
    /// first (only) segment's sum lands in the returned register.
    ///
    /// v_approx values provably fit the effective sum width (they are
    /// bounded by vb²+vc < 2^used_bits ≤ 2^sum_bits), so when the
    /// allocated v_approx field is wider than the sum register only
    /// the low bits carry information.
    fn issue_partial_reduce(
        &self,
        rec: &mut Recorder<'_, '_>,
        exp: &[Option<ExpFields>],
        sumw: Field,
        den: Field,
        mark: &'static str,
    ) -> Result<RegId, ApError> {
        let w = *self.sm.widths();
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg()) as usize;
        let vap_low = (w.vapprox as usize).min(sum_bits);
        let vap0 = exp[0].as_ref().expect("half 0 allocated").vapprox;
        rec.copy(vap0.sub(0, vap_low), sumw)?;
        if let Some(f1) = exp.get(1).and_then(Option::as_ref) {
            rec.add_into(sumw, f1.vapprox.sub(0, vap_low))?;
        }
        let rows = rec.rows();
        let sum_reg = rec.reduce_sum(sumw, den, rows, self.overflow_mode())?;
        rec.step(mark);
        Ok(sum_reg)
    }

    // ---- analytic cost queries ------------------------------------------

    /// The deterministic representative input the cost tables compile
    /// plans from: a spread over the clip range exercising write-tag
    /// populations broadly (the formula `softmap_eval`'s latency tables
    /// have always characterized with).
    #[must_use]
    pub fn representative_scores(len: usize) -> Vec<f64> {
        (0..len).map(|i| -((i % 97) as f64) * 7.0 / 97.0).collect()
    }

    /// Resolves the vector-level cache entry for length `len`,
    /// compiling one from [`ApSoftmax::representative_scores`] on this
    /// thread's pooled tile if the shape has not been seen yet.
    /// The cache key a vector of `len` elements executes under:
    /// whole-vector entries are never resident (a single tile re-stages
    /// by definition); sharded entries carry the effective residency of
    /// their partition, mirroring `execute_sharded_with`.
    fn vector_key(&self, len: usize) -> Result<PlanKey, CoreError> {
        if self.autotune {
            return Ok(self.tuned_key(len));
        }
        let (_, rows) = self.packing(len);
        let resident = if rows > self.device.rows_per_tile {
            let mut ranges = Vec::new();
            self.effective_partition(len, &mut ranges)?;
            self.resident_for(ranges.len())
        } else {
            false
        };
        Ok(PlanKey {
            len,
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase: PlanPhase::Vector,
            resident,
            tuned: false,
        })
    }

    /// The key an autotuned vector-level entry lives under: the
    /// configured axes plus the `tuned` flag (the winner's layout /
    /// partition / residency live *inside* the [`TunedPlan`], so the
    /// key stays a pure function of the configuration).
    pub(crate) fn tuned_key(&self, len: usize) -> PlanKey {
        PlanKey {
            len,
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase: PlanPhase::Vector,
            resident: false,
            tuned: true,
        }
    }

    fn resolve_vector_entry(&self, len: usize) -> Result<CachedPlan, CoreError> {
        if len == 0 {
            return Err(CoreError::EmptyInput);
        }
        let key = self.vector_key(len)?;
        // Observer lookup: a cost query is not a replay, so it must
        // not count as a cache hit.
        if let Some(plan) = self.plans.peek(&key) {
            return Ok(plan);
        }
        let scores = Self::representative_scores(len);
        THREAD_TILE.with(|state| {
            let mut state = state.borrow_mut();
            let mut run = ApSoftmaxRun::default();
            let mut codes = std::mem::take(&mut state.codes);
            self.sm.quantize_into(&scores, &mut codes);
            let result = self.execute_codes_mode(&mut state, &codes, &mut run, PlanMode::Cached);
            state.codes = codes;
            result
        })?;
        // Observer fetch of the plan the compile just inserted — not a
        // replay, so it must not count as a cache hit.
        self.plans
            .peek(&key)
            .ok_or_else(|| CoreError::BadWorkload("plan compilation did not cache".into()))
    }

    /// The compiled whole-vector plan for vectors of length `len`,
    /// compiling one from [`ApSoftmax::representative_scores`] on this
    /// thread's pooled tile if the shape has not been seen yet.
    ///
    /// # Errors
    ///
    /// Propagates compilation (execution) errors;
    /// [`CoreError::BadWorkload`] for lengths exceeding one tile (use
    /// [`ApSoftmax::sharded_plan`] or the [`ApSoftmax::static_vector_cost`]
    /// query, which cover both regimes).
    pub fn plan(&self, len: usize) -> Result<Arc<CompiledPlan>, CoreError> {
        let entry = match self.resolve_vector_entry(len)? {
            CachedPlan::Tuned(t) => t.plan.clone(),
            other => other,
        };
        match entry {
            CachedPlan::Program(p) => Ok(p),
            _ => Err(CoreError::BadWorkload(format!(
                "length {len} shards across tiles; query sharded_plan/static_vector_cost instead"
            ))),
        }
    }

    /// The compiled sharded plan for vectors of length `len` (the
    /// capacity-exceeding counterpart of [`ApSoftmax::plan`]).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; [`CoreError::BadWorkload`] for
    /// lengths that fit one tile.
    pub fn sharded_plan(&self, len: usize) -> Result<Arc<ShardedPlan>, CoreError> {
        let entry = match self.resolve_vector_entry(len)? {
            CachedPlan::Tuned(t) => t.plan.clone(),
            other => other,
        };
        match entry {
            CachedPlan::Sharded(p) => Ok(p),
            _ => Err(CoreError::BadWorkload(format!(
                "length {len} fits one tile; query plan/static_vector_cost instead"
            ))),
        }
    }

    /// The autotuned plan for vectors of length `len` — the winning
    /// mapping, its static cost, the configured default's cost, and
    /// every candidate's score — compiling (searching) one from
    /// [`ApSoftmax::representative_scores`] if the shape has not been
    /// seen yet.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; [`CoreError::BadWorkload`] when
    /// autotuning is disabled on this mapping.
    pub fn tuned_plan(&self, len: usize) -> Result<Arc<TunedPlan>, CoreError> {
        match self.resolve_vector_entry(len)? {
            CachedPlan::Tuned(t) => Ok(t),
            _ => Err(CoreError::BadWorkload(
                "mapping has autotuning disabled; no tuned plan exists".into(),
            )),
        }
    }

    /// Cycle/cell-event totals for one vector of length `len`, answered
    /// from the compiled plan **without executing anything** once the
    /// shape's plan exists — [`softmap_ap::ApProgram::static_cost`]
    /// surfaced at the mapping level, extended to sharded shapes (all
    /// shards plus the cross-tile reduction charges). The cost is exact
    /// for the input the plan was compiled from (the cost tables
    /// compile from [`ApSoftmax::representative_scores`], so table
    /// queries are deterministic); see the static-cost contract in the
    /// `softmap_ap` program-module docs.
    ///
    /// # Errors
    ///
    /// Propagates compilation (execution) errors.
    pub fn static_cost(&self, len: usize) -> Result<CycleStats, CoreError> {
        Ok(self.static_vector_cost(len)?.total)
    }

    /// The full static device view for one vector of length `len`:
    /// total work, shard count, waves, reduction charges, and the
    /// device critical path — for both regimes (`shards == 1` when the
    /// vector fits one tile).
    ///
    /// # Errors
    ///
    /// Propagates compilation (execution) errors.
    pub fn static_vector_cost(&self, len: usize) -> Result<VectorCost, CoreError> {
        Ok(Self::entry_vector_cost(&self.resolve_vector_entry(len)?))
    }

    /// The static device view a cache entry answers with (a tuned
    /// entry answers with its winner's recorded cost).
    fn entry_vector_cost(entry: &CachedPlan) -> VectorCost {
        match entry {
            CachedPlan::Program(p) => {
                let total = p.program().static_cost();
                VectorCost {
                    total,
                    latency_cycles: total.cycles(),
                    shards: 1,
                    waves: 1,
                    reduction: CycleStats::default(),
                }
            }
            CachedPlan::Sharded(p) => VectorCost {
                total: p.total(),
                latency_cycles: p.latency_cycles(),
                shards: p.shards(),
                waves: p.waves(),
                reduction: p.reduction(),
            },
            CachedPlan::Tuned(t) => t.winner_cost,
        }
    }

    /// Per-step static costs for one vector of length `len` (the
    /// analytic counterpart of [`ApSoftmaxRun::steps`]; phase-level
    /// aggregated steps for a sharded shape).
    ///
    /// # Errors
    ///
    /// Propagates compilation (execution) errors.
    pub fn static_step_stats(&self, len: usize) -> Result<Vec<StepStats>, CoreError> {
        let entry = match self.resolve_vector_entry(len)? {
            // A tuned entry replays its winner, so its step breakdown
            // is the winner's.
            CachedPlan::Tuned(t) => t.plan.clone(),
            other => other,
        };
        match entry {
            CachedPlan::Program(p) => Ok(p
                .program()
                .static_steps()
                .iter()
                .map(|&(name, stats)| StepStats { name, stats })
                .collect()),
            CachedPlan::Sharded(p) => Ok(p.steps.clone()),
            CachedPlan::Tuned(_) => unreachable!("tuned plans never nest"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_softmax::IntSoftmax;

    #[test]
    fn resident_env_overrides() {
        // Race-safe mirror of the SOFTMAP_OPT / SOFTMAP_THREADS
        // override tests: only values equivalent to the default (on)
        // plus garbage/unset are ever set, so tests reading
        // SOFTMAP_RESIDENT concurrently can never observe `false`.
        let fresh = || ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        std::env::set_var(RESIDENT_ENV, "1");
        assert!(fresh().resident());
        std::env::set_var(RESIDENT_ENV, " TRUE ");
        assert!(fresh().resident());
        std::env::set_var(RESIDENT_ENV, "not-a-bool");
        assert!(fresh().resident(), "garbage warns once and keeps on");
        std::env::remove_var(RESIDENT_ENV);
        assert!(fresh().resident(), "unset keeps the default");
        // The in-process escape hatch wins over the environment.
        assert!(!fresh().with_resident(false).resident());
    }

    #[test]
    fn blocked_env_overrides_knob() {
        // Race-safe: only values equivalent to the default (on) plus
        // garbage/unset are ever set, so tests reading SOFTMAP_BLOCKED
        // concurrently can never observe `false`.
        let fresh = || ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        std::env::set_var(BLOCKED_ENV, "1");
        assert!(fresh().blocked());
        std::env::set_var(BLOCKED_ENV, " TRUE ");
        assert!(fresh().blocked());
        std::env::set_var(BLOCKED_ENV, "not-a-bool");
        assert!(fresh().blocked(), "garbage warns once and keeps on");
        std::env::remove_var(BLOCKED_ENV);
        assert!(fresh().blocked(), "unset keeps the default");
        // The in-process escape hatch wins over the environment.
        assert!(!fresh().with_blocked(false).blocked());
    }

    /// The escape hatch restores the op-by-op replay path with results
    /// and cost identical to the blocked default.
    #[test]
    fn blocked_and_unblocked_runs_are_identical() {
        let cfg = PrecisionConfig::paper_best();
        let scores: Vec<f64> = (0..512).map(|i| -(f64::from(i) * 0.31) % 7.3).collect();
        let blocked = ApSoftmax::new(cfg).unwrap();
        let unblocked = ApSoftmax::new(cfg).unwrap().with_blocked(false);
        for sm in [&blocked, &unblocked] {
            // Warm the cache so the compared runs are pure replays.
            sm.execute_floats(&scores).unwrap();
        }
        let b = blocked.execute_floats(&scores).unwrap();
        let u = unblocked.execute_floats(&scores).unwrap();
        assert_eq!(b.codes, u.codes);
        assert_eq!(b.vapprox, u.vapprox);
        assert_eq!(b.sum, u.sum);
        assert_eq!(b.total, u.total, "blocking must not change the device cost");
        assert_eq!(b.latency_cycles, u.latency_cycles);
    }

    fn assert_bit_exact(cfg: PrecisionConfig, scores: &[f64], layout: Layout) {
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_layout(layout)
            .execute_floats(scores)
            .unwrap();
        assert_eq!(run.vapprox, scalar.vapprox, "vapprox mismatch");
        assert_eq!(run.sum, scalar.sum, "sum mismatch");
        assert_eq!(run.codes, scalar.codes, "codes mismatch");
    }

    #[test]
    fn packed_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2, -6.9];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::TwoWordsPerRow,
        );
    }

    #[test]
    fn unpacked_layout_matches_scalar() {
        let scores = [0.0, -0.7, -1.9, -3.2, -0.1, -5.5, -2.2];
        assert_bit_exact(
            PrecisionConfig::paper_best(),
            &scores,
            Layout::OneWordPerRow,
        );
    }

    #[test]
    fn all_paper_precisions_match_scalar() {
        let scores: Vec<f64> = (0..16).map(|i| -(f64::from(i) * 0.47) % 6.8).collect();
        for m in [4, 6, 8] {
            for delta in [0, 1, 2] {
                for n in [8, 16] {
                    let cfg = PrecisionConfig::new(m, delta, n);
                    assert_bit_exact(cfg, &scores, Layout::TwoWordsPerRow);
                }
            }
        }
    }

    #[test]
    fn reciprocal_division_close_to_scalar() {
        let cfg = PrecisionConfig::paper_best();
        let scores = [0.0, -0.5, -1.5, -2.5];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .with_div_style(DivStyle::ControllerReciprocal)
            .execute_floats(&scores)
            .unwrap();
        for (got, want) in run.codes.iter().zip(&scalar.codes) {
            assert!(got <= want && want - got <= 1, "got {got}, want {want}");
        }
    }

    #[test]
    fn step_names_follow_fig5() {
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let names: Vec<_> = run.steps.iter().map(|s| s.name).collect();
        assert_eq!(names.first().copied(), Some("1: write v"));
        assert_eq!(names.last().copied(), Some("16: divide"));
        assert_eq!(run.steps.len(), 14);
        // total equals the sum of the steps
        let total: u64 = run.steps.iter().map(|s| s.stats.cycles()).sum();
        assert_eq!(total, run.total.cycles());
    }

    #[test]
    fn division_dominates_runtime() {
        // The restoring divider is the most expensive step — the
        // motivation for the ControllerReciprocal ablation.
        let run = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .execute_floats(&[0.0, -1.0, -2.0, -3.0])
            .unwrap();
        let divide = run
            .steps
            .iter()
            .find(|s| s.name == "16: divide")
            .unwrap()
            .stats
            .cycles();
        assert!(divide * 2 > run.total.cycles());
    }

    #[test]
    fn saturating_sum_matches_scalar_on_long_flat_input() {
        let cfg = PrecisionConfig::new(6, 0, 8);
        let scores = vec![0.0; 1024];
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        assert!(scalar.sum_overflowed);
        let run = ApSoftmax::new(cfg)
            .unwrap()
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(run.sum, scalar.sum);
        assert_eq!(run.codes, scalar.codes);
    }

    #[test]
    fn empty_input_rejected() {
        let apsm = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(matches!(
            apsm.execute_floats(&[]),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn fast_backend_is_bit_and_cycle_identical_end_to_end() {
        let scores: Vec<f64> = (0..96).map(|i| -(f64::from(i) * 0.37) % 6.9).collect();
        for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
            let micro = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .execute_floats(&scores)
                .unwrap();
            let fast = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_div_style(style)
                .with_backend(softmap_ap::ExecBackend::FastWord)
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(micro.codes, fast.codes);
            assert_eq!(micro.vapprox, fast.vapprox);
            assert_eq!(micro.sum, fast.sum);
            assert_eq!(micro.total, fast.total, "cycle stats must be identical");
            for (m, f) in micro.steps.iter().zip(&fast.steps) {
                assert_eq!(m.stats, f.stats, "step {} diverges", m.name);
            }
        }
    }

    #[test]
    fn batch_matches_individual_runs() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(softmap_ap::ExecBackend::FastWord);
        let batch: Vec<Vec<f64>> = (0..9)
            .map(|v| {
                (0..32)
                    .map(|i| -((v * 7 + i) as f64 * 0.21) % 6.5)
                    .collect()
            })
            .collect();
        let runs = mapping.execute_batch_floats(&batch).unwrap();
        assert_eq!(runs.len(), batch.len());
        for (run, scores) in runs.iter().zip(&batch) {
            let single = mapping.execute_floats(scores).unwrap();
            assert_eq!(run.codes, single.codes);
            assert_eq!(run.total, single.total);
        }
        let agg = ApSoftmax::batch_stats(&runs);
        assert_eq!(agg.tiles, 9);
        assert!(agg.makespan_cycles > 0);
        assert!(agg.total.cycles() >= agg.makespan_cycles * 9 / 10);
        // One shape across the whole batch: exactly one compile, the
        // rest replays from the shared cache.
        assert_eq!(mapping.plan_stats().compiles, 1);
    }

    #[test]
    fn batch_propagates_errors() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let batch = vec![vec![0.0, -1.0], vec![]];
        assert!(matches!(
            mapping.execute_batch_floats(&batch),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn replay_matches_direct_issue_exactly() {
        let cfg = PrecisionConfig::paper_best();
        let warm: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.11) % 6.0).collect();
        let scores: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.29) % 6.8).collect();
        for layout in [Layout::TwoWordsPerRow, Layout::OneWordPerRow] {
            for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
                let direct = ApSoftmax::new(cfg)
                    .unwrap()
                    .with_layout(layout)
                    .with_div_style(style)
                    .with_plan_mode(PlanMode::DirectIssue)
                    .execute_floats(&scores)
                    .unwrap();
                // OptLevel::None replays the recorded trace
                // byte-for-byte: every number matches direct issue.
                let cached = ApSoftmax::new(cfg)
                    .unwrap()
                    .with_layout(layout)
                    .with_div_style(style)
                    .with_opt_level(OptLevel::None)
                    .unwrap_execute_pair(&warm, &scores);
                assert_eq!(cached.codes, direct.codes);
                assert_eq!(cached.vapprox, direct.vapprox);
                assert_eq!(cached.sum, direct.sum);
                assert_eq!(cached.total, direct.total);
                assert_eq!(cached.steps, direct.steps);
                // The default level stays bit-exact on every output
                // while the fused schedule costs strictly less.
                let optimized = ApSoftmax::new(cfg)
                    .unwrap()
                    .with_layout(layout)
                    .with_div_style(style)
                    .with_opt_level(OptLevel::Full)
                    .unwrap_execute_pair(&warm, &scores);
                assert_eq!(optimized.codes, direct.codes);
                assert_eq!(optimized.vapprox, direct.vapprox);
                assert_eq!(optimized.sum, direct.sum);
                assert!(
                    optimized.total.cycles() < direct.total.cycles(),
                    "{layout:?}/{style:?}: fused schedule must be cheaper"
                );
            }
        }
    }

    #[test]
    fn opt_env_selects_mapping_default() {
        // Race-safe: only the default-equivalent value is set, so
        // mappings constructed by concurrently running tests still
        // resolve OptLevel::Full.
        std::env::set_var(OptLevel::ENV, "full");
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert_eq!(mapping.opt_level(), OptLevel::Full);
        std::env::remove_var(OptLevel::ENV);
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert_eq!(mapping.opt_level(), OptLevel::Full, "unset falls back");
        // The builder override wins regardless of the environment.
        let pinned = mapping.with_opt_level(OptLevel::None);
        assert_eq!(pinned.opt_level(), OptLevel::None);
    }

    #[test]
    fn opt_levels_coexist_in_plan_cache() {
        let scores: Vec<f64> = (0..16).map(|i| -(f64::from(i) * 0.31) % 6.1).collect();
        let optimized = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_opt_level(OptLevel::Full);
        // Clones share the cache; the opt level is part of the key.
        let baseline = optimized.clone().with_opt_level(OptLevel::None);
        let fast = optimized.execute_floats(&scores).unwrap();
        let slow = baseline.execute_floats(&scores).unwrap();
        assert_eq!(fast.codes, slow.codes);
        assert!(fast.total.cycles() < slow.total.cycles());
        let stats = optimized.plan_stats();
        assert_eq!(stats.plans, 2, "same shape, two levels: two entries");
        assert_eq!(stats.compiles, 2);
        assert_eq!(stats.evictions, 0);
        // Each level replays its own entry — no eviction confusion, no
        // recompiles.
        optimized.execute_floats(&scores).unwrap();
        baseline.execute_floats(&scores).unwrap();
        let stats = optimized.plan_stats();
        assert_eq!(stats.compiles, 2, "replays must hit, not recompile");
        assert!(stats.hits >= 2);
        assert_eq!(stats.evictions, 0);

        // At capacity 1 the two levels thrash the LRU: each compile
        // evicts the other level's entry and the counter stays exact.
        let tight = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_plan_capacity(1)
            .with_opt_level(OptLevel::Full);
        let tight_base = tight.clone().with_opt_level(OptLevel::None);
        tight.execute_floats(&scores).unwrap();
        tight_base.execute_floats(&scores).unwrap();
        tight.execute_floats(&scores).unwrap();
        let stats = tight.plan_stats();
        assert_eq!(stats.plans, 1);
        assert_eq!(stats.compiles, 3, "thrashing recompiles every time");
        assert_eq!(stats.evictions, 2);
    }

    #[test]
    fn static_cost_matches_executed_representative() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let len = 64;
        let cost = mapping.static_cost(len).unwrap();
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(cost, run.total);
        let steps = mapping.static_step_stats(len).unwrap();
        assert_eq!(steps, run.steps);
        assert_eq!(mapping.plan_stats().compiles, 1);
        assert!(mapping.plan(len).unwrap().compile_micros() > 0.0);
    }

    #[test]
    fn clear_plans_invalidates_slots_and_recompiles() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        let scores = [0.0, -1.0, -2.0, -3.0];
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        let first = run.codes.clone();
        assert_eq!(mapping.plan_stats().compiles, 1);
        mapping.clear_plans();
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        assert_eq!(run.codes, first);
        assert_eq!(
            mapping.plan_stats().compiles,
            2,
            "cleared cache must recompile, not reuse the stale slot"
        );
    }

    impl ApSoftmax {
        /// Test helper: executes `warm` (compiling the plan), then
        /// `scores` (replaying it), returning the second run.
        fn unwrap_execute_pair(&self, warm: &[f64], scores: &[f64]) -> ApSoftmaxRun {
            self.execute_floats(warm).unwrap();
            let run = self.execute_floats(scores).unwrap();
            assert!(self.plan_stats().hits >= 1, "second run must replay");
            run
        }
    }

    // ---- sharded long-sequence execution ---------------------------------

    fn tiny_device() -> DeviceConfig {
        DeviceConfig::new(2, 4)
    }

    #[test]
    fn sharded_execution_matches_scalar_spec() {
        let cfg = PrecisionConfig::paper_best();
        let spec = IntSoftmax::new(cfg).unwrap();
        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            for layout in [Layout::TwoWordsPerRow, Layout::OneWordPerRow] {
                // 9: odd tail; 16: exact shards; 33: odd oversized tail
                // at the packed layout (peeled singleton shard).
                for len in [9usize, 16, 33] {
                    let scores: Vec<f64> = (0..len).map(|i| -((i as f64) * 0.37) % 6.9).collect();
                    let scalar = spec.run_floats(&scores).unwrap();
                    let run = ApSoftmax::new(cfg)
                        .unwrap()
                        .with_layout(layout)
                        .with_backend(backend)
                        .with_device(tiny_device())
                        .execute_floats(&scores)
                        .unwrap();
                    assert!(run.shards > 1, "{backend:?}/{layout:?}/{len} must shard");
                    assert_eq!(run.vapprox, scalar.vapprox, "{backend:?}/{layout:?}/{len}");
                    assert_eq!(run.sum, scalar.sum, "{backend:?}/{layout:?}/{len}");
                    assert_eq!(run.codes, scalar.codes, "{backend:?}/{layout:?}/{len}");
                }
            }
        }
    }

    #[test]
    fn sharded_matches_whole_vector_bit_exact() {
        // The same vector through both regimes: whole (default device,
        // fits one tile) and forced sharding (tiny device).
        let cfg = PrecisionConfig::paper_best();
        let scores: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.21) % 6.3).collect();
        for style in [DivStyle::Restoring, DivStyle::ControllerReciprocal] {
            let whole = ApSoftmax::new(cfg)
                .unwrap()
                .with_autotune(false)
                .with_div_style(style)
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(whole.shards, 1);
            assert_eq!(whole.latency_cycles, whole.total.cycles());
            let sharded = ApSoftmax::new(cfg)
                .unwrap()
                .with_autotune(false)
                .with_div_style(style)
                .with_device(DeviceConfig::new(2, 8))
                .execute_floats(&scores)
                .unwrap();
            assert_eq!(sharded.shards, 4);
            assert_eq!(sharded.waves, 2);
            assert_eq!(sharded.codes, whole.codes, "{style:?}");
            assert_eq!(sharded.vapprox, whole.vapprox, "{style:?}");
            assert_eq!(sharded.sum, whole.sum, "{style:?}");
        }
    }

    #[test]
    fn sharded_replay_matches_direct_issue_exactly() {
        let cfg = PrecisionConfig::paper_best();
        let warm: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.11) % 6.0).collect();
        let scores: Vec<f64> = (0..24).map(|i| -(f64::from(i) * 0.29) % 6.8).collect();
        for backend in [ExecBackend::Microcode, ExecBackend::FastWord] {
            let direct = ApSoftmax::new(cfg)
                .unwrap()
                .with_backend(backend)
                .with_device(tiny_device())
                .with_plan_mode(PlanMode::DirectIssue)
                .execute_floats(&scores)
                .unwrap();
            let cached = ApSoftmax::new(cfg)
                .unwrap()
                .with_autotune(false)
                .with_backend(backend)
                .with_device(tiny_device())
                .with_opt_level(OptLevel::None)
                .unwrap_execute_pair(&warm, &scores);
            assert!(direct.shards > 1);
            assert_eq!(cached.codes, direct.codes);
            assert_eq!(cached.vapprox, direct.vapprox);
            assert_eq!(cached.sum, direct.sum);
            assert_eq!(cached.total, direct.total, "{backend:?} cycle stats");
            assert_eq!(cached.latency_cycles, direct.latency_cycles);
            assert_eq!(cached.steps, direct.steps);
            // The default level: bit-exact outputs, strictly cheaper
            // (fused phase schedules plus the resident-broadcast
            // discount on every shard after the first).
            let optimized = ApSoftmax::new(cfg)
                .unwrap()
                .with_autotune(false)
                .with_backend(backend)
                .with_device(tiny_device())
                .with_opt_level(OptLevel::Full)
                .unwrap_execute_pair(&warm, &scores);
            assert_eq!(optimized.codes, direct.codes);
            assert_eq!(optimized.vapprox, direct.vapprox);
            assert_eq!(optimized.sum, direct.sum);
            assert!(
                optimized.total.cycles() < direct.total.cycles(),
                "{backend:?}: sharded fused schedule must be cheaper"
            );
            assert!(optimized.latency_cycles < direct.latency_cycles);
        }
    }

    #[test]
    fn sharded_static_vector_cost_matches_simulated() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_device(tiny_device());
        let len = 40;
        let vc = mapping.static_vector_cost(len).unwrap();
        assert!(vc.shards > 1);
        assert!(vc.reduction.cycles() > 0);
        let run = mapping
            .execute_floats(&ApSoftmax::representative_scores(len))
            .unwrap();
        assert_eq!(vc.total, run.total, "static total != simulated");
        assert_eq!(vc.latency_cycles, run.latency_cycles);
        assert_eq!(vc.shards, run.shards);
        assert_eq!(vc.waves, run.waves);
        assert_eq!(vc.reduction, run.reduction);
        assert_eq!(mapping.static_cost(len).unwrap(), run.total);
        assert_eq!(mapping.static_step_stats(len).unwrap(), run.steps);
        // Step segments account for every cycle, reductions included.
        let step_total: u64 = run.steps.iter().map(|s| s.stats.cycles()).sum();
        assert_eq!(step_total, run.total.cycles());
        // The sharded plan is queryable; the whole-vector query rejects.
        assert_eq!(mapping.sharded_plan(len).unwrap().shards(), vc.shards);
        assert!(matches!(mapping.plan(len), Err(CoreError::BadWorkload(_))));
    }

    #[test]
    fn sharded_latency_beats_single_tile_serialization() {
        // With more tiles, the same shards spread across the grid: the
        // critical path must shrink while total work stays identical.
        // Pinned re-staged: under residency, work is grid-*dependent*
        // by design (a one-tile grid cannot keep four shards pinned),
        // which the resident assertions below characterize.
        let cfg = PrecisionConfig::paper_best();
        let scores: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.17) % 5.9).collect();
        let narrow = ApSoftmax::new(cfg)
            .unwrap()
            .with_autotune(false)
            .with_resident(false)
            .with_device(DeviceConfig::new(1, 8))
            .execute_floats(&scores)
            .unwrap();
        let wide = ApSoftmax::new(cfg)
            .unwrap()
            .with_autotune(false)
            .with_resident(false)
            .with_device(DeviceConfig::new(4, 8))
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(narrow.total, wide.total, "work is grid-independent");
        assert!(wide.latency_cycles < narrow.latency_cycles);
        assert_eq!(narrow.waves, 4);
        assert_eq!(wide.waves, 1);

        // Residency: the one-tile grid falls back to re-staging (bit-
        // and cycle-identical to the pinned path above); the wide grid
        // pins its shards and does strictly less work.
        let narrow_res = ApSoftmax::new(cfg)
            .unwrap()
            .with_autotune(false)
            .with_device(DeviceConfig::new(1, 8))
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(narrow_res.codes, narrow.codes);
        assert_eq!(narrow_res.total, narrow.total, "fallback re-stages");
        let wide_res = ApSoftmax::new(cfg)
            .unwrap()
            .with_autotune(false)
            .with_device(DeviceConfig::new(4, 8))
            .execute_floats(&scores)
            .unwrap();
        assert_eq!(wide_res.codes, wide.codes, "residency is bit-exact");
        assert!(
            wide_res.total.cycles() < wide.total.cycles(),
            "resident work {} should undercut re-staged {}",
            wide_res.total.cycles(),
            wide.total.cycles()
        );
    }

    #[test]
    fn sharded_batch_matches_individual_runs() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord)
            .with_device(tiny_device());
        let batch: Vec<Vec<f64>> = (0..6)
            .map(|v| {
                (0..24)
                    .map(|i| -((v * 7 + i) as f64 * 0.21) % 6.5)
                    .collect()
            })
            .collect();
        let runs = mapping.execute_batch_floats(&batch).unwrap();
        for (run, scores) in runs.iter().zip(&batch) {
            let single = mapping.execute_floats(scores).unwrap();
            assert_eq!(run.codes, single.codes);
            assert_eq!(run.total, single.total);
        }
        // One vector shape: one sharded plan + its phase programs, no
        // recompiles across workers.
        let stats = mapping.plan_stats();
        assert!(
            stats.compiles <= 7,
            "one shape must compile at most 1 sharded + 6 phase plans (got {})",
            stats.compiles
        );
    }

    #[test]
    fn plan_cache_eviction_bounds_memory() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_plan_capacity(2);
        for len in [8usize, 10, 12] {
            let scores: Vec<f64> = (0..len).map(|i| -(i as f64) * 0.3).collect();
            mapping.execute_floats(&scores).unwrap();
        }
        let stats = mapping.plan_stats();
        assert!(
            stats.plans <= 2,
            "LRU cap must hold (plans = {})",
            stats.plans
        );
        assert!(stats.evictions >= 1, "three shapes at cap 2 must evict");
        assert_eq!(stats.compiles, 3);
        // The evicted shape recompiles and still answers correctly.
        let scores: Vec<f64> = (0..8).map(|i| -(f64::from(i)) * 0.3).collect();
        let run = mapping.execute_floats(&scores).unwrap();
        let scalar = IntSoftmax::new(*mapping.spec().config())
            .unwrap()
            .run_floats(&scores)
            .unwrap();
        assert_eq!(run.codes, scalar.codes);
        assert_eq!(mapping.plan_stats().compiles, 4, "evicted shape recompiles");
    }

    #[test]
    fn autotune_env_overrides() {
        // Race-safe mirror of resident_env_overrides: only values
        // equivalent to the default (on) plus garbage/unset are ever
        // set, so tests reading SOFTMAP_AUTOTUNE concurrently can
        // never observe `false`.
        let fresh = || ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        std::env::set_var(AUTOTUNE_ENV, "1");
        assert!(fresh().autotune());
        std::env::set_var(AUTOTUNE_ENV, " TRUE ");
        assert!(fresh().autotune());
        std::env::set_var(AUTOTUNE_ENV, "definitely");
        assert!(fresh().autotune(), "garbage warns once and keeps on");
        std::env::remove_var(AUTOTUNE_ENV);
        assert!(fresh().autotune(), "unset keeps the default");
        // The in-process escape hatch wins over the environment.
        assert!(!fresh().with_autotune(false).autotune());
    }

    #[test]
    fn autotuned_strictly_beats_default_at_4096() {
        // The pinned strict-improvement length: 4096 packed fills one
        // tile exactly; the tuner's one-word-per-row candidate runs the
        // sixteen-step dataflow once (sharded resident in lockstep)
        // instead of once per packed half, roughly halving cycles.
        let tuned = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        assert!(tuned.autotune(), "autotuning is on by default");
        let untuned = tuned.clone().with_autotune(false);
        let scores = ApSoftmax::representative_scores(4096);
        let t = tuned.execute_floats(&scores).unwrap();
        let u = untuned.execute_floats(&scores).unwrap();
        assert_eq!(t.codes, u.codes, "tuned output must stay bit-exact");
        assert_eq!(t.vapprox, u.vapprox);
        assert_eq!(t.sum, u.sum);
        assert!(
            t.total.cycles() < u.total.cycles(),
            "tuned {} must strictly beat default {}",
            t.total.cycles(),
            u.total.cycles()
        );
        // static == simulated for the winner, and the tuned entry
        // records the search it won.
        let plan = tuned.tuned_plan(4096).unwrap();
        assert!(plan.improved());
        assert_eq!(plan.winner_cost().total, t.total);
        assert_eq!(plan.default_cost().total, u.total);
        assert!(plan.scores().len() >= 2, "search must have scored > 1");
        assert_eq!(tuned.static_cost(4096).unwrap(), t.total);
        let stats = tuned.cache_stats();
        assert_eq!(stats.shapes_tuned, 1);
        assert_eq!(stats.tuned_wins, 1);
        assert!(stats.candidates_scored >= 2);
        // The untuned view never consults the tuner.
        assert!(matches!(
            untuned.tuned_plan(4096),
            Err(CoreError::BadWorkload(_))
        ));
    }

    #[test]
    fn autotuned_pinned_layout_keeps_default_mapping() {
        // with_layout pins the tuner's layout axis; with no partition
        // alternatives for a whole-vector shape the search degenerates
        // to the default candidate and the winner ties it.
        let tuned = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_layout(Layout::TwoWordsPerRow);
        let scores = ApSoftmax::representative_scores(256);
        tuned.execute_floats(&scores).unwrap();
        let plan = tuned.tuned_plan(256).unwrap();
        assert_eq!(plan.scores().len(), 1, "pinned whole-vector: default only");
        assert!(!plan.improved());
        assert_eq!(plan.choice().layout, Layout::TwoWordsPerRow);
        assert_eq!(tuned.cache_stats().tuned_wins, 0);
    }

    #[test]
    fn tuned_and_untuned_keys_coexist_and_thrash_is_counted() {
        // Satellite regression: the tuned axis enlarges the key space,
        // so a tuned and an untuned mapping sharing one cache must (a)
        // coexist without shadowing each other at default capacity and
        // (b) keep the eviction counter honest when the capacity is too
        // small to hold both.
        let cfg = PrecisionConfig::paper_best();
        let scores = ApSoftmax::representative_scores(64);

        // (a) coexistence: one shape, two entries, bit-equal outputs.
        let tuned = ApSoftmax::new(cfg).unwrap();
        let untuned = tuned.clone().with_autotune(false);
        let t = tuned.execute_floats(&scores).unwrap();
        let u = untuned.execute_floats(&scores).unwrap();
        assert_eq!(t.codes, u.codes);
        let stats = tuned.plan_stats();
        assert_eq!(stats.plans, 2, "tuned + untuned entries coexist");
        assert_eq!(stats.evictions, 0);
        // Replays hit their own entries, no recompiles.
        tuned.execute_floats(&scores).unwrap();
        untuned.execute_floats(&scores).unwrap();
        let stats = tuned.plan_stats();
        assert_eq!(stats.compiles, 2);
        assert!(stats.hits >= 2);

        // (b) capacity thrash: cap 1 forces the two keys to evict each
        // other; every eviction is counted and outputs stay correct.
        let tuned = ApSoftmax::new(cfg).unwrap().with_plan_capacity(1);
        let untuned = tuned.clone().with_autotune(false);
        let t1 = tuned.execute_floats(&scores).unwrap();
        let u1 = untuned.execute_floats(&scores).unwrap();
        let t2 = tuned.execute_floats(&scores).unwrap();
        assert_eq!(t1.codes, u1.codes);
        assert_eq!(t1.codes, t2.codes);
        assert_eq!(t1.total, t2.total, "re-searched winner is deterministic");
        let stats = tuned.plan_stats();
        assert_eq!(stats.plans, 1, "cap 1 holds one entry");
        assert_eq!(stats.compiles, 3, "each swap recompiles");
        assert_eq!(stats.evictions, 2, "both swaps must be counted");
    }

    #[test]
    fn batch_stats_on_respects_grid() {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap();
        let batch: Vec<Vec<f64>> = (0..4).map(|_| vec![0.0, -1.0, -2.0, -3.0]).collect();
        let runs = mapping.execute_batch_floats(&batch).unwrap();
        let unbounded = ApSoftmax::batch_stats(&runs);
        let grid = ApSoftmax::batch_stats_on(&runs, 2);
        assert_eq!(unbounded.waves, 1);
        assert_eq!(grid.waves, 2);
        assert_eq!(grid.total, unbounded.total);
        assert!(grid.makespan_cycles >= unbounded.makespan_cycles * 2);
    }
}
