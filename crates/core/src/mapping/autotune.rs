//! The static-cost-driven **mapping autotuner**: plan compilation as a
//! search over candidate mappings instead of a transcription of the
//! configured one.
//!
//! The paper fixes one mapping — two words per row, restoring
//! division, greedy capacity-filling shard partition. Our stack's
//! static-cost contract (`static == simulated`, exact for the compile
//! input) makes a stronger primitive available: any candidate mapping
//! can be compiled once and scored *exactly*, without a roofline
//! approximation and without executing it ever again. When autotuning
//! is enabled (the default; see [`AUTOTUNE_ENV`] /
//! [`ApSoftmax::with_autotune`]), the first vector of each cached
//! shape compiles every candidate, scores them lexicographically by
//! `(total work cycles, device critical path, cell events)`, and
//! installs the winner as a [`TunedPlan`] — further vectors replay the
//! winner with the same zero-allocation steady state as an untuned
//! plan.
//!
//! # Search space and pruning
//!
//! | axis | candidates | why |
//! |---|---|---|
//! | [`Layout`] | both, unless pinned via [`ApSoftmax::with_layout`] | both layouts are bit-exact; they trade rows for per-step passes |
//! | shard partition | greedy default + balanced splits at `k_min ..= min(k_min + 2, tiles)` shards | balanced equal-length shards maximize resident SIMD-lockstep sharing |
//! | [`DivStyle`] | configured style only | the controller-reciprocal divider is ≤ 1 ULP, **not** bit-exact — searching it would break the exactness contract |
//! | `OptLevel` | configured level only | cost is non-increasing along [`softmap_ap::OptLevel::ladder`], so the configured level dominates |
//! | residency | resident-whenever-legal (the existing per-vector rule) | the resident plan is never costlier than re-staging on the same partition |
//!
//! The pruning rule bounds the search at `2 layouts × (1 default + 3
//! balanced partitions) = 8` compiles per shape — O(tens), paid once
//! per shape and amortized by the plan cache like any other compile.
//!
//! # Contracts
//!
//! * Every candidate must reproduce the configured default mapping's
//!   outputs bit-for-bit on the compile input; a candidate that does
//!   not (impossible by construction, checked anyway) is discarded.
//! * The default mapping is always candidate zero and wins ties, so
//!   the winner's static cost is **never worse** than the default's.
//! * `static == simulated` holds for the winner because the winner
//!   *is* an ordinary compiled plan — the tuned entry just wraps it.
//! * `SOFTMAP_AUTOTUNE=0` / `with_autotune(false)` restores the
//!   untuned compile paths byte-identically (tuned entries live under
//!   their own [`PlanKey`] axis and never shadow untuned ones).
//!
//! Scoring is per-vector: total work first, then critical path, then
//! cell events. Tile *occupancy* (a one-word-per-row winner may use
//! twice the shards) is deliberately not scored — the deployment-level
//! throughput model already accounts for waves, and a deployment that
//! wants the paper's occupancy pins the layout.

use std::sync::Arc;

use super::{
    ApSoftmax, ApSoftmaxRun, CoreError, Layout, PlanMode, ShardExec, TileState, VectorCost,
};
use crate::plan::{CachedPlan, CandidateScore, MappingChoice, TunedPlan};

/// Environment variable enabling/disabling the mapping autotuner:
/// `0`/`false` compiles the configured mapping exactly as before the
/// autotuner existed, `1`/`true` (the default) searches candidate
/// mappings per shape and installs the statically cheapest bit-exact
/// winner. Invalid values warn once and keep the default.
pub const AUTOTUNE_ENV: &str = "SOFTMAP_AUTOTUNE";

/// Reads [`AUTOTUNE_ENV`]; invalid values fail loudly (one warning per
/// process) instead of silently falling back.
pub(crate) fn autotune_from_env() -> bool {
    let Ok(raw) = std::env::var(AUTOTUNE_ENV) else {
        return true;
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "false" => false,
        "1" | "true" => true,
        _ => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "softmap: invalid {AUTOTUNE_ENV}={raw:?}; accepted values are \
                     0/false/1/true — keeping the default (1)"
                );
            });
            true
        }
    }
}

/// One enumerated candidate: a layout plus an optional explicit shard
/// partition (`None` = whatever the untuned path derives — the whole
/// vector if it fits one tile, the greedy default partition
/// otherwise).
struct Candidate {
    layout: Layout,
    partition: Option<Arc<Vec<(usize, usize)>>>,
    balanced: bool,
}

/// How far past the minimum shard count the balanced-partition axis
/// searches (`k_min ..= k_min + BALANCED_SPREAD`, capped at the tile
/// grid).
const BALANCED_SPREAD: usize = 2;

impl ApSoftmax {
    /// The cached-mode entry point when autotuning is on: resolve (or
    /// search and install) the shape's [`TunedPlan`], then replay its
    /// winner. Mirrors the slot/get/lock protocol of the untuned
    /// compile paths so the steady state stays lock-free and
    /// zero-alloc.
    pub(crate) fn execute_autotuned(
        &self,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        let key = self.tuned_key(codes.len());
        let token = self.plans.slot_token();
        if let Some((slot_token, slot_key, CachedPlan::Tuned(plan))) = state.plan.as_ref() {
            if *slot_token == token && *slot_key == key {
                self.plans.note_hit();
                let plan = Arc::clone(plan);
                return self.replay_tuned(&plan, state, codes, run);
            }
        }
        if let Some(CachedPlan::Tuned(plan)) = self.plans.get(&key) {
            state.plan = Some((token, key, CachedPlan::Tuned(Arc::clone(&plan))));
            return self.replay_tuned(&plan, state, codes, run);
        }
        // Shape miss: search under the compile lock so racing workers
        // run one search, not one each.
        let compile_guard = self.plans.lock_for_compile();
        if let Some(CachedPlan::Tuned(plan)) = self.plans.get(&key) {
            drop(compile_guard);
            state.plan = Some((token, key, CachedPlan::Tuned(Arc::clone(&plan))));
            return self.replay_tuned(&plan, state, codes, run);
        }
        let tuned = self.search_mappings(codes)?;
        self.plans
            .note_autotune(tuned.scores.len() as u64, tuned.improved());
        self.plans
            .insert(key, CachedPlan::Tuned(Arc::clone(&tuned)));
        drop(compile_guard);
        state.plan = Some((token, key, CachedPlan::Tuned(Arc::clone(&tuned))));
        self.replay_tuned(&tuned, state, codes, run)
    }

    /// Compiles and scores every candidate mapping for this input,
    /// returning the winner wrapped in a [`TunedPlan`]. Candidates
    /// execute on throwaway views (fresh scratch cache each, so the
    /// main cache sees exactly one insert per tuned shape) against the
    /// *actual* input, which both anchors the winner's static cost to
    /// it and verifies bit-exactness against the default mapping.
    fn search_mappings(&self, codes: &[i64]) -> Result<Arc<TunedPlan>, CoreError> {
        let started = std::time::Instant::now();
        let len = codes.len();
        let candidates = self.enumerate_candidates(len);
        let mut scratch_state = TileState::new();
        let mut scores = Vec::with_capacity(candidates.len());
        let mut default_cost: Option<VectorCost> = None;
        let mut reference: Option<(Vec<u64>, Vec<u64>, u64)> = None;
        let mut best: Option<(VectorCost, MappingChoice, CachedPlan)> = None;
        for cand in &candidates {
            let view = self.candidate_view(cand);
            let mut crun = ApSoftmaxRun::default();
            if let Err(e) =
                view.execute_codes_mode(&mut scratch_state, codes, &mut crun, PlanMode::Cached)
            {
                if default_cost.is_none() {
                    // The default mapping (candidate zero) must work;
                    // its failure is the caller's error, exactly as
                    // without the autotuner.
                    return Err(e);
                }
                // An alternative candidate that cannot execute (e.g. a
                // geometry the tile grid rejects) is merely pruned.
                continue;
            }
            // Exactness guard: a candidate that does not reproduce the
            // default mapping's outputs bit-for-bit is discarded.
            match &reference {
                None => reference = Some((crun.codes.clone(), crun.vapprox.clone(), crun.sum)),
                Some((rc, rv, rs)) => {
                    if crun.codes != *rc || crun.vapprox != *rv || crun.sum != *rs {
                        debug_assert!(false, "candidate mapping is not bit-exact");
                        continue;
                    }
                }
            }
            let vkey = view.vector_key(len)?;
            let entry = view
                .plans
                .peek(&vkey)
                .ok_or_else(|| CoreError::BadWorkload("candidate compile did not cache".into()))?;
            let cost = Self::entry_vector_cost(&entry);
            let resident = matches!(&entry, CachedPlan::Sharded(p) if p.resident);
            let choice = MappingChoice {
                layout: cand.layout,
                div: self.div_style,
                opt: self.opt_level,
                resident,
                shards: cost.shards,
                balanced: cand.balanced,
            };
            scores.push(CandidateScore {
                choice,
                cycles: cost.total.cycles(),
                latency_cycles: cost.latency_cycles,
                cell_events: cost.total.cell_events(),
            });
            if default_cost.is_none() {
                default_cost = Some(cost);
            }
            // Strict comparison: the default (scored first) wins ties,
            // so the winner is never statically worse than it.
            let better = match &best {
                None => true,
                Some((bc, _, _)) => {
                    (
                        cost.total.cycles(),
                        cost.latency_cycles,
                        cost.total.cell_events(),
                    ) < (bc.total.cycles(), bc.latency_cycles, bc.total.cell_events())
                }
            };
            if better {
                best = Some((cost, choice, entry));
            }
        }
        let (winner_cost, choice, plan) = best
            .ok_or_else(|| CoreError::BadWorkload("autotune search scored no candidate".into()))?;
        let default_cost = default_cost.expect("default candidate scored");
        Ok(Arc::new(TunedPlan {
            choice,
            plan,
            winner_cost,
            default_cost,
            scores,
            compile_micros: started.elapsed().as_secs_f64() * 1e6,
        }))
    }

    /// Enumerates the candidate mappings for a vector of `len`
    /// elements under the documented pruning rule. The configured
    /// default mapping is always candidate zero.
    fn enumerate_candidates(&self, len: usize) -> Vec<Candidate> {
        let mut out = vec![Candidate {
            layout: self.layout,
            partition: None,
            balanced: false,
        }];
        for layout in [Layout::TwoWordsPerRow, Layout::OneWordPerRow] {
            if self.layout_pinned && layout != self.layout {
                continue;
            }
            if layout != self.layout {
                out.push(Candidate {
                    layout,
                    partition: None,
                    balanced: false,
                });
            }
            let (_, rows) = Self::packing_of(layout, len);
            if rows <= self.device.rows_per_tile {
                continue; // whole-vector under this layout: no partition axis
            }
            let wpr = match layout {
                Layout::TwoWordsPerRow => 2,
                Layout::OneWordPerRow => 1,
            };
            let mut default_ranges = Vec::new();
            if self
                .device
                .partition_into(len, wpr, &mut default_ranges)
                .is_err()
            {
                continue;
            }
            let cap = self.device.shard_capacity(wpr);
            let k_min = len.div_ceil(cap);
            let k_max = (k_min + BALANCED_SPREAD).min(self.device.tiles.max(1));
            let mut balanced = Vec::new();
            for k in k_min..=k_max {
                if self
                    .device
                    .balanced_partition_into(len, wpr, k, &mut balanced)
                    .is_err()
                {
                    continue;
                }
                if balanced == default_ranges {
                    continue;
                }
                out.push(Candidate {
                    layout,
                    partition: Some(Arc::new(balanced.clone())),
                    balanced: true,
                });
            }
        }
        out
    }

    /// A throwaway mapping evaluating one candidate: autotuning off,
    /// the candidate's layout and (optional) partition override, and a
    /// fresh scratch cache so the search never pollutes — or thrashes —
    /// the main cache.
    fn candidate_view(&self, cand: &Candidate) -> ApSoftmax {
        let mut view = self.clone();
        view.autotune = false;
        view.plan_mode = PlanMode::Cached;
        view.layout = cand.layout;
        view.partition_override = cand.partition.clone();
        view.plans = Arc::new(crate::plan::PlanCache::new());
        view
    }

    /// Replays a tuned plan's winner: packs the input by the winner's
    /// layout (not the configured one) and takes the ordinary
    /// whole-vector or sharded replay path. Zero-alloc in steady state,
    /// like any other replay.
    fn replay_tuned(
        &self,
        tuned: &TunedPlan,
        state: &mut TileState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
    ) -> Result<(), CoreError> {
        match &tuned.plan {
            CachedPlan::Program(plan) => {
                let plan = Arc::clone(plan);
                let total_len = codes.len();
                let (packed, rows) = Self::packing_of(tuned.choice.layout, total_len);
                state.half0.clear();
                state
                    .half0
                    .extend(codes[..rows].iter().map(|&c| c.unsigned_abs()));
                state.half1.clear();
                if packed {
                    state
                        .half1
                        .extend(codes[rows..].iter().map(|&c| c.unsigned_abs()));
                }
                let TileState {
                    tile,
                    half0,
                    half1,
                    scratch,
                    ..
                } = state;
                let halves_arr: [&[u64]; 2] = [half0.as_slice(), half1.as_slice()];
                let halves = if packed {
                    &halves_arr[..]
                } else {
                    &halves_arr[..1]
                };
                self.replay_plan(&plan, tile, scratch, halves, total_len, run)
            }
            CachedPlan::Sharded(plan) => {
                let plan = Arc::clone(plan);
                self.run_sharded(
                    state,
                    codes,
                    run,
                    &plan.ranges,
                    ShardExec::Replay(&plan),
                    plan.resident,
                    tuned.choice.layout,
                )
            }
            CachedPlan::Tuned(_) => unreachable!("tuned plans never nest"),
        }
    }
}
