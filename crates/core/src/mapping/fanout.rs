//! Shard-parallel host execution: the three phases of one long vector
//! fanned across host workers over disjoint output slices.
//!
//! Sequential sharded replay ([`ApSoftmax::run_sharded`]) walks the
//! shards of a long vector one at a time, so a 32k-element request
//! holds its host worker for the whole vector. This module replays the
//! *same cached sharded plan* with the shards split into contiguous
//! per-worker chunks: every worker owns its shards' tiles, staging
//! buffers, and output slices exclusively, and the workers meet exactly
//! twice — at the dataflow's two cross-tile synchronization points (the
//! global-minimum and partial-sum reductions), realized as
//! [`std::sync::Barrier`] waits over lock-free atomic deposit arrays.
//!
//! The fan-out is **replay-only**: a shape whose sharded plan is not
//! cached yet (or whose autotuned winner is a whole-vector program)
//! falls back to the ordinary sequential path, which compiles and
//! caches it; the next vector of the shape fans out. Results are
//! bit-exact and cost-identical versus sequential replay — the shard
//! programs, replay pricing ([`super::phase_replay`]), reduction
//! charges, and wave-scheduled latency are all the same, merely
//! evaluated concurrently — which the differential tests in
//! `crates/core/tests/serve.rs` assert step for step.
//!
//! Worker errors cannot deadlock the barriers: a failing worker records
//! its error, raises the shared cancel flag, and keeps participating in
//! every remaining barrier while skipping the work.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use softmap_ap::batch;
use softmap_ap::device;
use softmap_ap::program::ProgramScratch;
use softmap_ap::{ApTile, CycleStats};

use super::{
    accumulate_step, phase_replay, ApSoftmax, ApSoftmaxRun, Layout, PlanMode, StepStats, TileState,
};
use crate::plan::{CachedPlan, PlanKey, PlanPhase, ShardedPlan};
use crate::CoreError;

/// Per-worker persistent execution state for the shard-parallel
/// fan-out: the worker's tile pool (one pinned tile per owned shard
/// when the plan is resident, one reused tile otherwise), staging
/// buffers, program scratch, per-phase step/cycle accounting, and the
/// error slot. Buffer capacities persist across vectors, like
/// [`TileState`]'s.
#[derive(Debug, Default)]
struct ShardWorker {
    tiles: Vec<ApTile>,
    scratch: ProgramScratch,
    half0: Vec<u64>,
    half1: Vec<u64>,
    /// Per-shard replay output staging (program reads append to a
    /// `Vec`; the worker copies it into its disjoint output slice).
    tmp: Vec<u64>,
    steps: [Vec<StepStats>; 3],
    stats: CycleStats,
    rows_max: usize,
    cols_max: usize,
    err: Option<CoreError>,
}

/// Reusable state for the shard-parallel fan-out: the worker pool plus
/// the cross-worker deposit arrays (shard minima, partial sums,
/// per-phase cycles) the two synchronization points exchange. All
/// capacities persist across vectors.
#[derive(Debug, Default)]
pub(crate) struct FanoutState {
    workers: Vec<ShardWorker>,
    minima: Vec<AtomicU64>,
    partials: Vec<AtomicU64>,
    phase_cycles: [Vec<AtomicU64>; 3],
    /// Wave-scheduler tile-load scratch (as `ShardScratch::loads`).
    loads: Vec<u64>,
    /// Staging for one phase's deposited cycle counts.
    pc: Vec<u64>,
    /// Shard-partition scratch for plan resolution.
    ranges: Vec<(usize, usize)>,
}

fn grow_atomics(v: &mut Vec<AtomicU64>, n: usize) {
    if v.len() < n {
        v.resize_with(n, || AtomicU64::new(0));
    }
}

impl FanoutState {
    fn ensure(&mut self, shards: usize, workers: usize) {
        if self.workers.len() < workers {
            self.workers.resize_with(workers, ShardWorker::default);
        }
        grow_atomics(&mut self.minima, shards);
        grow_atomics(&mut self.partials, shards);
        for pc in &mut self.phase_cycles {
            grow_atomics(pc, shards);
        }
    }
}

/// One worker's view of the fan-out: its contiguous shard chunk, its
/// disjoint slices of the run's output buffers, and its persistent
/// state.
struct WorkerArg<'a> {
    state: &'a mut ShardWorker,
    /// Owned shards: `ranges[chunk.0..chunk.1]`.
    chunk: (usize, usize),
    /// First owned element (`ranges[chunk.0].0`) — offsets the slices.
    base: usize,
    codes_out: &'a mut [u64],
    vap_out: &'a mut [u64],
}

/// Shared read-only context one fan-out's workers execute under.
struct FanoutCtx<'a> {
    plan: &'a ShardedPlan,
    layout: Layout,
    codes: &'a [i64],
    barrier: &'a Barrier,
    cancel: &'a AtomicBool,
    minima: &'a [AtomicU64],
    partials: &'a [AtomicU64],
    phase_cycles: &'a [Vec<AtomicU64>; 3],
}

impl ApSoftmax {
    /// Executes `codes` with the shards of a long vector fanned across
    /// up to `threads` host workers (see the module docs). Falls back
    /// to the ordinary sequential path on `state` whenever the fan-out
    /// does not apply: unsharded shapes, direct-issue mode, a plan not
    /// cached yet (the fallback compiles it), an autotuned winner that
    /// is not sharded, or a single effective worker.
    ///
    /// # Errors
    ///
    /// As [`ApSoftmax::execute_codes_into`]; on the fan-out path, the
    /// lowest-indexed failing worker's error.
    pub(crate) fn execute_codes_fanout(
        &self,
        state: &mut TileState,
        pool: &mut FanoutState,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        threads: usize,
    ) -> Result<(), CoreError> {
        if codes.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        self.sm.validate_codes(codes)?;
        let Some((plan, layout)) = self.resolve_fanout_plan(codes.len(), pool)? else {
            return self.execute_codes_into(state, codes, run);
        };
        let workers = threads.max(1).min(plan.ranges.len());
        if workers <= 1 {
            return self.execute_codes_into(state, codes, run);
        }
        self.plans.note_hit();
        self.run_fanout(pool, &plan, layout, codes, run, workers)
    }

    /// Resolves the cached sharded plan (and the layout its shards
    /// stage under) that a fan-out of `len` elements replays, without
    /// compiling anything: `None` routes to the sequential fallback.
    /// Mirrors the cached-mode resolution of
    /// [`ApSoftmax::execute_codes_mode`] / `execute_autotuned` as a
    /// pure observer.
    fn resolve_fanout_plan(
        &self,
        len: usize,
        pool: &mut FanoutState,
    ) -> Result<Option<(Arc<ShardedPlan>, Layout)>, CoreError> {
        if self.plan_mode != PlanMode::Cached {
            return Ok(None);
        }
        if self.autotune {
            return Ok(match self.plans.peek(&self.tuned_key(len)) {
                Some(CachedPlan::Tuned(t)) => match &t.plan {
                    CachedPlan::Sharded(p) => Some((Arc::clone(p), t.choice.layout)),
                    _ => None,
                },
                _ => None,
            });
        }
        let (_, rows) = self.packing(len);
        if rows <= self.device.rows_per_tile {
            return Ok(None);
        }
        let mut ranges = std::mem::take(&mut pool.ranges);
        let part = self.effective_partition(len, &mut ranges);
        let shards = ranges.len();
        pool.ranges = ranges;
        part?;
        let resident = self.resident_for(shards);
        let vkey = PlanKey {
            len,
            layout: self.layout,
            div: self.div_style,
            opt: self.opt_level,
            phase: PlanPhase::Vector,
            resident,
            tuned: false,
        };
        Ok(match self.plans.peek(&vkey) {
            // A plan compiled for a different partition (a
            // `partition_override` change) or residency mode cannot fan
            // out; the sequential path raises the mismatch error.
            Some(CachedPlan::Sharded(p)) if p.ranges == pool.ranges && p.resident == resident => {
                Some((p, self.layout))
            }
            _ => None,
        })
    }

    /// The fan-out proper: split the plan's shards into `workers`
    /// contiguous chunks, give each worker disjoint output slices, run
    /// the three phases with two barrier waits, and merge the
    /// accounting back into sequential order.
    fn run_fanout(
        &self,
        pool: &mut FanoutState,
        plan: &ShardedPlan,
        layout: Layout,
        codes: &[i64],
        run: &mut ApSoftmaxRun,
        workers: usize,
    ) -> Result<(), CoreError> {
        let ranges = &plan.ranges;
        let shards = ranges.len();
        let resident = plan.resident;
        let total_len = codes.len();
        let m_bits = self.cfg().m;
        let sum_bits = self.sm.constants().effective_sum_bits(self.cfg());
        pool.ensure(shards, workers);
        let FanoutState {
            workers: worker_pool,
            minima,
            partials,
            phase_cycles,
            loads,
            pc,
            ..
        } = pool;

        // Contiguous near-even chunks keep a stable shard→worker
        // affinity, so resident tile pools stay warm across vectors of
        // the shape (workers ≤ shards ⇒ every chunk is non-empty).
        let chunk_start = |j: usize| j * shards / workers;

        run.codes.clear();
        run.codes.resize(total_len, 0);
        run.vapprox.clear();
        run.vapprox.resize(total_len, 0);
        run.steps.clear();

        let mut args: Vec<WorkerArg<'_>> = Vec::with_capacity(workers);
        {
            let mut codes_rest: &mut [u64] = &mut run.codes;
            let mut vap_rest: &mut [u64] = &mut run.vapprox;
            let mut consumed = 0usize;
            for (j, ws) in worker_pool.iter_mut().take(workers).enumerate() {
                let (cs, ce) = (chunk_start(j), chunk_start(j + 1));
                let base = ranges[cs].0;
                let end = if j + 1 == workers {
                    total_len
                } else {
                    ranges[ce].0
                };
                let (c_mine, c_rest) = std::mem::take(&mut codes_rest).split_at_mut(end - consumed);
                let (v_mine, v_rest) = std::mem::take(&mut vap_rest).split_at_mut(end - consumed);
                codes_rest = c_rest;
                vap_rest = v_rest;
                consumed = end;
                ws.stats = CycleStats::default();
                ws.rows_max = 0;
                ws.cols_max = 0;
                ws.err = None;
                for s in &mut ws.steps {
                    s.clear();
                }
                if resident {
                    if ws.tiles.len() < ce - cs {
                        ws.tiles.resize_with(ce - cs, ApTile::new);
                    }
                } else if ws.tiles.is_empty() {
                    ws.tiles.push(ApTile::new());
                }
                args.push(WorkerArg {
                    state: ws,
                    chunk: (cs, ce),
                    base,
                    codes_out: c_mine,
                    vap_out: v_mine,
                });
            }
        }

        let barrier = Barrier::new(workers);
        let cancel = AtomicBool::new(false);
        let ctx = FanoutCtx {
            plan,
            layout,
            codes,
            barrier: &barrier,
            cancel: &cancel,
            minima: &minima[..shards],
            partials: &partials[..shards],
            phase_cycles,
        };

        batch::fan_out_with(&mut args, |_, arg| self.fanout_worker(&ctx, arg));

        if let Some(err) = args.iter_mut().find_map(|a| a.state.err.take()) {
            return Err(err);
        }
        drop(args);

        // Merge the per-worker accounting back into sequential order:
        // phase by phase, workers in shard order, the cross-tile
        // reduction steps between the phases — identical names,
        // identical totals, identical first-appearance order.
        let red_min = self.device.reduction_network(shards, m_bits);
        let red_sum = self.device.reduction_network(shards, sum_bits);
        let mut total = CycleStats::default();
        let mut rows_max = 0usize;
        let mut cols_max = 0usize;
        for ws in worker_pool.iter().take(workers) {
            total.accumulate(&ws.stats);
            rows_max = rows_max.max(ws.rows_max);
            cols_max = cols_max.max(ws.cols_max);
        }
        total.accumulate(&red_min);
        total.accumulate(&red_sum);
        let reductions = [
            Some(("device: cross-tile min", red_min)),
            Some(("device: cross-tile sum", red_sum)),
            None,
        ];
        for (phase, red) in reductions.into_iter().enumerate() {
            for ws in worker_pool.iter().take(workers) {
                for st in &ws.steps[phase] {
                    accumulate_step(&mut run.steps, st.name, st.stats);
                }
            }
            if let Some((name, stats)) = red {
                accumulate_step(&mut run.steps, name, stats);
            }
        }

        let combined =
            self.combine_partials_from(ctx.partials.iter().map(|p| p.load(Ordering::Relaxed)))?;
        let mut latency = red_min.cycles() + red_sum.cycles();
        for pcs in phase_cycles.iter() {
            pc.clear();
            pc.extend(pcs[..shards].iter().map(|c| c.load(Ordering::Relaxed)));
            latency += device::wave_makespan(pc, self.device.tiles, loads);
        }
        let mut reduction = red_min;
        reduction.accumulate(&red_sum);

        run.frac_bits = self.sm.widths().frac_bits();
        run.sum = combined;
        run.total = total;
        run.rows = rows_max;
        run.cols_used = cols_max;
        run.shards = shards;
        run.waves = self.device.waves(shards);
        run.latency_cycles = latency;
        run.reduction = reduction;
        Ok(())
    }

    /// One worker's three phases over its shard chunk. Mirrors the
    /// `ShardExec::Replay` arms of [`ApSoftmax::run_sharded`] exactly:
    /// same replay pricing, same re-arm flags, same staging rules. On
    /// error (or a peer's cancel) the worker skips remaining work but
    /// still reaches both barriers.
    fn fanout_worker(&self, ctx: &FanoutCtx<'_>, arg: &mut WorkerArg<'_>) {
        let FanoutCtx {
            plan,
            layout,
            codes,
            barrier,
            cancel,
            minima,
            partials,
            phase_cycles,
        } = *ctx;
        let ranges: &[(usize, usize)] = &plan.ranges;
        let resident = plan.resident;
        let (cs, ce) = arg.chunk;
        let base = arg.base;
        let no_inputs: [&[u64]; 0] = [];

        // Phase 1: per-shard min search over the owned chunk.
        for s in cs..ce {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            let (start, end) = ranges[s];
            let (packed, rows) = Self::packing_of(layout, end - start);
            let ws = &mut *arg.state;
            ws.rows_max = ws.rows_max.max(rows);
            ws.half0.clear();
            ws.half0
                .extend(codes[start..start + rows].iter().map(|&c| c.unsigned_abs()));
            ws.half1.clear();
            if packed {
                ws.half1
                    .extend(codes[start + rows..end].iter().map(|&c| c.unsigned_abs()));
            }
            let halves_arr: [&[u64]; 2] = [ws.half0.as_slice(), ws.half1.as_slice()];
            let halves = if packed {
                &halves_arr[..]
            } else {
                &halves_arr[..1]
            };
            let tile = if resident {
                &mut ws.tiles[s - cs]
            } else {
                &mut ws.tiles[0]
            };
            let p = &plan.min_plans[s];
            let mut outs: [&mut Vec<u64>; 0] = [];
            match self.replay_shard_phase(
                p,
                tile,
                &mut ws.scratch,
                halves,
                &[],
                &mut outs,
                &mut ws.steps[0],
                phase_replay(ranges, s, resident),
                false,
            ) {
                Ok(stats) => {
                    minima[s].store(ws.scratch.reg(p.result_reg()), Ordering::Relaxed);
                    phase_cycles[0][s].store(stats.cycles(), Ordering::Relaxed);
                    ws.cols_max = ws.cols_max.max(p.cols_used());
                    ws.stats.accumulate(&stats);
                }
                Err(e) => {
                    ws.err = Some(e);
                    cancel.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        barrier.wait(); // sync point 1: every shard minimum deposited

        let global_min = if cancel.load(Ordering::Relaxed) {
            0
        } else {
            minima
                .iter()
                .map(|m| m.load(Ordering::Relaxed))
                .min()
                .expect("shards >= 1")
        };

        // Phase 2: exp + partial sum (global min as program scalar).
        for s in cs..ce {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            let (start, end) = ranges[s];
            let (packed, rows) = Self::packing_of(layout, end - start);
            let ws = &mut *arg.state;
            ws.half0.clear();
            ws.half1.clear();
            if !resident {
                ws.half0
                    .extend(codes[start..start + rows].iter().map(|&c| c.unsigned_abs()));
                if packed {
                    ws.half1
                        .extend(codes[start + rows..end].iter().map(|&c| c.unsigned_abs()));
                }
            }
            let halves_arr: [&[u64]; 2] = [ws.half0.as_slice(), ws.half1.as_slice()];
            let replay_inputs: &[&[u64]] = if resident {
                &no_inputs
            } else if packed {
                &halves_arr[..]
            } else {
                &halves_arr[..1]
            };
            let tile = if resident {
                &mut ws.tiles[s - cs]
            } else {
                &mut ws.tiles[0]
            };
            let p = &plan.exp_plans[s];
            let scalars = [global_min];
            ws.tmp.clear();
            let mut outs: [&mut Vec<u64>; 1] = [&mut ws.tmp];
            match self.replay_shard_phase(
                p,
                tile,
                &mut ws.scratch,
                replay_inputs,
                &scalars,
                &mut outs,
                &mut ws.steps[1],
                phase_replay(ranges, s, resident),
                resident,
            ) {
                Ok(stats) => {
                    arg.vap_out[start - base..end - base].copy_from_slice(&ws.tmp);
                    partials[s].store(ws.scratch.reg(p.result_reg()), Ordering::Relaxed);
                    phase_cycles[1][s].store(stats.cycles(), Ordering::Relaxed);
                    ws.cols_max = ws.cols_max.max(p.cols_used());
                    ws.stats.accumulate(&stats);
                }
                Err(e) => {
                    ws.err = Some(e);
                    cancel.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        barrier.wait(); // sync point 2: every partial sum deposited

        let combined = if cancel.load(Ordering::Relaxed) {
            Ok(0)
        } else {
            self.combine_partials_from(partials.iter().map(|p| p.load(Ordering::Relaxed)))
        };
        let combined = match combined {
            Ok(c) => c,
            Err(e) => {
                // Every worker detects the same overflow; each records
                // it (the merge keeps the lowest-indexed copy), and no
                // barrier remains to deadlock on.
                arg.state.err = Some(e);
                cancel.store(true, Ordering::Relaxed);
                return;
            }
        };

        // Phase 3: divide by the broadcast divisor.
        for s in cs..ce {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            let (start, end) = ranges[s];
            let (packed, rows) = Self::packing_of(layout, end - start);
            let vap = &arg.vap_out[start - base..end - base];
            let vap_halves_arr: [&[u64]; 2] = [&vap[..rows], &vap[rows.min(vap.len())..]];
            let vap_halves_all: &[&[u64]] = if packed {
                &vap_halves_arr[..]
            } else {
                &vap_halves_arr[..1]
            };
            let replay_inputs: &[&[u64]] = if resident { &no_inputs } else { vap_halves_all };
            let ws = &mut *arg.state;
            let tile = if resident {
                &mut ws.tiles[s - cs]
            } else {
                &mut ws.tiles[0]
            };
            let p = &plan.div_plans[s];
            let scalars = [combined];
            ws.tmp.clear();
            let mut outs: [&mut Vec<u64>; 1] = [&mut ws.tmp];
            match self.replay_shard_phase(
                p,
                tile,
                &mut ws.scratch,
                replay_inputs,
                &scalars,
                &mut outs,
                &mut ws.steps[2],
                phase_replay(ranges, s, resident),
                resident,
            ) {
                Ok(stats) => {
                    arg.codes_out[start - base..end - base].copy_from_slice(&ws.tmp);
                    phase_cycles[2][s].store(stats.cycles(), Ordering::Relaxed);
                    ws.cols_max = ws.cols_max.max(p.cols_used());
                    ws.stats.accumulate(&stats);
                }
                Err(e) => {
                    ws.err = Some(e);
                    cancel.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_ap::{DeviceConfig, ExecBackend};
    use softmap_softmax::PrecisionConfig;

    fn scores(len: usize) -> Vec<f64> {
        (0..len).map(|i| -(((i * 7) % 97) as f64) * 0.07).collect()
    }

    fn quantized(sm: &ApSoftmax, len: usize) -> Vec<i64> {
        let mut codes = Vec::new();
        sm.spec().quantize_into(&scores(len), &mut codes);
        codes
    }

    /// Field-by-field run equality: bit-exact outputs *and* identical
    /// cost accounting (the fan-out merely evaluates the same plan
    /// concurrently).
    fn assert_runs_equal(a: &ApSoftmaxRun, b: &ApSoftmaxRun, what: &str) {
        assert_eq!(a.codes, b.codes, "{what}: codes");
        assert_eq!(a.vapprox, b.vapprox, "{what}: vapprox");
        assert_eq!(a.steps, b.steps, "{what}: steps");
        assert_eq!(a.sum, b.sum, "{what}: sum");
        assert_eq!(a.frac_bits, b.frac_bits, "{what}: frac_bits");
        assert_eq!(a.total, b.total, "{what}: total");
        assert_eq!(a.rows, b.rows, "{what}: rows");
        assert_eq!(a.cols_used, b.cols_used, "{what}: cols_used");
        assert_eq!(a.shards, b.shards, "{what}: shards");
        assert_eq!(a.waves, b.waves, "{what}: waves");
        assert_eq!(a.latency_cycles, b.latency_cycles, "{what}: latency_cycles");
        assert_eq!(a.reduction, b.reduction, "{what}: reduction");
    }

    #[test]
    fn fanout_matches_sequential_replay_bit_and_cost_exact() {
        for resident in [true, false] {
            let sm = ApSoftmax::new(PrecisionConfig::paper_best())
                .unwrap()
                .with_autotune(false)
                .with_backend(ExecBackend::FastWord)
                .with_device(DeviceConfig::new(2, 8))
                .with_resident(resident);
            let codes = quantized(&sm, 48);
            let mut state = TileState::new();
            let mut seq = ApSoftmaxRun::default();
            // First call compiles, second replays: the reference.
            sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
            sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
            assert!(seq.shards > 1, "48 scores on 8-row tiles must shard");
            let mut pool = FanoutState::default();
            let mut fan_state = TileState::new();
            // More workers than shards clamps; odd counts exercise the
            // uneven contiguous chunking.
            for threads in [2, 3, 16] {
                let mut out = ApSoftmaxRun::default();
                sm.execute_codes_fanout(&mut fan_state, &mut pool, &codes, &mut out, threads)
                    .unwrap();
                assert_runs_equal(
                    &out,
                    &seq,
                    &format!("resident={resident} threads={threads}"),
                );
            }
        }
    }

    #[test]
    fn fanout_replays_the_autotuned_sharded_winner() {
        // Default mapping autotunes: the fan-out must resolve the tuned
        // entry's sharded winner and replay under the winning layout.
        let sm = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord)
            .with_device(DeviceConfig::new(2, 8));
        let codes = quantized(&sm, 48);
        let mut state = TileState::new();
        let mut seq = ApSoftmaxRun::default();
        sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
        sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
        let hits_before = sm.plan_stats().hits;
        let mut pool = FanoutState::default();
        let mut out = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &codes, &mut out, 2)
            .unwrap();
        assert_runs_equal(&out, &seq, "tuned winner");
        assert!(
            sm.plan_stats().hits > hits_before,
            "the fan-out replay must count as a plan-cache hit"
        );
    }

    #[test]
    fn fanout_matches_sequential_on_the_default_grid() {
        // The acceptance shape: 16384 scores on the paper's 48-tile
        // grid, through the default (autotuned) configuration.
        let sm = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord);
        let codes = quantized(&sm, 16384);
        let mut state = TileState::new();
        let mut seq = ApSoftmaxRun::default();
        sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
        sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
        assert!(seq.shards > 1);
        let mut pool = FanoutState::default();
        let mut out = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &codes, &mut out, 4)
            .unwrap();
        assert_runs_equal(&out, &seq, "default grid 16384");
    }

    #[test]
    fn fanout_falls_back_when_it_cannot_fan_out() {
        let sm = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(ExecBackend::FastWord)
            .with_device(DeviceConfig::new(2, 8));
        let codes = quantized(&sm, 48);
        let mut state = TileState::new();
        let mut pool = FanoutState::default();

        // First sight of a shape: the fallback compiles it.
        let mut first = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &codes, &mut first, 4)
            .unwrap();
        assert!(
            sm.plan_stats().compiles >= 1,
            "the sequential fallback must compile the shape"
        );
        let mut seq = ApSoftmaxRun::default();
        sm.execute_codes_into(&mut state, &codes, &mut seq).unwrap();
        assert_eq!(first.codes, seq.codes, "compile and replay stay bit-exact");

        // The shape is cached now; a second fan-out takes the parallel
        // path and matches the sequential replay exactly.
        let mut out = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &codes, &mut out, 4)
            .unwrap();
        assert_runs_equal(&out, &seq, "post-compile fan-out");

        // A single effective worker replays sequentially.
        let mut one = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &codes, &mut one, 1)
            .unwrap();
        assert_runs_equal(&one, &seq, "threads=1 fallback");

        // Unsharded shapes route to the whole-vector path.
        let short = quantized(&sm, 8);
        let mut whole = ApSoftmaxRun::default();
        sm.execute_codes_fanout(&mut state, &mut pool, &short, &mut whole, 4)
            .unwrap();
        assert_eq!(whole.shards, 1, "8 scores fit one 8-row tile");

        // Empty input errors identically to the sequential entry point.
        let mut sink = ApSoftmaxRun::default();
        assert!(matches!(
            sm.execute_codes_fanout(&mut state, &mut pool, &[], &mut sink, 2),
            Err(CoreError::EmptyInput)
        ));
    }
}
