//! Shape-keyed plan caching for the mapped dataflow.
//!
//! The Fig. 5 dataflow is static per shape: the op sequence depends
//! only on `(vector length, layout, division style)` for a given
//! precision configuration, never on the data. [`crate::ApSoftmax`]
//! therefore *compiles* the dataflow once per shape into a
//! [`softmap_ap::ApProgram`] and replays it for every further vector —
//! this module is the cache those compiled plans live in.
//!
//! Three kinds of entries share the cache:
//!
//! * **whole-vector programs** ([`CompiledPlan`]) for shapes that fit
//!   one tile, plus the per-phase shard programs (min search, exp +
//!   partial sum, divide) sharded execution replays,
//! * **sharded vector plans** ([`ShardedPlan`]) for shapes that exceed
//!   the device's tile capacity: the shard partition, the per-shard
//!   phase programs (as `Arc`s into the same cache), and the cost
//!   metadata (waves, cross-tile reduction charges, critical path)
//!   recorded at compile time so static queries stay execution-free,
//!   and
//! * **tuned vector plans** ([`TunedPlan`]) installed by the mapping
//!   autotuner (`crate::mapping::autotune`): the winning whole-vector
//!   or sharded plan plus the [`MappingChoice`] it corresponds to and
//!   the scores of every losing candidate. Tuned entries live under
//!   their own `tuned` key axis so a tuned mapping and its pinned
//!   paper-default baseline coexist in the same LRU.
//!
//! Sharing happens at two levels, mirroring the tile pool:
//!
//! * one [`PlanCache`] per `ApSoftmax` (shared by all of its clones via
//!   `Arc`, so every batch worker sees plans compiled by any other
//!   worker), and
//! * a one-entry *slot* inside each [`crate::TileState`], so the
//!   steady-state per-vector path touches no lock at all — the slot is
//!   validated against the cache's identity and the shape key by plain
//!   comparisons.
//!
//! The cache is **bounded**: a small LRU (default
//! [`PlanCache::DEFAULT_CAPACITY`] entries) evicts the least recently
//! used shape once the cap is exceeded, so serving arbitrarily many
//! distinct sequence lengths cannot grow memory without bound. Evicted
//! shapes simply recompile on their next use; `Arc`s held by tile
//! slots or sharded plans keep in-flight programs alive.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use softmap_ap::{ApProgram, CycleStats, DivStyle, OptLevel, PassReport, RegId};

use crate::mapping::{Layout, StepStats, VectorCost};

/// Which program a cache entry holds: the whole-vector dataflow, one
/// of the three per-shard phase programs, or the vector-level sharded
/// plan (under [`PlanPhase::Vector`], disjoint from whole-vector
/// entries by length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PlanPhase {
    /// A vector-level entry: the whole-vector program for lengths that
    /// fit one tile, or the [`ShardedPlan`] for lengths that do not.
    Vector,
    /// Per-shard load + min-search program.
    ShardMin,
    /// Per-shard stabilize + exponential + partial-sum program.
    ShardExp,
    /// Per-shard divide program.
    ShardDiv,
}

/// The shape a compiled plan is valid for. The precision configuration
/// is not part of the key because each `ApSoftmax` (and thus each
/// cache) is built for exactly one configuration; builder methods that
/// change the shape axes swap in a fresh cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    /// Vector length — the whole vector for [`PlanPhase::Vector`], the
    /// shard length for the per-shard phases.
    pub len: usize,
    /// Row packing layout.
    pub layout: Layout,
    /// Division microcode style.
    pub div: DivStyle,
    /// Optimization level the plan was compiled at. Part of the key so
    /// optimized and unoptimized plans for the same shape coexist (the
    /// differential-testing baseline never evicts the fast path).
    pub opt: OptLevel,
    /// Which program of the dataflow this entry is.
    pub phase: PlanPhase,
    /// Whether the plan was compiled for resident sharded execution
    /// (shard tiles pinned across phases, staging elided). Part of the
    /// key so resident and re-staged plans for the same shape coexist
    /// in the LRU — the differential baseline never evicts the fast
    /// path. Always `false` for whole-vector entries.
    pub resident: bool,
    /// Whether this is an autotuned vector-level entry (a
    /// [`TunedPlan`] installed by the mapping autotuner). Its own key
    /// axis so a tuned mapping and its `with_autotune(false)` baseline
    /// coexist without evicting each other. Always `false` for shard
    /// phase programs and untuned vector entries.
    pub tuned: bool,
}

/// A compiled dataflow plan: the recorded [`ApProgram`] plus the
/// mapping-level metadata replay needs to assemble an
/// [`crate::ApSoftmaxRun`] without re-deriving anything.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    program: ApProgram,
    result_reg: RegId,
    rows: usize,
    cols_used: usize,
    report: PassReport,
    compile_micros: f64,
}

impl CompiledPlan {
    pub(crate) fn new(
        program: ApProgram,
        result_reg: RegId,
        rows: usize,
        cols_used: usize,
        report: PassReport,
        compile_micros: f64,
    ) -> Self {
        Self {
            program,
            result_reg,
            rows,
            cols_used,
            report,
            compile_micros,
        }
    }

    /// The recorded program.
    #[must_use]
    pub fn program(&self) -> &ApProgram {
        &self.program
    }

    /// The register holding the program's scalar result after replay:
    /// the (pre-clamp) reduction sum for the whole-vector program, the
    /// shard minimum / partial sum for the shard phases.
    pub(crate) fn result_reg(&self) -> RegId {
        self.result_reg
    }

    /// Rows the plan's tile occupies.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns used by the field layout (excluding scratch headroom).
    #[must_use]
    pub fn cols_used(&self) -> usize {
        self.cols_used
    }

    /// Per-pass statistics of the optimizer run that produced this
    /// plan's program ([`softmap_ap::PassReport`]; an identity report at
    /// [`softmap_ap::OptLevel::None`]).
    #[must_use]
    pub fn pass_report(&self) -> PassReport {
        self.report
    }

    /// Wall-clock microseconds the compile (record + first execution)
    /// took — the amortized cost replay saves.
    #[must_use]
    pub fn compile_micros(&self) -> f64 {
        self.compile_micros
    }

    /// Region-blocking statistics of the plan's program (regions
    /// formed, ops covered, footprint, strip widths, arena sweeps
    /// elided), or `None` when the plan was compiled with blocking
    /// disabled ([`crate::ApSoftmax::with_blocked`]).
    #[must_use]
    pub fn block_stats(&self) -> Option<softmap_ap::BlockStats> {
        self.program.block_stats()
    }
}

/// A compiled **sharded** vector plan: the shard partition, one phase
/// program triple per shard (`Arc`-shared between same-shape shards),
/// and the device-level cost metadata recorded at compile time.
///
/// The static numbers are exact for the input the plan was compiled
/// from (and any input following the same microcode path) — the same
/// contract as [`CompiledPlan`]'s static cost, extended with the
/// deterministic cross-tile reduction charges and wave scheduling of
/// the device model.
#[derive(Debug)]
pub struct ShardedPlan {
    pub(crate) ranges: Vec<(usize, usize)>,
    pub(crate) min_plans: Vec<Arc<CompiledPlan>>,
    pub(crate) exp_plans: Vec<Arc<CompiledPlan>>,
    pub(crate) div_plans: Vec<Arc<CompiledPlan>>,
    pub(crate) steps: Vec<StepStats>,
    pub(crate) total: CycleStats,
    pub(crate) reduction: CycleStats,
    pub(crate) latency_cycles: u64,
    pub(crate) waves: u64,
    pub(crate) rows: usize,
    pub(crate) cols_used: usize,
    pub(crate) compile_micros: f64,
    pub(crate) resident: bool,
}

impl ShardedPlan {
    /// Number of shards the vector splits into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Whether this plan executes resident: shard tiles pinned across
    /// the three phases, phase-boundary staging elided, same-length
    /// shards after the wave's first charged in lockstep. `false` is
    /// the PR 5 re-staging path (also the automatic fallback when the
    /// vector's shards exceed the tile grid).
    #[must_use]
    pub fn resident(&self) -> bool {
        self.resident
    }

    /// Sequential waves per phase on the device's tile grid.
    #[must_use]
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Total work (all shards + cross-tile reductions) recorded at
    /// compile time.
    #[must_use]
    pub fn total(&self) -> CycleStats {
        self.total
    }

    /// The cross-tile reduction-network charges (min + sum combines).
    #[must_use]
    pub fn reduction(&self) -> CycleStats {
        self.reduction
    }

    /// The device critical path: per-phase wave makespans plus the
    /// reduction-network cycles.
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// Rows of the largest shard's tile.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Widest column layout across the phase programs.
    #[must_use]
    pub fn cols_used(&self) -> usize {
        self.cols_used
    }

    /// Wall-clock microseconds the sharded compile took.
    #[must_use]
    pub fn compile_micros(&self) -> f64 {
        self.compile_micros
    }

    /// Aggregated region-blocking statistics across the distinct phase
    /// programs (each `Arc`-shared program counted once), or `None`
    /// when the plan was compiled with blocking disabled.
    #[must_use]
    pub fn block_stats(&self) -> Option<softmap_ap::BlockStats> {
        let mut agg: Option<softmap_ap::BlockStats> = None;
        let mut seen: Vec<*const CompiledPlan> = Vec::new();
        for plan in self
            .min_plans
            .iter()
            .chain(&self.exp_plans)
            .chain(&self.div_plans)
        {
            let ptr = Arc::as_ptr(plan);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            let Some(s) = plan.block_stats() else {
                continue;
            };
            let a = agg.get_or_insert_with(Default::default);
            a.regions += s.regions;
            a.blocked_ops += s.blocked_ops;
            a.max_ops_per_region = a.max_ops_per_region.max(s.max_ops_per_region);
            a.footprint_bytes_max = a.footprint_bytes_max.max(s.footprint_bytes_max);
            a.strip_blocks_min = if a.strip_blocks_min == 0 {
                s.strip_blocks_min
            } else if s.strip_blocks_min == 0 {
                a.strip_blocks_min
            } else {
                a.strip_blocks_min.min(s.strip_blocks_min)
            };
            a.strip_blocks_max = a.strip_blocks_max.max(s.strip_blocks_max);
            a.gathers_elided += s.gathers_elided;
            a.scatters_elided += s.scatters_elided;
        }
        agg
    }
}

/// The mapping an autotuned plan selected: the searched configuration
/// axes plus the shard geometry of the winning plan. Returned by
/// [`TunedPlan::choice`] and rendered (via `Display`) in the eval
/// `autotune` table and `examples/backend_profile.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingChoice {
    /// Row packing layout of the winning plan.
    pub layout: Layout,
    /// Division microcode style. Never searched: only the configured
    /// style preserves the mapping's exactness contract (the
    /// controller-reciprocal divider is within 1 ULP, not bit-exact).
    pub div: DivStyle,
    /// Optimization level. Never searched: cost is non-increasing
    /// along [`OptLevel::ladder`], so the configured level dominates.
    pub opt: OptLevel,
    /// Whether the winning plan executes resident (sharded shapes
    /// only; `false` for whole-vector winners).
    pub resident: bool,
    /// Shards the winning plan splits the vector into (1 =
    /// whole-vector).
    pub shards: usize,
    /// Whether the winner uses a balanced shard partition instead of
    /// the device's greedy capacity-filling default.
    pub balanced: bool,
}

impl fmt::Display for MappingChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let layout = match self.layout {
            Layout::TwoWordsPerRow => "two-words/row",
            Layout::OneWordPerRow => "one-word/row",
        };
        let div = match self.div {
            DivStyle::Restoring => "restoring",
            DivStyle::ControllerReciprocal => "reciprocal",
        };
        let opt = match self.opt {
            OptLevel::None => "opt=none",
            OptLevel::Basic => "opt=basic",
            OptLevel::Full => "opt=full",
        };
        write!(f, "{layout} {div} {opt}")?;
        if self.shards == 1 {
            write!(f, " 1 shard")
        } else {
            write!(
                f,
                " {} shards ({}, {})",
                self.shards,
                if self.balanced { "balanced" } else { "greedy" },
                if self.resident {
                    "resident"
                } else {
                    "re-staged"
                }
            )
        }
    }
}

/// One scored candidate from an autotune search. The winner and every
/// losing candidate are recorded on the installed [`TunedPlan`], so
/// "why did the tuner pick this" is answerable without re-searching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateScore {
    /// The candidate mapping.
    pub choice: MappingChoice,
    /// Static total work cycles of the candidate's compiled plan.
    pub cycles: u64,
    /// Static device critical-path cycles.
    pub latency_cycles: u64,
    /// Static cell events (the energy proxy).
    pub cell_events: u64,
}

/// An autotuned vector-level cache entry: the winning compiled plan
/// (whole-vector or sharded), the [`MappingChoice`] it realizes, its
/// static cost next to the configured default's, and the full score
/// table of the search.
#[derive(Debug)]
pub struct TunedPlan {
    pub(crate) choice: MappingChoice,
    pub(crate) plan: CachedPlan,
    pub(crate) winner_cost: VectorCost,
    pub(crate) default_cost: VectorCost,
    pub(crate) scores: Vec<CandidateScore>,
    pub(crate) compile_micros: f64,
}

impl TunedPlan {
    /// The winning mapping.
    #[must_use]
    pub fn choice(&self) -> MappingChoice {
        self.choice
    }

    /// Static cost of the winning plan (exact for the input the search
    /// compiled from; the static == simulated contract carries over
    /// from the winner's plan kind).
    #[must_use]
    pub fn winner_cost(&self) -> &VectorCost {
        &self.winner_cost
    }

    /// Static cost of the configured default mapping on the same
    /// input, for comparison (the default candidate is always scored).
    #[must_use]
    pub fn default_cost(&self) -> &VectorCost {
        &self.default_cost
    }

    /// Every candidate scored by the search, in enumeration order (the
    /// configured default mapping first).
    #[must_use]
    pub fn scores(&self) -> &[CandidateScore] {
        &self.scores
    }

    /// Whether the winner strictly beat the configured default in
    /// total work cycles.
    #[must_use]
    pub fn improved(&self) -> bool {
        self.winner_cost.total.cycles() < self.default_cost.total.cycles()
    }

    /// Wall-clock microseconds the whole search (every candidate
    /// compile included) took.
    #[must_use]
    pub fn compile_micros(&self) -> f64 {
        self.compile_micros
    }
}

/// One cache entry: a single compiled program, a sharded plan, or an
/// autotuned winner.
#[derive(Debug, Clone)]
pub(crate) enum CachedPlan {
    /// A whole-vector or shard-phase program.
    Program(Arc<CompiledPlan>),
    /// A vector-level sharded plan.
    Sharded(Arc<ShardedPlan>),
    /// A vector-level autotuned plan wrapping its winner.
    Tuned(Arc<TunedPlan>),
}

/// Aggregate counters of a [`PlanCache`]; see
/// [`crate::ApSoftmax::plan_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// Plans currently cached.
    pub plans: usize,
    /// Shape-miss compilations performed (phase programs and sharded
    /// vector plans each count one).
    pub compiles: u64,
    /// Cache hits (lock-free tile-slot hits included).
    pub hits: u64,
    /// LRU evictions over the cache's lifetime.
    pub evictions: u64,
    /// Total wall-clock microseconds spent compiling over the cache's
    /// lifetime (survives [`PlanCache::clear`] and recompiles).
    pub compile_micros: f64,
}

/// Autotune counters of a [`PlanCache`]; all zero until a mapping with
/// autotuning enabled compiles a shape. See
/// [`crate::ApSoftmax::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutotuneStats {
    /// Shapes that went through a candidate search.
    pub shapes_tuned: u64,
    /// Candidate mappings compiled and scored across all searches.
    pub candidates_scored: u64,
    /// Searches whose winner strictly beat the configured default
    /// mapping in total work cycles.
    pub wins: u64,
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct Entry {
    plan: CachedPlan,
    used: u64,
}

/// The bounded, shape-keyed store of compiled plans; see the module
/// docs.
///
/// One cache exists per [`crate::ApSoftmax`] and is shared by all of
/// its clones. The cache carries a process-unique identity so tile
/// slots warmed by one mapping are never mistaken for another's.
///
/// # Examples
///
/// ```
/// use softmap::ApSoftmax;
/// use softmap_softmax::PrecisionConfig;
///
/// let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
/// mapping.execute_floats(&[0.0, -1.0, -2.0, -3.0])?; // compiles
/// mapping.execute_floats(&[0.0, -0.5, -1.5, -2.5])?; // replays
/// let stats = mapping.plan_stats();
/// assert_eq!((stats.plans, stats.compiles), (1, 1));
/// assert!(stats.hits >= 1);
/// # Ok::<(), softmap::CoreError>(())
/// ```
#[derive(Debug)]
pub struct PlanCache {
    id: u64,
    epoch: AtomicU64,
    capacity: usize,
    tick: AtomicU64,
    plans: Mutex<HashMap<PlanKey, Entry>>,
    /// Serializes compilations so concurrent workers missing the same
    /// shape produce one plan, not one each (the map lock itself is
    /// never held across a compile).
    compiling: Mutex<()>,
    compiles: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
    /// Total compile time across the cache's lifetime, in nanoseconds
    /// (survives [`PlanCache::clear`] and same-key recompiles, unlike
    /// summing over the currently cached plans).
    compile_nanos: AtomicU64,
    shapes_tuned: AtomicU64,
    candidates_scored: AtomicU64,
    tuned_wins: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Default LRU capacity: comfortably above any single workload's
    /// working set (a sharded shape needs at most seven entries per
    /// residency mode — the vector plan plus two shard lengths × three
    /// phases — so fourteen when resident and re-staged plans coexist,
    /// plus one tuned entry per shape when the autotuner is on) while
    /// keeping a long-running server's memory bounded under arbitrary
    /// length mixes.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty cache with a fresh identity and the default
    /// capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache holding at most `capacity` plans
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            plans: Mutex::new(HashMap::new()),
            compiling: Mutex::new(()),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
            shapes_tuned: AtomicU64::new(0),
            candidates_scored: AtomicU64::new(0),
            tuned_wins: AtomicU64::new(0),
        }
    }

    /// The LRU capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes the compile lock: the caller re-checks the map under it
    /// and compiles only if the shape is still missing, so racing
    /// workers converge on a single plan per shape.
    pub(crate) fn lock_for_compile(&self) -> std::sync::MutexGuard<'_, ()> {
        self.compiling.lock().expect("plan compile lock poisoned")
    }

    /// The cache's identity for tile-slot validation: the
    /// process-unique id plus the clear-epoch, so [`PlanCache::clear`]
    /// also invalidates slots warmed before it.
    pub(crate) fn slot_token(&self) -> (u64, u64) {
        (self.id, self.epoch.load(Ordering::Relaxed))
    }

    pub(crate) fn get(&self, key: &PlanKey) -> Option<CachedPlan> {
        let found = self.touch(key);
        if found.is_some() {
            self.note_hit();
        }
        found
    }

    /// Looks a plan up without counting a hit (observer access for
    /// cost queries that just compiled it); still refreshes recency.
    pub(crate) fn peek(&self, key: &PlanKey) -> Option<CachedPlan> {
        self.touch(key)
    }

    fn touch(&self, key: &PlanKey) -> Option<CachedPlan> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.plans.lock().expect("plan cache poisoned");
        map.get_mut(key).map(|e| {
            e.used = now;
            e.plan.clone()
        })
    }

    pub(crate) fn insert(&self, key: PlanKey, plan: CachedPlan) {
        let micros = match &plan {
            CachedPlan::Program(p) => p.compile_micros(),
            CachedPlan::Sharded(p) => p.compile_micros(),
            CachedPlan::Tuned(p) => p.compile_micros(),
        };
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_nanos
            .fetch_add((micros * 1e3) as u64, Ordering::Relaxed);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.plans.lock().expect("plan cache poisoned");
        map.insert(key, Entry { plan, used: now });
        while map.len() > self.capacity {
            let Some(victim) = map.iter().min_by_key(|(_, e)| e.used).map(|(k, _)| *k) else {
                break;
            };
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a lock-free tile-slot hit.
    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one finished autotune search: `candidates` mappings
    /// scored, `win` when the winner strictly beat the default.
    pub(crate) fn note_autotune(&self, candidates: u64, win: bool) {
        self.shapes_tuned.fetch_add(1, Ordering::Relaxed);
        self.candidates_scored
            .fetch_add(candidates, Ordering::Relaxed);
        if win {
            self.tuned_wins.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime autotune counters (kept across [`PlanCache::clear`]).
    #[must_use]
    pub fn autotune_stats(&self) -> AutotuneStats {
        AutotuneStats {
            shapes_tuned: self.shapes_tuned.load(Ordering::Relaxed),
            candidates_scored: self.candidates_scored.load(Ordering::Relaxed),
            wins: self.tuned_wins.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached plan and advances the epoch so tile slots
    /// warmed before the clear re-resolve. Counters are kept.
    pub fn clear(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().expect("plan cache poisoned").clear();
    }

    /// Number of currently cached entries compiled for resident
    /// execution (see [`crate::ApSoftmax::cache_stats`]).
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .keys()
            .filter(|k| k.resident)
            .count()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> PlanStats {
        let plans = self.plans.lock().expect("plan cache poisoned").len();
        PlanStats {
            plans,
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compile_micros: self.compile_nanos.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}
