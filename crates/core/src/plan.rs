//! Shape-keyed plan caching for the mapped dataflow.
//!
//! The Fig. 5 dataflow is static per shape: the op sequence depends
//! only on `(vector length, layout, division style)` for a given
//! precision configuration, never on the data. [`crate::ApSoftmax`]
//! therefore *compiles* the dataflow once per shape into a
//! [`softmap_ap::ApProgram`] and replays it for every further vector —
//! this module is the cache those compiled plans live in.
//!
//! Sharing happens at two levels, mirroring the tile pool:
//!
//! * one [`PlanCache`] per `ApSoftmax` (shared by all of its clones via
//!   `Arc`, so every batch worker sees plans compiled by any other
//!   worker), and
//! * a one-entry *slot* inside each [`crate::TileState`], so the
//!   steady-state per-vector path touches no lock at all — the slot is
//!   validated against the cache's identity and the shape key by plain
//!   comparisons.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use softmap_ap::{ApProgram, DivStyle, RegId};

use crate::mapping::Layout;

/// The shape a compiled plan is valid for. The precision configuration
/// is not part of the key because each `ApSoftmax` (and thus each
/// cache) is built for exactly one configuration; builder methods that
/// change the shape axes swap in a fresh cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    /// Vector length (determines rows and packing).
    pub len: usize,
    /// Row packing layout.
    pub layout: Layout,
    /// Division microcode style.
    pub div: DivStyle,
}

/// A compiled dataflow plan: the recorded [`ApProgram`] plus the
/// mapping-level metadata replay needs to assemble an
/// [`crate::ApSoftmaxRun`] without re-deriving anything.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    program: ApProgram,
    sum_reg: RegId,
    rows: usize,
    cols_used: usize,
    compile_micros: f64,
}

impl CompiledPlan {
    pub(crate) fn new(
        program: ApProgram,
        sum_reg: RegId,
        rows: usize,
        cols_used: usize,
        compile_micros: f64,
    ) -> Self {
        Self {
            program,
            sum_reg,
            rows,
            cols_used,
            compile_micros,
        }
    }

    /// The recorded program.
    #[must_use]
    pub fn program(&self) -> &ApProgram {
        &self.program
    }

    /// The register holding the (pre-clamp) reduction sum after replay.
    pub(crate) fn sum_reg(&self) -> RegId {
        self.sum_reg
    }

    /// Rows the plan's tile occupies.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns used by the field layout (excluding scratch headroom).
    #[must_use]
    pub fn cols_used(&self) -> usize {
        self.cols_used
    }

    /// Wall-clock microseconds the compile (record + first execution)
    /// took — the amortized cost replay saves.
    #[must_use]
    pub fn compile_micros(&self) -> f64 {
        self.compile_micros
    }
}

/// Aggregate counters of a [`PlanCache`]; see
/// [`crate::ApSoftmax::plan_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// Plans currently cached.
    pub plans: usize,
    /// Shape-miss compilations performed.
    pub compiles: u64,
    /// Cache hits (lock-free tile-slot hits included).
    pub hits: u64,
    /// Total wall-clock microseconds spent compiling over the cache's
    /// lifetime (survives [`PlanCache::clear`] and recompiles).
    pub compile_micros: f64,
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

/// The shape-keyed store of compiled plans; see the module docs.
///
/// One cache exists per [`crate::ApSoftmax`] and is shared by all of
/// its clones. The cache carries a process-unique identity so tile
/// slots warmed by one mapping are never mistaken for another's.
///
/// # Examples
///
/// ```
/// use softmap::ApSoftmax;
/// use softmap_softmax::PrecisionConfig;
///
/// let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
/// mapping.execute_floats(&[0.0, -1.0, -2.0, -3.0])?; // compiles
/// mapping.execute_floats(&[0.0, -0.5, -1.5, -2.5])?; // replays
/// let stats = mapping.plan_stats();
/// assert_eq!((stats.plans, stats.compiles), (1, 1));
/// assert!(stats.hits >= 1);
/// # Ok::<(), softmap::CoreError>(())
/// ```
#[derive(Debug)]
pub struct PlanCache {
    id: u64,
    epoch: AtomicU64,
    plans: Mutex<HashMap<PlanKey, Arc<CompiledPlan>>>,
    /// Serializes compilations so concurrent workers missing the same
    /// shape produce one plan, not one each (the map lock itself is
    /// never held across a compile).
    compiling: Mutex<()>,
    compiles: AtomicU64,
    hits: AtomicU64,
    /// Total compile time across the cache's lifetime, in nanoseconds
    /// (survives [`PlanCache::clear`] and same-key recompiles, unlike
    /// summing over the currently cached plans).
    compile_nanos: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Creates an empty cache with a fresh identity.
    #[must_use]
    pub fn new() -> Self {
        Self {
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            plans: Mutex::new(HashMap::new()),
            compiling: Mutex::new(()),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
        }
    }

    /// Takes the compile lock: the caller re-checks the map under it
    /// and compiles only if the shape is still missing, so racing
    /// workers converge on a single plan per shape.
    pub(crate) fn lock_for_compile(&self) -> std::sync::MutexGuard<'_, ()> {
        self.compiling.lock().expect("plan compile lock poisoned")
    }

    /// The cache's identity for tile-slot validation: the
    /// process-unique id plus the clear-epoch, so [`PlanCache::clear`]
    /// also invalidates slots warmed before it.
    pub(crate) fn slot_token(&self) -> (u64, u64) {
        (self.id, self.epoch.load(Ordering::Relaxed))
    }

    pub(crate) fn get(&self, key: &PlanKey) -> Option<Arc<CompiledPlan>> {
        let found = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .get(key)
            .cloned();
        if found.is_some() {
            self.note_hit();
        }
        found
    }

    /// Looks a plan up without counting a hit (observer access for
    /// cost queries that just compiled it).
    pub(crate) fn peek(&self, key: &PlanKey) -> Option<Arc<CompiledPlan>> {
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .get(key)
            .cloned()
    }

    pub(crate) fn insert(&self, key: PlanKey, plan: Arc<CompiledPlan>) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_nanos
            .fetch_add((plan.compile_micros * 1e3) as u64, Ordering::Relaxed);
        self.plans
            .lock()
            .expect("plan cache poisoned")
            .insert(key, plan);
    }

    /// Counts a lock-free tile-slot hit.
    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every cached plan and advances the epoch so tile slots
    /// warmed before the clear re-resolve. Counters are kept.
    pub fn clear(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.plans.lock().expect("plan cache poisoned").clear();
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> PlanStats {
        let plans = self.plans.lock().expect("plan cache poisoned").len();
        PlanStats {
            plans,
            compiles: self.compiles.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            compile_micros: self.compile_nanos.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}
