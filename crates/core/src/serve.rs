//! Async multi-tenant softmax serving with continuous wave batching.
//!
//! [`SoftmaxServer`] fronts one [`ApSoftmax`] device model with a
//! bounded submission queue and a pool of host worker threads:
//!
//! ```text
//!  clients ──▶ submission queue ──▶ wave packing ──▶ workers
//!  submit()     bounded ring         admission:       persistent
//!  try_submit()  (backpressure:       claim shard      TileState /
//!                 block or            tiles, pack       FanoutState,
//!                 QueueFull)          concurrent        resident plan
//!                                     requests into     replay; shard-
//!                                     one device wave   parallel fan-out
//!                                                       for long vectors
//! ```
//!
//! *Continuous* batching: admission runs at every submission and every
//! completion, so a new wave forms the moment shard tiles free up —
//! there is no epoch barrier between waves. The admission policy is the
//! device model's own shard-partition machinery: a request needs
//! `min(shards, tiles)` tiles (an oversized request — more shards than
//! the grid — admits alone and waves internally, exactly as
//! [`softmap_ap::device::wave_makespan`] schedules it), and the
//! device-time ledger is a [`TileClocks`] greedy least-loaded schedule
//! over per-tile virtual clocks, from which [`ServeStats`] reports the
//! simulated makespan and tile-occupancy ratio.
//!
//! Requests are **bit-exact** versus the non-serving path: workers
//! execute the same cached plans through [`ApSoftmax`], and a long
//! vector fans its three phases across workers over disjoint output
//! slices (`mapping::fanout`) so a single 32k request cannot stall the
//! queue behind it. First sight of a shape warms the plan cache at
//! construction via [`ApSoftmax::warmup`]; the steady-state submit →
//! execute → collect loop performs zero heap allocations for
//! whole-vector requests (asserted by the counting-allocator test).
//!
//! # Knobs
//!
//! * [`SERVE_WORKERS_ENV`] (`SOFTMAP_SERVE_WORKERS`) — worker threads
//!   (default: available parallelism).
//! * [`SERVE_QUEUE_ENV`] (`SOFTMAP_SERVE_QUEUE`) — queue depth
//!   (default 256).
//!
//! Invalid values warn once and keep the default — knobs fail loudly,
//! never silently.
//!
//! # Examples
//!
//! ```
//! use softmap::{ApSoftmax, ServeConfig, SoftmaxServer};
//! use softmap_softmax::PrecisionConfig;
//!
//! let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?;
//! let server = SoftmaxServer::new(mapping, ServeConfig::default())?;
//! let a = server.submit(&[0.0, -0.5, -1.0, -2.0])?;
//! let b = server.submit(&[0.0, -3.0])?;
//! let run_a = a.wait()?;
//! let run_b = b.wait()?;
//! assert_eq!(run_a.codes.len(), 4);
//! assert_eq!(run_b.codes.len(), 2);
//! assert!(server.stats().completed >= 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use softmap_ap::batch;
use softmap_ap::device::TileClocks;

use crate::mapping::fanout::FanoutState;
use crate::{ApSoftmax, ApSoftmaxRun, CacheStats, CoreError, TileState};

/// Environment variable overriding the serving worker-thread count
/// (positive integer; default: the host's available parallelism).
/// Invalid values warn once and keep the default.
pub const SERVE_WORKERS_ENV: &str = "SOFTMAP_SERVE_WORKERS";

/// Environment variable overriding the submission-queue depth
/// (positive integer; default 256). The depth bounds the number of
/// in-flight requests — submissions beyond it block (or fail with
/// [`CoreError::QueueFull`] via [`SoftmaxServer::try_submit`]).
/// Invalid values warn once and keep the default.
pub const SERVE_QUEUE_ENV: &str = "SOFTMAP_SERVE_QUEUE";

/// Reads a positive-integer knob; invalid values fail loudly (one
/// warning per process per knob) instead of silently falling back.
fn positive_from_env(name: &'static str, warn: &'static std::sync::Once) -> Option<usize> {
    let Ok(raw) = std::env::var(name) else {
        return None;
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            warn.call_once(|| {
                eprintln!(
                    "softmap: invalid {name}={raw:?}; expected a positive integer — \
                     keeping the default"
                );
            });
            None
        }
    }
}

fn serve_workers_from_env() -> Option<usize> {
    static WARN: std::sync::Once = std::sync::Once::new();
    positive_from_env(SERVE_WORKERS_ENV, &WARN)
}

fn serve_queue_from_env() -> Option<usize> {
    static WARN: std::sync::Once = std::sync::Once::new();
    positive_from_env(SERVE_QUEUE_ENV, &WARN)
}

/// Construction-time configuration for a [`SoftmaxServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` (the default) uses the host's available
    /// parallelism.
    pub workers: usize,
    /// Submission-queue depth — the bound on in-flight requests
    /// (clamped to at least 1; default 256).
    pub queue_depth: usize,
    /// Vector lengths to precompile at startup ([`ApSoftmax::warmup`]),
    /// so first-sight traffic replays instead of compiling.
    pub warmup_shapes: Vec<usize>,
    /// Fan a sharded request's three phases across workers over
    /// disjoint output slices (default `true`). `false` keeps every
    /// request on a single worker.
    pub shard_parallel: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 256,
            warmup_shapes: Vec::new(),
            shard_parallel: true,
        }
    }
}

impl ServeConfig {
    /// The default configuration with [`SERVE_WORKERS_ENV`] and
    /// [`SERVE_QUEUE_ENV`] applied.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(w) = serve_workers_from_env() {
            cfg.workers = w;
        }
        if let Some(d) = serve_queue_from_env() {
            cfg.queue_depth = d;
        }
        cfg
    }
}

/// Serving counters plus the device-time ledger, from
/// [`SoftmaxServer::stats`]. All cycle quantities are *device-model*
/// time (host-invariant), not host wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub queued: u64,
    /// Requests executed to completion (including failed ones).
    pub completed: u64,
    /// Device waves formed by the admission scheduler.
    pub waves_formed: u64,
    /// Requests that shared a wave with an earlier admission (the
    /// continuous-batching win: `admitted - waves_formed`).
    pub coalesced: u64,
    /// Submissions that found the queue at its bound.
    pub backpressure: u64,
    /// Busy tile-cycles scheduled onto the grid (Σ request latency ×
    /// tiles claimed).
    pub busy_cycles: u64,
    /// Device-model makespan: the latest per-tile virtual clock.
    pub makespan_cycles: u64,
    /// Tiles in the device grid.
    pub tiles: u64,
}

impl ServeStats {
    /// Tile-occupancy ratio of the schedule so far:
    /// `busy / (makespan × tiles)`, in `(0, 1]` once anything ran.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let denom = self.makespan_cycles.saturating_mul(self.tiles);
        if denom == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / denom as f64
        }
    }
}

impl core::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} queued, {} completed, {} waves ({} coalesced, {} backpressure), \
             occupancy {:.2} over {} tiles",
            self.queued,
            self.completed,
            self.waves_formed,
            self.coalesced,
            self.backpressure,
            self.occupancy(),
            self.tiles
        )
    }
}

/// Request lifecycle inside the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SlotStatus {
    /// Unused; on the free ring.
    #[default]
    Free,
    /// Submitted, waiting for shard tiles.
    Pending,
    /// Packed into the current wave, waiting for a worker.
    Admitted,
    /// Executing on a worker.
    Running,
    /// Finished; waiting for its [`Ticket`] to collect.
    Done,
}

/// One in-flight request. Slots (and their buffers) are reused across
/// requests — the steady-state hot loop allocates nothing.
#[derive(Debug, Default)]
struct Slot {
    /// Reuse guard: a [`Ticket`] only matches the submission it came
    /// from.
    seq: u64,
    status: SlotStatus,
    len: usize,
    shards: usize,
    codes: Vec<i64>,
    run: ApSoftmaxRun,
    err: Option<CoreError>,
    /// The ticket was dropped uncollected; the worker frees the slot
    /// at completion.
    abandoned: bool,
}

/// Everything behind the queue mutex.
#[derive(Debug)]
struct QueueState {
    slots: Vec<Slot>,
    free: VecDeque<usize>,
    pending: VecDeque<usize>,
    admitted: VecDeque<usize>,
    /// Shard tiles claimed by admitted/running requests.
    tiles_claimed: usize,
    /// Device-time ledger: greedy least-loaded per-tile virtual
    /// clocks, fed each completed request's `latency_cycles`.
    clocks: TileClocks,
    shutdown: bool,
    next_seq: u64,
    queued: u64,
    completed: u64,
    waves_formed: u64,
    coalesced: u64,
    backpressure: u64,
    /// Scratch for [`ApSoftmax::shard_count_into`] at submission.
    scratch_ranges: Vec<(usize, usize)>,
}

impl QueueState {
    /// Continuous-batching admission: first-fit scan of the pending
    /// ring, claiming `min(shards, tiles)` tiles per request. Runs at
    /// every submission and completion (the moment tiles free up), so
    /// waves form continuously. One call that admits anything is one
    /// device wave; every admission beyond the first coalesced into it.
    fn admit(&mut self, tiles: usize, work_cv: &Condvar) {
        let mut admitted_now: u64 = 0;
        let mut i = 0;
        while i < self.pending.len() {
            let idx = self.pending[i];
            let need = self.slots[idx].shards.clamp(1, tiles);
            if self.tiles_claimed + need <= tiles {
                self.tiles_claimed += need;
                self.pending.remove(i);
                self.slots[idx].status = SlotStatus::Admitted;
                self.admitted.push_back(idx);
                admitted_now += 1;
            } else {
                i += 1;
            }
        }
        if admitted_now > 0 {
            self.waves_formed += 1;
            self.coalesced += admitted_now - 1;
            if admitted_now == 1 {
                work_cv.notify_one();
            } else {
                work_cv.notify_all();
            }
        }
    }
}

/// State shared between the server handle, its workers, and tickets.
#[derive(Debug)]
struct Shared {
    mapping: ApSoftmax,
    device_tiles: usize,
    shard_parallel: bool,
    state: Mutex<QueueState>,
    /// Admitted work is available.
    work_cv: Condvar,
    /// A request completed.
    done_cv: Condvar,
    /// A queue slot freed up.
    space_cv: Condvar,
}

/// A pending result from [`SoftmaxServer::submit`] /
/// [`SoftmaxServer::try_submit`]. Collect it with [`Ticket::wait`] or
/// the allocation-free [`Ticket::wait_into`]; dropping it uncollected
/// abandons the request (it still executes, then its slot is
/// reclaimed).
#[derive(Debug)]
pub struct Ticket {
    shared: Arc<Shared>,
    slot: usize,
    seq: u64,
    collected: bool,
}

impl Ticket {
    /// Blocks until the request completes and copies its run into
    /// `run`'s buffers (allocation-free when `run` is warm at the
    /// request's length).
    ///
    /// # Errors
    ///
    /// The request's execution error, if it failed; `run` is untouched
    /// then.
    pub fn wait_into(mut self, run: &mut ApSoftmaxRun) -> Result<(), CoreError> {
        let shared = Arc::clone(&self.shared);
        let mut q = shared.state.lock().expect("serving queue poisoned");
        loop {
            let slot = &q.slots[self.slot];
            if slot.seq == self.seq && slot.status == SlotStatus::Done {
                break;
            }
            q = shared.done_cv.wait(q).expect("serving queue poisoned");
        }
        self.collected = true;
        let slot = &mut q.slots[self.slot];
        let err = slot.err.take();
        if err.is_none() {
            copy_run(run, &slot.run);
        }
        slot.status = SlotStatus::Free;
        let idx = self.slot;
        q.free.push_back(idx);
        drop(q);
        shared.space_cv.notify_one();
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Blocks until the request completes and returns its run.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait_into`].
    pub fn wait(self) -> Result<ApSoftmaxRun, CoreError> {
        let mut run = ApSoftmaxRun::default();
        self.wait_into(&mut run)?;
        Ok(run)
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.collected {
            return;
        }
        let Ok(mut q) = self.shared.state.lock() else {
            return;
        };
        let slot = &mut q.slots[self.slot];
        if slot.seq != self.seq {
            return;
        }
        match slot.status {
            SlotStatus::Done => {
                slot.status = SlotStatus::Free;
                slot.err = None;
                let idx = self.slot;
                q.free.push_back(idx);
                drop(q);
                self.shared.space_cv.notify_one();
            }
            SlotStatus::Pending | SlotStatus::Admitted | SlotStatus::Running => {
                slot.abandoned = true;
            }
            SlotStatus::Free => {}
        }
    }
}

/// Field-by-field copy reusing `dst`'s buffer capacities (`clone_from`
/// on the `Vec`s) — the collection half of the zero-alloc contract.
fn copy_run(dst: &mut ApSoftmaxRun, src: &ApSoftmaxRun) {
    dst.codes.clone_from(&src.codes);
    dst.vapprox.clone_from(&src.vapprox);
    dst.steps.clone_from(&src.steps);
    dst.frac_bits = src.frac_bits;
    dst.sum = src.sum;
    dst.total = src.total;
    dst.rows = src.rows;
    dst.cols_used = src.cols_used;
    dst.shards = src.shards;
    dst.waves = src.waves;
    dst.latency_cycles = src.latency_cycles;
    dst.reduction = src.reduction;
}

/// The serving layer: a bounded multi-tenant submission queue over one
/// device model, with continuous wave batching and shard-parallel host
/// execution (see the module docs).
///
/// Dropping the server shuts it down: workers drain every accepted
/// request, then exit. Outstanding [`Ticket`]s stay collectable.
#[derive(Debug)]
pub struct SoftmaxServer {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl SoftmaxServer {
    /// Builds the server and spawns its workers, after warming the
    /// plan cache with `config.warmup_shapes`.
    ///
    /// # Errors
    ///
    /// A warmup compile error, or [`CoreError::BadWorkload`] if a
    /// worker thread cannot be spawned.
    pub fn new(mapping: ApSoftmax, config: ServeConfig) -> Result<Self, CoreError> {
        mapping.warmup(&config.warmup_shapes)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let depth = config.queue_depth.max(1);
        let tiles = mapping.device().tiles;
        let mut slots = Vec::new();
        slots.resize_with(depth, Slot::default);
        let mut free = VecDeque::with_capacity(depth);
        free.extend(0..depth);
        let state = QueueState {
            slots,
            free,
            pending: VecDeque::with_capacity(depth),
            admitted: VecDeque::with_capacity(depth),
            tiles_claimed: 0,
            clocks: TileClocks::new(tiles),
            shutdown: false,
            next_seq: 0,
            queued: 0,
            completed: 0,
            waves_formed: 0,
            coalesced: 0,
            backpressure: 0,
            scratch_ranges: Vec::new(),
        };
        let shared = Arc::new(Shared {
            mapping,
            device_tiles: tiles,
            shard_parallel: config.shard_parallel,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            space_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let sh = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("softmap-serve-{w}"))
                .spawn(move || worker_loop(&sh));
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    shutdown(&shared, &mut handles);
                    return Err(CoreError::BadWorkload(format!(
                        "failed to spawn serving worker: {e}"
                    )));
                }
            }
        }
        Ok(Self { shared, handles })
    }

    /// Submits one request, blocking while the queue is at its bound.
    /// The scores are quantized through the scalar spec exactly as
    /// [`ApSoftmax::execute_floats`] quantizes them.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyInput`] for an empty slice, a shard-partition
    /// error for lengths the device cannot hold, or
    /// [`CoreError::BadWorkload`] after shutdown.
    pub fn submit(&self, scores: &[f64]) -> Result<Ticket, CoreError> {
        self.submit_inner(scores, true)
    }

    /// Non-blocking [`SoftmaxServer::submit`].
    ///
    /// # Errors
    ///
    /// [`CoreError::QueueFull`] when the queue is at its bound;
    /// otherwise as [`SoftmaxServer::submit`].
    pub fn try_submit(&self, scores: &[f64]) -> Result<Ticket, CoreError> {
        self.submit_inner(scores, false)
    }

    fn submit_inner(&self, scores: &[f64], block: bool) -> Result<Ticket, CoreError> {
        if scores.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let shared = &self.shared;
        let mut q = shared.state.lock().expect("serving queue poisoned");
        if q.shutdown {
            return Err(CoreError::BadWorkload("serving queue is shut down".into()));
        }
        if q.free.is_empty() {
            q.backpressure += 1;
            if !block {
                return Err(CoreError::QueueFull);
            }
            while q.free.is_empty() {
                if q.shutdown {
                    return Err(CoreError::BadWorkload("serving queue is shut down".into()));
                }
                q = shared.space_cv.wait(q).expect("serving queue poisoned");
            }
        }
        let idx = q.free.pop_front().expect("free ring non-empty");
        // Quantize into the slot's warm buffer and size the request in
        // shard tiles (whole-vector lengths never touch the partition
        // scratch) — both allocation-free in steady state.
        let mut codes = std::mem::take(&mut q.slots[idx].codes);
        shared.mapping.spec().quantize_into(scores, &mut codes);
        let mut ranges = std::mem::take(&mut q.scratch_ranges);
        let counted = shared.mapping.shard_count_into(codes.len(), &mut ranges);
        q.scratch_ranges = ranges;
        q.slots[idx].codes = codes;
        let shards = match counted {
            Ok(s) => s,
            Err(e) => {
                q.free.push_front(idx);
                return Err(e);
            }
        };
        let seq = q.next_seq;
        q.next_seq += 1;
        let slot = &mut q.slots[idx];
        slot.seq = seq;
        slot.status = SlotStatus::Pending;
        slot.len = scores.len();
        slot.shards = shards;
        slot.err = None;
        slot.abandoned = false;
        q.queued += 1;
        q.pending.push_back(idx);
        q.admit(shared.device_tiles, &shared.work_cv);
        Ok(Ticket {
            shared: Arc::clone(shared),
            slot: idx,
            seq,
            collected: false,
        })
    }

    /// Serves a whole batch through the queue: pipelined non-blocking
    /// submissions, collecting the oldest outstanding ticket whenever
    /// the queue pushes back. Results are in input order.
    ///
    /// # Errors
    ///
    /// The first submission or execution error; remaining tickets are
    /// still drained first.
    pub fn execute_batch(&self, batch: &[Vec<f64>]) -> Result<Vec<ApSoftmaxRun>, CoreError> {
        let mut results: Vec<ApSoftmaxRun> = Vec::new();
        results.resize_with(batch.len(), ApSoftmaxRun::default);
        let mut tickets: VecDeque<(usize, Ticket)> = VecDeque::new();
        let mut first_err: Option<CoreError> = None;
        for (i, scores) in batch.iter().enumerate() {
            if first_err.is_some() {
                break;
            }
            loop {
                match self.try_submit(scores) {
                    Ok(t) => {
                        tickets.push_back((i, t));
                        break;
                    }
                    Err(CoreError::QueueFull) => {
                        if let Some((j, t)) = tickets.pop_front() {
                            if let Err(e) = t.wait_into(&mut results[j]) {
                                first_err.get_or_insert(e);
                            }
                        } else {
                            // Queue smaller than one submission's worth
                            // of outstanding work: fall back to the
                            // blocking path.
                            match self.submit(scores) {
                                Ok(t) => {
                                    tickets.push_back((i, t));
                                }
                                Err(e) => {
                                    first_err.get_or_insert(e);
                                }
                            }
                            break;
                        }
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                }
            }
        }
        for (j, t) in tickets {
            if let Err(e) = t.wait_into(&mut results[j]) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }

    /// The serving counters and device-time ledger.
    ///
    /// # Panics
    ///
    /// If the queue mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let q = self.shared.state.lock().expect("serving queue poisoned");
        ServeStats {
            queued: q.queued,
            completed: q.completed,
            waves_formed: q.waves_formed,
            coalesced: q.coalesced,
            backpressure: q.backpressure,
            busy_cycles: q.clocks.busy(),
            makespan_cycles: q.clocks.makespan(),
            tiles: q.clocks.tiles() as u64,
        }
    }

    /// The device model's [`ApSoftmax::cache_stats`] with this server's
    /// serving counters filled in.
    ///
    /// # Panics
    ///
    /// If the queue mutex was poisoned by a panicking worker.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let mut cs = self.shared.mapping.cache_stats();
        let q = self.shared.state.lock().expect("serving queue poisoned");
        cs.queued = q.queued;
        cs.waves_formed = q.waves_formed;
        cs.coalesced = q.coalesced;
        cs.backpressure = q.backpressure;
        cs
    }

    /// The served device model.
    #[must_use]
    pub fn mapping(&self) -> &ApSoftmax {
        &self.shared.mapping
    }
}

impl Drop for SoftmaxServer {
    fn drop(&mut self) {
        shutdown(&self.shared, &mut self.handles);
    }
}

/// Flags shutdown, wakes everyone, and joins the workers (which drain
/// every accepted request first).
fn shutdown(shared: &Shared, handles: &mut Vec<JoinHandle<()>>) {
    if let Ok(mut q) = shared.state.lock() {
        q.shutdown = true;
    }
    shared.work_cv.notify_all();
    shared.space_cv.notify_all();
    for h in handles.drain(..) {
        let _ = h.join();
    }
}

/// How many admitted entries the shape-affinity scan looks at before
/// settling for the queue head.
const AFFINITY_SCAN: usize = 8;

/// One worker: persistent [`TileState`] + [`FanoutState`], pulling
/// admitted requests until shutdown drains the queue. Prefers a request
/// matching the last executed length (plan-slot and buffer affinity)
/// from the front of the admitted ring.
fn worker_loop(shared: &Shared) {
    let mut tile = TileState::new();
    let mut fan = FanoutState::default();
    let mut codes: Vec<i64> = Vec::new();
    let mut run = ApSoftmaxRun::default();
    let mut last_len = 0usize;
    loop {
        let (idx, shards) = {
            let mut q = shared.state.lock().expect("serving queue poisoned");
            loop {
                if let Some(pos) = pick_admitted(&q, last_len) {
                    let idx = q.admitted.remove(pos).expect("picked in range");
                    let slot = &mut q.slots[idx];
                    slot.status = SlotStatus::Running;
                    std::mem::swap(&mut slot.codes, &mut codes);
                    std::mem::swap(&mut slot.run, &mut run);
                    break (idx, slot.shards);
                }
                if q.shutdown && q.pending.is_empty() && q.admitted.is_empty() {
                    return;
                }
                // Robustness: re-run admission before sleeping, so a
                // missed wake-up cannot strand pending work.
                q.admit(shared.device_tiles, &shared.work_cv);
                if q.admitted.is_empty() {
                    q = shared.work_cv.wait(q).expect("serving queue poisoned");
                }
            }
        };

        let res = if shared.shard_parallel && shards > 1 {
            shared.mapping.execute_codes_fanout(
                &mut tile,
                &mut fan,
                &codes,
                &mut run,
                batch::tile_parallelism(shards),
            )
        } else {
            shared
                .mapping
                .execute_codes_into(&mut tile, &codes, &mut run)
        };
        last_len = codes.len();

        let mut q = shared.state.lock().expect("serving queue poisoned");
        let need = shards.clamp(1, shared.device_tiles);
        q.tiles_claimed -= need;
        q.completed += 1;
        if res.is_ok() {
            let latency = run.latency_cycles;
            q.clocks.assign(shards, latency);
        }
        let slot = &mut q.slots[idx];
        std::mem::swap(&mut slot.codes, &mut codes);
        std::mem::swap(&mut slot.run, &mut run);
        slot.err = res.err();
        if slot.abandoned {
            slot.status = SlotStatus::Free;
            slot.err = None;
            q.free.push_back(idx);
            q.admit(shared.device_tiles, &shared.work_cv);
            drop(q);
            shared.space_cv.notify_one();
        } else {
            slot.status = SlotStatus::Done;
            q.admit(shared.device_tiles, &shared.work_cv);
            drop(q);
            shared.done_cv.notify_all();
        }
    }
}

/// Position in the admitted ring of the next request for a worker that
/// last executed `last_len`: the first of the front [`AFFINITY_SCAN`]
/// entries matching that length, else the front.
fn pick_admitted(q: &QueueState, last_len: usize) -> Option<usize> {
    if q.admitted.is_empty() {
        return None;
    }
    for pos in 0..q.admitted.len().min(AFFINITY_SCAN) {
        if q.slots[q.admitted[pos]].len == last_len {
            return Some(pos);
        }
    }
    Some(0)
}
