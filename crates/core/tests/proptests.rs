//! Property-based tests: the AP mapping is bit-exact against the scalar
//! specification for arbitrary inputs, and the deployment model behaves
//! like a cost function should.

use proptest::prelude::*;
use softmap::{ApDeployment, ApSoftmax, Layout, PlanMode, WorkloadModel};
use softmap_ap::{DeviceConfig, DivStyle, ExecBackend, OptLevel};
use softmap_softmax::{IntSoftmax, PrecisionConfig};

fn config_strategy() -> impl Strategy<Value = PrecisionConfig> {
    (
        prop_oneof![Just(4u32), Just(6), Just(8)],
        0u32..=2,
        prop_oneof![Just(8u32), Just(12), Just(16)],
    )
        .prop_map(|(m, d, n)| PrecisionConfig::new(m, d, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mapping_bit_exact_on_random_inputs(
        cfg in config_strategy(),
        scores in prop::collection::vec(-9.0f64..0.0, 2..48),
    ) {
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        let run = ApSoftmax::new(cfg).unwrap().execute_floats(&scores).unwrap();
        prop_assert_eq!(&run.codes, &scalar.codes);
        prop_assert_eq!(&run.vapprox, &scalar.vapprox);
        prop_assert_eq!(run.sum, scalar.sum);
    }

    #[test]
    fn layouts_agree(scores in prop::collection::vec(-9.0f64..0.0, 2..40)) {
        let cfg = PrecisionConfig::paper_best();
        let packed = ApSoftmax::new(cfg).unwrap()
            .with_layout(Layout::TwoWordsPerRow)
            .execute_floats(&scores).unwrap();
        let flat = ApSoftmax::new(cfg).unwrap()
            .with_layout(Layout::OneWordPerRow)
            .execute_floats(&scores).unwrap();
        prop_assert_eq!(packed.codes, flat.codes);
    }

    #[test]
    fn cost_is_monotone_in_workload(
        layers in 1usize..8,
        heads in 1usize..8,
        batch in 1usize..4,
    ) {
        let m = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default()).unwrap();
        let base = m.cost(layers, heads, 256, batch).unwrap();
        let more_layers = m.cost(layers + 1, heads, 256, batch).unwrap();
        let more_heads = m.cost(layers, heads + 1, 256, batch).unwrap();
        prop_assert!(more_layers.latency_s > base.latency_s);
        prop_assert!(more_layers.energy_j > base.energy_j);
        // heads add energy but not latency (they run in parallel)
        prop_assert!(more_heads.energy_j > base.energy_j);
        prop_assert!((more_heads.latency_s - base.latency_s).abs() < 1e-12);
    }

    #[test]
    fn cached_plan_replay_matches_direct_issue(
        cfg in config_strategy(),
        scores in prop::collection::vec(-9.0f64..0.0, 2..40),
        warm in prop::collection::vec(-9.0f64..0.0, 40..41),
        style in prop_oneof![Just(DivStyle::Restoring), Just(DivStyle::ControllerReciprocal)],
        layout in prop_oneof![Just(Layout::TwoWordsPerRow), Just(Layout::OneWordPerRow)],
        backend in prop_oneof![Just(ExecBackend::FastWord), Just(ExecBackend::Microcode)],
    ) {
        // Direct issue: the pre-plan per-vector interpretation.
        let direct = ApSoftmax::new(cfg).unwrap()
            .with_layout(layout)
            .with_div_style(style)
            .with_backend(backend)
            .with_plan_mode(PlanMode::DirectIssue)
            .execute_floats(&scores).unwrap();
        // Cached at OptLevel::None: compile the shape's plan from
        // *different* data, then replay it for `scores` — must be bit-
        // and cycle-exact against direct issue.
        let cached = ApSoftmax::new(cfg).unwrap()
            .with_layout(layout)
            .with_div_style(style)
            .with_backend(backend)
            .with_opt_level(OptLevel::None);
        let mut warm = warm;
        warm.truncate(scores.len());
        cached.execute_floats(&warm).unwrap();
        let replayed = cached.execute_floats(&scores).unwrap();
        prop_assert!(cached.plan_stats().hits >= 1, "second run must replay");
        prop_assert_eq!(&replayed.codes, &direct.codes);
        prop_assert_eq!(&replayed.vapprox, &direct.vapprox);
        prop_assert_eq!(replayed.sum, direct.sum);
        prop_assert_eq!(replayed.total, direct.total, "cycle-exactness");
        prop_assert_eq!(&replayed.steps, &direct.steps, "per-step exactness");
        // The default optimized plan: bit-exact outputs, strictly
        // cheaper fused schedule.
        let optimized = ApSoftmax::new(cfg).unwrap()
            .with_layout(layout)
            .with_div_style(style)
            .with_backend(backend)
            .with_opt_level(OptLevel::Full);
        optimized.execute_floats(&warm).unwrap();
        let opt = optimized.execute_floats(&scores).unwrap();
        prop_assert_eq!(&opt.codes, &direct.codes);
        prop_assert_eq!(&opt.vapprox, &direct.vapprox);
        prop_assert_eq!(opt.sum, direct.sum);
        prop_assert!(opt.total.cycles() < direct.total.cycles(), "fused schedule must be cheaper");
    }

    #[test]
    fn sharded_execution_bit_exact_vs_whole_vector(
        scores in prop::collection::vec(-9.0f64..0.0, 2..48),
        rows_per_tile in 2usize..12,
        tiles in 1usize..4,
        layout in prop_oneof![Just(Layout::TwoWordsPerRow), Just(Layout::OneWordPerRow)],
        backend in prop_oneof![Just(ExecBackend::FastWord), Just(ExecBackend::Microcode)],
    ) {
        // Every length here fits one default tile, so the whole-vector
        // single-tile run is the reference; a tiny device grid forces
        // the same vector through the sharded two-phase dataflow.
        let cfg = PrecisionConfig::paper_best();
        let whole = ApSoftmax::new(cfg).unwrap()
            .with_layout(layout)
            .with_backend(backend)
            .execute_floats(&scores).unwrap();
        prop_assert_eq!(whole.shards, 1);
        let sharded = ApSoftmax::new(cfg).unwrap()
            .with_layout(layout)
            .with_backend(backend)
            .with_device(DeviceConfig::new(tiles, rows_per_tile))
            .execute_floats(&scores).unwrap();
        prop_assert_eq!(&sharded.codes, &whole.codes);
        prop_assert_eq!(&sharded.vapprox, &whole.vapprox);
        prop_assert_eq!(sharded.sum, whole.sum);
    }

    #[test]
    fn sharded_execution_bit_exact_vs_scalar_spec(
        cfg in config_strategy(),
        scores in prop::collection::vec(-9.0f64..0.0, 12..64),
        rows_per_tile in 2usize..5,
    ) {
        // Lengths that do NOT fit the (tiny) tile: the scalar I-BERT
        // specification is the reference.
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        let run = ApSoftmax::new(cfg).unwrap()
            .with_device(DeviceConfig::new(2, rows_per_tile))
            .execute_floats(&scores).unwrap();
        prop_assert!(run.shards > 1, "must shard at {} rows", rows_per_tile);
        prop_assert_eq!(&run.codes, &scalar.codes);
        prop_assert_eq!(&run.vapprox, &scalar.vapprox);
        prop_assert_eq!(run.sum, scalar.sum);
    }

    #[test]
    fn sharded_replay_matches_direct_issue(
        scores in prop::collection::vec(-9.0f64..0.0, 10..40),
        warm in prop::collection::vec(-9.0f64..0.0, 40..41),
        backend in prop_oneof![Just(ExecBackend::FastWord), Just(ExecBackend::Microcode)],
    ) {
        let cfg = PrecisionConfig::paper_best();
        let dev = DeviceConfig::new(2, 4);
        let direct = ApSoftmax::new(cfg).unwrap()
            .with_backend(backend)
            .with_device(dev)
            .with_plan_mode(PlanMode::DirectIssue)
            .execute_floats(&scores).unwrap();
        // Compile the sharded plan (OptLevel::None for cycle-exactness
        // against direct issue, re-staged because direct issue always
        // re-stages) from different data, then replay.
        let cached = ApSoftmax::new(cfg).unwrap()
            .with_autotune(false)
            .with_backend(backend)
            .with_device(dev)
            .with_resident(false)
            .with_opt_level(OptLevel::None);
        let mut warm = warm;
        warm.truncate(scores.len());
        cached.execute_floats(&warm).unwrap();
        let replayed = cached.execute_floats(&scores).unwrap();
        prop_assert!(cached.plan_stats().hits >= 1, "second run must replay");
        prop_assert_eq!(&replayed.codes, &direct.codes);
        prop_assert_eq!(&replayed.vapprox, &direct.vapprox);
        prop_assert_eq!(replayed.sum, direct.sum);
        prop_assert_eq!(replayed.total, direct.total, "cycle-exactness");
        prop_assert_eq!(replayed.latency_cycles, direct.latency_cycles);
        prop_assert_eq!(&replayed.steps, &direct.steps, "per-step exactness");
        // The optimized re-staged sharded plan: bit-exact outputs,
        // strictly cheaper (fused phases + hoisted broadcasts).
        let optimized = ApSoftmax::new(cfg).unwrap()
            .with_autotune(false)
            .with_backend(backend)
            .with_device(dev)
            .with_resident(false)
            .with_opt_level(OptLevel::Full);
        optimized.execute_floats(&warm).unwrap();
        let opt = optimized.execute_floats(&scores).unwrap();
        prop_assert_eq!(&opt.codes, &direct.codes);
        prop_assert_eq!(&opt.vapprox, &direct.vapprox);
        prop_assert_eq!(opt.sum, direct.sum);
        prop_assert!(opt.total.cycles() < direct.total.cycles(), "fused schedule must be cheaper");
    }

    #[test]
    fn resident_sharded_bit_exact_and_cheaper_vs_restaged(
        scores in prop::collection::vec(-9.0f64..0.0, 10..56),
        rows_per_tile in 2usize..5,
        backend in prop_oneof![Just(ExecBackend::FastWord), Just(ExecBackend::Microcode)],
        opt in prop_oneof![Just(OptLevel::None), Just(OptLevel::Full)],
    ) {
        // A grid with more tiles than any partition needs, so every
        // sharded vector qualifies for residency. Lengths 10..56 over
        // rows_per_tile 2..4 cover even partitions, odd tails, and the
        // peeled singleton-tail rule.
        let cfg = PrecisionConfig::paper_best();
        let dev = DeviceConfig::new(16, rows_per_tile);
        let restaged = ApSoftmax::new(cfg).unwrap()
            .with_autotune(false)
            .with_backend(backend)
            .with_device(dev)
            .with_resident(false)
            .with_opt_level(opt);
        let resident = ApSoftmax::new(cfg).unwrap()
            .with_autotune(false)
            .with_backend(backend)
            .with_device(dev)
            .with_opt_level(opt);
        prop_assert!(resident.resident());
        let base = restaged.execute_floats(&scores).unwrap();
        let res = resident.execute_floats(&scores).unwrap();
        prop_assert!(res.shards > 1, "must shard at {} rows", rows_per_tile);
        // Bit-exact across the whole observable state...
        prop_assert_eq!(&res.codes, &base.codes);
        prop_assert_eq!(&res.vapprox, &base.vapprox);
        prop_assert_eq!(res.sum, base.sum);
        prop_assert_eq!(res.shards, base.shards);
        prop_assert_eq!(res.waves, base.waves);
        prop_assert_eq!(res.reduction, base.reduction);
        // ...and against the scalar I-BERT specification.
        let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
        prop_assert_eq!(&res.codes, &scalar.codes);
        prop_assert_eq!(&res.vapprox, &scalar.vapprox);
        // Cycle accounting: elided staging plus lockstep followers
        // make the resident plan strictly cheaper whenever a follower
        // exists (equal-length shards); a partition of all-distinct
        // lengths still elides staging.
        prop_assert!(res.total.cycles() < base.total.cycles(),
            "resident {} vs re-staged {}", res.total.cycles(), base.total.cycles());
        prop_assert!(res.latency_cycles <= base.latency_cycles);
        // Replaying the cached resident plan is cycle-stable.
        let again = resident.execute_floats(&scores).unwrap();
        prop_assert!(resident.plan_stats().hits >= 1, "second run must replay");
        prop_assert_eq!(again.total, res.total);
        prop_assert_eq!(&again.steps, &res.steps);
        prop_assert_eq!(&again.codes, &res.codes);
    }

    #[test]
    fn autotuned_matches_paper_default_mapping(
        len in 64usize..20_000,
        seed in 0u64..1_000,
    ) {
        // The autotuner's contract, differentially: for arbitrary
        // lengths across the whole-vector and sharded regimes, the
        // tuned mapping is bit-exact against the paper-default mapping
        // and its static cost never exceeds the default's.
        let cfg = PrecisionConfig::paper_best();
        let scores: Vec<f64> = (0..len)
            .map(|i| -(((i as u64).wrapping_mul(seed + 7) % 97) as f64) * 7.0 / 97.0)
            .collect();
        let tuned = ApSoftmax::new(cfg).unwrap()
            .with_backend(ExecBackend::FastWord);
        prop_assert!(tuned.autotune());
        let default = tuned.clone().with_autotune(false);
        let t = tuned.execute_floats(&scores).unwrap();
        let d = default.execute_floats(&scores).unwrap();
        prop_assert_eq!(&t.codes, &d.codes);
        prop_assert_eq!(&t.vapprox, &d.vapprox);
        prop_assert_eq!(t.sum, d.sum);
        prop_assert!(t.total.cycles() <= d.total.cycles(),
            "tuned {} must not exceed default {}", t.total.cycles(), d.total.cycles());
        // static == simulated for the installed winner.
        prop_assert_eq!(tuned.static_cost(len).unwrap(), t.total);
    }

    #[test]
    fn autotuned_matches_default_on_microcode_backend(
        len in 8usize..320,
        seed in 0u64..1_000,
    ) {
        // Same contract on the bit-serial Microcode backend with a
        // small grid, so the search crosses the sharded regime cheaply.
        let cfg = PrecisionConfig::paper_best();
        let scores: Vec<f64> = (0..len)
            .map(|i| -(((i as u64).wrapping_mul(seed + 3) % 89) as f64) * 6.5 / 89.0)
            .collect();
        let tuned = ApSoftmax::new(cfg).unwrap()
            .with_backend(ExecBackend::Microcode)
            .with_device(DeviceConfig::new(8, 64));
        let default = tuned.clone().with_autotune(false);
        let t = tuned.execute_floats(&scores).unwrap();
        let d = default.execute_floats(&scores).unwrap();
        prop_assert_eq!(&t.codes, &d.codes);
        prop_assert_eq!(t.sum, d.sum);
        prop_assert!(t.total.cycles() <= d.total.cycles());
    }

    #[test]
    fn probabilities_from_the_ap_are_a_subdistribution(
        scores in prop::collection::vec(-7.0f64..0.0, 2..32),
    ) {
        let run = ApSoftmax::new(PrecisionConfig::paper_best()).unwrap()
            .execute_floats(&scores).unwrap();
        let total: f64 = run.probabilities().iter().sum();
        // floor division loses mass but never creates it (absent
        // saturation, which cannot trigger at N=16 with <=32 elements)
        prop_assert!(total <= 1.0 + 1e-9, "total = {total}");
        prop_assert!(total > 0.5, "total = {total}");
    }
}
