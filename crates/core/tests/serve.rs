//! Serving-layer integration tests: every served request must be
//! **bit-exact** versus the inline (non-serving) execution path, the
//! bounded queue must push back deterministically, warmup must
//! precompile exactly one plan per shape, and the serving counters must
//! add up.

use softmap::{ApSoftmax, ApSoftmaxRun, CoreError, ServeConfig, SoftmaxServer, TileState};
use softmap_ap::ExecBackend;
use softmap_softmax::PrecisionConfig;

fn mapping() -> ApSoftmax {
    ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord)
}

fn scores(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| -(((i * 7 + salt * 13) % 97) as f64) * 0.07)
        .collect()
}

/// Full-run equality: outputs *and* device-cost accounting, because the
/// serving path replays the same cached plans the inline path replays.
fn assert_runs_equal(a: &ApSoftmaxRun, b: &ApSoftmaxRun, what: &str) {
    assert_eq!(a.codes, b.codes, "{what}: codes");
    assert_eq!(a.vapprox, b.vapprox, "{what}: vapprox");
    assert_eq!(a.steps, b.steps, "{what}: steps");
    assert_eq!(a.sum, b.sum, "{what}: sum");
    assert_eq!(a.frac_bits, b.frac_bits, "{what}: frac_bits");
    assert_eq!(a.total, b.total, "{what}: total");
    assert_eq!(a.rows, b.rows, "{what}: rows");
    assert_eq!(a.cols_used, b.cols_used, "{what}: cols_used");
    assert_eq!(a.shards, b.shards, "{what}: shards");
    assert_eq!(a.waves, b.waves, "{what}: waves");
    assert_eq!(a.latency_cycles, b.latency_cycles, "{what}: latency_cycles");
    assert_eq!(a.reduction, b.reduction, "{what}: reduction");
}

#[test]
fn served_requests_are_bit_exact_versus_inline_execution() {
    // Mixed short/long traffic, including shapes that shard (8200,
    // 16384 on the default 48 × 2048-row grid) and thus take the
    // shard-parallel fan-out inside the workers.
    let lens = [4usize, 64, 257, 1024, 4096, 8200, 16384];
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            warmup_shapes: lens.to_vec(),
            shard_parallel: true,
        },
    )
    .unwrap();
    let tickets: Vec<_> = lens
        .iter()
        .enumerate()
        .map(|(salt, &len)| (len, salt, server.submit(&scores(len, salt)).unwrap()))
        .collect();

    // Inline references through a separate, identically-configured
    // mapping; executed twice so the reference is a plan *replay*, like
    // the served (warmed-up) execution.
    let reference = mapping();
    let mut state = TileState::new();
    for (len, salt, ticket) in tickets {
        let got = ticket.wait().unwrap();
        let row = scores(len, salt);
        let mut want = ApSoftmaxRun::default();
        reference
            .execute_floats_into(&mut state, &row, &mut want)
            .unwrap();
        reference
            .execute_floats_into(&mut state, &row, &mut want)
            .unwrap();
        assert_runs_equal(&got, &want, &format!("len {len}"));
    }

    let stats = server.stats();
    assert_eq!(stats.queued, lens.len() as u64);
    assert_eq!(stats.completed, lens.len() as u64);
    assert!(stats.waves_formed >= 1);
    // Every admission is either the wave it opened or coalesced into
    // an earlier one.
    assert_eq!(
        stats.waves_formed + stats.coalesced,
        stats.completed,
        "admissions split into waves + coalesced: {stats}"
    );
    let occ = stats.occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
}

#[test]
fn bounded_queue_pushes_back_with_queue_full() {
    // queue_depth 1: the only slot stays occupied until its ticket
    // collects, so the non-blocking submit below must observe a full
    // queue regardless of worker timing.
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            warmup_shapes: vec![16],
            shard_parallel: false,
        },
    )
    .unwrap();
    let row = scores(16, 0);
    let first = server.submit(&row).unwrap();
    match server.try_submit(&row) {
        Err(CoreError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    first.wait().unwrap();
    // Collection freed the slot: the next submission goes through.
    server.submit(&row).unwrap().wait().unwrap();
    let stats = server.stats();
    assert!(stats.backpressure >= 1, "backpressure uncounted: {stats}");
    assert_eq!(stats.queued, 2);
    assert_eq!(stats.completed, 2);
}

#[test]
fn warmup_precompiles_each_shape_once() {
    // Whole-vector shapes compile exactly one plan each; warm traffic
    // then replays without compiling anything.
    let shapes = vec![256usize, 512, 1024];
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            warmup_shapes: shapes.clone(),
            shard_parallel: true,
        },
    )
    .unwrap();
    assert_eq!(
        server.mapping().plan_stats().compiles,
        shapes.len() as u64,
        "warmup must compile one plan per shape"
    );
    for (salt, &len) in shapes.iter().enumerate() {
        server.submit(&scores(len, salt)).unwrap().wait().unwrap();
    }
    assert_eq!(
        server.mapping().plan_stats().compiles,
        shapes.len() as u64,
        "warm traffic must not recompile"
    );
    let cs = server.cache_stats();
    assert_eq!(cs.queued, shapes.len() as u64);
    assert!(cs.waves_formed >= 1);
    assert_eq!(cs.backpressure, 0);
}

#[test]
fn execute_batch_matches_references_in_order() {
    // Queue depth below the batch size exercises the pipelined
    // submit-and-drain backpressure path; repeated lengths exercise the
    // workers' shape affinity.
    let lens = [64usize, 300, 64, 4097, 64, 1024, 300, 8200];
    let batch: Vec<Vec<f64>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| scores(l, i))
        .collect();
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 2,
            queue_depth: 4,
            warmup_shapes: Vec::new(),
            shard_parallel: true,
        },
    )
    .unwrap();
    let got = server.execute_batch(&batch).unwrap();
    assert_eq!(got.len(), batch.len());
    let reference = mapping();
    let mut state = TileState::new();
    for (i, (row, run)) in batch.iter().zip(&got).enumerate() {
        let mut want = ApSoftmaxRun::default();
        reference
            .execute_floats_into(&mut state, row, &mut want)
            .unwrap();
        assert_eq!(run.codes, want.codes, "row {i} codes");
        assert_eq!(run.sum, want.sum, "row {i} sum");
        assert_eq!(run.shards, want.shards, "row {i} shards");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, lens.len() as u64);
    assert!(stats.occupancy() > 0.0);
}

#[test]
fn dropped_server_drains_and_tickets_stay_collectable() {
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            warmup_shapes: vec![32],
            shard_parallel: false,
        },
    )
    .unwrap();
    let tickets: Vec<_> = (0..4)
        .map(|salt| server.submit(&scores(32, salt)).unwrap())
        .collect();
    // Dropping the server drains every accepted request before the
    // workers exit; outstanding tickets then collect normally.
    drop(server);
    for ticket in tickets {
        let run = ticket.wait().unwrap();
        assert_eq!(run.codes.len(), 32);
    }
}

#[test]
fn submission_errors_and_abandoned_tickets_are_handled() {
    let server = SoftmaxServer::new(
        mapping(),
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            warmup_shapes: vec![16],
            shard_parallel: false,
        },
    )
    .unwrap();
    assert!(matches!(server.submit(&[]), Err(CoreError::EmptyInput)));

    // An abandoned ticket's request still executes, and its slot is
    // reclaimed by the worker.
    drop(server.submit(&scores(16, 1)).unwrap());
    server.submit(&scores(16, 2)).unwrap().wait().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while server.stats().completed < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned request never completed: {}",
            server.stats()
        );
        std::thread::yield_now();
    }
    // Both slots are reusable afterwards.
    server.submit(&scores(16, 3)).unwrap().wait().unwrap();
    assert_eq!(server.stats().queued, 3);
}
