//! Allocation-regression test: steady-state `TileState` reuse must
//! replay each softmax vector's cached plan with **zero** heap
//! allocations.
//!
//! A counting global allocator wraps the system allocator; counting is
//! armed only around the measured window, so harness setup does not
//! pollute the numbers. The test runs without the libtest harness
//! (`harness = false`): the allocator is process-global, and libtest's
//! main thread lazily allocates its channel context at an
//! unpredictable moment that can race into the armed window.

use softmap::{ApSoftmax, ApSoftmaxRun, TileState};
use softmap_ap::ExecBackend;
use softmap_softmax::PrecisionConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) && new_size > layout.size() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by `f`.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn main() {
    let scores: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.31) % 6.7).collect();
    let alt: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.17) % 5.9).collect();

    for backend in [ExecBackend::FastWord, ExecBackend::Microcode] {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(backend);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();

        // Warm-up: compiles the shape's plan and establishes the arena
        // and every buffer's capacity.
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        mapping
            .execute_floats_into(&mut state, &alt, &mut run)
            .unwrap();
        let reference = run.codes.clone();
        assert_eq!(
            mapping.plan_stats().compiles,
            1,
            "one shape must compile exactly one plan"
        );
        assert!(
            state.cached_plan().is_some(),
            "the tile slot must hold the compiled plan after warm-up"
        );

        // Steady state: same shapes replayed through the same tile.
        let allocs = count_allocs(|| {
            for _ in 0..5 {
                mapping
                    .execute_floats_into(&mut state, &scores, &mut run)
                    .unwrap();
                mapping
                    .execute_floats_into(&mut state, &alt, &mut run)
                    .unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state {backend:?} plan replay must not allocate (got {allocs} allocations over 10 vectors)"
        );
        assert_eq!(run.codes, reference, "replayed path must stay bit-exact");
        let stats = mapping.plan_stats();
        assert_eq!(stats.compiles, 1, "steady state must not recompile");
        assert!(
            stats.hits >= 11,
            "steady-state vectors must hit the cached plan (hits = {})",
            stats.hits
        );
        println!(
            "tile_alloc: {backend:?} ok (plan hits {}, compile {:.1} us)",
            stats.hits, stats.compile_micros
        );
    }

    // Region-blocked strip-mined replay (the FastWord default above
    // already runs blocked; this section pins it explicitly at the
    // bandwidth-bound 2048-row shape, checks regions actually formed,
    // and holds the blocked executor's strip/tally scratch to the same
    // zero-steady-state-allocation contract — the pooled buffers are
    // sized during warm-up and only reused afterwards).
    {
        let wide: Vec<f64> = (0..4096).map(|i| -(f64::from(i) * 0.13) % 7.1).collect();
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(ExecBackend::FastWord)
            .with_blocked(true);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        mapping
            .execute_floats_into(&mut state, &wide, &mut run)
            .unwrap();
        mapping
            .execute_floats_into(&mut state, &wide, &mut run)
            .unwrap();
        let reference = run.codes.clone();
        let plan = state.cached_plan().expect("whole-vector plan cached");
        let blocks = plan
            .block_stats()
            .expect("blocked compile records block stats");
        assert!(
            blocks.regions >= 1 && blocks.blocked_ops >= 4,
            "the dataflow must form strip-mined regions: {blocks}"
        );
        assert!(
            blocks.strip_blocks_min >= 1 && blocks.footprint_bytes_max > 0,
            "strips must be sized: {blocks}"
        );
        let allocs = count_allocs(|| {
            for _ in 0..5 {
                mapping
                    .execute_floats_into(&mut state, &wide, &mut run)
                    .unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state blocked replay must not allocate (got {allocs} over 5 vectors)"
        );
        assert_eq!(run.codes, reference, "blocked replay must stay bit-exact");
        println!("tile_alloc: blocked 4096 ok ({blocks})");
    }

    // Sharded long-sequence steady state: the acceptance shape
    // (seq_len 16384 on 2048-row tiles → four shards, three phases,
    // two cross-tile reductions per vector) must replay with zero heap
    // allocations once the sharded plan and every buffer are warm — on
    // the default **resident** plan (whose per-shard pinned-tile pool
    // only grows during warm-up) and on the re-staged plan.
    for resident in [true, false] {
        let long: Vec<f64> = (0..16384)
            .map(|i| -f64::from((i % 97) as u32) * 0.07)
            .collect();
        // Pinned to the paper-default mapping: this section
        // characterizes the four-shard packed replay (the tuned winner
        // re-partitions; its zero-alloc replay is covered above).
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(ExecBackend::FastWord)
            .with_resident(resident);
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        mapping
            .execute_floats_into(&mut state, &long, &mut run)
            .unwrap();
        mapping
            .execute_floats_into(&mut state, &long, &mut run)
            .unwrap();
        assert_eq!(run.shards, 4, "16384 @ 2048 rows must run four shards");
        let reference = run.codes.clone();
        assert!(
            state.cached_sharded_plan().is_some(),
            "the tile slot must hold the sharded plan after warm-up"
        );
        let cache = mapping.cache_stats();
        assert_eq!(
            cache.resident_entries > 0,
            resident,
            "residency must show in the cache statistics: {cache}"
        );
        let allocs = count_allocs(|| {
            for _ in 0..3 {
                mapping
                    .execute_floats_into(&mut state, &long, &mut run)
                    .unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state sharded replay (resident {resident}) must not \
             allocate (got {allocs} over 3 vectors)"
        );
        assert_eq!(run.codes, reference, "sharded replay must stay bit-exact");
        println!(
            "tile_alloc: sharded 16384 resident={resident} ok (shards {}, waves {}, \
             total {} cyc, latency {} cyc)",
            run.shards,
            run.waves,
            run.total.cycles(),
            run.latency_cycles
        );
    }

    // The Microcode backend shards identically; keep its window cheap
    // with a tiny device (64 scores over 8-row tiles → four shards).
    {
        let scores: Vec<f64> = (0..64).map(|i| -(f64::from(i) * 0.23) % 6.1).collect();
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_autotune(false)
            .with_backend(ExecBackend::Microcode)
            .with_device(softmap_ap::DeviceConfig::new(2, 8));
        let mut state = TileState::new();
        let mut run = ApSoftmaxRun::default();
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        mapping
            .execute_floats_into(&mut state, &scores, &mut run)
            .unwrap();
        assert_eq!(run.shards, 4);
        let allocs = count_allocs(|| {
            for _ in 0..3 {
                mapping
                    .execute_floats_into(&mut state, &scores, &mut run)
                    .unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state Microcode sharded replay must not allocate (got {allocs})"
        );
        println!("tile_alloc: sharded Microcode ok");
    }

    // Serving steady state: once the queue slots, the worker's
    // persistent buffers, and the caller's collection target are warm,
    // the whole submit → execute → collect loop must not allocate. One
    // worker and whole-vector requests keep the armed window
    // deterministic (the counting allocator is process-global).
    {
        let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
            .unwrap()
            .with_backend(ExecBackend::FastWord);
        let server = softmap::SoftmaxServer::new(
            mapping,
            softmap::ServeConfig {
                workers: 1,
                queue_depth: 2,
                warmup_shapes: vec![64],
                shard_parallel: false,
            },
        )
        .unwrap();
        let mut run = ApSoftmaxRun::default();
        for _ in 0..8 {
            let ticket = server.submit(&scores).unwrap();
            ticket.wait_into(&mut run).unwrap();
        }
        let reference = run.codes.clone();
        let allocs = count_allocs(|| {
            for _ in 0..5 {
                let ticket = server.submit(&scores).unwrap();
                ticket.wait_into(&mut run).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state serving loop must not allocate (got {allocs} over 5 requests)"
        );
        assert_eq!(run.codes, reference, "served replay must stay bit-exact");
        let stats = server.stats();
        assert_eq!(stats.completed, 13, "every submission must complete");
        println!("tile_alloc: serving ok ({stats})");
    }

    // Sanity: the counter itself works.
    let sanity = count_allocs(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(v);
    });
    assert!(sanity >= 1, "counting allocator must observe allocations");
    println!("tile_alloc: all checks passed");
}
