//! Ablations of the co-design choices the README substitution notes call out: division
//! microcode style, row packing/layout, tile packing for short
//! sequences, and the 1D-vs-2D reduction the paper cites when motivating
//! the 2D AP.

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap::{ApDeployment, ApSoftmax, Layout, WorkloadModel};
use softmap_ap::{cost, DivStyle};
use softmap_softmax::PrecisionConfig;

/// One ablation line.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Design axis.
    pub axis: &'static str,
    /// Variant label.
    pub variant: String,
    /// Primary metric (cycles or seconds, see `unit`).
    pub value: f64,
    /// Metric unit.
    pub unit: &'static str,
}

/// Runs all ablations at the paper's best precision.
///
/// # Errors
///
/// Propagates mapping/workload errors.
pub fn run() -> EvalResult<Vec<Ablation>> {
    let cfg = PrecisionConfig::paper_best();
    let mut out = Vec::new();

    // Division style: the restoring divider dominates the dataflow; the
    // controller-reciprocal alternative trades <=1 ULP of accuracy for
    // most of those cycles. Cycle counts come from the compiled plan's
    // static cost (no execution beyond the one-time compile).
    for (label, style) in [
        ("restoring (paper step 16)", DivStyle::Restoring),
        ("controller reciprocal", DivStyle::ControllerReciprocal),
    ] {
        let stats = ApSoftmax::new(cfg)?
            .with_autotune(false)
            .with_div_style(style)
            .static_cost(1024)?;
        out.push(Ablation {
            axis: "division",
            variant: label.to_string(),
            value: stats.cycles() as f64,
            unit: "cycles/vector",
        });
    }

    // Row layout: the paper's two-words-per-row packing halves the rows
    // but runs each dataflow step once per half.
    for (label, layout) in [
        ("two words/row (paper)", Layout::TwoWordsPerRow),
        ("one word/row", Layout::OneWordPerRow),
    ] {
        let stats = ApSoftmax::new(cfg)?.with_layout(layout).static_cost(1024)?;
        out.push(Ablation {
            axis: "row layout",
            variant: label.to_string(),
            value: stats.cycles() as f64,
            unit: "cycles/vector",
        });
    }

    // Tile packing at short sequences (L = 128, Llama2-7b shape).
    for (label, packing) in [("one vector/tile (baseline)", false), ("packed", true)] {
        let m = WorkloadModel::new(
            cfg,
            ApDeployment {
                packing,
                ..ApDeployment::default()
            },
        )?;
        let c = m.cost(32, 32, 128, 1)?;
        out.push(Ablation {
            axis: "tile packing (L=128)",
            variant: label.to_string(),
            value: c.latency_s * 1e3,
            unit: "ms",
        });
    }

    // Reduction network: 2D row-parallel vs 1D with data movement.
    out.push(Ablation {
        axis: "reduction (L=4096)",
        variant: "2D AP (paper)".to_string(),
        value: cost::reduction(6, 4096) as f64,
        unit: "cycles",
    });
    out.push(Ablation {
        axis: "reduction (L=4096)",
        variant: "1D AP".to_string(),
        value: cost::reduction_1d(6, 4096) as f64,
        unit: "cycles",
    });

    Ok(out)
}

/// Renders the ablation table.
#[must_use]
pub fn render(rows: &[Ablation]) -> String {
    let mut t = AsciiTable::new(vec![
        "axis".into(),
        "variant".into(),
        "value".into(),
        "unit".into(),
    ]);
    t.title("Design ablations (best precision M=6/vcorr=M/N=16, L=1024 unless noted)");
    for r in rows {
        t.row(vec![
            r.axis.to_string(),
            r.variant.clone(),
            format!("{:.0}", r.value),
            r.unit.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_division_is_cheaper() {
        let rows = run().unwrap();
        let div: Vec<&Ablation> = rows.iter().filter(|r| r.axis == "division").collect();
        assert!(
            div[1].value < div[0].value * 0.8,
            "{} vs {}",
            div[1].value,
            div[0].value
        );
    }

    #[test]
    fn packing_wins_at_short_sequences() {
        let rows = run().unwrap();
        let packs: Vec<&Ablation> = rows
            .iter()
            .filter(|r| r.axis == "tile packing (L=128)")
            .collect();
        assert!(packs[1].value < packs[0].value);
    }

    #[test]
    fn twod_reduction_wins() {
        let rows = run().unwrap();
        let reds: Vec<&Ablation> = rows
            .iter()
            .filter(|r| r.axis == "reduction (L=4096)")
            .collect();
        assert!(reds[0].value < reds[1].value);
    }

    #[test]
    fn render_covers_all_axes() {
        let s = render(&run().unwrap());
        for axis in ["division", "row layout", "tile packing", "reduction"] {
            assert!(s.contains(axis), "missing {axis}");
        }
    }
}
