//! The paper's Amdahl consistency note: "the 6.7× softmax speedup
//! reduces the overall execution time of Llama2-70b by 10.71% for a
//! sequence length of 4096".
//!
//! We recompute both sides from our models: the softmax fraction comes
//! from the Fig. 1 runtime model and the speedup from the Fig. 7
//! characterization; Amdahl's law ties them together.

use crate::EvalResult;
use softmap::characterize::{Characterizer, OperatingPoint};
use softmap_gpu::transformer::PrefillModel;
use softmap_gpu::GpuSpec;
use softmap_llm::configs::llama2_70b;

/// The recomputed quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Amdahl {
    /// Softmax fraction of the 70b prefill runtime at L = 4096.
    pub softmax_fraction: f64,
    /// AP softmax speedup at L = 4096 (A100 baseline).
    pub speedup: f64,
    /// Resulting end-to-end time reduction.
    pub overall_reduction: f64,
}

/// Runs the consistency check.
///
/// # Errors
///
/// Propagates characterization errors.
pub fn run() -> EvalResult<Amdahl> {
    let fraction = PrefillModel::new(GpuSpec::a100())
        .runtime(&llama2_70b(), 4096, 1)
        .softmax_fraction();
    let ch = Characterizer::paper_default()?;
    let c = ch.compare(
        &llama2_70b(),
        OperatingPoint {
            seq_len: 4096,
            batch: 1,
        },
    )?;
    let speedup = c.gpus[0].norm_latency.max(1.0);
    let overall_reduction = fraction - fraction / speedup;
    Ok(Amdahl {
        softmax_fraction: fraction,
        speedup,
        overall_reduction,
    })
}

/// Renders the check against the paper's numbers.
#[must_use]
pub fn render(a: &Amdahl) -> String {
    let (paper_speedup, paper_reduction) = crate::paper::AMDAHL_70B;
    format!(
        "Amdahl check (Llama2-70b, L = 4096, A100 baseline)\n\
         softmax fraction of prefill: {:.1}% (paper implies ~12.6%)\n\
         AP softmax speedup:          {:.2}x (paper: {paper_speedup}x)\n\
         end-to-end reduction:        {:.2}% (paper: {:.2}%)\n",
        a.softmax_fraction * 100.0,
        a.speedup,
        a.overall_reduction * 100.0,
        paper_reduction * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_in_paper_neighbourhood() {
        let a = run().unwrap();
        // shape: a meaningful single-digit-to-low-teens percent reduction
        assert!(
            a.overall_reduction > 0.04 && a.overall_reduction < 0.25,
            "reduction {}",
            a.overall_reduction
        );
        assert!(a.speedup > 1.0);
        assert!(a.softmax_fraction > 0.05 && a.softmax_fraction < 0.25);
    }

    #[test]
    fn render_contains_both_sides() {
        let s = render(&run().unwrap());
        assert!(s.contains("paper"));
        assert!(s.contains('%'));
    }
}
