//! AP deployment area (Section V-B): 0.64 / 0.81 / 1.28 mm² for
//! Llama2-7b / 13b / 70b — one tile per attention head.

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap::{ApDeployment, WorkloadModel};
use softmap_llm::configs::paper_models;
use softmap_softmax::PrecisionConfig;

/// One row: model, head count, modelled area, paper area.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: &'static str,
    /// Attention heads (tiles).
    pub heads: usize,
    /// Modelled area, mm².
    pub area_mm2: f64,
    /// Paper-reported area, mm².
    pub paper_mm2: f64,
}

/// Runs the experiment with the paper's one-tile-per-head deployment.
///
/// # Errors
///
/// Propagates mapping errors.
pub fn run() -> EvalResult<Vec<Row>> {
    let model = WorkloadModel::new(
        PrecisionConfig::paper_best(),
        ApDeployment::area_reference(),
    )?;
    let mut rows = Vec::new();
    for (i, cfg) in paper_models().iter().enumerate() {
        rows.push(Row {
            model: cfg.name,
            heads: cfg.heads,
            area_mm2: model.area_mm2(cfg.heads)?,
            paper_mm2: crate::paper::AREA_MM2[i],
        });
    }
    Ok(rows)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = AsciiTable::new(vec![
        "model".into(),
        "heads (tiles)".into(),
        "area mm2 (model)".into(),
        "area mm2 (paper)".into(),
    ]);
    t.title("AP deployment area, one 2048-row tile per head");
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            r.heads.to_string(),
            format!("{:.2}", r.area_mm2),
            format!("{:.2}", r.paper_mm2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_heads_and_near_paper() {
        let rows = run().unwrap();
        assert_eq!(rows.len(), 3);
        // exact head proportionality
        let per_head: Vec<f64> = rows.iter().map(|r| r.area_mm2 / r.heads as f64).collect();
        assert!((per_head[0] - per_head[2]).abs() < 1e-9);
        // within 2x of every paper value
        for r in &rows {
            let ratio = r.area_mm2 / r.paper_mm2;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{}: {} vs paper {}",
                r.model,
                r.area_mm2,
                r.paper_mm2
            );
        }
    }

    #[test]
    fn render_mentions_all_models() {
        let s = render(&run().unwrap());
        assert!(s.contains("Llama2-7b"));
        assert!(s.contains("Llama2-70b"));
    }
}
