//! Extension experiment: the **mapping autotuner** against the paper's
//! fixed mapping. The paper maps every softmax the same way — two
//! words per row, greedy capacity-filling shard partition. The
//! autotuner (`softmap::mapping::autotune`) instead searches the legal
//! mapping space per shape — layout × shard partition, with the
//! division style, optimization level and residency axes pruned by the
//! documented dominance rules — and installs the statically cheapest
//! bit-exact winner. This table puts the two side by side across the
//! whole-vector and sharded regimes (64 – 32k tokens) on the unchanged
//! 48 × 2048-row deployment.
//!
//! Every number funnels through the static cost path: the winner *is*
//! an ordinary compiled plan, so `static == simulated` holds for it
//! (enforced by `crates/eval/tests/static_cost.rs` and the tests
//! below), and the table is execution-free after the one-time searches.
//! Bit-exactness of the winner against the paper-default mapping and
//! the scalar I-BERT specification is asserted in the tests.

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap::{ApDeployment, WorkloadModel};
use softmap_softmax::PrecisionConfig;

/// One autotuner operating point: the chosen mapping and its static
/// cost against the paper-default mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AutotunePoint {
    /// Sequence length (tokens; one softmax vector per row).
    pub seq_len: usize,
    /// The winning mapping, rendered (layout, division, opt level,
    /// shards, partition style, residency).
    pub choice: String,
    /// Candidate mappings the search scored for this shape.
    pub candidates: usize,
    /// Shards (tiles) the tuned winner occupies.
    pub tuned_shards: usize,
    /// Total work cycles per vector under the paper-default mapping.
    pub default_cycles: u64,
    /// Total work cycles per vector under the tuned winner.
    pub tuned_cycles: u64,
    /// Device critical-path cycles under the paper-default mapping.
    pub default_latency: u64,
    /// Device critical-path cycles under the tuned winner.
    pub tuned_latency: u64,
    /// Per-vector energy under the paper-default mapping, joules.
    pub default_energy_j: f64,
    /// Per-vector energy under the tuned winner, joules.
    pub tuned_energy_j: f64,
}

/// Sequence lengths the table sweeps: the paper's measured points plus
/// the sharded long-sequence regime, including a non-power-of-two
/// length where the balanced partition beats the greedy default.
pub const LENGTHS: [usize; 8] = [64, 256, 1024, 4096, 6000, 8192, 16384, 32768];

/// Sweeps the autotuner against the paper-default mapping on the
/// default deployment.
///
/// # Errors
///
/// Propagates workload errors.
pub fn run() -> EvalResult<Vec<AutotunePoint>> {
    let default = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default())?;
    let tuned = WorkloadModel::new(
        PrecisionConfig::paper_best(),
        ApDeployment {
            autotune: true,
            ..ApDeployment::default()
        },
    )?;
    let energy = default.energy_model();
    let mut out = Vec::new();
    for &seq_len in &LENGTHS {
        let dc = default.vector_cost(seq_len)?;
        let tc = tuned.vector_cost(seq_len)?;
        let plan = tuned.mapping().tuned_plan(seq_len)?;
        out.push(AutotunePoint {
            seq_len,
            choice: plan.choice().to_string(),
            candidates: plan.scores().len(),
            tuned_shards: tc.shards,
            default_cycles: dc.total.cycles(),
            tuned_cycles: tc.total.cycles(),
            default_latency: dc.latency_cycles,
            tuned_latency: tc.latency_cycles,
            default_energy_j: energy.energy(&dc.total).total_j,
            tuned_energy_j: energy.energy(&tc.total).total_j,
        });
    }
    Ok(out)
}

/// Renders the autotuner table.
#[must_use]
pub fn render(points: &[AutotunePoint]) -> String {
    let mut t = AsciiTable::new(vec![
        "seq len".into(),
        "chosen mapping".into(),
        "cand".into(),
        "default cyc/vec".into(),
        "tuned cyc/vec".into(),
        "default lat cyc".into(),
        "tuned lat cyc".into(),
        "default energy".into(),
        "tuned energy".into(),
    ]);
    t.title(
        "Mapping autotuner vs the paper's fixed mapping (extension; \
         static costs, 48 x 2048-row tiles per head)",
    );
    for p in points {
        t.row(vec![
            p.seq_len.to_string(),
            p.choice.clone(),
            p.candidates.to_string(),
            p.default_cycles.to_string(),
            p.tuned_cycles.to_string(),
            p.default_latency.to_string(),
            p.tuned_latency.to_string(),
            crate::table::fmt_joules(p.default_energy_j),
            crate::table::fmt_joules(p.tuned_energy_j),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap::ApSoftmax;
    use softmap_softmax::IntSoftmax;

    #[test]
    fn tuned_never_exceeds_default_and_wins_somewhere() {
        // The table-enforced acceptance gate: at every measured length
        // the tuned winner's static work is at most the paper-default
        // mapping's, and strictly below it at the pinned 4096 point.
        let points = run().unwrap();
        assert_eq!(points.len(), LENGTHS.len());
        for p in &points {
            assert!(
                p.tuned_cycles <= p.default_cycles,
                "L={}: tuned {} vs default {}",
                p.seq_len,
                p.tuned_cycles,
                p.default_cycles
            );
            assert!(
                p.candidates >= 1 && p.candidates <= 24,
                "L={}: search must stay O(tens), scored {}",
                p.seq_len,
                p.candidates
            );
        }
        let p4k = points.iter().find(|p| p.seq_len == 4096).unwrap();
        assert!(
            p4k.tuned_cycles < p4k.default_cycles,
            "the 4096 point must improve strictly: {} vs {}",
            p4k.tuned_cycles,
            p4k.default_cycles
        );
    }

    #[test]
    fn winner_is_bit_exact_and_statically_honest() {
        // Per winner: bit-exact against the scalar I-BERT spec and the
        // paper-default mapping, and static == simulated.
        let cfg = PrecisionConfig::paper_best();
        for len in [64usize, 4096, 6000] {
            let scores: Vec<f64> = (0..len).map(|i| -((i % 97) as f64) * 7.0 / 97.0).collect();
            let tuned = ApSoftmax::new(cfg).unwrap();
            assert!(tuned.autotune());
            let default = tuned.clone().with_autotune(false);
            let scalar = IntSoftmax::new(cfg).unwrap().run_floats(&scores).unwrap();
            let t = tuned.execute_floats(&scores).unwrap();
            let d = default.execute_floats(&scores).unwrap();
            assert_eq!(t.codes, scalar.codes, "len {len}: tuned vs scalar");
            assert_eq!(t.vapprox, scalar.vapprox, "len {len}");
            assert_eq!(t.sum, scalar.sum, "len {len}");
            assert_eq!(t.codes, d.codes, "len {len}: tuned vs default");
            assert_eq!(
                tuned.static_cost(len).unwrap(),
                t.total,
                "len {len}: static != simulated for the winner"
            );
        }
    }

    #[test]
    fn balanced_partition_wins_at_awkward_lengths() {
        // 6000 packed splits greedily into (4096, 1904) — two distinct
        // shard lengths, so no resident lockstep sharing. The balanced
        // (3000, 3000) split runs one leader + one follower; the tuner
        // must find it (or something at least as good).
        let points = run().unwrap();
        let p = points.iter().find(|p| p.seq_len == 6000).unwrap();
        assert!(
            p.tuned_cycles < p.default_cycles,
            "6000: tuned {} vs default {}",
            p.tuned_cycles,
            p.default_cycles
        );
    }

    #[test]
    fn tuned_energy_never_exceeds_default() {
        for p in &run().unwrap() {
            assert!(
                p.tuned_energy_j <= p.default_energy_j * 1.000_001,
                "L={}: tuned {} J vs default {} J",
                p.seq_len,
                p.tuned_energy_j,
                p.default_energy_j
            );
        }
    }

    #[test]
    fn render_covers_the_sweep() {
        let s = render(&run().unwrap());
        for l in ["64", "4096", "6000", "32768"] {
            assert!(s.contains(l), "missing {l}");
        }
        assert!(s.contains("chosen mapping"));
        assert!(s.contains("tuned cyc/vec"));
    }
}
