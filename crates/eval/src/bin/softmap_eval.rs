//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! softmap-eval <experiment>
//! experiments: fig1 table1 table2 table3 table4 fig6 fig7 fig8
//!              table5 table6 area amdahl ablations decode longseq
//!              autotune all
//! ```

use softmap_eval::fig678::Quantity;
use softmap_eval::{
    ablations, amdahl, area, autotune, decode, fig1, fig678, longseq, paper, table1, table2,
    table34, table5, table6,
};

fn run(which: &str) -> Result<(), Box<dyn std::error::Error>> {
    match which {
        "fig1" => print!("{}", fig1::render(&fig1::run())),
        "table1" => print!("{}", table1::run().render()),
        "table2" => print!("{}", table2::render(&table2::run())),
        "table3" => {
            let g = table34::run(table34::StandIn::A)?;
            print!("{}", g.render(&paper::TABLE3_PPL, paper::TABLE3_FP_PPL));
        }
        "table4" => {
            let g = table34::run(table34::StandIn::B)?;
            print!("{}", g.render(&paper::TABLE4_PPL, paper::TABLE4_FP_PPL));
        }
        "fig6" => print!("{}", fig678::render_figure(Quantity::Energy)?),
        "fig7" => print!("{}", fig678::render_figure(Quantity::Latency)?),
        "fig8" => print!("{}", fig678::render_figure(Quantity::Edp)?),
        "table5" => print!("{}", table5::render(&table5::run()?)),
        "table6" => print!("{}", table6::render(&table6::run()?)),
        "area" => print!("{}", area::render(&area::run()?)),
        "amdahl" => print!("{}", amdahl::render(&amdahl::run()?)),
        "ablations" => print!("{}", ablations::render(&ablations::run()?)),
        "decode" => print!("{}", decode::render(&decode::run()?)),
        "longseq" => print!("{}", longseq::render(&longseq::run()?)),
        "autotune" => print!("{}", autotune::render(&autotune::run()?)),
        "all" => {
            for e in [
                "fig1",
                "table1",
                "table2",
                "table3",
                "table4",
                "fig6",
                "fig7",
                "fig8",
                "table5",
                "table6",
                "area",
                "amdahl",
                "ablations",
                "decode",
                "longseq",
                "autotune",
            ] {
                println!("==== {e} ====");
                run(e)?;
                println!();
            }
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'\n\
                 usage: softmap-eval <fig1|table1|table2|table3|table4|fig6|fig7|fig8|table5|table6|area|amdahl|ablations|decode|longseq|autotune|all>"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if let Err(e) = run(&which) {
        eprintln!("experiment '{which}' failed: {e}");
        std::process::exit(1);
    }
}
