//! Extension experiment: the *decode* phase. The paper evaluates
//! prefill; autoregressive generation runs one softmax vector per head
//! per layer per token, over a growing KV cache. This experiment
//! characterizes that workload with the same AP deployment and GPU
//! models.

use crate::table::{fmt_ratio, AsciiTable};
use crate::EvalResult;
use softmap::{ApDeployment, WorkloadModel};
use softmap_gpu::{GpuSpec, SoftmaxKernelModel};
use softmap_llm::configs::{llama2_7b, SoftmaxWorkload};
use softmap_softmax::PrecisionConfig;

/// One decode operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodePoint {
    /// KV-cache depth.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// AP softmax latency per generated token, seconds.
    pub ap_latency_s: f64,
    /// AP softmax energy per generated token, joules.
    pub ap_energy_j: f64,
    /// `latency_GPU / latency_AP` on A100.
    pub norm_latency_a100: f64,
    /// `energy_GPU / energy_AP` on A100.
    pub norm_energy_a100: f64,
}

/// Runs the decode sweep on Llama2-7b.
///
/// # Errors
///
/// Propagates workload errors.
pub fn run() -> EvalResult<Vec<DecodePoint>> {
    let model = llama2_7b();
    let wm = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default())?;
    let kernel = SoftmaxKernelModel::int_unfused();
    let a100 = GpuSpec::a100();
    let mut out = Vec::new();
    for &seq_len in &[512usize, 1024, 2048, 4096] {
        for &batch in &[1usize, 16] {
            let ap = wm.cost_decode(model.layers, model.heads, seq_len, batch)?;
            let w = SoftmaxWorkload::decode(&model, seq_len, batch);
            let gpu = kernel.cost(&a100, &w);
            out.push(DecodePoint {
                seq_len,
                batch,
                ap_latency_s: ap.latency_s,
                ap_energy_j: ap.energy_j,
                norm_latency_a100: gpu.latency_s / ap.latency_s,
                norm_energy_a100: gpu.energy_j / ap.energy_j,
            });
        }
    }
    Ok(out)
}

/// Renders the decode table.
#[must_use]
pub fn render(points: &[DecodePoint]) -> String {
    let mut t = AsciiTable::new(vec![
        "KV depth".into(),
        "batch".into(),
        "AP latency/token".into(),
        "AP energy/token".into(),
        "A100/AP latency".into(),
        "A100/AP energy".into(),
    ]);
    t.title("Decode-phase softmax (extension; Llama2-7b, per generated token)");
    for p in points {
        t.row(vec![
            p.seq_len.to_string(),
            p.batch.to_string(),
            crate::table::fmt_seconds(p.ap_latency_s),
            crate::table::fmt_joules(p.ap_energy_j),
            fmt_ratio(p.norm_latency_a100),
            fmt_ratio(p.norm_energy_a100),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_energy_always_favours_ap() {
        for p in run().unwrap() {
            assert!(
                p.norm_energy_a100 > 1.0,
                "L={} B={}: {}",
                p.seq_len,
                p.batch,
                p.norm_energy_a100
            );
        }
    }

    #[test]
    fn decode_latency_per_token_is_sub_millisecond_class() {
        for p in run().unwrap() {
            assert!(p.ap_latency_s < 0.01, "{}", p.ap_latency_s);
        }
    }

    #[test]
    fn render_has_all_depths() {
        let s = render(&run().unwrap());
        for l in ["512", "1024", "2048", "4096"] {
            assert!(s.contains(l));
        }
    }
}
