//! Fig. 1: softmax share of Llama2-7b prefill runtime on A100 vs.
//! sequence length.

use crate::table::AsciiTable;
use softmap_gpu::transformer::PrefillModel;
use softmap_gpu::GpuSpec;
use softmap_llm::configs::llama2_7b;

/// One point of the curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sequence length.
    pub seq_len: usize,
    /// Softmax fraction of the total runtime.
    pub fraction: f64,
    /// Total modelled runtime, seconds.
    pub total_s: f64,
}

/// The paper's x-axis.
#[must_use]
pub fn sequence_lengths() -> Vec<usize> {
    vec![128, 256, 512, 1024, 2048, 4096, 8192, 16384]
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Vec<Point> {
    let model = PrefillModel::new(GpuSpec::a100());
    let cfg = llama2_7b();
    sequence_lengths()
        .into_iter()
        .map(|seq_len| {
            let parts = model.runtime(&cfg, seq_len, 1);
            Point {
                seq_len,
                fraction: parts.softmax_fraction(),
                total_s: parts.total_s(),
            }
        })
        .collect()
}

/// Renders the series with the paper's anchor claims.
#[must_use]
pub fn render(points: &[Point]) -> String {
    let mut t = AsciiTable::new(vec![
        "seq len".into(),
        "softmax share".into(),
        "total runtime".into(),
        "bar".into(),
    ]);
    t.title(
        "Fig. 1: softmax share of Llama2-7b prefill on A100 \
         (paper: <=3.34% below 1024, up to 38% at 16384)",
    );
    for p in points {
        let bar = "#".repeat((p.fraction * 100.0).round() as usize);
        t.row(vec![
            p.seq_len.to_string(),
            format!("{:.1}%", p.fraction * 100.0),
            crate::table::fmt_seconds(p.total_s),
            bar,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn matches_paper_anchors() {
        let pts = run();
        let at = |seq: usize| pts.iter().find(|p| p.seq_len == seq).unwrap().fraction;
        let (a1, a2) = (paper::FIG1_ANCHORS[0], paper::FIG1_ANCHORS[1]);
        assert!(
            at(a1.0) <= a1.1 * 1.5,
            "1024: {} vs paper {}",
            at(a1.0),
            a1.1
        );
        assert!(
            (at(a2.0) - a2.1).abs() < 0.12,
            "16384: {} vs paper {}",
            at(a2.0),
            a2.1
        );
    }

    #[test]
    fn runtime_grows_with_length() {
        let pts = run();
        for w in pts.windows(2) {
            assert!(w[1].total_s > w[0].total_s);
        }
    }

    #[test]
    fn render_has_all_lengths() {
        let s = render(&run());
        assert!(s.contains("16384"));
        assert!(s.contains('%'));
    }
}
