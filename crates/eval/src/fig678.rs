//! Figs. 6, 7 and 8: normalized energy, latency and EDP of the AP
//! against A100 and RTX3090, over the paper's (sequence length × batch)
//! grid, for each Llama model.

use std::sync::OnceLock;

use crate::table::{fmt_ratio, AsciiTable};
use crate::EvalResult;
use softmap::characterize::{Characterizer, Comparison};
use softmap_llm::configs::{paper_models, LlamaConfig};

/// Which quantity a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// Fig. 6: `energy_GPU / energy_AP`.
    Energy,
    /// Fig. 7: `latency_GPU / latency_AP`.
    Latency,
    /// Fig. 8: `EDP_GPU / EDP_AP`.
    Edp,
}

impl Quantity {
    fn of(self, c: &Comparison, gpu_idx: usize) -> f64 {
        match self {
            Self::Energy => c.gpus[gpu_idx].norm_energy,
            Self::Latency => c.gpus[gpu_idx].norm_latency,
            Self::Edp => c.gpus[gpu_idx].norm_edp,
        }
    }
}

fn characterizer() -> EvalResult<&'static Characterizer> {
    static CH: OnceLock<Characterizer> = OnceLock::new();
    if CH.get().is_none() {
        let ch = Characterizer::paper_default().map_err(Box::new)?;
        let _ = CH.set(ch);
    }
    Ok(CH.get().expect("just set"))
}

/// The full sweep for one model (all operating points, both GPUs).
///
/// # Errors
///
/// Propagates characterization errors.
pub fn sweep(model: &LlamaConfig) -> EvalResult<Vec<Comparison>> {
    Ok(characterizer()?.sweep(model)?)
}

/// Renders one figure panel for one model.
///
/// # Errors
///
/// Propagates characterization errors.
pub fn render_panel(model: &LlamaConfig, q: Quantity) -> EvalResult<String> {
    let sweep = sweep(model)?;
    let (name, fig) = match q {
        Quantity::Energy => ("normalized energy (GPU/AP)", "Fig. 6"),
        Quantity::Latency => ("normalized latency (GPU/AP)", "Fig. 7"),
        Quantity::Edp => ("normalized EDP (GPU/AP)", "Fig. 8"),
    };
    let mut t = AsciiTable::new(vec![
        "seq len".into(),
        "batch".into(),
        "A100".into(),
        "RTX3090".into(),
    ]);
    t.title(format!(
        "{fig}: {name} for {} (>1 favours the AP)",
        model.name
    ));
    for c in &sweep {
        t.row(vec![
            c.point.seq_len.to_string(),
            c.point.batch.to_string(),
            fmt_ratio(q.of(c, 0)),
            fmt_ratio(q.of(c, 1)),
        ]);
    }
    Ok(t.render())
}

/// Renders all three panels of one figure (7b, 13b, 70b).
///
/// # Errors
///
/// Propagates characterization errors.
pub fn render_figure(q: Quantity) -> EvalResult<String> {
    let mut out = String::new();
    for model in paper_models() {
        out.push_str(&render_panel(&model, q)?);
        out.push('\n');
    }
    match q {
        Quantity::Energy => out.push_str(&format!(
            "paper maxima (A100): {:?}; (RTX3090): {:?}; averages: {:?} / {:?}\n",
            crate::paper::FIG6_MAX_A100,
            crate::paper::FIG6_MAX_3090,
            crate::paper::FIG6_AVG_A100,
            crate::paper::FIG6_AVG_3090
        )),
        Quantity::Latency => out.push_str(&format!(
            "paper range over L in [1024, 4096]: {:?}\n",
            crate::paper::FIG7_RANGE
        )),
        Quantity::Edp => out.push_str("paper: always > 1; maxima at L = 4096, B in [8, 32]\n"),
    }
    Ok(out)
}

/// Summary statistics of one model's sweep (used by tests and the
/// EXPERIMENTS log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSummary {
    /// Max energy ratio vs. A100.
    pub max_energy_a100: f64,
    /// Mean energy ratio vs. A100.
    pub mean_energy_a100: f64,
    /// Max latency ratio vs. A100.
    pub max_latency_a100: f64,
    /// Min latency ratio vs. A100.
    pub min_latency_a100: f64,
    /// Max EDP ratio vs. A100.
    pub max_edp_a100: f64,
}

/// Computes the summary for one model.
///
/// # Errors
///
/// Propagates characterization errors.
pub fn summary(model: &LlamaConfig) -> EvalResult<SweepSummary> {
    let sweep = sweep(model)?;
    let vals = |f: &dyn Fn(&Comparison) -> f64| -> Vec<f64> { sweep.iter().map(f).collect() };
    let energy = vals(&|c| c.gpus[0].norm_energy);
    let latency = vals(&|c| c.gpus[0].norm_latency);
    let edp = vals(&|c| c.gpus[0].norm_edp);
    let max = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::MAX, f64::min);
    Ok(SweepSummary {
        max_energy_a100: max(&energy),
        mean_energy_a100: energy.iter().sum::<f64>() / energy.len() as f64,
        max_latency_a100: max(&latency),
        min_latency_a100: min(&latency),
        max_edp_a100: max(&edp),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use softmap_llm::configs::llama2_7b;

    #[test]
    fn seven_b_summary_in_paper_bands() {
        let s = summary(&llama2_7b()).unwrap();
        // Fig. 6 shape: energy ratios are O(100-1000)
        assert!(s.max_energy_a100 > 100.0 && s.max_energy_a100 < 5000.0);
        assert!(s.mean_energy_a100 > 50.0);
        // Fig. 7 shape: crossover exists
        assert!(
            s.min_latency_a100 < 1.0,
            "min latency ratio {}",
            s.min_latency_a100
        );
        assert!(
            s.max_latency_a100 > 1.5,
            "max latency ratio {}",
            s.max_latency_a100
        );
        // Fig. 8 shape: EDP strongly favours the AP at the top end
        assert!(s.max_edp_a100 > 100.0);
    }

    #[test]
    fn panels_render_for_all_quantities() {
        for q in [Quantity::Energy, Quantity::Latency, Quantity::Edp] {
            let s = render_panel(&llama2_7b(), q).unwrap();
            assert!(s.contains("4096"));
            assert!(s.contains("A100"));
        }
    }
}
