//! Experiment harness: regenerates every table and figure of the
//! SoftmAP paper.
//!
//! Each experiment module produces structured data plus an ASCII
//! rendering with the paper's reported values alongside for comparison.
//! The `softmap-eval` binary drives them:
//!
//! ```text
//! cargo run -p softmap-eval --release -- all
//! cargo run -p softmap-eval --release -- fig7
//! ```
//!
//! | Module | Paper content |
//! |---|---|
//! | [`fig1`] | Softmax runtime share of Llama2-7b on A100 |
//! | [`table1`] | Bit-width allocations per intermediate |
//! | [`table2`] | AP runtime formulas vs. measured microcode |
//! | [`table34`] | Perplexity grids (tiny-LM stand-ins, see the README substitution notes) |
//! | [`fig678`] | Normalized energy / latency / EDP sweeps |
//! | [`table5`] | Highest EDP ratios |
//! | [`table6`] | Energy per operation vs. ConSmax / Softermax |
//! | [`area`] | AP deployment area |
//! | [`amdahl`] | End-to-end speedup consistency check |
//! | [`ablations`] | Division/layout/packing/reduction design ablations (extension) |
//! | [`decode`] | Decode-phase characterization (extension) |
//! | [`longseq`] | Sharded long-sequence softmax at fixed hardware (extension) |
//! | [`autotune`] | Mapping autotuner vs the paper's fixed mapping (extension) |
//!
//! # Examples
//!
//! ```
//! let t = softmap_eval::table1::run();
//! assert!(t.render().contains("vapprox"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod amdahl;
pub mod area;
pub mod autotune;
pub mod decode;
pub mod fig1;
pub mod fig678;
pub mod longseq;
pub mod paper;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table34;
pub mod table5;
pub mod table6;

/// Convenience result alias for experiments.
pub type EvalResult<T> = Result<T, Box<dyn std::error::Error>>;
