//! Extension experiment: **long-sequence sharded softmax at fixed
//! hardware**. The paper evaluates up to 4096 tokens — exactly one
//! 2048-row tile at two words per row. Past that point the device
//! model shards each softmax vector across the head's tiles: per-shard
//! min search, a cross-tile min broadcast, per-shard exponentials and
//! partial sums, a cross-tile sum reduction, then per-shard division.
//! This table characterizes that regime (8k–32k tokens, the lengths
//! where softmax dominates transformer latency per VEXP/SOLE) on the
//! unchanged 48 × 2048-row deployment.
//!
//! Each point is characterized twice: on the default **resident** plan
//! (shards pinned in tiles across phases, staging elided, same-length
//! shards in SIMD lockstep) and on the **re-staged** plan
//! (`resident: false`, the shard-per-phase reload baseline), so the
//! residency gain in total work and critical path is visible per
//! length.
//!
//! All numbers funnel through the static cost path
//! ([`WorkloadModel::vector_cost`]): shards, waves, reduction-network
//! cycles, and the device critical path are answered from the compiled
//! sharded plan without executing anything after the one-time compile.

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap::{ApDeployment, WorkloadModel};
use softmap_llm::configs::llama2_7b;
use softmap_softmax::PrecisionConfig;

/// One long-sequence operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LongSeqPoint {
    /// Sequence length (tokens; one softmax vector per row).
    pub seq_len: usize,
    /// Shards (tiles) one vector occupies.
    pub shards: usize,
    /// Sequential waves per phase on the 48-tile head grid.
    pub waves: u64,
    /// Total work cycles per vector on the resident plan (the default:
    /// all shards + reductions, staging elided, lockstep followers).
    pub work_cycles: u64,
    /// Total work cycles per vector on the re-staged plan.
    pub restaged_work_cycles: u64,
    /// Cross-tile reduction-network cycles per vector.
    pub reduction_cycles: u64,
    /// Device critical-path cycles per vector on the resident plan.
    pub latency_cycles: u64,
    /// Device critical-path cycles per vector on the re-staged plan.
    pub restaged_latency_cycles: u64,
    /// Llama2-7b full-prefill softmax latency, seconds.
    pub prefill_latency_s: f64,
    /// Llama2-7b full-prefill softmax energy, joules.
    pub prefill_energy_j: f64,
}

/// Sweeps sequence lengths across the single-tile boundary on the
/// paper's deployment, characterizing the resident and re-staged plans
/// side by side.
///
/// # Errors
///
/// Propagates workload errors.
pub fn run() -> EvalResult<Vec<LongSeqPoint>> {
    let model = llama2_7b();
    let wm = WorkloadModel::new(PrecisionConfig::paper_best(), ApDeployment::default())?;
    let restaged = WorkloadModel::new(
        PrecisionConfig::paper_best(),
        ApDeployment {
            resident: false,
            ..ApDeployment::default()
        },
    )?;
    let mut out = Vec::new();
    for &seq_len in &[2048usize, 4096, 8192, 16384, 32768] {
        let vc = wm.vector_cost(seq_len)?;
        let rc = restaged.vector_cost(seq_len)?;
        let cost = wm.cost(model.layers, model.heads, seq_len, 1)?;
        out.push(LongSeqPoint {
            seq_len,
            shards: vc.shards,
            waves: vc.waves,
            work_cycles: vc.total.cycles(),
            restaged_work_cycles: rc.total.cycles(),
            reduction_cycles: vc.reduction.cycles(),
            latency_cycles: vc.latency_cycles,
            restaged_latency_cycles: rc.latency_cycles,
            prefill_latency_s: cost.latency_s,
            prefill_energy_j: cost.energy_j,
        });
    }
    Ok(out)
}

/// Renders the long-sequence table.
#[must_use]
pub fn render(points: &[LongSeqPoint]) -> String {
    let mut t = AsciiTable::new(vec![
        "seq len".into(),
        "shards".into(),
        "waves".into(),
        "resident cyc/vec".into(),
        "restaged cyc/vec".into(),
        "reduce cyc".into(),
        "resident lat cyc".into(),
        "restaged lat cyc".into(),
        "prefill latency".into(),
        "prefill energy".into(),
    ]);
    t.title(
        "Long-sequence sharded softmax (extension; Llama2-7b prefill, \
         48 x 2048-row tiles per head, resident vs re-staged shards)",
    );
    for p in points {
        t.row(vec![
            p.seq_len.to_string(),
            p.shards.to_string(),
            p.waves.to_string(),
            p.work_cycles.to_string(),
            p.restaged_work_cycles.to_string(),
            p.reduction_cycles.to_string(),
            p.latency_cycles.to_string(),
            p.restaged_latency_cycles.to_string(),
            crate::table::fmt_seconds(p.prefill_latency_s),
            crate::table::fmt_joules(p.prefill_energy_j),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_starts_past_one_tile() {
        let points = run().unwrap();
        for p in &points {
            if p.seq_len <= 4096 {
                assert_eq!(p.shards, 1, "L={} fits one tile", p.seq_len);
                assert_eq!(p.reduction_cycles, 0);
                // One tile re-stages by definition: both plans agree.
                assert_eq!(p.work_cycles, p.restaged_work_cycles);
                assert_eq!(p.latency_cycles, p.restaged_latency_cycles);
            } else {
                assert_eq!(p.shards, p.seq_len / 4096, "L={}", p.seq_len);
                assert!(p.reduction_cycles > 0);
                // All shards fit the 48-tile grid in one wave.
                assert_eq!(p.waves, 1);
            }
        }
    }

    #[test]
    fn latency_grows_sublinearly_while_work_grows_linearly() {
        let points = run().unwrap();
        let p4k = points.iter().find(|p| p.seq_len == 4096).unwrap();
        let p16k = points.iter().find(|p| p.seq_len == 16384).unwrap();
        // 4x the tokens: ~4x the work on the re-staged baseline (every
        // shard pays its full phases)...
        let work_ratio = p16k.restaged_work_cycles as f64 / p4k.restaged_work_cycles as f64;
        assert!(
            work_ratio > 3.0 && work_ratio < 5.5,
            "work ratio {work_ratio}"
        );
        // ...but the shards run concurrently, so the per-vector
        // critical path grows far slower than the work.
        let lat_ratio = p16k.restaged_latency_cycles as f64 / p4k.restaged_latency_cycles as f64;
        assert!(lat_ratio < work_ratio / 2.0, "latency ratio {lat_ratio}");
    }

    #[test]
    fn residency_cuts_sharded_work() {
        let points = run().unwrap();
        for p in points.iter().filter(|p| p.shards > 1) {
            // The issue's headline gate: resident total work at least
            // 10% below the re-staged plan for every sharded length.
            assert!(
                (p.work_cycles as f64) < 0.90 * p.restaged_work_cycles as f64,
                "L={}: resident {} vs re-staged {}",
                p.seq_len,
                p.work_cycles,
                p.restaged_work_cycles
            );
            assert!(
                p.latency_cycles <= p.restaged_latency_cycles,
                "L={}",
                p.seq_len
            );
        }
    }

    #[test]
    fn render_covers_the_long_regime() {
        let s = render(&run().unwrap());
        for l in ["8192", "16384", "32768"] {
            assert!(s.contains(l), "missing {l}");
        }
        assert!(s.contains("resident cyc/vec"));
        assert!(s.contains("restaged cyc/vec"));
    }
}
