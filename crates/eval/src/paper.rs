//! The paper's reported numbers, embedded for side-by-side comparison.
//!
//! # Examples
//!
//! ```
//! use softmap_eval::paper;
//!
//! assert_eq!(paper::TABLE5_A100, [1068.0, 1191.0, 2091.0]);
//! ```

/// Fig. 1 anchors: softmax share of Llama2-7b runtime on A100.
/// `(sequence length, reported fraction)` — the paper reports ≤3.34%
/// below 1024 and up to 38% at 16384.
pub const FIG1_ANCHORS: [(usize, f64); 2] = [(1024, 0.0334), (16384, 0.38)];

/// Table III (Llama2-7b, TC = −7): perplexity for
/// `N ∈ {8,12,16,20}` (rows) × `(v_corr, M)` columns in the order
/// `(M, M=6), (M, M=8), (M+1, M=6), (M+1, M=8), (M+2, M=6), (M+2, M=8)`.
pub const TABLE3_PPL: [[f64; 6]; 4] = [
    [9.62, 17.78, 9.62, 17.77, 9.62, 17.77],
    [5.92, 5.52, 5.93, 5.52, 5.93, 5.52],
    [5.92, 5.51, 5.92, 5.51, 5.92, 5.51],
    [5.92, 5.51, 5.92, 5.51, 5.92, 5.51],
];

/// Table III's FP reference perplexity.
pub const TABLE3_FP_PPL: f64 = 5.47;

/// Table IV (Llama2-13b): same layout as [`TABLE3_PPL`].
pub const TABLE4_PPL: [[f64; 6]; 4] = [
    [13.38, 12.78, 13.38, 12.8, 13.38, 12.78],
    [5.54, 4.94, 5.54, 4.94, 5.54, 4.94],
    [5.35, 4.93, 5.35, 4.93, 5.35, 4.93],
    [5.34, 4.93, 5.34, 4.93, 5.34, 4.93],
];

/// Table IV's FP reference perplexity.
pub const TABLE4_FP_PPL: f64 = 4.88;

/// Highest energy savings vs. A100 per model (7b, 13b, 70b) — Fig. 6.
pub const FIG6_MAX_A100: [f64; 3] = [489.0, 760.0, 340.0];

/// Highest energy savings vs. RTX3090 per model — Fig. 6.
pub const FIG6_MAX_3090: [f64; 3] = [776.0, 1305.0, 726.0];

/// Average energy savings vs. A100 per model — Fig. 6.
pub const FIG6_AVG_A100: [f64; 3] = [289.0, 301.0, 301.0];

/// Average energy savings vs. RTX3090 per model — Fig. 6.
pub const FIG6_AVG_3090: [f64; 3] = [710.0, 730.0, 707.0];

/// Fig. 7: AP latency savings range over `L ∈ [1024, 4096]`:
/// `(A100 low, A100 high, 3090 high)`.
pub const FIG7_RANGE: (f64, f64, f64) = (1.06, 6.7, 12.58);

/// Table V: highest `EDP_A100 / EDP_AP` for (7b, 13b, 70b).
pub const TABLE5_A100: [f64; 3] = [1068.0, 1191.0, 2091.0];

/// Table V: highest `EDP_RTX3090 / EDP_AP` for (7b, 13b, 70b).
pub const TABLE5_3090: [f64; 3] = [4421.0, 5524.0, 8851.0];

/// Table VI rows: `(method, softmax approximation, process, max freq
/// MHz, optimum energy per op pJ)`.
pub const TABLE6: [(&str, &str, &str, u32, f64); 3] = [
    ("ConSmax", "Learnable LUTs", "16nm", 1250, 0.2),
    (
        "Softermax",
        "Base replacement + online normalization",
        "16nm",
        1111,
        0.7,
    ),
    ("SoftmAP", "Integer polynomial", "16nm", 1000, 5.88e-3),
];

/// AP deployment areas, mm², for (7b, 13b, 70b) — Section V-B.
pub const AREA_MM2: [f64; 3] = [0.64, 0.81, 1.28];

/// The Amdahl consistency note: a 6.7× softmax speedup cuts Llama2-70b
/// total time by 10.71% at L = 4096.
pub const AMDAHL_70B: (f64, f64) = (6.7, 0.1071);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent_with_the_papers_narrative() {
        // N=8 rows are the worst in both perplexity tables
        for col in 0..6 {
            assert!(TABLE3_PPL[0][col] > TABLE3_PPL[2][col]);
            assert!(TABLE4_PPL[0][col] > TABLE4_PPL[2][col]);
        }
        // FP is the lower bound
        for row in &TABLE3_PPL[1..] {
            for &v in row {
                assert!(v >= TABLE3_FP_PPL);
            }
        }
        // 3090 EDP tops exceed A100's, both grow with model size
        for i in 0..3 {
            assert!(TABLE5_3090[i] > TABLE5_A100[i]);
        }
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(TABLE5_A100[2] > TABLE5_A100[0]);
        }
        // SoftmAP has the lowest energy/op in Table VI
        let softmap = TABLE6[2].4;
        assert!(softmap < TABLE6[0].4 && softmap < TABLE6[1].4);
    }
}
