//! Minimal ASCII table renderer for experiment output.
//!
//! # Examples
//!
//! ```
//! use softmap_eval::table::AsciiTable;
//!
//! let mut t = AsciiTable::new(vec!["metric".into(), "value".into()]);
//! t.row(vec!["cycles".into(), "36181".into()]);
//! let s = t.render();
//! assert!(s.contains("cycles"));
//! assert!(s.contains("36181"));
//! ```

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl AsciiTable {
    /// Creates a table with the given header.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Self {
        self.title = Some(t.into());
        self
    }

    /// Appends one row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("| {cell:w$} "));
            }
            line + "|"
        };
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Formats a ratio with adaptive precision (3 significant-ish digits).
#[must_use]
pub fn fmt_ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats seconds with an adaptive unit.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Formats joules with an adaptive unit.
#[must_use]
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.2} J")
    } else if j >= 1e-3 {
        format!("{:.2} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.2} uJ", j * 1e6)
    } else {
        format!("{:.2} nJ", j * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["a".into(), "long-header".into()]);
        t.title("Demo");
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-cell".into(), "2".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // all body lines have equal width
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = AsciiTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains("| 1 |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(1234.6), "1235");
        assert_eq!(fmt_ratio(12.34), "12.3");
        assert_eq!(fmt_ratio(1.234), "1.23");
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(2.5e-3), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 us");
        assert_eq!(fmt_seconds(2.5e-9), "2.50 ns");
        assert_eq!(fmt_joules(0.0025), "2.50 mJ");
        assert_eq!(fmt_joules(3.1), "3.10 J");
    }
}
