//! Table I: bit-width allocations per intermediate over the precision
//! grid. Reproduced cell-exactly from the closed forms in
//! `softmap_softmax::WidthTable`.

use crate::table::AsciiTable;
use softmap_softmax::{PrecisionConfig, WidthTable};

/// The reproduced Table I.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// `(Δ, M)` column order: Δ ∈ {0,1,2} × M ∈ {4,6,8}.
    pub columns: Vec<(u32, u32)>,
    /// Width rows: name plus one width per column.
    pub width_rows: Vec<(&'static str, Vec<u32>)>,
    /// Sum rows: `N` plus one width per column.
    pub sum_rows: Vec<(u32, Vec<u32>)>,
}

/// Generates the table.
#[must_use]
pub fn run() -> Table1 {
    let mut columns = Vec::new();
    for delta in [0u32, 1, 2] {
        for m in [4u32, 6, 8] {
            columns.push((delta, m));
        }
    }
    let names = [
        "v",
        "vstable",
        "vln2",
        "vb",
        "vc",
        "(vcorr+vb)^2+vc",
        "vapprox",
    ];
    let mut width_rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let widths = columns
            .iter()
            .map(|&(d, m)| {
                let w = WidthTable::from_config(&PrecisionConfig::new(m, d, 16));
                [w.v, w.vstable, w.vln2, w.vb, w.vc, w.poly, w.vapprox][i]
            })
            .collect();
        width_rows.push((*name, widths));
    }
    let sum_rows = [8u32, 12, 16, 20]
        .iter()
        .map(|&n| {
            let widths = columns
                .iter()
                .map(|&(d, m)| WidthTable::from_config(&PrecisionConfig::new(m, d, n)).sum)
                .collect();
            (n, widths)
        })
        .collect();
    Table1 {
        columns,
        width_rows,
        sum_rows,
    }
}

impl Table1 {
    /// Renders the table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["quantity".to_string()];
        for &(d, m) in &self.columns {
            let vc = if d == 0 {
                "vcorr=M".to_string()
            } else {
                format!("vcorr=M+{d}")
            };
            header.push(format!("{vc},M={m}"));
        }
        let mut t = AsciiTable::new(header);
        t.title("Table I: allocated bit widths (reproduced cell-exactly from the paper)");
        for (name, widths) in &self.width_rows {
            let mut row = vec![(*name).to_string()];
            row.extend(widths.iter().map(ToString::to_string));
            t.row(row);
        }
        for (n, widths) in &self.sum_rows {
            let mut row = vec![format!("sum (N={n})")];
            row.extend(widths.iter().map(ToString::to_string));
            t.row(row);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_cells() {
        let t = run();
        // spot-check the published corners (full verification lives in
        // softmap-softmax's width tests)
        let col = |d: u32, m: u32| t.columns.iter().position(|&c| c == (d, m)).unwrap();
        let poly = &t.width_rows[5].1;
        assert_eq!(poly[col(0, 4)], 11);
        assert_eq!(poly[col(2, 8)], 23);
        let vapprox = &t.width_rows[6].1;
        assert_eq!(vapprox[col(0, 6)], 12);
        let n20 = &t.sum_rows[3].1;
        assert_eq!(n20[col(2, 8)], 38);
    }

    #[test]
    fn renders_all_rows() {
        let r = run().render();
        assert!(r.contains("vln2"));
        assert!(r.contains("sum (N=20)"));
        assert!(r.contains("vcorr=M+2,M=8"));
    }
}
