//! Table II: AP runtime formulas vs. cycles measured from the LUT
//! microcode.
//!
//! The analytic column is the paper's formula; the measured column
//! counts actual compare/write cycles from `softmap-ap` (operand loads
//! included, mirroring the `2M` terms). Small deviations are expected —
//! the paper's formulas idealize carry handling — and are part of what
//! this table reports.

use crate::table::AsciiTable;
use softmap_ap::{cost, ApConfig, ApCore};

fn measure_matmul_wavefront(m: usize, j: usize) -> u64 {
    // One output element of a matrix-matrix product: a j-deep dot
    // product (multiply word-parallel, reduce with the 2D tree).
    let mut ap = ApCore::new(ApConfig::new(j, 8 * m + 24)).unwrap();
    let a = ap.alloc_field(m).unwrap();
    let b = ap.alloc_field(m).unwrap();
    let prod = ap.alloc_field(2 * m).unwrap();
    let sum = ap
        .alloc_field(2 * m + j.next_power_of_two().trailing_zeros() as usize + 1)
        .unwrap();
    let data: Vec<u64> = (0..j as u64).map(|i| i % (1 << m)).collect();
    ap.reset_stats();
    ap.load(a, &data).unwrap();
    ap.load(b, &data).unwrap();
    let _ = ap.dot(a, b, prod, sum).unwrap();
    ap.stats().cycles()
}

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Function name.
    pub function: &'static str,
    /// Operand precision `M`.
    pub m: u64,
    /// Rows `L` (for the reduction) — 0 when not applicable.
    pub l: u64,
    /// The paper's analytic cycle count.
    pub analytic: u64,
    /// Measured microcode cycles (loads included); `None` for rows the
    /// paper gives only analytically (matrix-matrix multiplication).
    pub measured: Option<u64>,
}

fn measure_add(m: usize, rows: usize) -> u64 {
    let mut ap = ApCore::new(ApConfig::new(rows, 4 * m + 8)).unwrap();
    let a = ap.alloc_field(m).unwrap();
    let acc = ap.alloc_field(m + 1).unwrap();
    let data: Vec<u64> = (0..rows as u64).map(|i| i % (1 << m)).collect();
    ap.load(a, &data).unwrap();
    ap.load(acc, &data).unwrap();
    ap.reset_stats();
    // loads are part of the paper's 2M term: charge them explicitly
    ap.load(a, &data).unwrap();
    ap.load(acc.sub(0, m), &data).unwrap();
    ap.add_into(acc, a).unwrap();
    ap.stats().cycles()
}

fn measure_mul(m: usize, rows: usize) -> u64 {
    let mut ap = ApCore::new(ApConfig::new(rows, 6 * m + 8)).unwrap();
    let a = ap.alloc_field(m).unwrap();
    let b = ap.alloc_field(m).unwrap();
    let r = ap.alloc_field(2 * m).unwrap();
    let data: Vec<u64> = (0..rows as u64).map(|i| i % (1 << m)).collect();
    ap.reset_stats();
    ap.load(a, &data).unwrap();
    ap.load(b, &data).unwrap();
    ap.mul(a, b, r).unwrap();
    ap.stats().cycles()
}

fn measure_reduction(m: usize, l: usize) -> u64 {
    // The paper's layout: two words per row, so the reduction is one
    // word-width add (combining the packed pair) plus the 2D tree over
    // L/2 rows.
    let rows = l / 2;
    let mut ap = ApCore::new(ApConfig::new(rows, 4 * m + 24)).unwrap();
    let h0 = ap.alloc_field(m).unwrap();
    let h1 = ap.alloc_field(m).unwrap();
    let sum = ap
        .alloc_field(m + 1 + 64usize.ilog2() as usize + 8)
        .unwrap();
    let data: Vec<u64> = (0..rows as u64).map(|i| i % (1 << m)).collect();
    ap.reset_stats();
    ap.load(h0, &data).unwrap();
    ap.load(h1, &data).unwrap();
    // pair add into the sum field, then the 2D tree
    ap.copy(h0, sum.sub(0, m + 1)).unwrap();
    ap.add_into(sum.sub(0, m + 1), h1).unwrap();
    let _ = ap.reduce_sum_2d(sum, sum.sub(0, sum.width()), rows);
    ap.stats().cycles()
}

/// Runs the comparison at the paper's precisions.
#[must_use]
pub fn run() -> Vec<Row> {
    let rows = 256usize;
    let mut out = Vec::new();
    for &m in &[4u64, 6, 8] {
        out.push(Row {
            function: "Addition",
            m,
            l: 0,
            analytic: cost::addition(m),
            measured: Some(measure_add(m as usize, rows)),
        });
        out.push(Row {
            function: "Multiplication",
            m,
            l: 0,
            analytic: cost::multiplication(m),
            measured: Some(measure_mul(m as usize, rows)),
        });
    }
    for &l in &[512u64, 2048, 4096] {
        out.push(Row {
            function: "Reduction",
            m: 6,
            l,
            analytic: cost::reduction(6, l),
            measured: Some(measure_reduction(6, l as usize)),
        });
    }
    out.push(Row {
        function: "Matrix-matrix mult.",
        m: 8,
        l: 4096,
        analytic: cost::matmul(8, 4096),
        measured: Some(measure_matmul_wavefront(8, 4096)),
    });
    out.push(Row {
        function: "Reduction (1D ablation)",
        m: 6,
        l: 4096,
        analytic: cost::reduction_1d(6, 4096),
        measured: None,
    });
    out.push(Row {
        function: "Division (extension)",
        m: 6,
        l: 0,
        analytic: cost::division(2 * 6 + 12, 12),
        measured: None,
    });
    out
}

/// Renders the comparison table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = AsciiTable::new(vec![
        "function".into(),
        "M".into(),
        "L".into(),
        "analytic (Table II)".into(),
        "measured (microcode)".into(),
        "ratio".into(),
    ]);
    t.title("Table II: AP runtimes in cycles — paper formula vs. simulated microcode");
    for r in rows {
        let measured = r.measured.map_or("-".to_string(), |m| m.to_string());
        let ratio = r.measured.map_or("-".to_string(), |m| {
            format!("{:.2}", m as f64 / r.analytic as f64)
        });
        t.row(vec![
            r.function.to_string(),
            r.m.to_string(),
            if r.l == 0 {
                "-".into()
            } else {
                r.l.to_string()
            },
            r.analytic.to_string(),
            measured,
            ratio,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_within_factor_two_of_analytic() {
        for r in run() {
            if let Some(m) = r.measured {
                let ratio = m as f64 / r.analytic as f64;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "{} M={} L={}: analytic {}, measured {m} (ratio {ratio:.2})",
                    r.function,
                    r.m,
                    r.l,
                    r.analytic
                );
            }
        }
    }

    #[test]
    fn addition_measured_close_to_formula() {
        // in-place add: loads (2M) + carry clear (1) + 8M passes +
        // 1 ripple bit (4 cycles) vs the paper's 2M + 8M + M + 1
        let r = &run()[0];
        assert_eq!(r.function, "Addition");
        let m = r.measured.unwrap();
        let diff = m.abs_diff(r.analytic);
        assert!(diff <= r.m + 4, "analytic {} vs measured {m}", r.analytic);
    }

    #[test]
    fn reduction_grows_with_rows() {
        let rows = run();
        let reds: Vec<&Row> = rows.iter().filter(|r| r.function == "Reduction").collect();
        assert!(reds[0].measured.unwrap() < reds[2].measured.unwrap());
        assert!(reds[0].analytic < reds[2].analytic);
    }

    #[test]
    fn render_includes_all_functions() {
        let s = render(&run());
        for f in [
            "Addition",
            "Multiplication",
            "Reduction",
            "Matrix-matrix mult.",
            "Reduction (1D ablation)",
            "Division (extension)",
        ] {
            assert!(s.contains(f), "missing {f}");
        }
    }
}
