//! Tables III/IV: perplexity sensitivity of the integer-only softmax —
//! measured on the tiny trained stand-in models (see the README
//! substitutions).
//!
//! ## N scaling
//!
//! The paper's sum-truncation study is relative to the no-truncation
//! threshold `N* = log2(L/2)`: with context `L = 2048`, `N* = 10`, so
//! `N = 8` is two guard bits short (truncation fires) while
//! `N ∈ {12, 16, 20}` have headroom. Our stand-in context is `L = 32`
//! (`N* = 4`). A pure threshold-distance mapping (`N' = N - 6`) leaves
//! truncation almost silent because the stand-in's attention rows are
//! short and peaked, so we use `N' = N - 7` — the smallest shift at
//! which truncation measurably fires (verified empirically: `N' = 1`
//! degrades perplexity by ~4%, `N' >= 4` is bit-exactly converged).
//! The printed rows keep the paper's labels.

use std::sync::OnceLock;

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap_llm::corpus::Corpus;
use softmap_llm::model::{ModelConfig, Transformer};
use softmap_llm::perplexity::perplexity;
use softmap_llm::softmax_impls::{ClippedSoftmax, FloatSoftmax, IntApproxSoftmax};
use softmap_llm::train::{train_language_model, TrainConfig};
use softmap_softmax::PrecisionConfig;

/// Which stand-in model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandIn {
    /// 2-layer, d=64 — the Llama2-7b stand-in (Table III analog).
    A,
    /// 3-layer, d=80 — the Llama2-13b stand-in (Table IV analog).
    B,
}

/// One measured cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// `v_corr` extra bits (0, 1, 2).
    pub delta: u32,
    /// Input precision `M`.
    pub m: u32,
    /// Measured perplexity.
    pub ppl: f64,
}

/// One table row (one paper `N`).
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// The paper's `N` label.
    pub paper_n: u32,
    /// The scaled `N'` actually evaluated.
    pub scaled_n: u32,
    /// Cells in `(Δ, M)` order: Δ ∈ {0,1,2} × M ∈ {6,8}.
    pub cells: Vec<Cell>,
}

/// The full reproduced grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PerplexityGrid {
    /// Stand-in description.
    pub model_name: String,
    /// FP softmax reference perplexity.
    pub fp_ppl: f64,
    /// FP softmax with `[TC, 0]` clipping only (isolates clipping).
    pub clipped_ppl: f64,
    /// The `M = 4` perplexity (the paper's "unusable" note).
    pub m4_ppl: f64,
    /// Rows for `N ∈ {8, 12, 16, 20}`.
    pub rows: Vec<GridRow>,
}

/// Maps a paper `N` to the stand-in's scaled `N'` (see module docs).
#[must_use]
pub fn scaled_n(paper_n: u32) -> u32 {
    paper_n.saturating_sub(7).max(1)
}

fn train_stand_in(which: StandIn) -> EvalResult<(Transformer, Vec<usize>, String)> {
    let (seed, model, steps) = match which {
        StandIn::A => (
            7u64,
            ModelConfig {
                vocab: 0,
                d_model: 64,
                heads: 4,
                layers: 2,
                d_ff: 128,
                max_seq: 32,
            },
            220,
        ),
        StandIn::B => (
            999u64,
            ModelConfig {
                vocab: 0,
                d_model: 80,
                heads: 4,
                layers: 3,
                d_ff: 160,
                max_seq: 32,
            },
            220,
        ),
    };
    let corpus = Corpus::generate(seed, 30_000);
    let cfg = TrainConfig {
        steps,
        batch: 8,
        window: 33,
        lr: 3e-3,
        model,
        seed,
    };
    let trained = train_language_model(&corpus, &cfg)?;
    let (_, val) = corpus.split(0.1);
    let name = match which {
        StandIn::A => "tiny-A (Llama2-7b stand-in)",
        StandIn::B => "tiny-B (Llama2-13b stand-in)",
    };
    Ok((trained.model, val.to_vec(), name.to_string()))
}

fn cached(which: StandIn) -> EvalResult<&'static (Transformer, Vec<usize>, String)> {
    static A: OnceLock<(Transformer, Vec<usize>, String)> = OnceLock::new();
    static B: OnceLock<(Transformer, Vec<usize>, String)> = OnceLock::new();
    let slot = match which {
        StandIn::A => &A,
        StandIn::B => &B,
    };
    if slot.get().is_none() {
        let value = train_stand_in(which)?;
        let _ = slot.set(value);
    }
    Ok(slot.get().expect("just set"))
}

/// Runs the experiment (training is cached per stand-in within the
/// process).
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn run(which: StandIn) -> EvalResult<PerplexityGrid> {
    let (model, val, name) = cached(which)?;
    let fp_ppl = perplexity(model, val, &FloatSoftmax)?;
    let clipped_ppl = perplexity(model, val, &ClippedSoftmax { tc: -7.0 })?;
    let m4 = IntApproxSoftmax::new(PrecisionConfig::new(4, 0, 16).with_tc(-4.0))
        .map_err(softmap_llm::LlmError::Softmax)?;
    let m4_ppl = perplexity(model, val, &m4)?;

    let mut rows = Vec::new();
    for paper_n in [8u32, 12, 16, 20] {
        let n = scaled_n(paper_n);
        let mut cells = Vec::new();
        for delta in [0u32, 1, 2] {
            for m in [6u32, 8] {
                let sm = IntApproxSoftmax::new(PrecisionConfig::new(m, delta, n))
                    .map_err(softmap_llm::LlmError::Softmax)?;
                let ppl = perplexity(model, val, &sm)?;
                cells.push(Cell { delta, m, ppl });
            }
        }
        rows.push(GridRow {
            paper_n,
            scaled_n: n,
            cells,
        });
    }
    Ok(PerplexityGrid {
        model_name: name.clone(),
        fp_ppl,
        clipped_ppl,
        m4_ppl,
        rows,
    })
}

impl PerplexityGrid {
    /// Renders the grid in the paper's layout, paper values alongside.
    #[must_use]
    pub fn render(&self, paper: &[[f64; 6]; 4], paper_fp: f64) -> String {
        let mut header = vec!["N (paper / scaled)".to_string()];
        for delta in [0u32, 1, 2] {
            for m in [6u32, 8] {
                let vc = if delta == 0 {
                    "M".to_string()
                } else {
                    format!("M+{delta}")
                };
                header.push(format!("vcorr={vc},M={m}"));
            }
        }
        let mut t = AsciiTable::new(header);
        t.title(format!(
            "Perplexity grid for {} (paper values in parentheses; paper FP = {paper_fp}, ours = {:.3})",
            self.model_name, self.fp_ppl
        ));
        for (ri, row) in self.rows.iter().enumerate() {
            let mut cells = vec![format!("N={} / N'={}", row.paper_n, row.scaled_n)];
            for (ci, c) in row.cells.iter().enumerate() {
                cells.push(format!("{:.3} ({})", c.ppl, paper[ri][ci]));
            }
            t.row(cells);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "FP = {:.3}, FP clipped to [-7,0] = {:.3}, M=4 = {:.3} ({}x FP; paper: 8-32x)\n",
            self.fp_ppl,
            self.clipped_ppl,
            self.m4_ppl,
            (self.m4_ppl / self.fp_ppl).round()
        ));
        out
    }

    /// The cell for a `(Δ, M)` pair in row `ri`.
    #[must_use]
    pub fn cell(&self, ri: usize, delta: u32, m: u32) -> Option<&Cell> {
        self.rows
            .get(ri)?
            .cells
            .iter()
            .find(|c| c.delta == delta && c.m == m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_n_mapping() {
        assert_eq!(scaled_n(8), 1);
        assert_eq!(scaled_n(12), 5);
        assert_eq!(scaled_n(16), 9);
        assert_eq!(scaled_n(20), 13);
        assert_eq!(scaled_n(4), 1); // clamped
    }

    /// The headline shape test: reproduces the paper's qualitative
    /// findings on the tiny stand-in.
    #[test]
    fn grid_reproduces_paper_shape() {
        let g = run(StandIn::A).unwrap();
        // (1) the trained model is real: FP perplexity well below vocab
        assert!(g.fp_ppl > 1.0 && g.fp_ppl < 20.0, "fp = {}", g.fp_ppl);
        // (2) N=8 (truncating) is worse than N=16 for every column.
        // Margin calibrated against the vendored deterministic RNG
        // (the stand-in corpus and init differ from upstream rand's
        // stream, which shrinks — but does not erase — the truncation
        // penalty on these short, peaked attention rows).
        for delta in [0, 1, 2] {
            for m in [6, 8] {
                let n8 = g.cell(0, delta, m).unwrap().ppl;
                let n16 = g.cell(2, delta, m).unwrap().ppl;
                assert!(
                    n8 > n16 * 1.005,
                    "delta={delta} m={m}: N=8 {n8} vs N=16 {n16}"
                );
            }
        }
        // (3) N=16 and N=20 agree (converged), like the paper
        for delta in [0, 1, 2] {
            for m in [6, 8] {
                let n16 = g.cell(2, delta, m).unwrap().ppl;
                let n20 = g.cell(3, delta, m).unwrap().ppl;
                assert!((n16 - n20).abs() / n16 < 0.02);
            }
        }
        // (4) v_corr width is irrelevant (bit-exact pipeline => equal ppl)
        for ri in 0..4 {
            for m in [6, 8] {
                let base = g.cell(ri, 0, m).unwrap().ppl;
                for delta in [1, 2] {
                    let other = g.cell(ri, delta, m).unwrap().ppl;
                    assert!((base - other).abs() < 1e-9, "row {ri} m={m} delta={delta}");
                }
            }
        }
        // (5) converged integer softmax is close to FP
        let best = g.cell(2, 0, 8).unwrap().ppl;
        assert!(best < g.fp_ppl * 1.3, "best {best} vs fp {}", g.fp_ppl);
        // (6) M=4 is disproportionately worse: its excess perplexity
        // over FP dwarfs the converged configs' excess (the paper's
        // "8-32x worse than FP" in a model whose attention is far more
        // quantization-sensitive; our stand-in shows the same ordering
        // with a smaller absolute blow-up — see EXPERIMENTS.md)
        let best_excess = (best - g.fp_ppl).max(1e-6);
        let m4_excess = g.m4_ppl - g.fp_ppl;
        assert!(
            m4_excess > 10.0 * best_excess,
            "m4 excess {m4_excess} vs best excess {best_excess}"
        );
    }

    #[test]
    fn stand_in_b_shows_same_shape() {
        let g = run(StandIn::B).unwrap();
        let n8 = g.cell(0, 0, 6).unwrap().ppl;
        let n16 = g.cell(2, 0, 6).unwrap().ppl;
        assert!(n8 > n16, "N=8 {n8} vs N=16 {n16}");
        assert!(g.fp_ppl < 20.0);
    }

    #[test]
    fn render_includes_paper_values() {
        let g = run(StandIn::A).unwrap();
        let s = g.render(&crate::paper::TABLE3_PPL, crate::paper::TABLE3_FP_PPL);
        assert!(s.contains("(9.62)"));
        assert!(s.contains("N=8 / N'=1"));
        assert!(s.contains("M=4"));
    }
}
