//! Table V: highest EDP ratios between the GPUs and the AP, per model.

use crate::table::{fmt_ratio, AsciiTable};
use crate::EvalResult;
use softmap::characterize::Characterizer;
use softmap_llm::configs::paper_models;

/// One row of the reproduced table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Model name.
    pub model: &'static str,
    /// Highest `EDP_A100 / EDP_AP` and where it occurs.
    pub a100: (f64, usize, usize),
    /// Highest `EDP_RTX3090 / EDP_AP` and where it occurs.
    pub rtx3090: (f64, usize, usize),
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates characterization errors.
pub fn run() -> EvalResult<Vec<Row>> {
    let ch = Characterizer::paper_default()?;
    let mut rows = Vec::new();
    for model in paper_models() {
        let tops = ch.highest_edp_ratios(&model)?;
        rows.push(Row {
            model: model.name,
            a100: (tops[0].1, tops[0].2.seq_len, tops[0].2.batch),
            rtx3090: (tops[1].1, tops[1].2.seq_len, tops[1].2.batch),
        });
    }
    Ok(rows)
}

/// Renders the table with paper values alongside.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = AsciiTable::new(vec![
        "model".into(),
        "max EDP_A100/EDP_AP (paper)".into(),
        "at (L, B)".into(),
        "max EDP_3090/EDP_AP (paper)".into(),
        "at (L, B)".into(),
    ]);
    t.title("Table V: highest EDP ratios (paper: maxima at L=4096, B in [8, 32])");
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![
            r.model.to_string(),
            format!("{} ({})", fmt_ratio(r.a100.0), crate::paper::TABLE5_A100[i]),
            format!("({}, {})", r.a100.1, r.a100.2),
            format!(
                "{} ({})",
                fmt_ratio(r.rtx3090.0),
                crate::paper::TABLE5_3090[i]
            ),
            format!("({}, {})", r.rtx3090.1, r.rtx3090.2),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run().unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // thousands-scale ratios, 3090 above A100, peak at L=4096
            assert!(r.a100.0 > 100.0, "{}: {}", r.model, r.a100.0);
            assert!(r.rtx3090.0 > r.a100.0, "{}", r.model);
            assert_eq!(r.a100.1, 4096);
            assert_eq!(r.rtx3090.1, 4096);
        }
        // ordering across models: 70b has the largest ratios, like the paper
        assert!(rows[2].a100.0 > rows[0].a100.0);
    }

    #[test]
    fn render_includes_paper_numbers() {
        let s = render(&run().unwrap());
        assert!(s.contains("1068"));
        assert!(s.contains("8851"));
    }
}
