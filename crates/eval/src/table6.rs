//! Table VI: comparison with related work — process, frequency, and
//! optimum energy per operation.
//!
//! ConSmax and Softermax rows are their published numbers; the SoftmAP
//! row is *measured* from the mapped dataflow's cell events and the
//! calibrated 16 nm energy model. The paper's "operation" granularity is
//! not defined; we report the blended energy per cell event, which lands
//! in the same sub-pJ decade as the paper's 5.88e-3 pJ.

use crate::table::AsciiTable;
use crate::EvalResult;
use softmap::ApSoftmax;
use softmap_ap::EnergyModel;
use softmap_softmax::PrecisionConfig;

/// One row of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Method name.
    pub method: &'static str,
    /// Softmax approximation.
    pub approx: &'static str,
    /// Process node.
    pub process: &'static str,
    /// Maximum frequency, MHz.
    pub max_freq_mhz: u32,
    /// Optimum energy per operation, pJ.
    pub energy_per_op_pj: f64,
    /// Whether the value is measured here (true) or quoted (false).
    pub measured: bool,
}

/// Runs the experiment: related-work rows quoted, SoftmAP row measured.
///
/// # Errors
///
/// Propagates mapping errors.
pub fn run() -> EvalResult<Vec<Row>> {
    let mut rows: Vec<Row> = crate::paper::TABLE6[..2]
        .iter()
        .map(|&(method, approx, process, freq, pj)| Row {
            method: match method {
                "ConSmax" => "ConSmax",
                _ => "Softermax",
            },
            approx: match approx {
                "Learnable LUTs" => "Learnable LUTs",
                _ => "Base replacement + online normalization",
            },
            process,
            max_freq_mhz: freq,
            energy_per_op_pj: pj,
            measured: false,
        })
        .collect();

    // Measure the SoftmAP row from the mapped dataflow at the best
    // precision on a representative 1024-long vector, through the
    // compiled plan's static cost (the query compiles the plan from
    // `ApSoftmax::representative_scores` once and is execution-free
    // afterwards; static == simulated is asserted by
    // `tests/static_cost.rs`).
    // Pinned to the paper's fixed mapping: this row reproduces the
    // paper's energy number, not the autotuned one.
    let mapping = ApSoftmax::new(PrecisionConfig::paper_best())?.with_autotune(false);
    let stats = mapping.static_cost(1024)?;
    let energy = EnergyModel::nm16();
    let pj = energy
        .energy_per_op_pj(&stats)
        .expect("dataflow produces events");
    rows.push(Row {
        method: "SoftmAP (this reproduction)",
        approx: "Integer polynomial",
        process: "16nm",
        max_freq_mhz: 1000,
        energy_per_op_pj: pj,
        measured: true,
    });
    Ok(rows)
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let mut t = AsciiTable::new(vec![
        "method".into(),
        "softmax approx.".into(),
        "process".into(),
        "max freq (MHz)".into(),
        "energy/op (pJ)".into(),
        "source".into(),
    ]);
    t.title(format!(
        "Table VI: comparison with related works (paper's SoftmAP row: {} pJ/op)",
        crate::paper::TABLE6[2].4
    ));
    for r in rows {
        t.row(vec![
            r.method.to_string(),
            r.approx.to_string(),
            r.process.to_string(),
            r.max_freq_mhz.to_string(),
            format!("{:.2e}", r.energy_per_op_pj),
            if r.measured { "measured" } else { "published" }.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmap_has_lowest_energy_per_op() {
        let rows = run().unwrap();
        let softmap = rows.last().unwrap();
        assert!(softmap.measured);
        for other in &rows[..2] {
            assert!(
                softmap.energy_per_op_pj < other.energy_per_op_pj,
                "{} vs {}",
                softmap.energy_per_op_pj,
                other.energy_per_op_pj
            );
        }
    }

    #[test]
    fn measured_value_in_paper_decade() {
        let rows = run().unwrap();
        let pj = rows.last().unwrap().energy_per_op_pj;
        // paper: 5.88e-3 pJ; ours must land in the same sub-0.1 pJ range
        assert!(pj > 5e-4 && pj < 5e-2, "energy/op {pj} pJ");
    }

    #[test]
    fn render_is_complete() {
        let s = render(&run().unwrap());
        assert!(s.contains("ConSmax"));
        assert!(s.contains("Softermax"));
        assert!(s.contains("SoftmAP"));
        assert!(s.contains("measured"));
    }
}
