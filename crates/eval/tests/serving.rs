//! Device-accounting invariants of the serving layer's simulated wave
//! schedule: the makespan must sit between the critical path (the
//! slowest single request) and the fully-sequential sum, the busy
//! ledger must dominate the per-request latencies, and the occupancy
//! ratio must be well-formed. These are the host-invariant quantities
//! the benchmark gate (`scripts/bench_ap.sh`, `serving.*`) relies on.

use softmap::{ApSoftmax, ServeConfig, SoftmaxServer};
use softmap_ap::ExecBackend;
use softmap_softmax::PrecisionConfig;

#[test]
fn serving_device_schedule_is_conservative() {
    let mapping = ApSoftmax::new(PrecisionConfig::paper_best())
        .unwrap()
        .with_backend(ExecBackend::FastWord);
    let lens = [64usize, 256, 1024, 64, 4096, 256, 8200, 64, 1024, 300];
    // All tickets stay outstanding until every request is submitted, and
    // a slot is only recycled when its ticket is collected — so the
    // queue must be at least as deep as the burst.
    let server = SoftmaxServer::new(
        mapping,
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            warmup_shapes: vec![64, 256, 300, 1024, 4096, 8200],
            shard_parallel: true,
        },
    )
    .unwrap();

    let tickets: Vec<_> = lens
        .iter()
        .enumerate()
        .map(|(salt, &len)| {
            let row: Vec<f64> = (0..len)
                .map(|i| -(((i * 3 + salt) % 89) as f64) * 0.09)
                .collect();
            server.submit(&row).unwrap()
        })
        .collect();
    let latencies: Vec<u64> = tickets
        .into_iter()
        .map(|t| t.wait().unwrap().latency_cycles)
        .collect();

    let stats = server.stats();
    assert_eq!(stats.queued, lens.len() as u64);
    assert_eq!(stats.completed, lens.len() as u64);

    // Makespan bounds: no faster than the slowest request (critical
    // path), no slower than running everything back to back.
    let sequential: u64 = latencies.iter().sum();
    let critical = latencies.iter().copied().max().unwrap();
    assert!(latencies.iter().all(|&l| l > 0), "latencies must be priced");
    assert!(
        stats.makespan_cycles >= critical,
        "makespan {} below the critical path {critical}",
        stats.makespan_cycles
    );
    assert!(
        stats.makespan_cycles <= sequential,
        "makespan {} exceeds the sequential sum {sequential}",
        stats.makespan_cycles
    );

    // The busy ledger charges each request's latency on every tile it
    // claimed, so it dominates the plain latency sum.
    assert!(stats.busy_cycles >= sequential);
    let occ = stats.occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of (0, 1]");

    // Wave accounting: at least one wave, never more waves than
    // admissions, and waves + coalesced == admissions.
    assert!(stats.waves_formed >= 1);
    assert!(stats.waves_formed + stats.coalesced == stats.completed);
    assert_eq!(stats.tiles, server.mapping().device().tiles as u64);
}
